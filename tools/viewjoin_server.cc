// viewjoin_server — long-lived ViewJoin query daemon.
//
// Serves tree pattern queries over a generated (or parsed) document through
// the length-prefixed binary protocol in src/server/wire.h, with per-tenant
// quotas, load shedding, slowloris read deadlines, and graceful drain.
//
//   viewjoin_server --xmark 0.5 --store /tmp/views.db --port 0 \
//                   --port-file /tmp/vj.port
//
// Shutdown contract (what the drain tests and the CI smoke job exercise):
//   SIGTERM/SIGINT   graceful drain: stop accepting, answer queued requests
//                    with SHUTTING_DOWN, let in-flight queries finish (or be
//                    deadline-aborted at --drain-deadline-ms), close the
//                    catalog crash-safely, exit 0 (1 if the drain watchdog
//                    had to abort stragglers).
//   second signal    hard kill: abort in-flight queries immediately, finish
//                    teardown, exit 130.
//
// The view store is opened in persistent (journaled) mode, so after any exit
// `vj_fsck <store>` can vouch for it.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "data/nasa_generator.h"
#include "data/xmark_generator.h"
#include "server/server.h"
#include "util/env.h"
#include "xml/parser.h"

namespace {

using viewjoin::core::Engine;
using viewjoin::core::EngineOptions;
using viewjoin::server::QueryServer;
using viewjoin::server::ServerOptions;

int g_signal_pipe[2] = {-1, -1};

// Distinct self-pipe bytes: 1 = drain (SIGTERM/SIGINT), 2 = hot backup
// (SIGUSR2). The main loop demultiplexes; a backup never advances the
// shutdown state machine.
void OnSignal(int) {
  // Self-pipe: the only async-signal-safe thing here is write(2); the main
  // loop does the actual drain.
  char byte = 1;
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

void OnBackupSignal(int) {
  char byte = 2;
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

struct Options {
  std::string xml_path;
  double xmark_scale = 0;
  int64_t nasa_datasets = 0;
  std::string store_path;
  std::string port_file;
  std::vector<std::string> views;
  std::string scheme = "LE";
  bool scrub = false;
  ServerOptions server;
};

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s (--xml FILE | --xmark SCALE | --nasa DATASETS)\n"
      "          --store PATH [--port N] [--port-file PATH]\n"
      "          [--views 'V1;V2;..'] [--scheme E|T|LE|LE_p] [--scrub]\n"
      "          [--workers N] [--max-pending N]\n"
      "          [--quota-rate QPS] [--quota-burst N]\n"
      "          [--deadline-ms MS] [--drain-deadline-ms MS]\n"
      "          [--read-deadline-ms MS]\n"
      "          [--memory-budget BYTES] [--memory-high-water BYTES]\n"
      "          [--backup-dir DIR]\n"
      "SIGUSR2 triggers an online hot backup into --backup-dir while the\n"
      "server keeps serving. Env knobs (strict): VIEWJOIN_BACKUP_RATE_BYTES\n"
      "paces backup copies in bytes/sec (0 = unthrottled);\n"
      "VIEWJOIN_UPDATE_DEDUP_WINDOW sizes the update idempotency window\n"
      "(0 disables).\n",
      prog);
}

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--xml") {
      if ((v = next()) == nullptr) return false;
      options->xml_path = v;
    } else if (arg == "--xmark") {
      if ((v = next()) == nullptr) return false;
      options->xmark_scale = std::atof(v);
    } else if (arg == "--nasa") {
      if ((v = next()) == nullptr) return false;
      options->nasa_datasets = std::atol(v);
    } else if (arg == "--store") {
      if ((v = next()) == nullptr) return false;
      options->store_path = v;
    } else if (arg == "--port") {
      if ((v = next()) == nullptr) return false;
      options->server.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--port-file") {
      if ((v = next()) == nullptr) return false;
      options->port_file = v;
    } else if (arg == "--views") {
      if ((v = next()) == nullptr) return false;
      options->views = SplitList(v);
    } else if (arg == "--scheme") {
      if ((v = next()) == nullptr) return false;
      options->scheme = v;
    } else if (arg == "--scrub") {
      options->scrub = true;
    } else if (arg == "--workers") {
      if ((v = next()) == nullptr) return false;
      options->server.workers = static_cast<size_t>(std::atol(v));
    } else if (arg == "--max-pending") {
      if ((v = next()) == nullptr) return false;
      options->server.max_pending = static_cast<size_t>(std::atol(v));
    } else if (arg == "--quota-rate") {
      if ((v = next()) == nullptr) return false;
      options->server.quota_rate_per_sec = std::atof(v);
    } else if (arg == "--quota-burst") {
      if ((v = next()) == nullptr) return false;
      options->server.quota_burst = std::atof(v);
    } else if (arg == "--deadline-ms") {
      if ((v = next()) == nullptr) return false;
      options->server.default_deadline_ms = std::atof(v);
    } else if (arg == "--drain-deadline-ms") {
      if ((v = next()) == nullptr) return false;
      options->server.drain_deadline_ms = std::atof(v);
    } else if (arg == "--read-deadline-ms") {
      if ((v = next()) == nullptr) return false;
      options->server.read_deadline_ms = std::atof(v);
      options->server.write_deadline_ms = std::atof(v);
    } else if (arg == "--memory-budget") {
      if ((v = next()) == nullptr) return false;
      options->server.per_query_memory_budget =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--memory-high-water") {
      if ((v = next()) == nullptr) return false;
      options->server.memory_high_water_bytes =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--backup-dir") {
      if ((v = next()) == nullptr) return false;
      options->server.backup_dir = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  bool has_source = !options->xml_path.empty() || options->xmark_scale > 0 ||
                    options->nasa_datasets > 0;
  if (!has_source || options->store_path.empty()) {
    std::fprintf(stderr,
                 "a document source (--xml/--xmark/--nasa) and --store are "
                 "required\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    Usage(argv[0]);
    return 2;
  }

  // Strict env knobs: a typo'd value is a startup error, not a silent
  // default.
  viewjoin::util::StatusOr<int64_t> rate =
      viewjoin::util::ParseNonNegativeIntEnv(
          "VIEWJOIN_BACKUP_RATE_BYTES",
          static_cast<int64_t>(options.server.backup_rate_bytes));
  if (!rate.ok()) {
    std::fprintf(stderr, "%s\n", rate.status().ToString().c_str());
    return 2;
  }
  options.server.backup_rate_bytes = static_cast<uint64_t>(*rate);
  viewjoin::util::StatusOr<int64_t> window =
      viewjoin::util::ParseNonNegativeIntEnv(
          "VIEWJOIN_UPDATE_DEDUP_WINDOW",
          static_cast<int64_t>(options.server.update_dedup_window));
  if (!window.ok()) {
    std::fprintf(stderr, "%s\n", window.status().ToString().c_str());
    return 2;
  }
  options.server.update_dedup_window = static_cast<size_t>(*window);

  viewjoin::xml::Document doc;
  if (!options.xml_path.empty()) {
    viewjoin::xml::ParseResult parsed =
        viewjoin::xml::ParseDocumentFile(options.xml_path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "cannot parse %s: %s\n", options.xml_path.c_str(),
                   parsed.error.c_str());
      return 2;
    }
    doc = std::move(*parsed.document);
  } else if (options.xmark_scale > 0) {
    doc = viewjoin::data::GenerateXmark({.scale = options.xmark_scale});
  } else {
    doc = viewjoin::data::GenerateNasa({.datasets = options.nasa_datasets});
  }

  EngineOptions engine_options;
  engine_options.persistent = true;  // drain must leave a store fsck trusts
  engine_options.scrub = options.scrub;
  Engine engine(&doc, options.store_path, engine_options);

  std::optional<viewjoin::storage::Scheme> scheme =
      viewjoin::storage::ParseScheme(options.scheme);
  if (!scheme.has_value()) {
    std::fprintf(stderr, "bad --scheme %s\n", options.scheme.c_str());
    return 2;
  }
  for (const std::string& view : options.views) {
    viewjoin::util::StatusOr<const viewjoin::storage::MaterializedView*> made =
        engine.TryAddView(view, *scheme);
    if (!made.ok()) {
      std::fprintf(stderr, "bad view '%s': %s\n", view.c_str(),
                   made.status().ToString().c_str());
      return 2;
    }
  }

  // The self-pipe must exist before the handlers are armed.
  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 2;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  struct sigaction backup_action;
  std::memset(&backup_action, 0, sizeof(backup_action));
  backup_action.sa_handler = OnBackupSignal;
  ::sigaction(SIGUSR2, &backup_action, nullptr);

  QueryServer server(&engine, options.server);
  viewjoin::util::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", started.ToString().c_str());
    return 2;
  }

  if (!options.port_file.empty()) {
    // Written atomically (tmp + rename) so a watcher never reads a torn file.
    std::string tmp = options.port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::perror("port-file");
      return 2;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
    std::rename(tmp.c_str(), options.port_file.c_str());
  }
  std::printf("serving on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  // Serve until a drain signal; SIGUSR2 bytes trigger hot backups in a
  // helper thread so serving (and later signals) are never blocked on a
  // rate-limited copy.
  std::vector<std::thread> backup_threads;
  char byte;
  for (;;) {
    ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    if (byte == 2) {
      backup_threads.emplace_back([&server] {
        viewjoin::server::BackupResponse done = server.TriggerBackup();
        if (done.verdict == viewjoin::server::Verdict::kOk) {
          std::printf("backup complete: %s (epoch %llu, %llu bytes)\n",
                      done.directory.c_str(),
                      static_cast<unsigned long long>(done.epoch),
                      static_cast<unsigned long long>(done.bytes_copied));
        } else {
          std::printf("backup failed: %s\n", done.error.c_str());
        }
        std::fflush(stdout);
      });
      continue;
    }
    break;  // byte == 1: drain
  }
  std::printf("draining...\n");
  std::fflush(stdout);

  // Drain in a helper thread so a second signal can still reach us here.
  std::atomic<bool> drain_done{false};
  bool drain_clean = false;
  std::thread drainer([&] {
    drain_clean = server.Drain();
    drain_done.store(true, std::memory_order_release);
  });

  bool hard_killed = false;
  while (!drain_done.load(std::memory_order_acquire)) {
    struct pollfd pfd = {g_signal_pipe[0], POLLIN, 0};
    int ready = ::poll(&pfd, 1, 50);
    if (ready > 0 && !hard_killed) {
      while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
      }
      if (byte == 2) continue;  // a late SIGUSR2 is not a hard-kill request
      std::printf("hard kill\n");
      std::fflush(stdout);
      server.HardKill();
      hard_killed = true;
    }
  }
  drainer.join();
  for (std::thread& t : backup_threads) {
    if (t.joinable()) t.join();
  }

  if (hard_killed) return 130;
  std::printf("drained %s\n", drain_clean ? "clean" : "forced");
  return drain_clean ? 0 : 1;
}
