// vj_fsck: offline integrity check for a ViewJoin pager file.
//
// When the file has a manifest journal sibling ("<file>.manifest"), the
// check is catalog-level: every page is scanned through the format-v2
// checksum verification AND the journal is replayed and cross-checked
// against the data file (durable prefix vs. file size, install-record page
// ranges, torn tails, orphan shadow files). A bare pager file without a
// manifest gets the page-level scan only.
//
// Document stores: --doc checks the given path as a paged base-document
// store (storage::DocumentStore) instead of a view catalog. Without --doc,
// a sibling "<file>.doc" store (the engine's disk doc-mode layout) is
// auto-detected and verified alongside the catalog.
//
// Backup images: a path that is a directory holding a backup.meta file (as
// produced by vj_backup / the server's hot backup) is auto-detected and gets
// the full image verification — meta checksum, per-file size + CRC32, every
// page of the copied pager files, manifest replay (exit 0 clean, 1 corrupt,
// 2 unreadable).
//
// Exit status follows the fsck convention so scripts can branch on the
// verdict:
//   0  the file is clean
//   1  the file was read but is corrupt (bad header, checksum, footer,
//      journal CRC mismatch, or journal/data inconsistency)
//   2  usage error, or the file could not be read at all (missing, I/O)
//   3  crash artifacts found (torn journal tail, uncommitted pages, orphan
//      shadows, legacy manifest, aborted doc-store builds) — recoverable;
//      with --repair they were repaired and the store is clean again
//   4  the BASE DOCUMENT store is corrupt (and the view catalog, if any, is
//      not) — a different failure domain: views rebuild from the document,
//      but a rotten document store must be rebuilt from the source XML.
//      When both are corrupt, view corruption (exit 1) wins.
//
//   $ ./build/tools/vj_fsck [--quiet] [--repair] [--json] [--doc] /path/to/views.db
//
// --json replaces the human-readable text with one JSON object on stdout
// (fields mirror storage::FsckCatalogReport / FsckDocStoreReport, plus the
// derived verdicts); exit codes are unchanged, so scripts can use either.

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "storage/backup.h"
#include "storage/fsck.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--quiet] [--repair] [--json] [--doc] <pager-file>\n",
               prog);
  return 2;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void PrintDocReport(const std::string& path,
                    const viewjoin::storage::FsckDocStoreReport& report) {
  for (const auto& [page, status] : report.pager.bad_pages) {
    std::printf("doc page %u: %s\n", page, status.ToString().c_str());
  }
  if (!report.manifest_status.ok()) {
    std::printf("doc manifest: %s\n",
                report.manifest_status.ToString().c_str());
  }
  if (report.orphan) {
    std::printf("doc store: pager file without manifest (aborted build)\n");
  }
  if (report.arena_missing) std::printf("doc store: node arena missing\n");
  if (report.data_missing) {
    std::printf("doc data file shorter than manifest's durable prefix "
                "(%u pages)\n",
                report.durable_page_count);
  }
  for (const std::string& bad : report.bad_lists) {
    std::printf("bad doc list: %s\n", bad.c_str());
  }
  for (const std::string& run : report.stray_runs) {
    std::printf("stray spill run: %s\n", run.c_str());
  }
  std::printf("%s: %zu tag list(s), %llu node(s), %u durable page(s), %u bad\n",
              path.c_str(), report.tag_count,
              static_cast<unsigned long long>(report.node_count),
              report.durable_page_count, report.corrupt_durable_pages);
}

/// Exit code of a doc-store check in isolation: 0 clean, 4 corrupt,
/// 3 crash artifacts (rebuildable), 2 unreadable/absent.
int DocExitCode(const viewjoin::storage::FsckDocStoreReport& report) {
  if (!report.present) return 2;
  if (report.corrupt()) return 4;
  if (report.orphan || !report.stray_runs.empty()) return 3;
  if (!report.pager.file_status.ok() || !report.manifest_status.ok()) return 2;
  return report.clean() ? 0 : 4;
}

/// Merges a catalog verdict with the sibling doc-store verdict. View
/// corruption (1) outranks everything; doc corruption (4) next; then
/// unreadable (2); crash artifacts (3) only win over clean.
int CombineExit(int view_exit, int doc_exit) {
  auto rank = [](int e) {
    switch (e) {
      case 1: return 4;
      case 4: return 3;
      case 2: return 2;
      case 3: return 1;
      default: return 0;
    }
  };
  return rank(view_exit) >= rank(doc_exit) ? view_exit : doc_exit;
}

/// Strips trailing newlines so a report can be embedded in a wrapper object.
std::string TrimmedJson(std::string json) {
  while (!json.empty() && json.back() == '\n') json.pop_back();
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  bool repair = false;
  bool json = false;
  bool doc = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0 || std::strcmp(argv[i], "-q") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--repair") == 0) {
      repair = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--doc") == 0) {
      doc = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);

  using viewjoin::util::StatusCode;

  if (viewjoin::storage::IsBackupImageDir(path)) {
    // Backup image directory: full image verification instead of the live
    // store checks (the image's own store/manifest files are covered by it).
    viewjoin::util::StatusOr<viewjoin::storage::BackupReport> verified =
        viewjoin::storage::VerifyBackupImage(path);
    if (!verified.ok()) {
      if (json) {
        std::printf("{\"backup_image\": \"%s\", \"clean\": false}\n",
                    path.c_str());
      } else if (!quiet) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     verified.status().ToString().c_str());
      }
      return verified.status().code() == StatusCode::kCorruption ? 1 : 2;
    }
    if (json) {
      std::printf("{\"backup_image\": %s, \"clean\": true}\n",
                  verified->ToJson().c_str());
    } else if (!quiet) {
      std::printf("%s: backup image clean — epoch %llu, %u view page(s), "
                  "%zu file(s)%s\n",
                  path.c_str(),
                  static_cast<unsigned long long>(verified->epoch),
                  verified->view_page_count, verified->files.size(),
                  verified->has_doc_store ? ", doc store" : "");
    }
    return 0;
  }

  if (doc) {
    // Explicit doc-store mode: the path IS the store's pager file. There is
    // no --repair path — a rotten store is rebuilt from the source XML (the
    // engine does this automatically on the next disk-mode open).
    if (repair) {
      std::fprintf(stderr,
                   "--repair ignored: document stores are rebuilt from the "
                   "source XML, not repaired\n");
    }
    viewjoin::storage::FsckDocStoreReport report =
        viewjoin::storage::FsckDocumentStore(path);
    if (json) {
      std::fputs(viewjoin::storage::ToJson(report).c_str(), stdout);
    } else if (!quiet) {
      if (!report.present) {
        std::fprintf(stderr, "%s: no document store\n", path.c_str());
      } else {
        PrintDocReport(path, report);
      }
    }
    return DocExitCode(report);
  }

  const std::string manifest =
      viewjoin::storage::ManifestJournal::PathFor(path);
  if (!FileExists(manifest)) {
    // Bare pager file (a spill spool, a scratch store): page-level scan only,
    // exactly the historical vj_fsck behavior. --repair has nothing to do —
    // there is no journal to roll back from.
    viewjoin::storage::FsckReport report =
        viewjoin::storage::FsckPagerFile(path);
    if (json) {
      std::fputs(viewjoin::storage::ToJson(report).c_str(), stdout);
      if (!report.file_status.ok()) {
        return report.file_status.code() == StatusCode::kCorruption ? 1 : 2;
      }
      return report.ok() ? 0 : 1;
    }
    if (!report.file_status.ok()) {
      if (!quiet) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     report.file_status.ToString().c_str());
      }
      // A file whose bytes validate as *wrong* is corrupt (exit 1); a file we
      // could not read at all is an environment problem (exit 2).
      return report.file_status.code() == StatusCode::kCorruption ? 1 : 2;
    }
    if (!quiet) {
      for (const auto& [page, status] : report.bad_pages) {
        std::printf("page %u: %s\n", page, status.ToString().c_str());
      }
      std::printf("%s: %u pages, %zu bad\n", path.c_str(), report.page_count,
                  report.bad_pages.size());
    }
    return report.ok() ? 0 : 1;
  }

  viewjoin::storage::FsckCatalogReport report =
      viewjoin::storage::FsckCatalog(path);

  // The engine's disk doc-mode keeps its paged base document in a sibling
  // "<path>.doc" store; verify it alongside the catalog when present.
  const std::string doc_path = path + ".doc";
  const bool have_doc =
      FileExists(doc_path) ||
      FileExists(viewjoin::storage::ManifestJournal::PathFor(doc_path));
  viewjoin::storage::FsckDocStoreReport doc_report;
  if (have_doc) doc_report = viewjoin::storage::FsckDocumentStore(doc_path);
  const int doc_exit = have_doc ? DocExitCode(doc_report) : 0;

  if (json) {
    if (have_doc) {
      std::string out = "{\"catalog\": ";
      out += TrimmedJson(viewjoin::storage::ToJson(report));
      out += ",\n\"doc_store\": ";
      out += TrimmedJson(viewjoin::storage::ToJson(doc_report));
      out += "}\n";
      std::fputs(out.c_str(), stdout);
    } else {
      std::fputs(viewjoin::storage::ToJson(report).c_str(), stdout);
    }
    // The exit-code ladder below still applies (it only prints when !quiet,
    // and --json implies quiet for the text renderer).
    quiet = true;
  }

  if (!quiet && !json) {
    for (const auto& [page, status] : report.pager.bad_pages) {
      const char* where =
          !report.legacy && page >= report.durable_page_count ? " (orphan)"
                                                              : "";
      std::printf("page %u%s: %s\n", page, where, status.ToString().c_str());
    }
    if (!report.manifest_status.ok()) {
      std::printf("manifest: %s\n", report.manifest_status.ToString().c_str());
    }
    if (report.legacy) std::printf("manifest: legacy text format\n");
    if (report.journal_tail_torn) std::printf("manifest: torn tail\n");
    if (report.data_missing) {
      std::printf("data file shorter than journal's durable prefix (%u pages)\n",
                  report.durable_page_count);
    }
    for (const std::string& bad : report.bad_views) {
      std::printf("bad view: %s\n", bad.c_str());
    }
    for (const std::string& bad : report.bad_compressed_lists) {
      std::printf("bad compressed list: %s\n", bad.c_str());
    }
    if (report.orphan_pages > 0) {
      std::printf("%u uncommitted page(s) past durable prefix%s\n",
                  report.orphan_pages,
                  report.pager_tail_partial ? " (partial tail)" : "");
    }
    for (const std::string& shadow : report.orphan_shadows) {
      std::printf("orphan shadow: %s\n", shadow.c_str());
    }
    std::printf("%s: %zu view(s), %zu quarantined, epoch %llu, "
                "%u durable page(s), %u bad, %zu compressed list(s) verified\n",
                path.c_str(), report.view_count, report.quarantined_count,
                static_cast<unsigned long long>(report.last_epoch),
                report.durable_page_count, report.corrupt_durable_pages,
                report.compressed_lists_checked);
    if (have_doc) PrintDocReport(doc_path, doc_report);
  }

  if (report.corrupt()) {
    // Checksum-bad committed pages or journal rot: the backing bytes are
    // gone, not merely uncommitted. --repair refuses — rebuild the affected
    // views from the source document instead.
    if (!quiet && repair) {
      std::fprintf(stderr, "%s: corrupt (not repairable offline)\n",
                   path.c_str());
    }
    return 1;
  }
  if (!report.repair_needed()) {
    // An unreadable-but-not-corrupt store (e.g. missing data file with an
    // empty journal) is an environment problem.
    if (!report.manifest_status.ok() || !report.pager.file_status.ok()) {
      return CombineExit(2, doc_exit);
    }
    return CombineExit(0, doc_exit);
  }

  if (!repair) return CombineExit(3, doc_exit);

  viewjoin::util::StatusOr<viewjoin::storage::RecoveryReport> repaired =
      viewjoin::storage::RepairCatalog(path);
  if (!repaired.ok()) {
    if (!quiet) {
      std::fprintf(stderr, "repair failed: %s\n",
                   repaired.status().ToString().c_str());
    }
    return 2;
  }
  if (!quiet) {
    std::printf("repaired: %s%u orphan page(s) truncated, "
                "%d orphan shadow(s) removed, %zu view(s) pending rebuild%s\n",
                repaired->journal_tail_truncated ? "journal tail truncated, "
                                                 : "",
                repaired->orphan_pages_truncated,
                repaired->orphan_shadows_removed,
                repaired->pending_rebuild.size(),
                repaired->legacy_manifest_converted
                    ? ", legacy manifest converted"
                    : "");
  }
  return CombineExit(3, doc_exit);
}
