// vj_fsck: offline integrity check for a ViewJoin pager file.
//
// Scans every page through the format-v2 header and per-page checksum
// verification and prints a verdict per bad page. Exit status: 0 when the
// file is clean, 1 when the header is invalid or any page fails
// verification, 2 on usage errors.
//
//   $ ./build/tools/vj_fsck /path/to/views.db

#include <cstdio>
#include <string>

#include "storage/fsck.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <pager-file>\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  viewjoin::storage::FsckReport report = viewjoin::storage::FsckPagerFile(path);
  if (!report.file_status.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 report.file_status.ToString().c_str());
    return 1;
  }
  for (const auto& [page, status] : report.bad_pages) {
    std::printf("page %u: %s\n", page, status.ToString().c_str());
  }
  std::printf("%s: %u pages, %zu bad\n", path.c_str(), report.page_count,
              report.bad_pages.size());
  return report.ok() ? 0 : 1;
}
