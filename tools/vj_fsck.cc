// vj_fsck: offline integrity check for a ViewJoin pager file.
//
// Scans every page through the format-v2 header and per-page checksum
// verification and prints a verdict per bad page. Exit status follows the
// fsck convention so scripts can branch on the verdict:
//   0  the file is clean
//   1  the file was read but is corrupt (bad header, checksum, footer)
//   2  usage error, or the file could not be read at all (missing, I/O)
//
//   $ ./build/tools/vj_fsck [--quiet] /path/to/views.db

#include <cstdio>
#include <cstring>
#include <string>

#include "storage/fsck.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr, "usage: %s [--quiet] <pager-file>\n", prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0 || std::strcmp(argv[i], "-q") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);

  viewjoin::storage::FsckReport report = viewjoin::storage::FsckPagerFile(path);
  if (!report.file_status.ok()) {
    if (!quiet) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   report.file_status.ToString().c_str());
    }
    // A file whose bytes validate as *wrong* is corrupt (exit 1); a file we
    // could not read at all is an environment problem (exit 2).
    using viewjoin::util::StatusCode;
    return report.file_status.code() == StatusCode::kCorruption ? 1 : 2;
  }
  if (!quiet) {
    for (const auto& [page, status] : report.bad_pages) {
      std::printf("page %u: %s\n", page, status.ToString().c_str());
    }
    std::printf("%s: %u pages, %zu bad\n", path.c_str(), report.page_count,
                report.bad_pages.size());
  }
  return report.ok() ? 0 : 1;
}
