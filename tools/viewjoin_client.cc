// viewjoin_client — command-line client for viewjoin_server.
//
//   viewjoin_client --port-file /tmp/vj.port \
//       --query '//people//person//name' --views '//people//person;//name'
//   viewjoin_client --port 4711 --status
//
// Exit codes mirror the server's verdicts so scripts can branch:
//   0  OK (matches printed)
//   1  server-side error verdict
//   2  usage error or transport failure (connect refused, reset, timeout on
//      the socket, malformed response)
//   3  query deadline expired server-side (TIMEOUT verdict)
//   4  rejected (quota or load shedding; Retry-After printed)
//   5  shutting down / cancelled by drain
//
// --inject-reset arms the deterministic socket fault injector on this
// process's end of the wire: the first send attempt is replaced by an
// abortive close, so the peer sees a real RST. Used by the CI smoke job to
// prove a client vanishing mid-request never wedges or crashes the server.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/client.h"
#include "util/fault_injection.h"

namespace {

using viewjoin::server::Client;
using viewjoin::server::QueryRequest;
using viewjoin::server::QueryResponse;
using viewjoin::server::StatusResponse;
using viewjoin::server::Verdict;

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s (--port N | --port-file PATH) [--host IP]\n"
      "          (--query XPATH --views 'V1;V2;..' | --status)\n"
      "          [--scheme E|T|LE|LE_p] [--algo TS|VJ|IJ|auto]\n"
      "          [--tenant NAME] [--deadline-ms MS] [--timeout-ms MS]\n"
      "          [--repeat N] [--inject-reset]\n",
      prog);
}

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

int VerdictExit(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk:
      return 0;
    case Verdict::kError:
      return 1;
    case Verdict::kTimeout:
      return 3;
    case Verdict::kRejected:
      return 4;
    case Verdict::kCancelled:
    case Verdict::kShuttingDown:
      return 5;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string port_file;
  QueryRequest request;
  bool status_probe = false;
  double timeout_ms = 5000;
  int repeat = 1;
  bool inject_reset = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--host") {
      if ((v = next()) == nullptr) return 2;
      host = v;
    } else if (arg == "--port") {
      if ((v = next()) == nullptr) return 2;
      port = std::atoi(v);
    } else if (arg == "--port-file") {
      if ((v = next()) == nullptr) return 2;
      port_file = v;
    } else if (arg == "--query") {
      if ((v = next()) == nullptr) return 2;
      request.query = v;
    } else if (arg == "--views") {
      if ((v = next()) == nullptr) return 2;
      request.views = SplitList(v);
    } else if (arg == "--scheme") {
      if ((v = next()) == nullptr) return 2;
      request.scheme = v;
    } else if (arg == "--algo") {
      if ((v = next()) == nullptr) return 2;
      request.algorithm = v;
    } else if (arg == "--tenant") {
      if ((v = next()) == nullptr) return 2;
      request.tenant = v;
    } else if (arg == "--deadline-ms") {
      if ((v = next()) == nullptr) return 2;
      request.deadline_ms = std::atof(v);
    } else if (arg == "--timeout-ms") {
      if ((v = next()) == nullptr) return 2;
      timeout_ms = std::atof(v);
    } else if (arg == "--repeat") {
      if ((v = next()) == nullptr) return 2;
      repeat = std::atoi(v);
    } else if (arg == "--status") {
      status_probe = true;
    } else if (arg == "--inject-reset") {
      inject_reset = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "r");
    if (f == nullptr || std::fscanf(f, "%d", &port) != 1) {
      std::fprintf(stderr, "cannot read port from %s\n", port_file.c_str());
      if (f != nullptr) std::fclose(f);
      return 2;
    }
    std::fclose(f);
  }
  if (port <= 0 || (!status_probe && request.query.empty())) {
    Usage(argv[0]);
    return 2;
  }

  Client client;
  client.set_deadline_ms(timeout_ms);
  viewjoin::util::Status connected =
      client.Connect(host, static_cast<uint16_t>(port), timeout_ms);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n", connected.ToString().c_str());
    return 2;
  }

  if (inject_reset) {
    // First send attempt from this process becomes an abortive close: the
    // server sees a mid-request RST from a vanished client.
    viewjoin::util::SocketFaultInjector::Global().ArmSendFault(
        viewjoin::util::SocketFault::kReset, /*nth=*/1, /*count=*/1,
        viewjoin::util::SocketEnd::kClient);
  }

  if (status_probe) {
    viewjoin::util::StatusOr<StatusResponse> status = client.GetStatus();
    if (!status.ok()) {
      std::fprintf(stderr, "status: %s\n", status.status().ToString().c_str());
      return 2;
    }
    std::printf(
        "healthy=%d ready=%d draining=%d in_flight=%llu queued=%llu\n"
        "accepted=%llu served=%llu rejected_quota=%llu rejected_shed=%llu "
        "rejected_draining=%llu\nread_timeouts=%llu frame_errors=%llu "
        "views_cached=%llu\n",
        status->healthy ? 1 : 0, status->ready ? 1 : 0,
        status->draining ? 1 : 0,
        static_cast<unsigned long long>(status->in_flight),
        static_cast<unsigned long long>(status->queued_connections),
        static_cast<unsigned long long>(status->connections_accepted),
        static_cast<unsigned long long>(status->queries_served),
        static_cast<unsigned long long>(status->rejected_quota),
        static_cast<unsigned long long>(status->rejected_shed),
        static_cast<unsigned long long>(status->rejected_draining),
        static_cast<unsigned long long>(status->read_timeouts),
        static_cast<unsigned long long>(status->frame_errors),
        static_cast<unsigned long long>(status->views_cached));
    return status->ready ? 0 : 1;
  }

  int exit_code = 0;
  for (int n = 0; n < repeat; ++n) {
    viewjoin::util::StatusOr<QueryResponse> response = client.Query(request);
    if (!response.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   response.status().ToString().c_str());
      return 2;
    }
    std::printf("verdict=%s matches=%llu hash=%016llx server_ms=%.3f "
                "attempts=%u%s\n",
                viewjoin::server::VerdictName(response->verdict),
                static_cast<unsigned long long>(response->match_count),
                static_cast<unsigned long long>(response->result_hash),
                response->server_ms, response->attempts,
                response->degraded ? " degraded" : "");
    if (!response->error.empty()) {
      std::fprintf(stderr, "error: %s\n", response->error.c_str());
    }
    if (response->verdict == Verdict::kRejected) {
      std::fprintf(stderr, "retry after %.1f ms\n", response->retry_after_ms);
    }
    exit_code = VerdictExit(response->verdict);
    if (exit_code != 0) break;
  }
  return exit_code;
}
