// viewjoin_client — command-line client for viewjoin_server.
//
//   viewjoin_client --port-file /tmp/vj.port \
//       --query '//people//person//name' --views '//people//person;//name'
//   viewjoin_client --port 4711 --status
//
// Exit codes mirror the server's verdicts so scripts can branch:
//   0  OK (matches printed)
//   1  server-side error verdict
//   2  usage error or transport failure (connect refused, reset, timeout on
//      the socket, malformed response)
//   3  query deadline expired server-side (TIMEOUT verdict)
//   4  rejected (quota or load shedding; Retry-After printed)
//   5  shutting down / cancelled by drain
//
// --inject-reset arms the deterministic socket fault injector on this
// process's end of the wire: the first send attempt is replaced by an
// abortive close, so the peer sees a real RST. Used by the CI smoke job to
// prove a client vanishing mid-request never wedges or crashes the server.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "util/fault_injection.h"

namespace {

using viewjoin::server::BackupResponse;
using viewjoin::server::Client;
using viewjoin::server::QueryRequest;
using viewjoin::server::QueryResponse;
using viewjoin::server::RefusalRetryPolicy;
using viewjoin::server::StatusResponse;
using viewjoin::server::UpdateRequest;
using viewjoin::server::UpdateResponse;
using viewjoin::server::Verdict;

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s (--port N | --port-file PATH) [--host IP]\n"
      "          (--query XPATH --views 'V1;V2;..' | --status |\n"
      "           --backup DIR |\n"
      "           --insert TAG@START --fragment XML [--after TAG@START] |\n"
      "           --delete TAG@START)\n"
      "          [--scheme E|T|LE|LE_p] [--algo TS|VJ|IJ|auto]\n"
      "          [--tenant NAME] [--deadline-ms MS] [--timeout-ms MS]\n"
      "          [--repeat N] [--retry N] [--retry-base-ms MS]\n"
      "          [--retry-cap-ms MS] [--token T] [--inject-reset]\n"
      "\n"
      "--insert/--delete may repeat; all ops travel as one atomic batch.\n"
      "--retry N re-sends a request refused with REJECTED/SHUTTING-DOWN up\n"
      "to N times, honoring Retry-After under a decorrelated-jitter backoff\n"
      "capped at --retry-cap-ms per attempt. Update batches carry an\n"
      "idempotency token (random unless --token is given), chosen once\n"
      "before the first attempt, so a retried batch applies exactly once.\n"
      "--backup DIR asks the server for an online hot backup into DIR on\n"
      "the server's filesystem ('' = the server's --backup-dir).\n",
      prog);
}

/// Parses "tag@start" node coordinates (as printed by query results).
bool ParseCoord(const std::string& text, std::string* tag, uint32_t* start) {
  size_t at = text.rfind('@');
  if (at == std::string::npos || at == 0 || at + 1 >= text.size()) return false;
  *tag = text.substr(0, at);
  char* end = nullptr;
  unsigned long value = std::strtoul(text.c_str() + at + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *start = static_cast<uint32_t>(value);
  return true;
}

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

/// A fresh 128-bit hex idempotency token, chosen once per client run so
/// every retry of the same batch carries the same token.
std::string RandomToken() {
  std::random_device rd;
  char buf[33];
  uint64_t hi = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  uint64_t lo = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

int VerdictExit(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk:
      return 0;
    case Verdict::kError:
      return 1;
    case Verdict::kTimeout:
      return 3;
    case Verdict::kRejected:
      return 4;
    case Verdict::kCancelled:
    case Verdict::kShuttingDown:
      return 5;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string port_file;
  QueryRequest request;
  UpdateRequest update;
  bool status_probe = false;
  bool backup = false;
  std::string backup_dir;
  double timeout_ms = 5000;
  int repeat = 1;
  int retries = 0;
  double retry_base_ms = 10;
  double retry_cap_ms = 500;
  bool inject_reset = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--host") {
      if ((v = next()) == nullptr) return 2;
      host = v;
    } else if (arg == "--port") {
      if ((v = next()) == nullptr) return 2;
      port = std::atoi(v);
    } else if (arg == "--port-file") {
      if ((v = next()) == nullptr) return 2;
      port_file = v;
    } else if (arg == "--query") {
      if ((v = next()) == nullptr) return 2;
      request.query = v;
    } else if (arg == "--views") {
      if ((v = next()) == nullptr) return 2;
      request.views = SplitList(v);
    } else if (arg == "--scheme") {
      if ((v = next()) == nullptr) return 2;
      request.scheme = v;
    } else if (arg == "--algo") {
      if ((v = next()) == nullptr) return 2;
      request.algorithm = v;
    } else if (arg == "--tenant") {
      if ((v = next()) == nullptr) return 2;
      request.tenant = v;
    } else if (arg == "--deadline-ms") {
      if ((v = next()) == nullptr) return 2;
      request.deadline_ms = std::atof(v);
    } else if (arg == "--timeout-ms") {
      if ((v = next()) == nullptr) return 2;
      timeout_ms = std::atof(v);
    } else if (arg == "--repeat") {
      if ((v = next()) == nullptr) return 2;
      repeat = std::atoi(v);
    } else if (arg == "--retry") {
      if ((v = next()) == nullptr) return 2;
      retries = std::atoi(v);
    } else if (arg == "--retry-base-ms") {
      if ((v = next()) == nullptr) return 2;
      retry_base_ms = std::atof(v);
    } else if (arg == "--retry-cap-ms") {
      if ((v = next()) == nullptr) return 2;
      retry_cap_ms = std::atof(v);
    } else if (arg == "--insert" || arg == "--delete") {
      bool insert = arg == "--insert";
      if ((v = next()) == nullptr) return 2;
      UpdateRequest::Op op;
      op.kind = insert ? 0 : 1;
      if (!ParseCoord(v, &op.target_tag, &op.target_start)) {
        std::fprintf(stderr, "bad coordinates '%s' (want TAG@START)\n", v);
        return 2;
      }
      update.ops.push_back(std::move(op));
    } else if (arg == "--after" || arg == "--fragment") {
      if ((v = next()) == nullptr) return 2;
      if (update.ops.empty() || update.ops.back().kind != 0) {
        std::fprintf(stderr, "%s must follow --insert\n", arg.c_str());
        return 2;
      }
      if (arg == "--fragment") {
        update.ops.back().fragment = v;
      } else if (!ParseCoord(v, &update.ops.back().after_tag,
                             &update.ops.back().after_start)) {
        std::fprintf(stderr, "bad coordinates '%s' (want TAG@START)\n", v);
        return 2;
      }
    } else if (arg == "--status") {
      status_probe = true;
    } else if (arg == "--backup") {
      if ((v = next()) == nullptr) return 2;
      backup = true;
      backup_dir = v;
    } else if (arg == "--token") {
      if ((v = next()) == nullptr) return 2;
      update.token = v;
    } else if (arg == "--inject-reset") {
      inject_reset = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "r");
    if (f == nullptr || std::fscanf(f, "%d", &port) != 1) {
      std::fprintf(stderr, "cannot read port from %s\n", port_file.c_str());
      if (f != nullptr) std::fclose(f);
      return 2;
    }
    std::fclose(f);
  }
  if (port <= 0 || (!status_probe && !backup && request.query.empty() &&
                    update.ops.empty())) {
    Usage(argv[0]);
    return 2;
  }
  for (const UpdateRequest::Op& op : update.ops) {
    if (op.kind == 0 && op.fragment.empty()) {
      std::fprintf(stderr, "--insert needs a --fragment\n");
      return 2;
    }
  }

  Client client;
  client.set_deadline_ms(timeout_ms);
  viewjoin::util::Status connected =
      client.Connect(host, static_cast<uint16_t>(port), timeout_ms);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n", connected.ToString().c_str());
    return 2;
  }

  if (inject_reset) {
    // First send attempt from this process becomes an abortive close: the
    // server sees a mid-request RST from a vanished client.
    viewjoin::util::SocketFaultInjector::Global().ArmSendFault(
        viewjoin::util::SocketFault::kReset, /*nth=*/1, /*count=*/1,
        viewjoin::util::SocketEnd::kClient);
  }

  if (status_probe) {
    viewjoin::util::StatusOr<StatusResponse> status = client.GetStatus();
    if (!status.ok()) {
      std::fprintf(stderr, "status: %s\n", status.status().ToString().c_str());
      return 2;
    }
    std::printf(
        "healthy=%d ready=%d draining=%d in_flight=%llu queued=%llu\n"
        "accepted=%llu served=%llu rejected_quota=%llu rejected_shed=%llu "
        "rejected_draining=%llu\nread_timeouts=%llu frame_errors=%llu "
        "views_cached=%llu\nbackups_completed=%llu backups_failed=%llu "
        "update_dedup_hits=%llu resource_exhausted=%llu\n",
        status->healthy ? 1 : 0, status->ready ? 1 : 0,
        status->draining ? 1 : 0,
        static_cast<unsigned long long>(status->in_flight),
        static_cast<unsigned long long>(status->queued_connections),
        static_cast<unsigned long long>(status->connections_accepted),
        static_cast<unsigned long long>(status->queries_served),
        static_cast<unsigned long long>(status->rejected_quota),
        static_cast<unsigned long long>(status->rejected_shed),
        static_cast<unsigned long long>(status->rejected_draining),
        static_cast<unsigned long long>(status->read_timeouts),
        static_cast<unsigned long long>(status->frame_errors),
        static_cast<unsigned long long>(status->views_cached),
        static_cast<unsigned long long>(status->backups_completed),
        static_cast<unsigned long long>(status->backups_failed),
        static_cast<unsigned long long>(status->update_dedup_hits),
        static_cast<unsigned long long>(status->resource_exhausted));
    if (!status->last_backup_error.empty()) {
      std::fprintf(stderr, "last_backup_error: %s\n",
                   status->last_backup_error.c_str());
    }
    return status->ready ? 0 : 1;
  }

  if (backup) {
    viewjoin::util::StatusOr<BackupResponse> done =
        client.TriggerBackup(backup_dir);
    if (!done.ok()) {
      std::fprintf(stderr, "backup: %s\n", done.status().ToString().c_str());
      return 2;
    }
    std::printf("verdict=%s directory=%s epoch=%llu pages=%llu bytes=%llu "
                "server_ms=%.3f\n",
                viewjoin::server::VerdictName(done->verdict),
                done->directory.c_str(),
                static_cast<unsigned long long>(done->epoch),
                static_cast<unsigned long long>(done->view_pages),
                static_cast<unsigned long long>(done->bytes_copied),
                done->server_ms);
    if (!done->error.empty()) {
      std::fprintf(stderr, "error: %s\n", done->error.c_str());
    }
    return VerdictExit(done->verdict);
  }

  const uint64_t retry_seed = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  // A refused attempt may also lose its connection (the server retires
  // keep-alive sockets fast during drain); each retry reconnects if needed.
  auto reconnect = [&]() -> bool {
    if (client.connected()) return true;
    return client.Connect(host, static_cast<uint16_t>(port), timeout_ms).ok();
  };
  auto wait_and_retry = [&](RefusalRetryPolicy* policy, Verdict verdict,
                            double retry_after_ms) -> bool {
    double delay = policy->NextDelayMs(verdict, retry_after_ms);
    if (delay < 0) return false;
    std::fprintf(stderr, "refused (%s); retrying in %.1f ms (%d left)\n",
                 viewjoin::server::VerdictName(verdict), delay,
                 policy->remaining());
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(delay * 1000)));
    return true;
  };

  if (!update.ops.empty()) {
    update.tenant = request.tenant;
    // The idempotency token is fixed BEFORE the first attempt: every retry
    // below re-sends the identical token, so a batch whose response was
    // lost in flight is deduplicated server-side instead of re-applied.
    if (update.token.empty()) update.token = RandomToken();
    RefusalRetryPolicy policy(retries, retry_base_ms, retry_cap_ms,
                              retry_seed);
    for (;;) {
      if (!reconnect()) {
        std::fprintf(stderr, "reconnect failed\n");
        return 2;
      }
      viewjoin::util::StatusOr<UpdateResponse> response =
          client.Update(update);
      if (!response.ok()) {
        std::fprintf(stderr, "update: %s\n",
                     response.status().ToString().c_str());
        return 2;
      }
      if (wait_and_retry(&policy, response->verdict,
                         response->retry_after_ms)) {
        continue;
      }
      std::printf("verdict=%s applied=%llu epoch=%llu delta=%llu rebuilt=%llu "
                  "server_ms=%.3f%s\n",
                  viewjoin::server::VerdictName(response->verdict),
                  static_cast<unsigned long long>(response->applied),
                  static_cast<unsigned long long>(response->txn_epoch),
                  static_cast<unsigned long long>(response->delta_maintained),
                  static_cast<unsigned long long>(response->fully_rebuilt),
                  response->server_ms,
                  response->relabeled ? " relabeled" : "");
      if (!response->error.empty()) {
        std::fprintf(stderr, "error: %s\n", response->error.c_str());
      }
      for (const std::string& reason : response->failed) {
        std::fprintf(stderr, "failed: %s\n", reason.c_str());
      }
      return VerdictExit(response->verdict);
    }
  }

  int exit_code = 0;
  for (int n = 0; n < repeat; ++n) {
    RefusalRetryPolicy policy(retries, retry_base_ms, retry_cap_ms,
                              retry_seed + static_cast<uint64_t>(n));
    viewjoin::util::StatusOr<QueryResponse> response = client.Query(request);
    while (response.ok() &&
           wait_and_retry(&policy, response->verdict,
                          response->retry_after_ms)) {
      if (!reconnect()) {
        std::fprintf(stderr, "reconnect failed\n");
        return 2;
      }
      response = client.Query(request);
    }
    if (!response.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   response.status().ToString().c_str());
      return 2;
    }
    std::printf("verdict=%s matches=%llu hash=%016llx server_ms=%.3f "
                "attempts=%u%s\n",
                viewjoin::server::VerdictName(response->verdict),
                static_cast<unsigned long long>(response->match_count),
                static_cast<unsigned long long>(response->result_hash),
                response->server_ms, response->attempts,
                response->degraded ? " degraded" : "");
    if (!response->error.empty()) {
      std::fprintf(stderr, "error: %s\n", response->error.c_str());
    }
    if (response->verdict == Verdict::kRejected) {
      std::fprintf(stderr, "retry after %.1f ms\n", response->retry_after_ms);
    }
    exit_code = VerdictExit(response->verdict);
    if (exit_code != 0) break;
  }
  return exit_code;
}
