// viewjoin_cli — command-line front end for the ViewJoin engine.
//
// Evaluate a tree pattern query over an XML document (from a file or a
// built-in generator) using materialized views, with any algorithm ×
// storage-scheme combination, and inspect the plan and runtime counters.
//
// Examples:
//   viewjoin_cli --xmark 1.0 --query '//people//person//name'
//                --views '//people//person;//name'
//   viewjoin_cli --xml data.xml --query '//a//b[//c]//d'
//                --candidates '//a//b;//c;//d;//b//c' --algo VJ --scheme LE_p
//   viewjoin_cli --nasa 400 --query '//field//footnote//para'
//                --views '//field//footnote;//para' --explain --limit 5

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "algo/query_binding.h"
#include "core/engine.h"
#include "core/segmented_query.h"
#include "data/nasa_generator.h"
#include "data/xmark_generator.h"
#include "tpq/pattern.h"
#include "util/table_printer.h"
#include "view/selection.h"
#include "xml/parser.h"
#include "xml/statistics.h"

namespace {

using viewjoin::core::Algorithm;
using viewjoin::core::Engine;
using viewjoin::core::RunOptions;
using viewjoin::core::RunResult;
using viewjoin::storage::MaterializedView;
using viewjoin::storage::Scheme;
using viewjoin::tpq::TreePattern;

struct Options {
  std::string xml_path;
  double xmark_scale = 0;
  int64_t nasa_datasets = 0;
  std::string query;
  std::vector<std::string> views;
  std::vector<std::string> candidates;
  Algorithm algorithm = Algorithm::kViewJoin;
  Scheme scheme = Scheme::kLinkedElement;
  bool scheme_set = false;
  bool disk_mode = false;
  /// Base-document residency: "", "memory", or "disk". Empty defers to the
  /// VIEWJOIN_DOC_MODE environment knob (and its siblings).
  std::string doc_mode;
  int64_t readahead = -1;  // -1: defer to VIEWJOIN_READAHEAD_PAGES
  bool explain = false;
  bool scrub = false;
  bool estimate = false;
  bool count_only = false;
  bool store_result = false;
  int64_t limit = 20;
  double deadline_ms = 0;
  uint64_t memory_budget = 0;
  uint64_t disk_budget = 0;
};

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s (--xml FILE | --xmark SCALE | --nasa DATASETS)\n"
      "          --query XPATH (--views 'V1;V2;..' | --candidates 'V1;..')\n"
      "          [--algo TS|VJ|IJ|auto] [--scheme E|T|LE|LE_p] [--disk]\n"
      "          [--doc-mode memory|disk] [--readahead PAGES]\n"
      "          [--explain] [--count-only] [--store-result] [--limit N]\n"
      "          [--deadline-ms MS] [--memory-budget BYTES]\n"
      "          [--disk-budget BYTES] [--scrub]\n"
      "\n"
      "  --views       covering view set, materialized as given\n"
      "  --candidates  candidate pool; the cost-based greedy heuristic\n"
      "                (paper Section V) picks the covering subset\n"
      "  --algo auto   let the planner pick algorithm and scheme per query\n"
      "  --doc-mode    where the base document's tag lists live: 'memory'\n"
      "                (in-RAM arena, the default) or 'disk' (paged\n"
      "                DocumentStore; scans go through the buffer pool).\n"
      "                Overrides the VIEWJOIN_DOC_MODE environment knob.\n"
      "  --readahead   async read-ahead depth in pages for cold list scans\n"
      "                (0 disables; overrides VIEWJOIN_READAHEAD_PAGES)\n"
      "  --explain     print the physical plan with per-step runtime stats\n"
      "                (plus the view-segmented query Q' before the run)\n"
      "  --estimate    drive view selection from single-pass statistics\n"
      "                instead of exact list lengths\n"
      "  --store-result  store the answer back as a materialized view\n"
      "  --deadline-ms   abort the query after MS milliseconds (exit 3)\n"
      "  --memory-budget cap buffered intermediates; overruns degrade to\n"
      "                  disk spilling, then fail with RESOURCE_EXHAUSTED\n"
      "  --disk-budget   cap spilled intermediates in bytes\n"
      "  --scrub         run the background integrity scrubber while the\n"
      "                  query executes (counters appear under --explain)\n",
      prog);
}

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--xml") {
      const char* v = next();
      if (v == nullptr) return false;
      options->xml_path = v;
    } else if (arg == "--xmark") {
      const char* v = next();
      if (v == nullptr) return false;
      options->xmark_scale = std::atof(v);
    } else if (arg == "--nasa") {
      const char* v = next();
      if (v == nullptr) return false;
      options->nasa_datasets = std::atol(v);
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return false;
      options->query = v;
    } else if (arg == "--views") {
      const char* v = next();
      if (v == nullptr) return false;
      options->views = SplitList(v);
    } else if (arg == "--candidates") {
      const char* v = next();
      if (v == nullptr) return false;
      options->candidates = SplitList(v);
    } else if (arg == "--algo") {
      const char* v = next();
      if (v == nullptr) return false;
      std::optional<Algorithm> parsed = viewjoin::plan::ParseAlgorithm(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "unknown algorithm '%s' (expected TS, VJ, IJ or "
                     "auto)\n", v);
        return false;
      }
      options->algorithm = *parsed;
      // InterJoin only runs over tuple-scheme views; default the scheme
      // accordingly unless the user picked one explicitly.
      if (*parsed == Algorithm::kInterJoin && !options->scheme_set) {
        options->scheme = Scheme::kTuple;
      }
    } else if (arg == "--scheme") {
      const char* v = next();
      if (v == nullptr) return false;
      std::optional<Scheme> parsed = viewjoin::storage::ParseScheme(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "unknown scheme '%s' (expected E, T, LE or "
                     "LE_p)\n", v);
        return false;
      }
      options->scheme = *parsed;
      options->scheme_set = true;
    } else if (arg == "--disk") {
      options->disk_mode = true;
    } else if (arg == "--doc-mode") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "memory") != 0 && std::strcmp(v, "disk") != 0) {
        std::fprintf(stderr,
                     "unknown doc mode '%s' (expected memory or disk)\n", v);
        return false;
      }
      options->doc_mode = v;
    } else if (arg == "--readahead") {
      const char* v = next();
      if (v == nullptr) return false;
      options->readahead = std::atol(v);
      if (options->readahead < 0) {
        std::fprintf(stderr, "--readahead expects a page count >= 0\n");
        return false;
      }
    } else if (arg == "--scrub") {
      options->scrub = true;
    } else if (arg == "--estimate") {
      options->estimate = true;
    } else if (arg == "--explain") {
      options->explain = true;
    } else if (arg == "--count-only") {
      options->count_only = true;
    } else if (arg == "--store-result") {
      options->store_result = true;
    } else if (arg == "--limit") {
      const char* v = next();
      if (v == nullptr) return false;
      options->limit = std::atol(v);
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      options->deadline_ms = std::atof(v);
    } else if (arg == "--memory-budget") {
      const char* v = next();
      if (v == nullptr) return false;
      options->memory_budget = std::strtoull(v, nullptr, 10);
    } else if (arg == "--disk-budget") {
      const char* v = next();
      if (v == nullptr) return false;
      options->disk_budget = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  if (options->query.empty()) {
    std::fprintf(stderr, "--query is required\n");
    return false;
  }
  bool has_source = !options->xml_path.empty() || options->xmark_scale > 0 ||
                    options->nasa_datasets > 0;
  if (!has_source) {
    std::fprintf(stderr, "one of --xml / --xmark / --nasa is required\n");
    return false;
  }
  if (options->views.empty() && options->candidates.empty()) {
    std::fprintf(stderr, "--views or --candidates is required\n");
    return false;
  }
  return true;
}

/// Prints the first `limit` matches, one per line.
class PrintingSink : public viewjoin::tpq::MatchSink {
 public:
  PrintingSink(const viewjoin::xml::Document& doc, const TreePattern& query,
               int64_t limit)
      : doc_(doc), query_(query), limit_(limit) {}

  void OnMatch(const viewjoin::tpq::Match& match) override {
    if (printed_ >= limit_) return;
    ++printed_;
    std::printf("match %lld:", static_cast<long long>(printed_));
    for (size_t q = 0; q < match.size(); ++q) {
      const auto& label = doc_.NodeLabel(match[q]);
      std::printf(" %s[%u..%u]", query_.node(static_cast<int>(q)).tag.c_str(),
                  label.start, label.end);
    }
    std::printf("\n");
  }

 private:
  const viewjoin::xml::Document& doc_;
  const TreePattern& query_;
  int64_t limit_;
  int64_t printed_ = 0;
};

void Explain(const viewjoin::xml::Document& doc, const TreePattern& query,
             const std::vector<const MaterializedView*>& views) {
  std::string error;
  auto binding =
      viewjoin::algo::QueryBinding::Bind(doc, query, views, &error);
  if (!binding.has_value()) {
    std::printf("explain unavailable: %s\n", error.c_str());
    return;
  }
  viewjoin::core::SegmentedQuery sq =
      viewjoin::core::BuildSegmentedQuery(*binding);
  std::printf("view-segmented query Q': %s\n", sq.ToString(query).c_str());
  std::printf("inter-view edges (#Cond): %d\n", sq.inter_view_edges);
  std::printf("query nodes dropped from Q' (pointer extension): %zu\n",
              sq.removed.size());
  viewjoin::util::TablePrinter table(
      {"query node", "view", "scheme", "|L_q|", "e_q"});
  for (size_t q = 0; q < query.size(); ++q) {
    const auto& nb = binding->binding(static_cast<int>(q));
    const MaterializedView* view = views[static_cast<size_t>(nb.view)];
    table.AddRow({query.node(static_cast<int>(q)).tag,
                  view->pattern().ToString(), SchemeName(view->scheme()),
                  std::to_string(view->ListLength(nb.view_node)),
                  std::to_string(binding->InterViewEdgeCount(
                      static_cast<int>(q)))});
  }
  table.Print();
}

int Run(const Options& options) {
  // Load or generate the document.
  viewjoin::xml::Document doc;
  if (!options.xml_path.empty()) {
    viewjoin::xml::ParseResult parsed =
        viewjoin::xml::ParseDocumentFile(options.xml_path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "cannot parse %s: %s (offset %zu)\n",
                   options.xml_path.c_str(), parsed.error.c_str(),
                   parsed.error_offset);
      return 1;
    }
    doc = std::move(*parsed.document);
  } else if (options.xmark_scale > 0) {
    doc = viewjoin::data::GenerateXmark({.scale = options.xmark_scale});
  } else {
    doc = viewjoin::data::GenerateNasa({.datasets = options.nasa_datasets});
  }
  std::printf("document: %zu elements\n", doc.NodeCount());

  std::optional<TreePattern> query;
  {
    std::string error;
    query = TreePattern::Parse(options.query, &error);
    if (!query.has_value()) {
      std::fprintf(stderr, "bad query: %s\n", error.c_str());
      return 1;
    }
  }

  viewjoin::core::EngineOptions engine_options;
  engine_options.scrub = options.scrub;
  // Environment knobs first (malformed values are hard errors, not silent
  // defaults), then explicit flags override them.
  viewjoin::util::Status env = viewjoin::core::ApplyEnvOptions(&engine_options);
  if (!env.ok()) {
    std::fprintf(stderr, "%s\n", env.ToString().c_str());
    return 2;
  }
  if (!options.doc_mode.empty()) {
    engine_options.doc_mode = options.doc_mode == "disk"
                                  ? viewjoin::core::DocMode::kDisk
                                  : viewjoin::core::DocMode::kMemory;
  }
  if (options.readahead >= 0) {
    engine_options.readahead_pages = static_cast<size_t>(options.readahead);
  }
  Engine engine(&doc, "/tmp/viewjoin_cli.db", engine_options);
  if (engine_options.doc_mode == viewjoin::core::DocMode::kDisk) {
    if (engine.doc_store() != nullptr) {
      std::printf("doc mode: disk (%zu tag lists paged, read-ahead %zu)\n",
                  engine.doc_store()->TagCount(),
                  engine_options.readahead_pages);
    } else {
      std::fprintf(stderr, "doc store unavailable, running in memory: %s\n",
                   engine.doc_store_status().ToString().c_str());
    }
  }

  // Resolve the view set: explicit or via cost-based selection.
  std::vector<const MaterializedView*> views;
  // Under --algo auto with no forced scheme, materialize every scheme for
  // each view so the planner has real twins to choose between.
  const bool all_schemes =
      options.algorithm == Algorithm::kAuto && !options.scheme_set;
  if (!options.views.empty()) {
    for (const std::string& v : options.views) {
      auto added = engine.TryAddView(v, options.scheme);
      if (!added.ok()) {
        std::fprintf(stderr, "bad view '%s': %s\n", v.c_str(),
                     added.status().ToString().c_str());
        return 1;
      }
      views.push_back(*added);
      if (all_schemes) {
        for (Scheme twin : {Scheme::kElement, Scheme::kTuple,
                            Scheme::kLinkedElementPartial}) {
          (void)engine.TryAddView(v, twin);
        }
      }
    }
  } else {
    std::vector<TreePattern> candidates;
    for (const std::string& c : options.candidates) {
      std::string error;
      auto pattern = TreePattern::Parse(c, &error);
      if (!pattern.has_value()) {
        std::fprintf(stderr, "bad candidate view '%s': %s\n", c.c_str(),
                     error.c_str());
        return 1;
      }
      candidates.push_back(*pattern);
    }
    viewjoin::view::SelectionOptions sel_options;
    viewjoin::xml::DocumentStatistics stats;
    if (options.estimate) {
      stats = viewjoin::xml::DocumentStatistics::Collect(doc);
      sel_options.statistics = &stats;
    }
    viewjoin::view::SelectionResult selection = viewjoin::view::SelectViews(
        doc, *query, candidates, sel_options);
    if (!selection.covers) {
      std::fprintf(stderr, "candidates cannot cover the query\n");
      return 1;
    }
    std::printf("selected views:");
    for (size_t index : selection.selected) {
      std::printf(" %s", candidates[index].ToString().c_str());
      views.push_back(engine.AddView(candidates[index], options.scheme));
    }
    std::printf("\n");
  }

  if (options.explain && options.scheme != Scheme::kTuple) {
    Explain(doc, *query, views);
  }

  if (options.scrub) {
    // One-shot process: the 50 ms background cadence would rarely fire
    // before a fast query returns, so force one synchronous full pass over
    // the freshly materialized views up front. The background thread keeps
    // scanning while the query runs.
    viewjoin::storage::Scrubber* scrubber = engine.scrubber();
    const uint64_t passes = scrubber->stats().full_passes;
    while (scrubber->stats().full_passes == passes) {
      scrubber->Step();
    }
  }

  RunOptions run;
  run.algorithm = options.algorithm;
  run.output_mode = options.disk_mode ? viewjoin::algo::OutputMode::kDisk
                                      : viewjoin::algo::OutputMode::kMemory;
  run.deadline_ms = options.deadline_ms;
  run.memory_budget_bytes = options.memory_budget;
  run.disk_budget_bytes = options.disk_budget;
  PrintingSink printer(doc, *query, options.count_only ? 0 : options.limit);
  RunResult result;
  if (options.store_result) {
    const MaterializedView* stored = nullptr;
    result = engine.ExecuteToView(*query, views, Scheme::kLinkedElement,
                                  &stored, run);
    if (result.ok) {
      std::printf("stored result view: %s (%llu bytes, %llu pointers)\n",
                  stored->pattern().ToString().c_str(),
                  static_cast<unsigned long long>(stored->SizeBytes()),
                  static_cast<unsigned long long>(stored->PointerCount()));
    }
  } else {
    result = engine.Execute(*query, views, run, &printer);
  }
  if (!result.ok) {
    std::fprintf(stderr, "execution failed: %s\n", result.error.c_str());
    // Governance stops exit 3 so scripts can tell "over budget / too slow"
    // from hard failures.
    return (result.timed_out || result.cancelled) ? 3 : 1;
  }
  if (result.degraded) {
    std::printf("note: degraded run (budget overrun spilled to disk or a "
                "view was rebuilt)\n");
  }
  if (options.explain) {
    std::printf("%s", result.plan.ToString().c_str());
    if (result.io.prefetch_issued > 0 || result.io.prefetch_hits > 0 ||
        result.io.prefetch_wasted > 0) {
      std::printf(
          "read-ahead: %llu issued, %llu hits, %llu wasted (%.0f%% hit rate)\n",
          static_cast<unsigned long long>(result.io.prefetch_issued),
          static_cast<unsigned long long>(result.io.prefetch_hits),
          static_cast<unsigned long long>(result.io.prefetch_wasted),
          result.io.prefetch_issued > 0
              ? 100.0 * static_cast<double>(result.io.prefetch_hits) /
                    static_cast<double>(result.io.prefetch_issued)
              : 0.0);
    }
    if (options.scrub || result.scrub.pages_scanned > 0) {
      std::printf(
          "scrub: %llu pages scanned, %llu corrupt, %llu views quarantined, "
          "%llu healed, %llu heal failures, %llu full passes\n",
          static_cast<unsigned long long>(result.scrub.pages_scanned),
          static_cast<unsigned long long>(result.scrub.corrupt_pages),
          static_cast<unsigned long long>(result.scrub.views_quarantined),
          static_cast<unsigned long long>(result.scrub.views_healed),
          static_cast<unsigned long long>(result.scrub.heal_failures),
          static_cast<unsigned long long>(result.scrub.full_passes));
    }
  }
  std::printf(
      "%llu matches in %.3f ms (I/O %.3f ms, %llu pages read, "
      "%llu entries scanned, %llu skipped)\n",
      static_cast<unsigned long long>(result.match_count), result.total_ms,
      result.io_ms, static_cast<unsigned long long>(result.io.pages_read),
      static_cast<unsigned long long>(result.stats.entries_scanned),
      static_cast<unsigned long long>(result.stats.entries_skipped));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    Usage(argv[0]);
    return 2;
  }
  return Run(options);
}
