// vj_backup: create, verify, and restore ViewJoin backup images.
//
//   vj_backup create  <store>      <image-dir>   offline hot-backup a store
//   vj_backup verify  <image-dir>                full image verification
//   vj_backup restore <image-dir>  <dest-store>  verified copy-out + open
//
// An image is the self-describing directory documented in
// src/storage/backup.h: the copied pager file(s), a checkpoint-format
// manifest pinned to one catalog epoch, and a self-checksummed backup.meta
// written last. `create` opens the store the same way the engine does, so it
// must not race a live server — for a hot backup of a serving process, send
// the server SIGUSR2 or `viewjoin_client --backup DIR` instead; the image
// format is identical and this tool verifies/restores either.
//
// `restore` refuses to overwrite existing destination files, verifies the
// whole image first, and proves the result by a clean ViewCatalog::Open.
//
// Env knobs (strict, util/env.h): VIEWJOIN_BACKUP_RATE_BYTES paces create
// and restore copies in bytes/sec (0 = unthrottled); --rate-bytes overrides.
//
// --json replaces the human-readable output with one JSON object (the
// BackupReport) on stdout; exit codes are unchanged:
//   0  success (image created / verified clean / restored)
//   1  corruption — the image (or the source store) fails verification
//   2  usage error, or a file could not be read/written (I/O, missing)
//   3  destination conflict: the image or restore target already exists
//   4  disk full (ENOSPC, real or injected) — no partial image left behind

#include <cstdio>
#include <cstring>
#include <string>

#include "storage/backup.h"
#include "util/env.h"

namespace {

using viewjoin::storage::BackupOptions;
using viewjoin::storage::BackupReport;
using viewjoin::storage::ViewCatalog;
using viewjoin::util::StatusCode;
using viewjoin::util::StatusOr;

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--json] [--quiet] [--rate-bytes N]\n"
               "          create  <store> <image-dir>\n"
               "        | verify  <image-dir>\n"
               "        | restore <image-dir> <dest-store>\n",
               prog);
  return 2;
}

/// Status code → exit code (documented in the header comment).
int ExitFor(const viewjoin::util::Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kCorruption:
      return 1;
    case StatusCode::kInvalidArgument:
      return 3;
    case StatusCode::kResourceExhausted:
      return 4;
    default:  // kIoError, kNotFound
      return 2;
  }
}

int Report(const StatusOr<BackupReport>& result, const char* verb, bool json,
           bool quiet) {
  if (!result.ok()) {
    if (json) {
      std::printf("{\"ok\": false, \"error\": \"%s\"}\n",
                  result.status().ToString().c_str());
    } else if (!quiet) {
      std::fprintf(stderr, "%s failed: %s\n", verb,
                   result.status().ToString().c_str());
    }
    return ExitFor(result.status());
  }
  if (json) {
    std::printf("{\"ok\": true, \"report\": %s}\n",
                result->ToJson().c_str());
  } else if (!quiet) {
    std::printf("%s ok: %s — epoch %llu, %u view page(s), %llu byte(s), "
                "%zu file(s)%s\n",
                verb, result->directory.c_str(),
                static_cast<unsigned long long>(result->epoch),
                result->view_page_count,
                static_cast<unsigned long long>(result->bytes_copied),
                result->files.size(),
                result->has_doc_store ? ", doc store" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quiet = false;
  int64_t rate_bytes = -1;
  std::string command;
  std::string first;
  std::string second;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0 ||
               std::strcmp(argv[i], "-q") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--rate-bytes") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      rate_bytes = std::atoll(argv[++i]);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    } else if (command.empty()) {
      command = argv[i];
    } else if (first.empty()) {
      first = argv[i];
    } else if (second.empty()) {
      second = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }

  if (rate_bytes < 0) {
    StatusOr<int64_t> env_rate = viewjoin::util::ParseNonNegativeIntEnv(
        "VIEWJOIN_BACKUP_RATE_BYTES", 0);
    if (!env_rate.ok()) {
      std::fprintf(stderr, "%s\n", env_rate.status().ToString().c_str());
      return 2;
    }
    rate_bytes = *env_rate;
  }
  const uint64_t rate = static_cast<uint64_t>(rate_bytes);

  if (command == "create") {
    if (first.empty() || second.empty()) return Usage(argv[0]);
    StatusOr<std::unique_ptr<ViewCatalog>> catalog =
        ViewCatalog::Open(first, /*pool_pages=*/64);
    if (!catalog.ok()) {
      if (json) {
        std::printf("{\"ok\": false, \"error\": \"%s\"}\n",
                    catalog.status().ToString().c_str());
      } else if (!quiet) {
        std::fprintf(stderr, "cannot open store %s: %s\n", first.c_str(),
                     catalog.status().ToString().c_str());
      }
      return ExitFor(catalog.status());
    }
    BackupOptions options;
    options.rate_bytes_per_sec = rate;
    options.doc_store_path = first + ".doc";
    StatusOr<BackupReport> result =
        viewjoin::storage::CreateBackup(**catalog, second, options);
    viewjoin::util::Status closed = (*catalog)->Close();
    if (result.ok() && !closed.ok()) result = closed;
    return Report(result, "create", json, quiet);
  }
  if (command == "verify") {
    if (first.empty() || !second.empty()) return Usage(argv[0]);
    return Report(viewjoin::storage::VerifyBackupImage(first), "verify", json,
                  quiet);
  }
  if (command == "restore") {
    if (first.empty() || second.empty()) return Usage(argv[0]);
    return Report(viewjoin::storage::RestoreBackup(first, second, rate),
                  "restore", json, quiet);
  }
  return Usage(argv[0]);
}
