// Reproduces Table II + Example 5.1: the cost-based view-selection study on
// the NASA dataset. Prints per-candidate sizes and c(v,Q) costs, the view
// sets picked by the cost-based (λ=1) and size-only heuristics, and the
// speedup of evaluating the query with the cost-based selection (the paper
// reports {v2,v5,v6} beating {v2,v3,v4,v5} by 1.93x).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "util/check.h"
#include "util/table_printer.h"
#include "view/selection.h"

namespace viewjoin::bench {
namespace {

std::string SetToString(const std::vector<size_t>& selected) {
  std::string out = "{";
  for (size_t i = 0; i < selected.size(); ++i) {
    if (i > 0) out += ", ";
    out += "v" + std::to_string(selected[i] + 1);
  }
  return out + "}";
}

void Main(int argc, char** argv) {
  int64_t nasa_datasets =
      static_cast<int64_t>(EnvScale("VIEWJOIN_NASA_DATASETS", 800));
  JsonReport report("table2_view_selection");
  report.ParseArgs(argc, argv);
  report.SetMeta("nasa_datasets", static_cast<uint64_t>(nasa_datasets));
  auto context = BenchContext::Nasa(nasa_datasets);
  std::printf("Table II / Example 5.1 reproduction: view selection for\n");
  std::printf("Q = %s\n\n", Table2Query().c_str());
  PrintBanner("NASA view selection", *context);

  tpq::TreePattern query = ParseQuery(Table2Query());
  std::vector<std::string> candidate_paths = Table2CandidateViews();
  std::vector<tpq::TreePattern> candidates;
  for (const std::string& path : candidate_paths) {
    candidates.push_back(ParseQuery(path));
  }

  view::SelectionOptions cost_options;  // λ = 1, the paper's setting
  view::SelectionResult cost_based =
      view::SelectViews(context->doc(), query, candidates, cost_options);
  view::SelectionOptions size_options;
  size_options.heuristic = view::SelectionHeuristic::kSizeOnly;
  view::SelectionResult size_only =
      view::SelectViews(context->doc(), query, candidates, size_options);

  util::TablePrinter table({"view", "pattern", "size (MB)", "c(v,Q)"});
  for (size_t i = 0; i < candidates.size(); ++i) {
    table.AddRow({"v" + std::to_string(i + 1), candidate_paths[i],
                  util::FormatDouble(static_cast<double>(cost_based.sizes[i]) *
                                         12.0 / (1024.0 * 1024.0),
                                     3),
                  std::isnan(cost_based.costs[i])
                      ? "n/a"
                      : util::FormatDouble(cost_based.costs[i], 0)});
  }
  table.Print();

  VJ_CHECK(cost_based.covers) << "cost-based selection failed to cover";
  VJ_CHECK(size_only.covers) << "size-only selection failed to cover";
  std::printf("\ncost-based (λ=1) selection : %s\n",
              SetToString(cost_based.selected).c_str());
  std::printf("size-only selection        : %s\n",
              SetToString(size_only.selected).c_str());

  // Evaluate the query with both selections (VJ+LE_p, the paper's best).
  Combo combo{core::Algorithm::kViewJoin,
              storage::Scheme::kLinkedElementPartial};
  auto pick = [&](const view::SelectionResult& sel) {
    std::vector<tpq::TreePattern> views;
    for (size_t i : sel.selected) views.push_back(candidates[i]);
    return context->Run(query, context->Views(views, combo.scheme), combo);
  };
  core::RunResult cost_run = pick(cost_based);
  core::RunResult size_run = pick(size_only);
  VJ_CHECK_EQ(cost_run.result_hash, size_run.result_hash);
  std::printf("\nVJ+LE_p with cost-based set : %8.2f ms  (%llu matches)\n",
              cost_run.total_ms,
              static_cast<unsigned long long>(cost_run.match_count));
  std::printf("VJ+LE_p with size-only set  : %8.2f ms\n", size_run.total_ms);
  std::printf("speedup of cost-based set   : %.2fx  (paper: 1.93x)\n",
              size_run.total_ms / cost_run.total_ms);
  report.AddRow()
      .Set("selection", "cost_based")
      .Set("views", SetToString(cost_based.selected))
      .Metrics(cost_run);
  report.AddRow()
      .Set("selection", "size_only")
      .Set("views", SetToString(size_only.selected))
      .Metrics(size_run);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
