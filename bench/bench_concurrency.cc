// Concurrent query serving: throughput of Engine::ExecuteBatch over the
// Fig. 5 path workloads as the worker count sweeps 1/2/4/8. Each batch runs
// the dataset's path queries (replicated a few times so every worker has
// work) against a deliberately small shared buffer pool, so the sharded
// pool's locking, pinning and eviction all run under real contention. Every
// batch result's match hash is cross-checked against a plain single-query
// Execute of the same query; a mismatch aborts the run.
//
// Simulated per-page read latency defaults to 150 us in *sleep* mode
// (VIEWJOIN_PAGE_READ_MICROS / VIEWJOIN_PAGE_READ_SLEEP, overridable from
// the environment): sleeping readers release the CPU, so concurrent queries
// overlap their simulated I/O the way parallel requests overlap on a real
// disk — which is what makes batch throughput scale even on a single core.
//
// `--json BENCH_concurrency.json` emits machine-readable rows (see
// bench/README.md for the schema). `--smoke` shrinks the datasets, replica
// count and thread sweep to a seconds-long run for CI: it validates the
// batch path end to end (results are still hash-checked) without producing
// publishable numbers.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "data/nasa_generator.h"
#include "data/xmark_generator.h"
#include "util/check.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace viewjoin::bench {
namespace {

constexpr int kThreadSweep[] = {1, 2, 4, 8};
constexpr int kSmokeThreadSweep[] = {1, 2};

struct PreparedQuery {
  std::string name;
  tpq::TreePattern pattern;
  std::vector<const storage::MaterializedView*> views;
  uint64_t expected_hash = 0;
  uint64_t expected_count = 0;
};

/// Materializes the covering views for every query and records the reference
/// answer from a plain (single-threaded) Execute.
std::vector<PreparedQuery> Prepare(core::Engine* engine,
                                   const std::vector<QuerySpec>& specs,
                                   const Combo& combo) {
  std::vector<PreparedQuery> prepared;
  std::map<std::string, const storage::MaterializedView*> cache;
  for (const QuerySpec& spec : specs) {
    PreparedQuery q;
    q.name = spec.name;
    q.pattern = ParseQuery(spec.xpath);
    for (const tpq::TreePattern& view : PairViews(q.pattern)) {
      std::string key = view.ToString();
      auto it = cache.find(key);
      if (it == cache.end()) {
        it = cache.emplace(key, engine->AddView(view, combo.scheme)).first;
      }
      q.views.push_back(it->second);
    }
    core::RunOptions run;
    run.algorithm = combo.algorithm;
    core::RunResult reference = engine->Execute(q.pattern, q.views, run);
    VJ_CHECK(reference.ok) << q.name << ": " << reference.error;
    q.expected_hash = reference.result_hash;
    q.expected_count = reference.match_count;
    prepared.push_back(std::move(q));
  }
  return prepared;
}

void RunDataset(const std::string& dataset, const xml::Document& doc,
                const std::vector<QuerySpec>& specs, const Combo& combo,
                int replicas, const std::vector<int>& thread_sweep,
                JsonReport* report) {
  // A small pool keeps replicated queries from serving each other entirely
  // out of cache: eviction pressure forces real (simulated) I/O per query,
  // which is the workload a concurrent server actually faces.
  core::EngineOptions options;
  options.pool_pages = 64;
  std::string path = "/tmp/viewjoin_bench_conc_" + dataset + ".db";
  core::Engine engine(&doc, path, options);
  std::vector<PreparedQuery> prepared = Prepare(&engine, specs, combo);

  std::vector<core::BatchQuery> batch;
  for (int r = 0; r < replicas; ++r) {
    for (const PreparedQuery& q : prepared) {
      batch.push_back({&q.pattern, q.views});
    }
  }

  std::printf("-- %s path queries, %s, batch of %zu (%zu queries x %d) --\n",
              dataset.c_str(), combo.Label().c_str(), batch.size(),
              prepared.size(), replicas);
  util::TablePrinter table({"threads", "wall (ms)", "throughput (q/s)",
                            "speedup", "pages read", "degraded"});
  double single_thread_ms = 0;
  for (int threads : thread_sweep) {
    core::BatchOptions batch_options;
    batch_options.threads = static_cast<size_t>(threads);
    batch_options.run.algorithm = combo.algorithm;
    batch_options.run.cold_cache = true;  // whole batch starts cold
    util::Timer timer;
    std::vector<core::RunResult> results =
        engine.ExecuteBatch(batch, batch_options);
    double wall_ms = timer.ElapsedMillis();

    uint64_t pages_read = 0;
    int degraded = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      const PreparedQuery& q = prepared[i % prepared.size()];
      VJ_CHECK(results[i].ok) << q.name << ": " << results[i].error;
      VJ_CHECK(results[i].result_hash == q.expected_hash &&
               results[i].match_count == q.expected_count)
          << q.name << " diverged from single-query Execute at " << threads
          << " threads: " << results[i].match_count << " matches vs "
          << q.expected_count;
      pages_read += results[i].io.pages_read;
      degraded += results[i].degraded ? 1 : 0;
    }

    if (threads == 1) single_thread_ms = wall_ms;
    double qps = wall_ms > 0 ? 1000.0 * batch.size() / wall_ms : 0;
    double speedup = wall_ms > 0 ? single_thread_ms / wall_ms : 0;
    table.AddRow({std::to_string(threads), util::FormatDouble(wall_ms, 1),
                  util::FormatDouble(qps, 1), util::FormatDouble(speedup, 2),
                  std::to_string(pages_read), std::to_string(degraded)});
    report->AddRow()
        .Set("dataset", dataset)
        .Set("combo", combo.Label())
        .Set("threads", threads)
        .Set("batch_size", static_cast<uint64_t>(batch.size()))
        .Set("wall_ms", wall_ms)
        .Set("throughput_qps", qps)
        .Set("speedup_vs_single", speedup)
        .Set("pages_read", pages_read)
        .Set("degraded_queries", degraded);
  }
  table.Print();
  std::printf("\n");
}

void Main(int argc, char** argv) {
  // Default to sleep-mode simulated read latency so concurrent queries
  // overlap their I/O; an explicit environment setting wins (overwrite=0).
  setenv("VIEWJOIN_PAGE_READ_MICROS", "150", 0);
  setenv("VIEWJOIN_PAGE_READ_SLEEP", "1", 0);

  // Strip --smoke before the report parser sees argv (it rejects flags it
  // does not know).
  bool smoke = false;
  std::vector<char*> args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  double xmark_scale = EnvScale("VIEWJOIN_XMARK_SCALE", smoke ? 0.1 : 2.0);
  int64_t nasa_datasets = static_cast<int64_t>(
      EnvScale("VIEWJOIN_NASA_DATASETS", smoke ? 60 : 800));
  int replicas =
      static_cast<int>(EnvScale("VIEWJOIN_CONC_REPLICAS", smoke ? 2 : 3));
  std::vector<int> thread_sweep(std::begin(kThreadSweep),
                                std::end(kThreadSweep));
  if (smoke) {
    thread_sweep.assign(std::begin(kSmokeThreadSweep),
                        std::end(kSmokeThreadSweep));
  }

  JsonReport report("concurrency");
  report.ParseArgs(static_cast<int>(args.size()), args.data());
  report.SetMeta("smoke", static_cast<uint64_t>(smoke ? 1 : 0));
  report.SetMeta("xmark_scale", xmark_scale);
  report.SetMeta("nasa_datasets", static_cast<uint64_t>(nasa_datasets));
  report.SetMeta("replicas", replicas);
  report.SetMeta("page_read_micros",
                 std::string(std::getenv("VIEWJOIN_PAGE_READ_MICROS")));
  report.SetMeta("pool_pages", static_cast<uint64_t>(64));

  std::printf("Concurrent serving bench: ExecuteBatch over Fig. 5 paths\n");
  std::printf("(simulated page read latency %s us, sleep mode %s)\n\n",
              std::getenv("VIEWJOIN_PAGE_READ_MICROS"),
              std::getenv("VIEWJOIN_PAGE_READ_SLEEP"));

  data::XmarkOptions xmark_options;
  xmark_options.scale = xmark_scale;
  xmark_options.seed = 42;
  xml::Document xmark = data::GenerateXmark(xmark_options);
  data::NasaOptions nasa_options;
  nasa_options.datasets = nasa_datasets;
  nasa_options.seed = 7;
  xml::Document nasa = data::GenerateNasa(nasa_options);

  Combo vj{core::Algorithm::kViewJoin, storage::Scheme::kLinkedElement};
  Combo ts{core::Algorithm::kTwigStack, storage::Scheme::kLinkedElement};
  RunDataset("xmark", xmark, XmarkPathQueries(), vj, replicas, thread_sweep,
             &report);
  RunDataset("xmark", xmark, XmarkPathQueries(), ts, replicas, thread_sweep,
             &report);
  RunDataset("nasa", nasa, NasaPathQueries(), vj, replicas, thread_sweep,
             &report);
  RunDataset("nasa", nasa, NasaPathQueries(), ts, replicas, thread_sweep,
             &report);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
