// Microbenchmarks (google-benchmark) for the substrate primitives: XPath
// parsing, label predicates, structural joins, buffer-pool access, stored
// list scans/seeks, view materialization and candidate enumeration.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "algo/candidate_enumerator.h"
#include "algo/structural_join.h"
#include "data/nasa_generator.h"
#include "data/xmark_generator.h"
#include "storage/materialized_view.h"
#include "tpq/evaluator.h"
#include "tpq/pattern.h"
#include "util/rng.h"
#include "xml/document.h"

namespace viewjoin {
namespace {

const xml::Document& XmarkDoc() {
  static const xml::Document* doc =
      new xml::Document(data::GenerateXmark({.scale = 0.5, .seed = 42}));
  return *doc;
}

void BM_ParsePattern(benchmark::State& state) {
  const std::string xpath =
      "//dataset//tableHead[//tableLink//title]//field//definition//para";
  for (auto _ : state) {
    auto pattern = tpq::TreePattern::Parse(xpath);
    benchmark::DoNotOptimize(pattern);
  }
}
BENCHMARK(BM_ParsePattern);

void BM_LabelAncestorCheck(benchmark::State& state) {
  const xml::Document& doc = XmarkDoc();
  size_t n = doc.NodeCount();
  uint64_t i = 0;
  uint64_t acc = 0;
  for (auto _ : state) {
    const xml::Label& a = doc.NodeLabel(static_cast<xml::NodeId>(i % n));
    const xml::Label& b =
        doc.NodeLabel(static_cast<xml::NodeId>((i * 7 + 13) % n));
    acc += xml::IsAncestor(a, b);
    ++i;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_LabelAncestorCheck);

void BM_StructuralJoin(benchmark::State& state) {
  const xml::Document& doc = XmarkDoc();
  xml::TagId item = doc.FindTag("item");
  xml::TagId keyword = doc.FindTag("keyword");
  std::vector<xml::Label> anc, desc;
  for (xml::NodeId n : doc.NodesOfTag(item)) anc.push_back(doc.NodeLabel(n));
  for (xml::NodeId n : doc.NodesOfTag(keyword)) {
    desc.push_back(doc.NodeLabel(n));
  }
  for (auto _ : state) {
    uint64_t pairs = 0;
    algo::StackTreeDesc(anc, desc, tpq::Axis::kDescendant,
                        [&](size_t, size_t) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(anc.size() + desc.size()));
}
BENCHMARK(BM_StructuralJoin);

void BM_NaiveEvaluatorSolutionNodes(benchmark::State& state) {
  const xml::Document& doc = XmarkDoc();
  tpq::TreePattern pattern = *tpq::TreePattern::Parse("//item//text//keyword");
  for (auto _ : state) {
    tpq::NaiveEvaluator eval(doc, pattern);
    auto lists = eval.SolutionNodes();
    benchmark::DoNotOptimize(lists);
  }
}
BENCHMARK(BM_NaiveEvaluatorSolutionNodes);

void BM_MaterializeView(benchmark::State& state) {
  const xml::Document& doc = XmarkDoc();
  tpq::TreePattern pattern = *tpq::TreePattern::Parse("//item//text//keyword");
  storage::Scheme scheme = static_cast<storage::Scheme>(state.range(0));
  for (auto _ : state) {
    storage::ViewCatalog catalog("/tmp/viewjoin_micro.db", 1024);
    const auto* view = catalog.Materialize(doc, pattern, scheme);
    benchmark::DoNotOptimize(view->SizeBytes());
  }
}
BENCHMARK(BM_MaterializeView)
    ->Arg(static_cast<int>(storage::Scheme::kElement))
    ->Arg(static_cast<int>(storage::Scheme::kTuple))
    ->Arg(static_cast<int>(storage::Scheme::kLinkedElement))
    ->Arg(static_cast<int>(storage::Scheme::kLinkedElementPartial));

void BM_ListCursorScan(benchmark::State& state) {
  const xml::Document& doc = XmarkDoc();
  tpq::TreePattern pattern = *tpq::TreePattern::Parse("//item//text//keyword");
  storage::ViewCatalog catalog("/tmp/viewjoin_micro_scan.db", 1024);
  const auto* view =
      catalog.Materialize(doc, pattern, storage::Scheme::kLinkedElement);
  for (auto _ : state) {
    storage::ListCursor cursor(&view->list(2), catalog.pool());
    uint64_t sum = 0;
    for (cursor.Reset(); !cursor.AtEnd(); cursor.Next()) {
      sum += cursor.LabelAt().start;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * view->ListLength(2));
}
BENCHMARK(BM_ListCursorScan);

void BM_ListCursorPointerChase(benchmark::State& state) {
  const xml::Document& doc = XmarkDoc();
  tpq::TreePattern pattern = *tpq::TreePattern::Parse("//item//text//keyword");
  storage::ViewCatalog catalog("/tmp/viewjoin_micro_chase.db", 1024);
  const auto* view =
      catalog.Materialize(doc, pattern, storage::Scheme::kLinkedElement);
  for (auto _ : state) {
    storage::ListCursor cursor(&view->list(0), catalog.pool());
    uint64_t hops = 0;
    cursor.Reset();
    while (!cursor.AtEnd()) {
      storage::EntryIndex next = cursor.Following();
      if (next == storage::kNullEntry) break;
      cursor.Seek(next);
      ++hops;
    }
    benchmark::DoNotOptimize(hops);
  }
}
BENCHMARK(BM_ListCursorPointerChase);

void BM_CandidateEnumerator(benchmark::State& state) {
  const xml::Document& doc = XmarkDoc();
  tpq::TreePattern pattern = *tpq::TreePattern::Parse("//item//text//keyword");
  tpq::NaiveEvaluator eval(doc, pattern);
  std::vector<std::vector<xml::NodeId>> lists = eval.SolutionNodes();
  algo::CandidateEnumerator enumerator(doc, pattern);
  for (auto _ : state) {
    tpq::CountingSink sink;
    enumerator.Enumerate(lists, &sink);
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_CandidateEnumerator);

void BM_GenerateXmark(benchmark::State& state) {
  for (auto _ : state) {
    xml::Document doc = data::GenerateXmark({.scale = 0.1, .seed = 1});
    benchmark::DoNotOptimize(doc.NodeCount());
  }
}
BENCHMARK(BM_GenerateXmark);

void BM_GenerateNasa(benchmark::State& state) {
  for (auto _ : state) {
    xml::Document doc = data::GenerateNasa({.datasets = 100, .seed = 1});
    benchmark::DoNotOptimize(doc.NodeCount());
  }
}
BENCHMARK(BM_GenerateNasa);

}  // namespace
}  // namespace viewjoin

BENCHMARK_MAIN();
