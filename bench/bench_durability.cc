// Durability bench: what crash safety costs and what recovery buys.
//
// Three sections, one row group each in the JSON report:
//   1. recovery — a persistent store of XMark path views is crashed at every
//      install crash point (shadow staged / shadow sealed / data synced /
//      journal torn) via the fault injector, then reopened; the row records
//      the wall time of ViewCatalog::Open (journal replay + rollback +
//      shadow cleanup) and what recovery did. A clean-close reopen is the
//      baseline row.
//   2. scrub — one synchronous full scrubber pass over the store, reported
//      as pages/second of checksum verification throughput.
//   3. scrub_overhead — the same query batch with the background scrubber
//      off vs. racing at a 1 ms cadence, reporting the wall-clock overhead
//      queries pay for continuous integrity scanning.
//
// `--smoke` shrinks the document and batch for CI; `--json PATH` emits the
// machine-readable report (schema in bench/README.md).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "data/xmark_generator.h"
#include "storage/materialized_view.h"
#include "storage/scrubber.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace viewjoin::bench {
namespace {

using storage::MaterializedView;
using storage::Scheme;
using storage::ViewCatalog;
using util::CrashPoint;
using util::CrashPointName;
using util::ScopedFaultInjection;

constexpr const char* kStorePath = "/tmp/viewjoin_bench_dur.db";
constexpr const char* kEnginePath = "/tmp/viewjoin_bench_dur_engine.db";

void RemoveStore(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());
}

/// View patterns for the store under test: each XMark path query doubles as
/// its own covering view.
std::vector<tpq::TreePattern> StorePatterns() {
  std::vector<tpq::TreePattern> patterns;
  for (const QuerySpec& spec : XmarkPathQueries()) {
    patterns.push_back(ParseQuery(spec.xpath));
  }
  return patterns;
}

void BenchRecovery(const xml::Document& doc, JsonReport* report) {
  const std::vector<tpq::TreePattern> patterns = StorePatterns();
  RemoveStore(kStorePath);
  {
    ViewCatalog catalog(kStorePath, 256, /*persistent=*/true);
    for (const tpq::TreePattern& pattern : patterns) {
      catalog.Materialize(doc, pattern, Scheme::kLinkedElement);
    }
    VJ_CHECK(catalog.Close().ok());
  }

  util::TablePrinter table({"crash point", "open (ms)", "views", "rolled back",
                            "orphan pages", "shadows removed"});
  struct Case {
    const char* label;
    CrashPoint point;
  };
  const Case cases[] = {
      {"clean close", CrashPoint::kNone},
      {CrashPointName(CrashPoint::kCrashBeforeRename),
       CrashPoint::kCrashBeforeRename},
      {CrashPointName(CrashPoint::kCrashAfterRename),
       CrashPoint::kCrashAfterRename},
      {CrashPointName(CrashPoint::kCrashAfterDataSync),
       CrashPoint::kCrashAfterDataSync},
      {CrashPointName(CrashPoint::kCrashMidJournal),
       CrashPoint::kCrashMidJournal},
  };
  for (const Case& c : cases) {
    if (c.point != CrashPoint::kNone) {
      // Reopen writable and crash one extra install at the chosen point,
      // leaving real mid-flight state on disk for the timed reopen below.
      auto victim = ViewCatalog::Open(kStorePath, 256);
      VJ_CHECK(victim.ok()) << victim.status().ToString();
      ScopedFaultInjection fi;
      // Mid-journal tears the *install commit* record (the Begin is append
      // #1 of the operation and must land for rollback to have a target).
      fi->ArmCrashPoint(c.point,
                        c.point == CrashPoint::kCrashMidJournal ? 2 : 1);
      auto failed = (*victim)->TryMaterialize(
          doc, ParseQuery("//people//person//name"), Scheme::kElement);
      VJ_CHECK(!failed.ok()) << CrashPointName(c.point);
    }
    util::Timer timer;
    auto reopened = ViewCatalog::Open(kStorePath, 256);
    double open_ms = timer.ElapsedMillis();
    VJ_CHECK(reopened.ok()) << reopened.status().ToString();
    ViewCatalog& catalog = **reopened;
    const storage::RecoveryReport& recovery = catalog.recovery_report();
    VJ_CHECK(catalog.views().size() == patterns.size());
    table.AddRow({c.label, util::FormatDouble(open_ms, 2),
                  std::to_string(catalog.views().size()),
                  std::to_string(recovery.pending_rebuild.size()),
                  std::to_string(recovery.orphan_pages_truncated),
                  std::to_string(recovery.orphan_shadows_removed)});
    report->AddRow()
        .Set("section", "recovery")
        .Set("crash_point", c.label)
        .Set("open_ms", open_ms)
        .Set("views_recovered", static_cast<uint64_t>(catalog.views().size()))
        .Set("pending_rebuild",
             static_cast<uint64_t>(recovery.pending_rebuild.size()))
        .Set("orphan_pages_truncated",
             static_cast<uint64_t>(recovery.orphan_pages_truncated))
        .Set("orphan_shadows_removed", recovery.orphan_shadows_removed)
        .Set("journal_tail_truncated", recovery.journal_tail_truncated);
    // Restore the store to N committed views for the next crash point: the
    // interrupted install rolled back, so nothing to undo — just close.
    VJ_CHECK(catalog.Close().ok());
  }
  std::printf("-- recovery: timed ViewCatalog::Open after each crash --\n");
  table.Print();
  std::printf("\n");
}

void BenchScrubAndOverhead(const xml::Document& doc, int batch_replicas,
                           JsonReport* report) {
  RemoveStore(kEnginePath);
  core::Engine engine(&doc, kEnginePath);
  std::vector<core::BatchQuery> batch;
  std::vector<tpq::TreePattern> patterns = StorePatterns();
  std::vector<std::vector<const MaterializedView*>> views(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    views[i] = {engine.AddView(patterns[i], Scheme::kLinkedElement)};
  }
  for (int r = 0; r < batch_replicas; ++r) {
    for (size_t i = 0; i < patterns.size(); ++i) {
      batch.push_back({&patterns[i], views[i]});
    }
  }

  // Section 2: raw verification throughput of one synchronous full pass.
  storage::Scrubber* scrubber = engine.scrubber();
  uint64_t passes = scrubber->stats().full_passes;
  util::Timer scrub_timer;
  uint64_t scanned = 0;
  while (scrubber->stats().full_passes == passes) {
    scanned += scrubber->Step(256);
  }
  double scrub_ms = scrub_timer.ElapsedMillis();
  double pages_per_sec = scrub_ms > 0 ? 1000.0 * scanned / scrub_ms : 0;
  VJ_CHECK(scrubber->stats().corrupt_pages == 0);
  std::printf("-- scrub: full pass over %llu pages in %.2f ms (%.0f pages/s) "
              "--\n\n",
              static_cast<unsigned long long>(scanned), scrub_ms,
              pages_per_sec);
  report->AddRow()
      .Set("section", "scrub")
      .Set("pages_scanned", scanned)
      .Set("pass_ms", scrub_ms)
      .Set("pages_per_sec", pages_per_sec);

  // Section 3: batch wall time without, then with, the background scrubber.
  auto run_batch = [&]() -> double {
    core::BatchOptions options;
    options.threads = 4;
    util::Timer timer;
    std::vector<core::RunResult> results = engine.ExecuteBatch(batch, options);
    double wall_ms = timer.ElapsedMillis();
    for (const core::RunResult& r : results) {
      VJ_CHECK(r.ok) << r.error;
    }
    return wall_ms;
  };
  run_batch();  // warm the pool so both measured runs start equal
  double off_ms = run_batch();
  engine.scrubber()->Start(std::chrono::milliseconds(1), 64);
  double on_ms = run_batch();
  engine.scrubber()->Stop();
  double overhead = off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0;
  std::printf("-- scrub overhead: batch of %zu queries %.1f ms scrub-off vs "
              "%.1f ms scrub-on (%+.1f%%) --\n\n",
              batch.size(), off_ms, on_ms, overhead);
  report->AddRow()
      .Set("section", "scrub_overhead")
      .Set("batch_size", static_cast<uint64_t>(batch.size()))
      .Set("scrub_off_ms", off_ms)
      .Set("scrub_on_ms", on_ms)
      .Set("overhead_pct", overhead);
}

void Main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  double xmark_scale = EnvScale("VIEWJOIN_XMARK_SCALE", smoke ? 0.1 : 1.0);
  int batch_replicas =
      static_cast<int>(EnvScale("VIEWJOIN_DUR_REPLICAS", smoke ? 2 : 4));

  JsonReport report("durability");
  report.ParseArgs(static_cast<int>(args.size()), args.data());
  report.SetMeta("smoke", static_cast<uint64_t>(smoke ? 1 : 0));
  report.SetMeta("xmark_scale", xmark_scale);
  report.SetMeta("batch_replicas", batch_replicas);

  std::printf("Durability bench: crash recovery and scrubber cost\n\n");

  data::XmarkOptions options;
  options.scale = xmark_scale;
  options.seed = 42;
  xml::Document doc = data::GenerateXmark(options);

  BenchRecovery(doc, &report);
  BenchScrubAndOverhead(doc, batch_replicas, &report);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
