// Reproduces Fig. 5(c)/(d): total processing time of twig queries over
// materialized views for the six list-scheme combinations (TS/VJ × E/LE/LE_p;
// InterJoin handles only path queries and is excluded, as in the paper).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace viewjoin::bench {
namespace {

void RunDataset(const std::string& title, const std::string& dataset,
                BenchContext* context, const std::vector<QuerySpec>& queries,
                JsonReport* report) {
  PrintBanner(title, *context);
  std::vector<Combo> combos = ListCombos();
  std::vector<std::string> header = {"query", "matches"};
  for (const Combo& c : combos) header.push_back(c.Label() + " (ms)");
  util::TablePrinter table(header);
  std::vector<std::string> pheader = {"query"};
  for (const Combo& c : combos) pheader.push_back(c.Label() + " (pages)");
  util::TablePrinter pages(pheader);
  for (const QuerySpec& spec : queries) {
    tpq::TreePattern query = ParseQuery(spec.xpath);
    std::vector<tpq::TreePattern> split = PairViews(query);
    std::vector<std::string> row = {spec.name, ""};
    std::vector<std::string> prow = {spec.name};
    uint64_t count = 0;
    uint64_t hash = 0;
    bool first = true;
    for (const Combo& combo : combos) {
      core::RunResult result =
          context->Run(query, context->Views(split, combo.scheme), combo);
      if (first) {
        count = result.match_count;
        hash = result.result_hash;
        first = false;
      } else {
        VJ_CHECK(result.match_count == count && result.result_hash == hash)
            << spec.name << " " << combo.Label() << " diverged";
      }
      row.push_back(util::FormatDouble(result.total_ms, 2));
      prow.push_back(std::to_string(result.io.pages_read));
      report->AddRow()
          .Set("dataset", dataset)
          .Set("query", spec.name)
          .Set("combo", combo.Label())
          .Metrics(result);
    }
    row[1] = std::to_string(count);
    table.AddRow(row);
    pages.AddRow(prow);
  }
  table.Print();
  std::printf("\npage reads per cold run (the I/O the LE pointers save):\n");
  pages.Print();
  std::printf("\n");
}

void Main(int argc, char** argv) {
  double xmark_scale = EnvScale("VIEWJOIN_XMARK_SCALE", 2.0);
  int64_t nasa_datasets =
      static_cast<int64_t>(EnvScale("VIEWJOIN_NASA_DATASETS", 800));
  JsonReport report("fig5_twigs");
  report.ParseArgs(argc, argv);
  report.SetMeta("xmark_scale", xmark_scale);
  report.SetMeta("nasa_datasets", static_cast<uint64_t>(nasa_datasets));

  std::printf("Fig. 5(c)/(d) reproduction: twig queries with twig views\n\n");

  auto xmark = BenchContext::Xmark(xmark_scale);
  RunDataset("XMark twig queries (Fig. 5c)", "xmark", xmark.get(),
             XmarkTwigQueries(), &report);

  auto nasa = BenchContext::Nasa(nasa_datasets);
  RunDataset("NASA twig queries (Fig. 5d)", "nasa", nasa.get(),
             NasaTwigQueries(), &report);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
