#include "bench/harness.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include <algorithm>

#include "util/check.h"
#include "xml/statistics.h"
#include "xml/writer.h"

namespace viewjoin::bench {

using core::Algorithm;
using core::RunOptions;
using core::RunResult;
using storage::MaterializedView;
using storage::Scheme;
using tpq::TreePattern;

std::string Combo::Label() const {
  return std::string(core::AlgorithmName(algorithm)) + "+" +
         storage::SchemeName(scheme);
}

std::vector<Combo> AllCombos() {
  std::vector<Combo> combos = {{Algorithm::kInterJoin, Scheme::kTuple}};
  for (const Combo& c : ListCombos()) combos.push_back(c);
  return combos;
}

std::vector<Combo> ListCombos() {
  return {
      {Algorithm::kTwigStack, Scheme::kElement},
      {Algorithm::kTwigStack, Scheme::kLinkedElement},
      {Algorithm::kTwigStack, Scheme::kLinkedElementPartial},
      {Algorithm::kViewJoin, Scheme::kElement},
      {Algorithm::kViewJoin, Scheme::kLinkedElement},
      {Algorithm::kViewJoin, Scheme::kLinkedElementPartial},
  };
}

namespace {

std::string UniqueStoragePath() {
  static int counter = 0;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "/tmp/viewjoin_bench_%d_%d.db", getpid(),
                counter++);
  return buf;
}

}  // namespace

BenchContext::BenchContext(xml::Document doc)
    : doc_(std::move(doc)), storage_path_(UniqueStoragePath()) {
  core::EngineOptions options;
  options.pool_pages = 4096;
  // Every bench honors the out-of-core knobs (VIEWJOIN_DOC_MODE,
  // VIEWJOIN_DOC_POOL_PAGES, VIEWJOIN_PARSE_BUDGET,
  // VIEWJOIN_READAHEAD_PAGES), so any figure can be re-measured with the
  // base document paged through a bounded pool.
  util::Status env = core::ApplyEnvOptions(&options);
  VJ_CHECK(env.ok()) << env.ToString();
  engine_ = std::make_unique<core::Engine>(&doc_, storage_path_, options);
  if (options.doc_mode == core::DocMode::kDisk) {
    VJ_CHECK(engine_->doc_store() != nullptr)
        << engine_->doc_store_status().ToString();
  }
}

std::unique_ptr<BenchContext> BenchContext::Xmark(double scale, uint64_t seed) {
  data::XmarkOptions options;
  options.scale = scale;
  options.seed = seed;
  return std::unique_ptr<BenchContext>(
      new BenchContext(data::GenerateXmark(options)));
}

std::unique_ptr<BenchContext> BenchContext::Nasa(int64_t datasets,
                                                 uint64_t seed) {
  data::NasaOptions options;
  options.datasets = datasets;
  options.seed = seed;
  return std::unique_ptr<BenchContext>(
      new BenchContext(data::GenerateNasa(options)));
}

const MaterializedView* BenchContext::View(const std::string& xpath,
                                           Scheme scheme) {
  auto key = std::make_pair(xpath, static_cast<int>(scheme));
  auto it = view_cache_.find(key);
  if (it != view_cache_.end()) return it->second;
  const MaterializedView* view = engine_->AddView(xpath, scheme);
  view_cache_[key] = view;
  return view;
}

const MaterializedView* BenchContext::View(const TreePattern& pattern,
                                           Scheme scheme) {
  return View(pattern.ToString(), scheme);
}

std::vector<const MaterializedView*> BenchContext::Views(
    const std::vector<std::string>& xpaths, Scheme scheme) {
  std::vector<const MaterializedView*> views;
  views.reserve(xpaths.size());
  for (const std::string& xpath : xpaths) views.push_back(View(xpath, scheme));
  return views;
}

std::vector<const MaterializedView*> BenchContext::Views(
    const std::vector<TreePattern>& patterns, Scheme scheme) {
  std::vector<const MaterializedView*> views;
  views.reserve(patterns.size());
  for (const TreePattern& p : patterns) views.push_back(View(p, scheme));
  return views;
}

RunResult BenchContext::Run(
    const TreePattern& query,
    const std::vector<const MaterializedView*>& views, const Combo& combo,
    algo::OutputMode mode, int repeats) {
  VJ_CHECK(repeats > 0);
  RunOptions run;
  run.algorithm = combo.algorithm;
  run.output_mode = mode;
  run.cold_cache = true;
  RunResult average;
  double total = 0;
  double io = 0;
  storage::IoStats io_sum;
  uint64_t retries = 0;
  for (int r = 0; r < repeats; ++r) {
    // Start each repeat from scratch: drop cached pages AND reset the pool's
    // poison latch, so a fault in repeat r cannot taint repeat r+1. (Clear()
    // resets the latch; cold_cache then re-clears stats inside Execute.)
    engine_->catalog()->DropCaches();
    RunResult result = engine_->Execute(query, views, run);
    VJ_CHECK(result.ok) << combo.Label() << ": " << result.error;
    if (r == 0) {
      average = result;
    } else {
      // A repeat is a re-measurement, not a new query: the answer must not
      // drift between repeats.
      VJ_CHECK(result.match_count == average.match_count &&
               result.result_hash == average.result_hash)
          << combo.Label() << ": match set drifted across repeats ("
          << result.match_count << " vs " << average.match_count << ")";
      average.degraded |= result.degraded;
      for (const std::string& v : result.quarantined_views) {
        if (std::find(average.quarantined_views.begin(),
                      average.quarantined_views.end(),
                      v) == average.quarantined_views.end()) {
          average.quarantined_views.push_back(v);
        }
      }
      average.stats = result.stats;  // identical across repeats (pure CPU)
    }
    total += result.total_ms;
    io += result.io_ms;
    io_sum += result.io;
    retries += result.retries;
  }
  // Average every reported counter over the repeats, not just the times —
  // a result whose io_ms is a mean but whose pages_read is the last run's
  // sample reads as self-contradictory in reports.
  uint64_t n = static_cast<uint64_t>(repeats);
  average.total_ms = total / repeats;
  average.io_ms = io / repeats;
  average.retries = retries / n;
  average.io.pages_read = io_sum.pages_read / n;
  average.io.pages_written = io_sum.pages_written / n;
  average.io.read_micros = io_sum.read_micros / repeats;
  average.io.write_micros = io_sum.write_micros / repeats;
  average.io.pool_hits = io_sum.pool_hits / n;
  average.io.pool_misses = io_sum.pool_misses / n;
  average.io.read_retries = io_sum.read_retries / n;
  return average;
}

RunResult BenchContext::RunSplit(const std::string& xpath, const Combo& combo,
                                 int pieces, algo::OutputMode mode) {
  TreePattern query = ParseQuery(xpath);
  std::vector<TreePattern> split = SplitViews(query, pieces);
  return Run(query, Views(split, combo.scheme), combo, mode);
}

TreePattern ParseQuery(const std::string& xpath) {
  std::string error;
  std::optional<TreePattern> pattern = TreePattern::Parse(xpath, &error);
  VJ_CHECK(pattern.has_value()) << xpath << ": " << error;
  return *pattern;
}

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void WriteFields(
    std::FILE* out,
    const std::vector<std::pair<std::string, std::string>>& fields,
    const char* indent) {
  for (size_t i = 0; i < fields.size(); ++i) {
    std::fprintf(out, "%s%s: %s%s\n", indent, JsonQuote(fields[i].first).c_str(),
                 fields[i].second.c_str(), i + 1 < fields.size() ? "," : "");
  }
}

}  // namespace

JsonReport::Row& JsonReport::Row::Set(const std::string& key,
                                      const std::string& value) {
  fields_.emplace_back(key, JsonQuote(value));
  return *this;
}

JsonReport::Row& JsonReport::Row::Set(const std::string& key,
                                      const char* value) {
  return Set(key, std::string(value));
}

JsonReport::Row& JsonReport::Row::Set(const std::string& key, double value) {
  char buf[64];
  if (!std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "null");
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  fields_.emplace_back(key, buf);
  return *this;
}

JsonReport::Row& JsonReport::Row::Set(const std::string& key, uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonReport::Row& JsonReport::Row::Set(const std::string& key, int value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonReport::Row& JsonReport::Row::Set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonReport::Row& JsonReport::Row::Metrics(const core::RunResult& result) {
  Set("matches", result.match_count);
  // The 64-bit fingerprint exceeds JSON's exact double range; a hex string
  // round-trips losslessly everywhere.
  char hash[32];
  std::snprintf(hash, sizeof(hash), "0x%016llx",
                static_cast<unsigned long long>(result.result_hash));
  Set("result_hash", hash);
  Set("total_ms", result.total_ms);
  Set("io_ms", result.io_ms);
  Set("pages_read", result.io.pages_read);
  Set("pages_written", result.io.pages_written);
  Set("pool_hits", result.io.pool_hits);
  Set("pool_misses", result.io.pool_misses);
  Set("read_retries", result.io.read_retries);
  Set("prefetch_issued", result.io.prefetch_issued);
  Set("prefetch_hits", result.io.prefetch_hits);
  Set("prefetch_wasted", result.io.prefetch_wasted);
  Set("degraded", result.degraded);
  return *this;
}

void JsonReport::ParseArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      VJ_CHECK(i + 1 < argc) << "--json requires a path";
      set_path(argv[++i]);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      set_path(arg + 7);
    } else {
      VJ_CHECK(false) << "unknown argument '" << arg
                      << "' (benches take --json <path> only)";
    }
  }
}

JsonReport::Row& JsonReport::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

void JsonReport::Write() const {
  if (!enabled()) return;
  std::FILE* out = std::fopen(path_.c_str(), "w");
  VJ_CHECK(out != nullptr) << "cannot write " << path_;
  std::fprintf(out, "{\n  \"bench\": %s,\n  \"meta\": {\n",
               JsonQuote(bench_name_).c_str());
  WriteFields(out, meta_.fields_, "    ");
  std::fprintf(out, "  },\n  \"rows\": [\n");
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::fprintf(out, "    {\n");
    WriteFields(out, rows_[r].fields_, "      ");
    std::fprintf(out, "    }%s\n", r + 1 < rows_.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("json report written to %s\n", path_.c_str());
}

void PrintBanner(const std::string& title, const BenchContext& context) {
  std::printf("== %s ==\n", title.c_str());
  xml::DocumentStatistics stats =
      xml::DocumentStatistics::Collect(context.doc());
  std::printf(
      "document: %zu elements (~%.1f MB serialized with text), %zu tags, "
      "max depth %u, avg depth %.1f\n",
      context.doc().NodeCount(),
      static_cast<double>(xml::SerializedSize(
          context.doc(), {.synthetic_text = true, .indent = 0})) /
          (1024.0 * 1024.0),
      context.doc().TagCount(), stats.max_depth(), stats.average_depth());
}

}  // namespace viewjoin::bench
