#include "bench/harness.h"

#include <cstdio>
#include <unistd.h>

#include "util/check.h"
#include "xml/statistics.h"
#include "xml/writer.h"

namespace viewjoin::bench {

using core::Algorithm;
using core::RunOptions;
using core::RunResult;
using storage::MaterializedView;
using storage::Scheme;
using tpq::TreePattern;

std::string Combo::Label() const {
  return std::string(core::AlgorithmName(algorithm)) + "+" +
         storage::SchemeName(scheme);
}

std::vector<Combo> AllCombos() {
  std::vector<Combo> combos = {{Algorithm::kInterJoin, Scheme::kTuple}};
  for (const Combo& c : ListCombos()) combos.push_back(c);
  return combos;
}

std::vector<Combo> ListCombos() {
  return {
      {Algorithm::kTwigStack, Scheme::kElement},
      {Algorithm::kTwigStack, Scheme::kLinkedElement},
      {Algorithm::kTwigStack, Scheme::kLinkedElementPartial},
      {Algorithm::kViewJoin, Scheme::kElement},
      {Algorithm::kViewJoin, Scheme::kLinkedElement},
      {Algorithm::kViewJoin, Scheme::kLinkedElementPartial},
  };
}

namespace {

std::string UniqueStoragePath() {
  static int counter = 0;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "/tmp/viewjoin_bench_%d_%d.db", getpid(),
                counter++);
  return buf;
}

}  // namespace

BenchContext::BenchContext(xml::Document doc)
    : doc_(std::move(doc)), storage_path_(UniqueStoragePath()) {
  core::EngineOptions options;
  options.pool_pages = 4096;
  engine_ = std::make_unique<core::Engine>(&doc_, storage_path_, options);
}

std::unique_ptr<BenchContext> BenchContext::Xmark(double scale, uint64_t seed) {
  data::XmarkOptions options;
  options.scale = scale;
  options.seed = seed;
  return std::unique_ptr<BenchContext>(
      new BenchContext(data::GenerateXmark(options)));
}

std::unique_ptr<BenchContext> BenchContext::Nasa(int64_t datasets,
                                                 uint64_t seed) {
  data::NasaOptions options;
  options.datasets = datasets;
  options.seed = seed;
  return std::unique_ptr<BenchContext>(
      new BenchContext(data::GenerateNasa(options)));
}

const MaterializedView* BenchContext::View(const std::string& xpath,
                                           Scheme scheme) {
  auto key = std::make_pair(xpath, static_cast<int>(scheme));
  auto it = view_cache_.find(key);
  if (it != view_cache_.end()) return it->second;
  const MaterializedView* view = engine_->AddView(xpath, scheme);
  view_cache_[key] = view;
  return view;
}

const MaterializedView* BenchContext::View(const TreePattern& pattern,
                                           Scheme scheme) {
  return View(pattern.ToString(), scheme);
}

std::vector<const MaterializedView*> BenchContext::Views(
    const std::vector<std::string>& xpaths, Scheme scheme) {
  std::vector<const MaterializedView*> views;
  views.reserve(xpaths.size());
  for (const std::string& xpath : xpaths) views.push_back(View(xpath, scheme));
  return views;
}

std::vector<const MaterializedView*> BenchContext::Views(
    const std::vector<TreePattern>& patterns, Scheme scheme) {
  std::vector<const MaterializedView*> views;
  views.reserve(patterns.size());
  for (const TreePattern& p : patterns) views.push_back(View(p, scheme));
  return views;
}

RunResult BenchContext::Run(
    const TreePattern& query,
    const std::vector<const MaterializedView*>& views, const Combo& combo,
    algo::OutputMode mode, int repeats) {
  RunOptions run;
  run.algorithm = combo.algorithm;
  run.output_mode = mode;
  run.cold_cache = true;
  RunResult last;
  double total = 0;
  double io = 0;
  for (int r = 0; r < repeats; ++r) {
    last = engine_->Execute(query, views, run);
    VJ_CHECK(last.ok) << combo.Label() << ": " << last.error;
    total += last.total_ms;
    io += last.io_ms;
  }
  last.total_ms = total / repeats;
  last.io_ms = io / repeats;
  return last;
}

RunResult BenchContext::RunSplit(const std::string& xpath, const Combo& combo,
                                 int pieces, algo::OutputMode mode) {
  TreePattern query = ParseQuery(xpath);
  std::vector<TreePattern> split = SplitViews(query, pieces);
  return Run(query, Views(split, combo.scheme), combo, mode);
}

TreePattern ParseQuery(const std::string& xpath) {
  std::string error;
  std::optional<TreePattern> pattern = TreePattern::Parse(xpath, &error);
  VJ_CHECK(pattern.has_value()) << xpath << ": " << error;
  return *pattern;
}

void PrintBanner(const std::string& title, const BenchContext& context) {
  std::printf("== %s ==\n", title.c_str());
  xml::DocumentStatistics stats =
      xml::DocumentStatistics::Collect(context.doc());
  std::printf(
      "document: %zu elements (~%.1f MB serialized with text), %zu tags, "
      "max depth %u, avg depth %.1f\n",
      context.doc().NodeCount(),
      static_cast<double>(xml::SerializedSize(
          context.doc(), {.synthetic_text = true, .indent = 0})) /
          (1024.0 * 1024.0),
      context.doc().TagCount(), stats.max_depth(), stats.average_depth());
}

}  // namespace viewjoin::bench
