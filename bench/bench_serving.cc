// Serving benchmark: open-loop QPS sweep against the TCP query server.
//
// An in-process QueryServer (or an external one via --connect PORT) is
// driven by sender threads that each open a connection per request — the
// accept path, shedding and quota machinery are all on the measured path.
// Arrivals are open-loop: request i is *scheduled* at t0 + i/QPS regardless
// of how previous requests fared, so an overloaded server sees the backlog a
// real client population would generate, not a politely self-throttling
// closed loop.
//
// Per offered-QPS step the bench reports achieved QPS, p50/p95/p99 latency
// over successful requests, and the rejection rate; the *saturation knee* is
// the first step where the server visibly stops keeping up (rejections above
// 1%, achieved below 90% of offered, or p99 blown up past 5x the unloaded
// baseline).
//
// Simulated page-read latency (VIEWJOIN_PAGE_READ_MICROS, sleep mode)
// defaults to 300 us so the knee is reachable on fast CI machines; override
// from the environment for real-disk numbers.
//
// `--smoke` shrinks the sweep for CI; `--json BENCH_serving.json` emits the
// machine-readable report (schema in bench/README.md).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "core/engine.h"
#include "data/xmark_generator.h"
#include "server/client.h"
#include "server/server.h"
#include "tpq/pattern.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace viewjoin::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct StepResult {
  double offered_qps = 0;
  double achieved_qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t timeouts = 0;
  uint64_t errors = 0;
  uint64_t transport_errors = 0;

  double rejection_rate() const {
    return sent == 0 ? 0 : static_cast<double>(rejected) / sent;
  }
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  std::sort(sorted->begin(), sorted->end());
  size_t index = static_cast<size_t>(p * (sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(index, sorted->size() - 1)];
}

StepResult RunStep(uint16_t port,
                   const std::vector<server::QueryRequest>& requests,
                   double qps, double duration_s, size_t senders) {
  StepResult step;
  step.offered_qps = qps;
  const size_t total = static_cast<size_t>(qps * duration_s);
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> ok{0}, rejected{0}, timeouts{0}, errors{0},
      transport{0};
  std::vector<std::vector<double>> latencies(senders);

  Clock::time_point start = Clock::now();
  auto sender = [&](size_t id) {
    latencies[id].reserve(total / senders + 1);
    for (size_t i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
      // Open loop: arrival i is scheduled, not gated on arrival i-1.
      Clock::time_point scheduled =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(i / qps));
      std::this_thread::sleep_until(scheduled);
      server::Client client;
      client.set_deadline_ms(5000);
      if (!client.Connect("127.0.0.1", port, 5000).ok()) {
        transport.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Clock::time_point sent_at = Clock::now();
      util::StatusOr<server::QueryResponse> response =
          client.Query(requests[i % requests.size()]);
      double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            sent_at)
                      .count();
      if (!response.ok()) {
        transport.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      switch (response->verdict) {
        case server::Verdict::kOk:
          ok.fetch_add(1, std::memory_order_relaxed);
          latencies[id].push_back(ms);
          break;
        case server::Verdict::kRejected:
          rejected.fetch_add(1, std::memory_order_relaxed);
          break;
        case server::Verdict::kTimeout:
          timeouts.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(senders);
  for (size_t s = 0; s < senders; ++s) pool.emplace_back(sender, s);
  for (std::thread& t : pool) t.join();
  double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (const std::vector<double>& per_sender : latencies) {
    all.insert(all.end(), per_sender.begin(), per_sender.end());
  }
  step.sent = total;
  step.ok = ok.load();
  step.rejected = rejected.load();
  step.timeouts = timeouts.load();
  step.errors = errors.load();
  step.transport_errors = transport.load();
  step.achieved_qps = wall_s > 0 ? (step.ok + step.rejected) / wall_s : 0;
  step.p50_ms = Percentile(&all, 0.50);
  step.p95_ms = Percentile(&all, 0.95);
  step.p99_ms = Percentile(&all, 0.99);
  return step;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int connect_port = 0;
  double duration_s = 3.0;
  size_t senders = 16;
  size_t workers = 2;
  std::vector<double> sweep = {50, 100, 200, 400, 800, 1600, 3200};

  JsonReport report("serving");
  std::vector<char*> pass_through;
  pass_through.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else {
      pass_through.push_back(argv[i]);
    }
  }
  report.ParseArgs(static_cast<int>(pass_through.size()),
                   pass_through.data());
  if (smoke) {
    duration_s = 1.0;
    senders = 8;
    sweep = {50, 200, 800};
  }

  // Simulated page-read latency (sleep mode, so concurrent queries overlap
  // their I/O) makes the knee reachable without a real slow disk. setenv
  // happens before the engine's first page read, which is when the pager
  // caches these knobs. Environment overrides win.
  ::setenv("VIEWJOIN_PAGE_READ_MICROS", "300", /*overwrite=*/0);
  ::setenv("VIEWJOIN_PAGE_READ_SLEEP", "1", /*overwrite=*/0);

  // The request mix is the Fig. 5 XMark path workload, each query covered by
  // its standard pair split. Rotating distinct view sets through the tight
  // buffer pool keeps eviction (and the simulated read latency) on the
  // measured path — a single hot query would serve entirely from cache and
  // measure nothing but the wire.
  std::vector<server::QueryRequest> requests;
  for (const QuerySpec& spec : XmarkPathQueries()) {
    server::QueryRequest request;
    request.tenant = "bench";
    request.query = spec.xpath;
    for (const tpq::TreePattern& view : PairViews(ParseQuery(spec.xpath))) {
      request.views.push_back(view.ToString());
    }
    request.scheme = "LE";
    request.algorithm = "VJ";
    request.deadline_ms = 2000;
    requests.push_back(std::move(request));
  }

  // In-process server unless --connect points at an external daemon.
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<core::Engine> engine;
  std::unique_ptr<server::QueryServer> query_server;
  uint16_t port;
  if (connect_port > 0) {
    port = static_cast<uint16_t>(connect_port);
  } else {
    doc = std::make_unique<xml::Document>(
        data::GenerateXmark({.scale = smoke ? 0.1 : 0.4}));
    std::string store = "/tmp/bench_serving." +
                        std::to_string(::getpid()) + ".db";
    core::EngineOptions engine_options;
    // A deliberately tight buffer pool keeps page reads (and their simulated
    // latency) on the measured path; with the default pool the whole view set
    // stays hot and the sweep never finds a knee.
    engine_options.pool_pages = 16;
    engine = std::make_unique<core::Engine>(doc.get(), store, engine_options);
    server::ServerOptions options;
    options.workers = workers;
    options.max_pending = 8;
    options.quota_rate_per_sec = 0;  // quotas off: the sweep measures shed
    query_server = std::make_unique<server::QueryServer>(engine.get(),
                                                         options);
    util::Status started = query_server->Start();
    VJ_CHECK(started.ok()) << started.ToString();
    port = query_server->port();
  }

  // Warmup: runs each request once so view materialization (a one-time,
  // seconds-scale cost) happens before the first measured step.
  {
    server::Client client;
    client.set_deadline_ms(60000);
    util::Status connected = client.Connect("127.0.0.1", port, 5000);
    VJ_CHECK(connected.ok()) << connected.ToString();
    for (const server::QueryRequest& request : requests) {
      server::QueryRequest warm_request = request;
      warm_request.deadline_ms = 60000;
      util::StatusOr<server::QueryResponse> warm = client.Query(warm_request);
      VJ_CHECK(warm.ok()) << warm.status().ToString();
      VJ_CHECK(warm->verdict == server::Verdict::kOk)
          << request.query << ": " << warm->error;
      std::printf("warmup %s: %llu matches, %.3f ms\n", request.query.c_str(),
                  static_cast<unsigned long long>(warm->match_count),
                  warm->server_ms);
    }
  }

  util::TablePrinter table(
      {"offered", "achieved", "p50 ms", "p95 ms", "p99 ms", "rej %", "ok",
       "shed+quota", "timeout", "err"});
  std::vector<StepResult> steps;
  double knee_qps = 0;
  double base_p99 = 0;
  for (double qps : sweep) {
    StepResult step = RunStep(port, requests, qps, duration_s, senders);
    if (base_p99 == 0) base_p99 = step.p99_ms;
    bool saturated = step.rejection_rate() > 0.01 ||
                     step.achieved_qps < 0.9 * step.offered_qps ||
                     (base_p99 > 0 && step.p99_ms > 5 * base_p99);
    if (saturated && knee_qps == 0) knee_qps = qps;
    table.AddRow({util::FormatDouble(step.offered_qps, 0),
                  util::FormatDouble(step.achieved_qps, 0),
                  util::FormatDouble(step.p50_ms, 2),
                  util::FormatDouble(step.p95_ms, 2),
                  util::FormatDouble(step.p99_ms, 2),
                  util::FormatDouble(100 * step.rejection_rate(), 1),
                  std::to_string(step.ok), std::to_string(step.rejected),
                  std::to_string(step.timeouts),
                  std::to_string(step.errors + step.transport_errors)});
    report.AddRow()
        .Set("offered_qps", step.offered_qps)
        .Set("achieved_qps", step.achieved_qps)
        .Set("p50_ms", step.p50_ms)
        .Set("p95_ms", step.p95_ms)
        .Set("p99_ms", step.p99_ms)
        .Set("rejection_rate", step.rejection_rate())
        .Set("ok", step.ok)
        .Set("rejected", step.rejected)
        .Set("timeouts", step.timeouts)
        .Set("errors", step.errors)
        .Set("transport_errors", step.transport_errors)
        .Set("saturated", saturated);
    steps.push_back(step);
  }
  table.Print();
  if (knee_qps > 0) {
    std::printf("saturation knee: %.0f offered QPS\n", knee_qps);
  } else {
    std::printf("saturation knee: not reached in this sweep\n");
  }

  bool drain_clean = true;
  if (query_server != nullptr) {
    drain_clean = query_server->Drain();
    std::printf("drain: %s\n", drain_clean ? "clean" : "forced");
  }

  report.SetMeta("smoke", static_cast<uint64_t>(smoke ? 1 : 0));
  report.SetMeta("workers", static_cast<uint64_t>(workers));
  report.SetMeta("senders", static_cast<uint64_t>(senders));
  report.SetMeta("duration_s", duration_s);
  report.SetMeta("knee_qps", knee_qps);
  report.SetMeta("drain_clean", drain_clean);
  report.Write();
  return drain_clean ? 0 : 1;
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) { return viewjoin::bench::Main(argc, argv); }
