// Block-at-a-time cursor ablation over the Fig. 5 path workloads: every
// pointer-heavy algorithm × scheme combination (TS/VJ × LE/LE_p, plus the
// pointerless E baselines) is run three ways —
//
//   scalar_fixed : the original per-entry cursor over fixed-size records
//   block_fixed  : whole-page SoA decode + galloping/SIMD skipping
//   block_delta  : block cursors over delta-varint compressed lists
//
// — and cross-checked to produce identical match sets. The summary reports
// the geometric-mean speedup of the shipped block/SIMD cursor stack
// (block_delta — the scalar cursor cannot read compressed lists) over the
// old scalar cursor on the pointer-heavy combos, the isolated
// format-held-fixed block effect, and the page-read reduction of the
// compressed format. The workload is I/O-bound (cold pool per repeat), so
// the block cursor's win comes from SIMD skipping *and* the 4x denser
// compressed pages it unlocks; the fixed-format column isolates how little
// of it is decode overhead. Emits BENCH_simd.json via --json; `--smoke`
// shrinks the datasets for CI.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "core/engine.h"
#include "storage/simd_scan.h"
#include "storage/stored_list.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace viewjoin::bench {
namespace {

using storage::CursorMode;
using storage::ListFormat;

struct Variant {
  const char* name;
  CursorMode cursor;
  ListFormat format;
};

const Variant kVariants[] = {
    {"scalar_fixed", CursorMode::kScalar, ListFormat::kFixed},
    {"block_fixed", CursorMode::kBlock, ListFormat::kFixed},
    {"block_delta", CursorMode::kBlock, ListFormat::kDelta},
};

bool PointerHeavy(const Combo& combo) {
  return combo.scheme == storage::Scheme::kLinkedElement ||
         combo.scheme == storage::Scheme::kLinkedElementPartial;
}

/// The list-scheme combos of Fig. 5 — IJ+T is excluded because the tuple
/// scan has no skip primitive to ablate.
std::vector<Combo> SimdCombos() {
  std::vector<Combo> combos;
  for (const Combo& combo : ListCombos()) combos.push_back(combo);
  return combos;
}

struct Accumulator {
  double log_speedup_sum = 0;        // block_delta vs scalar_fixed
  double log_fixed_effect_sum = 0;   // block_fixed vs scalar_fixed
  int speedup_n = 0;                 // pointer-heavy combos only
  uint64_t fixed_pages = 0;  // scalar_fixed vs block_delta, all combos
  uint64_t delta_pages = 0;
};

void RunDataset(const std::string& title, const std::string& dataset,
                double scale_or_sets, bool nasa,
                const std::vector<QuerySpec>& queries, int repeats,
                JsonReport* report, Accumulator* acc) {
  // One context per variant: the list format is a property of the catalog
  // (every view it materializes), so the variants cannot share materialized
  // views. The document itself is regenerated per context from the same
  // seed, so all three evaluate identical data.
  std::unique_ptr<BenchContext> contexts[3];
  for (int v = 0; v < 3; ++v) {
    contexts[v] = nasa
                      ? BenchContext::Nasa(static_cast<int64_t>(scale_or_sets))
                      : BenchContext::Xmark(scale_or_sets);
    contexts[v]->engine().catalog()->set_list_format(kVariants[v].format);
  }
  PrintBanner(title, *contexts[0]);

  std::vector<Combo> combos = SimdCombos();
  std::vector<std::string> header = {"query", "combo", "matches"};
  for (const Variant& variant : kVariants) {
    header.push_back(std::string(variant.name) + " (ms)");
  }
  header.push_back("speedup");
  header.push_back("pages saved");
  util::TablePrinter table(header);

  for (const QuerySpec& spec : queries) {
    tpq::TreePattern query = ParseQuery(spec.xpath);
    std::vector<tpq::TreePattern> split = PairViews(query);
    for (const Combo& combo : combos) {
      double ms[3] = {0, 0, 0};
      uint64_t pages[3] = {0, 0, 0};
      uint64_t count = 0, hash = 0;
      for (int v = 0; v < 3; ++v) {
        storage::SetDefaultCursorMode(kVariants[v].cursor);
        core::RunResult result = contexts[v]->Run(
            query, contexts[v]->Views(split, combo.scheme), combo,
            algo::OutputMode::kMemory, repeats);
        storage::SetDefaultCursorMode(CursorMode::kBlock);
        VJ_CHECK(result.ok) << spec.name << " " << combo.Label() << " "
                            << kVariants[v].name << ": " << result.error;
        if (v == 0) {
          count = result.match_count;
          hash = result.result_hash;
        } else {
          VJ_CHECK(result.match_count == count && result.result_hash == hash)
              << spec.name << " " << combo.Label() << " "
              << kVariants[v].name << " diverged";
        }
        ms[v] = result.total_ms;
        pages[v] = result.io.pages_read;
        report->AddRow()
            .Set("dataset", dataset)
            .Set("query", spec.name)
            .Set("combo", combo.Label())
            .Set("variant", kVariants[v].name)
            .Set("pointer_heavy", PointerHeavy(combo))
            .Metrics(result);
      }
      double speedup = ms[2] > 0 ? ms[0] / ms[2] : 1.0;
      double fixed_effect = ms[1] > 0 ? ms[0] / ms[1] : 1.0;
      double saved =
          pages[0] > 0
              ? 1.0 - static_cast<double>(pages[2]) /
                          static_cast<double>(pages[0])
              : 0.0;
      if (PointerHeavy(combo)) {
        acc->log_speedup_sum += std::log(speedup);
        acc->log_fixed_effect_sum += std::log(fixed_effect);
        ++acc->speedup_n;
      }
      acc->fixed_pages += pages[0];
      acc->delta_pages += pages[2];
      table.AddRow({spec.name, combo.Label(), std::to_string(count),
                    util::FormatDouble(ms[0], 2), util::FormatDouble(ms[1], 2),
                    util::FormatDouble(ms[2], 2),
                    util::FormatDouble(speedup, 2) + "x",
                    util::FormatDouble(100.0 * saved, 1) + "%"});
    }
  }
  table.Print();
  std::printf("\n");
}

void Main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  double xmark_scale = EnvScale("VIEWJOIN_XMARK_SCALE", smoke ? 0.2 : 2.0);
  int64_t nasa_datasets = static_cast<int64_t>(
      EnvScale("VIEWJOIN_NASA_DATASETS", smoke ? 100 : 800));
  int repeats = smoke ? 2 : 3;

  JsonReport report("simd");
  report.ParseArgs(static_cast<int>(rest.size()), rest.data());
  report.SetMeta("xmark_scale", xmark_scale);
  report.SetMeta("nasa_datasets", static_cast<uint64_t>(nasa_datasets));
  report.SetMeta("repeats", repeats);
  report.SetMeta("smoke", static_cast<uint64_t>(smoke ? 1 : 0));
  report.SetMeta("simd_backend", storage::simd::BackendName());

  std::printf("Block cursor / SIMD / compression ablation (SIMD backend: %s)\n",
              storage::simd::BackendName());
  std::printf("variants: scalar_fixed | block_fixed | block_delta\n\n");

  Accumulator acc;
  RunDataset("XMark path queries", "xmark", xmark_scale, /*nasa=*/false,
             XmarkPathQueries(), repeats, &report, &acc);
  RunDataset("NASA path queries", "nasa",
             static_cast<double>(nasa_datasets), /*nasa=*/true,
             NasaPathQueries(), repeats, &report, &acc);

  double geomean =
      acc.speedup_n > 0 ? std::exp(acc.log_speedup_sum / acc.speedup_n) : 1.0;
  double fixed_effect =
      acc.speedup_n > 0 ? std::exp(acc.log_fixed_effect_sum / acc.speedup_n)
                        : 1.0;
  double page_reduction =
      acc.fixed_pages > 0
          ? 1.0 - static_cast<double>(acc.delta_pages) /
                      static_cast<double>(acc.fixed_pages)
          : 0.0;
  report.SetMeta("geomean_block_speedup_pointer_heavy", geomean);
  report.SetMeta("geomean_block_fixed_format_speedup", fixed_effect);
  report.SetMeta("delta_page_read_reduction", page_reduction);
  std::printf(
      "geomean block/scalar cursor speedup (pointer-heavy combos): %.2fx\n",
      geomean);
  std::printf(
      "  of which format held fixed (block effect alone):          %.2fx\n",
      fixed_effect);
  std::printf(
      "page reads saved by delta compression (all combos):         %.1f%%\n",
      100.0 * page_reduction);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
