// Ablation study (ours; motivated by the design choices in DESIGN.md):
//  (a) what the LE pointer classes buy ViewJoin — entries skipped via
//      following-pointer jumps and via child-pointer extension, per scheme;
//  (b) the λ knob of the view-selection cost model — how the selected view
//      set and its evaluation cost move as λ sweeps from 0 (pure size) to 1
//      (pure join cost, the paper's setting).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "util/check.h"
#include "util/table_printer.h"
#include "view/selection.h"

namespace viewjoin::bench {
namespace {

void PointerAblation(BenchContext* context, JsonReport* report) {
  std::printf("-- (a) pointer-skipping ablation: VJ across schemes --\n");
  util::TablePrinter table({"query", "scheme", "ms", "entries scanned",
                            "entries skipped", "pointer jumps", "skip %"});
  std::vector<QuerySpec> queries = NasaQueries();
  for (const QuerySpec& spec : queries) {
    tpq::TreePattern query = ParseQuery(spec.xpath);
    std::vector<tpq::TreePattern> split = SplitViews(query, 2);
    for (storage::Scheme scheme :
         {storage::Scheme::kElement, storage::Scheme::kLinkedElement,
          storage::Scheme::kLinkedElementPartial}) {
      Combo combo{core::Algorithm::kViewJoin, scheme};
      core::RunResult r =
          context->Run(query, context->Views(split, scheme), combo);
      double denom = static_cast<double>(r.stats.entries_scanned +
                                         r.stats.entries_skipped);
      table.AddRow({spec.name, storage::SchemeName(scheme),
                    util::FormatDouble(r.total_ms, 2),
                    std::to_string(r.stats.entries_scanned),
                    std::to_string(r.stats.entries_skipped),
                    std::to_string(r.stats.pointer_jumps),
                    util::FormatDouble(
                        denom > 0 ? 100.0 * r.stats.entries_skipped / denom
                                  : 0.0,
                        1)});
      report->AddRow()
          .Set("study", "pointer_skipping")
          .Set("query", spec.name)
          .Set("scheme", storage::SchemeName(scheme))
          .Set("entries_scanned", r.stats.entries_scanned)
          .Set("entries_skipped", r.stats.entries_skipped)
          .Set("pointer_jumps", r.stats.pointer_jumps)
          .Metrics(r);
    }
  }
  table.Print();
  std::printf("\n");
}

void LambdaSweep(BenchContext* context, JsonReport* report) {
  std::printf("-- (b) λ sweep of the selection cost model --\n");
  tpq::TreePattern query = ParseQuery(Table2Query());
  std::vector<tpq::TreePattern> candidates;
  for (const std::string& path : Table2CandidateViews()) {
    candidates.push_back(ParseQuery(path));
  }
  util::TablePrinter table({"lambda", "selected set", "VJ+LE_p ms"});
  Combo combo{core::Algorithm::kViewJoin,
              storage::Scheme::kLinkedElementPartial};
  for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    view::SelectionOptions options;
    options.lambda = lambda;
    view::SelectionResult selection =
        view::SelectViews(context->doc(), query, candidates, options);
    VJ_CHECK(selection.covers);
    std::string set;
    std::vector<tpq::TreePattern> picked;
    for (size_t i : selection.selected) {
      if (!set.empty()) set += ",";
      set += "v" + std::to_string(i + 1);
      picked.push_back(candidates[i]);
    }
    core::RunResult r =
        context->Run(query, context->Views(picked, combo.scheme), combo);
    table.AddRow({util::FormatDouble(lambda, 2), set,
                  util::FormatDouble(r.total_ms, 2)});
    report->AddRow()
        .Set("study", "lambda_sweep")
        .Set("lambda", lambda)
        .Set("selected", set)
        .Metrics(r);
  }
  table.Print();
  std::printf("\n");
}

void Main(int argc, char** argv) {
  int64_t nasa_datasets =
      static_cast<int64_t>(EnvScale("VIEWJOIN_NASA_DATASETS", 800));
  JsonReport report("ablation_pointers");
  report.ParseArgs(argc, argv);
  report.SetMeta("nasa_datasets", static_cast<uint64_t>(nasa_datasets));
  auto context = BenchContext::Nasa(nasa_datasets);
  std::printf("Ablation benches (design-choice studies from DESIGN.md)\n\n");
  PrintBanner("NASA ablations", *context);
  PointerAblation(context.get(), &report);
  LambdaSweep(context.get(), &report);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
