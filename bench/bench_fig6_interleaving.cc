// Reproduces Fig. 6(a)/(b) + Table III: the impact of interleaving conditions
// (the number of inter-view edges between the query and its covering view
// set) on each technique. The same query is evaluated with four different
// view sets of decreasing interleaving (PV1-PV4 for the path query Np, and
// TV1-TV4 for the twig query Nt). Expectation from the paper: TS is flat
// (it ignores precomputed joins); IJ and VJ+LE/VJ+LE_p speed up as the
// number of inter-view edges drops.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "core/segmented_query.h"
#include "algo/query_binding.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace viewjoin::bench {
namespace {

int CountInterViewEdges(BenchContext* context, const tpq::TreePattern& query,
                        const std::vector<std::string>& views) {
  std::string error;
  auto binding = algo::QueryBinding::Bind(
      context->doc(), query,
      context->Views(views, storage::Scheme::kLinkedElement), &error);
  VJ_CHECK(binding.has_value()) << error;
  return core::BuildSegmentedQuery(*binding).inter_view_edges;
}

void RunSeries(const std::string& title, const std::string& series,
               BenchContext* context,
               const std::vector<InterleavingWorkload>& workloads,
               bool include_interjoin, JsonReport* report) {
  std::printf("-- %s --\n", title.c_str());
  std::vector<Combo> combos;
  if (include_interjoin) {
    combos.push_back({core::Algorithm::kInterJoin, storage::Scheme::kTuple});
  }
  combos.push_back({core::Algorithm::kTwigStack, storage::Scheme::kElement});
  combos.push_back({core::Algorithm::kViewJoin, storage::Scheme::kElement});
  combos.push_back({core::Algorithm::kViewJoin,
                    storage::Scheme::kLinkedElement});
  combos.push_back({core::Algorithm::kViewJoin,
                    storage::Scheme::kLinkedElementPartial});

  std::vector<std::string> header = {"view set", "#Cond"};
  for (const Combo& c : combos) header.push_back(c.Label() + " (ms)");
  util::TablePrinter table(header);

  for (const InterleavingWorkload& w : workloads) {
    tpq::TreePattern query = ParseQuery(w.query);
    int conds = CountInterViewEdges(context, query, w.views);
    VJ_CHECK_EQ(conds, w.expected_conditions)
        << w.name << ": inter-view edge count mismatch vs Table III";
    std::vector<std::string> row = {w.name, std::to_string(conds)};
    uint64_t count = 0;
    bool first = true;
    for (const Combo& combo : combos) {
      core::RunResult result = context->Run(
          query, context->Views(w.views, combo.scheme), combo);
      if (first) {
        count = result.match_count;
        first = false;
      } else {
        VJ_CHECK_EQ(result.match_count, count) << w.name << combo.Label();
      }
      row.push_back(util::FormatDouble(result.total_ms, 2));
      report->AddRow()
          .Set("series", series)
          .Set("view_set", w.name)
          .Set("inter_view_edges", conds)
          .Set("combo", combo.Label())
          .Metrics(result);
    }
    table.AddRow(row);
    std::printf("   %s: %llu matches\n", w.name.c_str(),
                static_cast<unsigned long long>(count));
  }
  table.Print();
  std::printf("\n");
}

void Main(int argc, char** argv) {
  int64_t nasa_datasets =
      static_cast<int64_t>(EnvScale("VIEWJOIN_NASA_DATASETS", 800));
  JsonReport report("fig6_interleaving");
  report.ParseArgs(argc, argv);
  report.SetMeta("nasa_datasets", static_cast<uint64_t>(nasa_datasets));
  auto context = BenchContext::Nasa(nasa_datasets);
  std::printf("Fig. 6 / Table III reproduction: interleaving conditions\n\n");
  PrintBanner("NASA interleaving study", *context);
  std::printf("Np = %s\nNt = %s\n\n",
              PathInterleavingWorkloads()[0].query.c_str(),
              TwigInterleavingWorkloads()[0].query.c_str());
  RunSeries("Fig. 6(a): path query Np with PV1-PV4", "path", context.get(),
            PathInterleavingWorkloads(), /*include_interjoin=*/true, &report);
  RunSeries("Fig. 6(b): twig query Nt with TV1-TV4", "twig", context.get(),
            TwigInterleavingWorkloads(), /*include_interjoin=*/false, &report);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
