#include "bench/workloads.h"

#include <cstdlib>

#include "util/check.h"

namespace viewjoin::bench {

using tpq::Axis;
using tpq::TreePattern;

std::vector<QuerySpec> XmarkQueries() {
  return {
      // -- path queries ------------------------------------------------
      {"Q1", "//people//person//name", true},
      {"Q2", "//open_auctions//open_auction//bidder//increase", true},
      {"Q5", "//closed_auctions//closed_auction//price", true},
      {"Q6", "//site//regions//item", true},
      {"Q18", "//open_auctions//open_auction//annotation//author", true},
      {"Q20", "//people//person//profile//interest", true},
      // -- twig queries ------------------------------------------------
      {"Q4", "//open_auctions//open_auction[//bidder//personref]//initial",
       false},
      {"Q8", "//people//person[//profile//interest]//name", false},
      {"Q9", "//person[//watches//watch]//emailaddress", false},
      {"Q10", "//people//person[//profile[//education]//age]//gender", false},
      {"Q11", "//open_auctions//open_auction[//bidder//increase]//initial",
       false},
      {"Q13", "//regions//item[//incategory]//description//parlist//listitem",
       false},
      {"Q14", "//item[//mailbox//mail]//description//text//keyword", false},
      {"Q19", "//regions//item[//location]//mailbox//mail", false},
  };
}

namespace {

std::vector<QuerySpec> Filter(std::vector<QuerySpec> all, bool want_path) {
  std::vector<QuerySpec> out;
  for (QuerySpec& q : all) {
    if (q.is_path == want_path) out.push_back(std::move(q));
  }
  return out;
}

}  // namespace

std::vector<QuerySpec> XmarkPathQueries() {
  return Filter(XmarkQueries(), true);
}

std::vector<QuerySpec> XmarkTwigQueries() {
  return Filter(XmarkQueries(), false);
}

std::vector<QuerySpec> NasaQueries() {
  return {
      {"N1", "//field//footnote//para", true},
      {"N2", "//dataset//definition//footnote", true},
      {"N3", "//revision/creator/lastname", true},
      {"N4", "//reference//journal//date//year", true},
      {"N5", "//dataset[//definition/footnote]//history//revision//para",
       false},
      {"N6", "//journal[//suffix][title]/date/year", false},
      {"N7", "//dataset[//field//footnote]//journal[//bibcode]//lastname",
       false},
      {"N8", "//descriptions[//observatory]/description//para", false},
  };
}

std::vector<QuerySpec> NasaPathQueries() {
  return Filter(NasaQueries(), true);
}

std::vector<QuerySpec> NasaTwigQueries() {
  return Filter(NasaQueries(), false);
}

std::vector<InterleavingWorkload> PathInterleavingWorkloads() {
  const std::string np =
      "//dataset//tableHead//field//definition//footnote//para";
  return {
      {"PV1", np,
       {"//dataset//field//footnote", "//tableHead//definition//para"}, 5},
      {"PV2", np,
       {"//dataset//field//footnote//para", "//tableHead//definition"}, 4},
      {"PV3", np,
       {"//dataset//field", "//tableHead//definition//footnote//para"}, 3},
      {"PV4", np,
       {"//tableHead", "//dataset//field//definition//footnote//para"}, 2},
  };
}

std::vector<InterleavingWorkload> TwigInterleavingWorkloads() {
  const std::string nt =
      "//dataset//tableHead[//tableLink//title]//field//definition//para";
  return {
      {"TV1", nt,
       {"//dataset[//tableLink]//definition", "//tableHead//title",
        "//field//para"},
       6},
      {"TV2", nt,
       {"//dataset//tableHead", "//field//para", "//tableLink//title",
        "//definition"},
       4},
      {"TV3", nt,
       {"//dataset//definition//para", "//tableHead//field",
        "//tableLink//title"},
       3},
      {"TV4", nt,
       {"//field//definition//para", "//dataset//tableHead",
        "//tableLink//title"},
       2},
  };
}

std::vector<std::string> Table2CandidateViews() {
  return {
      "//dataset//definition",      // v1
      "//dataset//tableHead",       // v2
      "//field//para",              // v3
      "//definition",               // v4
      "//tableLink//title",         // v5
      "//field//definition//para",  // v6
  };
}

std::string Table2Query() {
  return "//dataset//tableHead[//tableLink//title]//field//definition//para";
}

std::vector<TreePattern> SplitViews(const TreePattern& query, int pieces) {
  VJ_CHECK_GT(pieces, 0);
  size_t nq = query.size();
  // Depth of each query node.
  std::vector<int> depth(nq, 0);
  int max_depth = 0;
  for (size_t q = 1; q < nq; ++q) {
    depth[q] = depth[static_cast<size_t>(query.node(static_cast<int>(q)).parent)] + 1;
    if (depth[q] > max_depth) max_depth = depth[q];
  }
  // Band assignment by depth.
  auto band_of = [&](size_t q) {
    return static_cast<int>(static_cast<long>(depth[q]) * pieces /
                            (max_depth + 1));
  };
  // Build induced views per band; extra views for bands with several roots.
  std::vector<TreePattern> views;
  std::vector<int> view_index(nq, -1);
  std::vector<int> view_node(nq, -1);
  std::vector<int> node_band(nq);
  for (size_t q = 0; q < nq; ++q) node_band[q] = band_of(q);
  for (size_t q = 0; q < nq; ++q) {
    int band = node_band[q];
    int anc = query.node(static_cast<int>(q)).parent;
    while (anc >= 0 && node_band[static_cast<size_t>(anc)] != band) {
      anc = query.node(anc).parent;
    }
    if (anc < 0) {
      // Band root: open a fresh view for every connected band component.
      views.emplace_back();
      int vi = static_cast<int>(views.size()) - 1;
      view_index[q] = vi;
      view_node[q] = views[static_cast<size_t>(vi)].AddNode(
          query.node(static_cast<int>(q)).tag, -1, Axis::kDescendant);
      continue;
    }
    bool direct = query.node(static_cast<int>(q)).parent == anc;
    Axis axis =
        direct ? query.node(static_cast<int>(q)).incoming : Axis::kDescendant;
    int vi = view_index[static_cast<size_t>(anc)];
    view_index[q] = vi;
    view_node[q] = views[static_cast<size_t>(vi)].AddNode(
        query.node(static_cast<int>(q)).tag,
        view_node[static_cast<size_t>(anc)], axis);
  }
  return views;
}

std::vector<TreePattern> PairViews(const TreePattern& query) {
  return SplitViews(query, (static_cast<int>(query.size()) + 1) / 2);
}

double EnvScale(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value || parsed <= 0) return fallback;
  return parsed;
}

}  // namespace viewjoin::bench
