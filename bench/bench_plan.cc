// Planner accuracy benchmark: over the Fig. 5 path and twig workloads
// (XMark and NASA), runs every forced algorithm × scheme combination, then
// lets --algo auto plan the same query with all scheme twins materialized,
// and reports whether the planner picked the empirically fastest algorithm.
// Emits BENCH_plan.json via --json; `--smoke` shrinks the datasets for CI.

#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "core/engine.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace viewjoin::bench {
namespace {

using core::Algorithm;

struct Tally {
  int queries = 0;
  int optimal = 0;       // auto picked the fastest algorithm
  int near_optimal = 0;  // auto's runtime within 10% of the best forced combo
};

void RunWorkload(const std::string& dataset, BenchContext* context,
                 const std::vector<QuerySpec>& queries, int repeats,
                 JsonReport* report, Tally* tally) {
  util::TablePrinter table({"query", "matches", "fastest", "best (ms)",
                            "auto pick", "auto (ms)", "optimal"});
  for (const QuerySpec& spec : queries) {
    tpq::TreePattern query = ParseQuery(spec.xpath);
    std::vector<tpq::TreePattern> split = PairViews(query);
    // Materialize every scheme up front: the forced combos need their own
    // sets and the planner prices the same twins through the catalog.
    for (storage::Scheme s :
         {storage::Scheme::kElement, storage::Scheme::kTuple,
          storage::Scheme::kLinkedElement,
          storage::Scheme::kLinkedElementPartial}) {
      context->Views(split, s);
    }
    std::vector<Combo> combos = spec.is_path ? AllCombos() : ListCombos();
    double best_ms = std::numeric_limits<double>::infinity();
    Algorithm best_algorithm = Algorithm::kViewJoin;
    std::string best_label;
    std::map<Algorithm, double> best_by_algorithm;
    uint64_t count = 0, hash = 0;
    bool first = true;
    for (const Combo& combo : combos) {
      core::RunResult result = context->Run(
          query, context->Views(split, combo.scheme), combo,
          algo::OutputMode::kMemory, repeats);
      if (first) {
        count = result.match_count;
        hash = result.result_hash;
        first = false;
      } else {
        VJ_CHECK(result.match_count == count && result.result_hash == hash)
            << spec.name << " " << combo.Label() << " diverged";
      }
      auto [it, fresh] =
          best_by_algorithm.emplace(combo.algorithm, result.total_ms);
      if (!fresh) it->second = std::min(it->second, result.total_ms);
      if (result.total_ms < best_ms) {
        best_ms = result.total_ms;
        best_algorithm = combo.algorithm;
        best_label = combo.Label();
      }
      report->AddRow()
          .Set("dataset", dataset)
          .Set("query", spec.name)
          .Set("combo", combo.Label())
          .Metrics(result);
    }
    core::RunResult auto_run = context->Run(
        query, context->Views(split, storage::Scheme::kLinkedElement),
        {Algorithm::kAuto, storage::Scheme::kLinkedElement},
        algo::OutputMode::kMemory, repeats);
    VJ_CHECK(auto_run.match_count == count && auto_run.result_hash == hash)
        << spec.name << " auto diverged";
    const Algorithm picked = auto_run.plan.algorithm;
    // "Picked the empirically fastest algorithm": the picked algorithm's own
    // best forced time is within 5% of the overall best — forced combos that
    // close are retried-measurement ties, and either side of a tie IS the
    // empirically fastest. `strict` records exact label equality for
    // reference (it flips with timer noise on tied queries).
    const bool strict = picked == best_algorithm;
    const double picked_best_ms = best_by_algorithm.count(picked) != 0
                                      ? best_by_algorithm[picked]
                                      : std::numeric_limits<double>::infinity();
    const bool optimal = strict || picked_best_ms <= 1.05 * best_ms;
    const bool near_optimal =
        optimal || auto_run.total_ms <= 1.1 * best_ms;
    tally->queries += 1;
    tally->optimal += optimal ? 1 : 0;
    tally->near_optimal += near_optimal ? 1 : 0;
    report->AddRow()
        .Set("dataset", dataset)
        .Set("query", spec.name)
        .Set("combo", "auto")
        .Set("picked_algorithm", core::AlgorithmName(picked))
        .Set("fastest_algorithm", core::AlgorithmName(best_algorithm))
        .Set("fastest_combo", best_label)
        .Set("best_forced_ms", best_ms)
        .Set("picked_best_forced_ms", picked_best_ms)
        .Set("optimal", optimal)
        .Set("strict_optimal", strict)
        .Set("near_optimal", near_optimal)
        .Set("estimated_cost", auto_run.plan.estimated_cost)
        .Set("plan", auto_run.plan.text)
        .Metrics(auto_run);
    table.AddRow({spec.name, std::to_string(count), best_label,
                  util::FormatDouble(best_ms, 3),
                  core::AlgorithmName(picked),
                  util::FormatDouble(auto_run.total_ms, 3),
                  optimal ? "yes" : (near_optimal ? "near" : "NO")});
  }
  table.Print();
  std::printf("\n");
}

void Main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  double xmark_scale = EnvScale("VIEWJOIN_XMARK_SCALE", smoke ? 0.2 : 2.0);
  int64_t nasa_datasets = static_cast<int64_t>(
      EnvScale("VIEWJOIN_NASA_DATASETS", smoke ? 100 : 800));
  int repeats = smoke ? 2 : 5;

  JsonReport report("plan");
  report.ParseArgs(static_cast<int>(rest.size()), rest.data());
  report.SetMeta("xmark_scale", xmark_scale);
  report.SetMeta("nasa_datasets", static_cast<uint64_t>(nasa_datasets));
  report.SetMeta("repeats", repeats);
  report.SetMeta("smoke", static_cast<uint64_t>(smoke ? 1 : 0));

  std::printf("Planner accuracy over the Fig. 5 workloads:\n");
  std::printf("every forced combo vs --algo auto (all schemes available)\n\n");

  Tally tally;
  auto xmark = BenchContext::Xmark(xmark_scale);
  PrintBanner("XMark path queries", *xmark);
  RunWorkload("xmark", xmark.get(), XmarkPathQueries(), repeats, &report,
              &tally);
  PrintBanner("XMark twig queries", *xmark);
  RunWorkload("xmark", xmark.get(), XmarkTwigQueries(), repeats, &report,
              &tally);

  auto nasa = BenchContext::Nasa(nasa_datasets);
  PrintBanner("NASA path queries", *nasa);
  RunWorkload("nasa", nasa.get(), NasaPathQueries(), repeats, &report,
              &tally);
  PrintBanner("NASA twig queries", *nasa);
  RunWorkload("nasa", nasa.get(), NasaTwigQueries(), repeats, &report,
              &tally);

  const double optimal_fraction =
      tally.queries > 0 ? static_cast<double>(tally.optimal) / tally.queries
                        : 0;
  const double near_fraction =
      tally.queries > 0
          ? static_cast<double>(tally.near_optimal) / tally.queries
          : 0;
  report.SetMeta("queries", static_cast<uint64_t>(tally.queries));
  report.SetMeta("auto_optimal", static_cast<uint64_t>(tally.optimal));
  report.SetMeta("auto_optimal_fraction", optimal_fraction);
  report.SetMeta("auto_near_optimal_fraction", near_fraction);
  std::printf(
      "planner picked the fastest algorithm on %d/%d queries (%.0f%%); "
      "within 10%% of the best combo on %d/%d (%.0f%%)\n",
      tally.optimal, tally.queries, 100 * optimal_fraction,
      tally.near_optimal, tally.queries, 100 * near_fraction);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
