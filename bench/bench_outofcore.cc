// Out-of-core sweep: the same XMark workload answered three ways — base
// document in memory (baseline), paged on disk through a deliberately tiny
// buffer pool, and paged on disk with async read-ahead. Expectations: every
// variant produces bit-identical solutions; disk variants pay real page
// traffic (pages_read > 0 on cold scans); read-ahead converts demand misses
// into prefetch hits, so disk+RA never demand-misses more than disk alone
// and its hit rate is visible in the JSON (`prefetch_hits` / issued).
//
// Knobs: VIEWJOIN_XMARK_SCALE (default 2.0), VIEWJOIN_OOC_POOL_PAGES
// (default 32 — far below the store's page count, forcing the out-of-core
// regime), VIEWJOIN_OOC_READAHEAD (default 8).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "core/engine.h"
#include "data/xmark_generator.h"
#include "storage/materialized_view.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace viewjoin::bench {
namespace {

struct Variant {
  const char* name;
  core::Engine* engine;
};

std::vector<const storage::MaterializedView*> MakeViews(
    core::Engine& engine, const std::vector<tpq::TreePattern>& patterns,
    storage::Scheme scheme) {
  std::vector<const storage::MaterializedView*> views;
  for (const tpq::TreePattern& pattern : patterns) {
    views.push_back(engine.AddView(pattern, scheme));
  }
  return views;
}

void Main(int argc, char** argv) {
  std::printf(
      "Out-of-core base document: memory vs paged-disk vs "
      "paged-disk + read-ahead (cold scans)\n\n");
  double xmark_scale = EnvScale("VIEWJOIN_XMARK_SCALE", 2.0);
  size_t pool_pages =
      static_cast<size_t>(EnvScale("VIEWJOIN_OOC_POOL_PAGES", 32));
  size_t readahead =
      static_cast<size_t>(EnvScale("VIEWJOIN_OOC_READAHEAD", 8));
  JsonReport report("outofcore");
  report.ParseArgs(argc, argv);
  report.SetMeta("xmark_scale", xmark_scale);
  report.SetMeta("doc_pool_pages", static_cast<uint64_t>(pool_pages));
  report.SetMeta("readahead_pages", static_cast<uint64_t>(readahead));

  xml::Document doc = data::GenerateXmark({.scale = xmark_scale});
  std::printf("document: %zu nodes (xmark scale %.2f), doc pool %zu pages, "
              "read-ahead %zu\n\n",
              doc.NodeCount(), xmark_scale, pool_pages, readahead);

  core::Engine memory(&doc, "/tmp/vj_ooc_memory.db");
  core::EngineOptions disk_options;
  disk_options.doc_mode = core::DocMode::kDisk;
  disk_options.doc_pool_pages = pool_pages;
  core::Engine disk(&doc, "/tmp/vj_ooc_disk.db", disk_options);
  disk_options.readahead_pages = readahead;
  core::Engine disk_ra(&doc, "/tmp/vj_ooc_disk_ra.db", disk_options);
  VJ_CHECK(disk.doc_store() != nullptr) << disk.doc_store_status().ToString();
  VJ_CHECK(disk_ra.doc_store() != nullptr)
      << disk_ra.doc_store_status().ToString();
  report.SetMeta("doc_store_pages",
                 static_cast<uint64_t>(disk.doc_store()->Stats().pages_written));

  Variant variants[] = {{"memory", &memory},
                        {"disk", &disk},
                        {"disk+ra", &disk_ra}};

  // TwigStack over the base document is the pure tag-list-scan workload:
  // every query tag streams its full list through the doc pool.
  Combo ts{core::Algorithm::kTwigStack, storage::Scheme::kLinkedElement};
  util::TablePrinter table({"query", "matches", "mem ms", "disk ms",
                            "disk+ra ms", "disk pages", "ra hit rate"});
  uint64_t misses_disk = 0, misses_ra = 0, hits_ra = 0, issued_ra = 0;
  for (const QuerySpec& spec : XmarkQueries()) {
    tpq::TreePattern query = ParseQuery(spec.xpath);
    std::vector<tpq::TreePattern> split = PairViews(query);
    core::RunOptions run;
    run.algorithm = ts.algorithm;
    run.cold_cache = true;  // DropCaches before each run: every scan is cold
    core::RunResult results[3];
    for (int v = 0; v < 3; ++v) {
      auto views = MakeViews(*variants[v].engine, split, ts.scheme);
      results[v] = variants[v].engine->Execute(query, views, run);
      VJ_CHECK(results[v].ok)
          << spec.name << " " << variants[v].name << ": " << results[v].error;
      report.AddRow()
          .Set("query", spec.name)
          .Set("variant", variants[v].name)
          .Metrics(results[v]);
    }
    // Disk placement must not change a single solution.
    VJ_CHECK_EQ(results[0].result_hash, results[1].result_hash) << spec.name;
    VJ_CHECK_EQ(results[0].result_hash, results[2].result_hash) << spec.name;
    misses_disk += results[1].io.pool_misses;
    misses_ra += results[2].io.pool_misses;
    hits_ra += results[2].io.prefetch_hits;
    issued_ra += results[2].io.prefetch_issued;
    double rate = results[2].io.prefetch_issued == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(results[2].io.prefetch_hits) /
                            static_cast<double>(results[2].io.prefetch_issued);
    table.AddRow({spec.name, std::to_string(results[0].match_count),
                  util::FormatDouble(results[0].total_ms, 3),
                  util::FormatDouble(results[1].total_ms, 3),
                  util::FormatDouble(results[2].total_ms, 3),
                  std::to_string(results[1].io.pages_read),
                  util::FormatDouble(rate, 1) + "%"});
  }
  table.Print();

  // Read-ahead must actually fire and must actually help: prefetched pages
  // arrive before the cursor asks, so demand misses can only go down.
  VJ_CHECK_GT(issued_ra, 0u);
  VJ_CHECK_GT(hits_ra, 0u);
  VJ_CHECK_LE(misses_ra, misses_disk);
  double hit_rate = 100.0 * static_cast<double>(hits_ra) /
                    static_cast<double>(issued_ra);
  std::printf("\nread-ahead: %llu issued, %llu hits (%.1f%%); demand misses "
              "%llu -> %llu\n",
              static_cast<unsigned long long>(issued_ra),
              static_cast<unsigned long long>(hits_ra), hit_rate,
              static_cast<unsigned long long>(misses_disk),
              static_cast<unsigned long long>(misses_ra));
  report.SetMeta("prefetch_hit_rate_pct", hit_rate);
  report.SetMeta("demand_misses_disk", misses_disk);
  report.SetMeta("demand_misses_disk_ra", misses_ra);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
