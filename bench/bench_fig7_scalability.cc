// Reproduces Fig. 7: scalability of ViewJoin (VJ+LE) on XMark documents of
// increasing size — seven scale steps standing in for the paper's 100-700 MB
// documents. Reports, per scale: document size, total processing time, I/O
// time (paper: <15% of total), and the memory working set of the join
// (paper: linear trend, <20 MB at 700 MB).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "util/table_printer.h"
#include "xml/writer.h"

namespace viewjoin::bench {
namespace {

void Main(int argc, char** argv) {
  double base = EnvScale("VIEWJOIN_XMARK_SCALE", 2.0) *
                EnvScale("VIEWJOIN_FIG7_BASE", 0.5);
  int steps = static_cast<int>(EnvScale("VIEWJOIN_FIG7_STEPS", 7));
  JsonReport report("fig7_scalability");
  report.ParseArgs(argc, argv);
  report.SetMeta("base_scale", base);
  report.SetMeta("steps", steps);
  std::printf("Fig. 7 reproduction: VJ+LE scalability on XMark\n");
  std::printf("(scale steps 1..%d stand in for the paper's 100-700 MB)\n\n",
              steps);

  const std::vector<QuerySpec> queries = {
      {"Q11", "//open_auctions//open_auction[//bidder//increase]//initial",
       false},
      {"Q19", "//regions//item[//location]//mailbox//mail", false},
  };
  Combo combo{core::Algorithm::kViewJoin, storage::Scheme::kLinkedElement};

  for (const QuerySpec& spec : queries) {
    std::printf("-- query %s = %s --\n", spec.name.c_str(),
                spec.xpath.c_str());
    util::TablePrinter table({"scale", "elements", "doc (MB)", "matches",
                              "total (ms)", "I/O (ms)", "I/O share",
                              "join memory (KB)"});
    for (int step = 1; step <= steps; ++step) {
      auto context = BenchContext::Xmark(base * step);
      tpq::TreePattern query = ParseQuery(spec.xpath);
      std::vector<tpq::TreePattern> split = SplitViews(query, 2);
      core::RunResult result =
          context->Run(query, context->Views(split, combo.scheme), combo);
      double doc_mb = static_cast<double>(xml::SerializedSize(
                          context->doc(), {.synthetic_text = true})) /
                      (1024.0 * 1024.0);
      // Working set: buffered F entries (16 B each: label + entry index)
      // plus one stack label per open level and the cursor state.
      double mem_kb =
          static_cast<double>(result.stats.peak_buffered * 16 +
                              query.size() * 64) /
          1024.0;
      table.AddRow({std::to_string(step),
                    std::to_string(context->doc().NodeCount()),
                    util::FormatDouble(doc_mb, 1),
                    std::to_string(result.match_count),
                    util::FormatDouble(result.total_ms, 2),
                    util::FormatDouble(result.io_ms, 2),
                    util::FormatDouble(
                        result.total_ms > 0
                            ? 100.0 * result.io_ms / result.total_ms
                            : 0.0,
                        1) + "%",
                    util::FormatDouble(mem_kb, 1)});
      report.AddRow()
          .Set("query", spec.name)
          .Set("scale_step", step)
          .Set("elements", static_cast<uint64_t>(context->doc().NodeCount()))
          .Set("doc_mb", doc_mb)
          .Set("join_memory_kb", mem_kb)
          .Metrics(result);
    }
    table.Print();
    std::printf("\n");
  }
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
