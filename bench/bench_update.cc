// Update bench: what incremental view maintenance buys over rebuilding.
//
// Two sections, one row group each in the JSON report:
//   1. maintain — a persistent engine holds all 14 XMark queries as
//      standing views; a localized insert/delete batch (bidders entering
//      and leaving open auctions) mutates the live document and the views
//      are delta-maintained through one ApplyUpdates transaction: the
//      three bidder-area views (Q2, Q4, Q11) take a sorted merge, the
//      other eleven are recognized as untouched and cost nothing. The
//      same 14 views are then re-materialized from scratch over the same
//      mutated document — what a system without delta tracking must do,
//      since it cannot know which views an update left stale — and the
//      row records both wall times and the speedup (acceptance bar: delta
//      maintenance >= 5x faster). A verify row per query proves both
//      paths produce the identical match set (order-independent result
//      hash).
//   2. scaling — successive batches of growing op counts against the
//      delta-maintained store, recording wall time per batch and per op to
//      show maintenance cost tracks the delta, not the document.
//
// `--smoke` shrinks the document and batches for CI; `--json PATH` emits
// the machine-readable report (schema in bench/README.md).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "core/engine.h"
#include "data/xmark_generator.h"
#include "storage/materialized_view.h"
#include "util/check.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "xml/document.h"
#include "xml/parser.h"

namespace viewjoin::bench {
namespace {

using storage::MaterializedView;
using storage::Scheme;

constexpr const char* kDeltaPath = "/tmp/viewjoin_bench_update_delta.db";
constexpr const char* kRebuildPath = "/tmp/viewjoin_bench_update_rebuild.db";

/// Gap factor for the live document: wide enough that every insert of this
/// bench lands in an existing gap and no batch triggers a full relabel
/// (which would turn the measured delta merge into a rebuild).
constexpr uint32_t kLabelGap = 256;

void RemoveStore(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());
  std::remove((path + ".spill").c_str());
  std::remove((path + ".updatedelta").c_str());
}

/// A new bidder subtree, shaped like the generator's: grafting one under
/// an <open_auction> touches Q2 (//open_auction//bidder//increase), Q4
/// ([//bidder//personref]//initial) and Q11 ([//bidder//increase]
/// //initial) — and no other standing view.
xml::SubtreeSpec BidderFragment() {
  xml::ParseResult parsed = xml::ParseDocument(
      "<bidder><date/><time/><personref/><increase/></bidder>");
  VJ_CHECK(parsed.ok()) << parsed.error;
  return xml::SpecFromDocument(*parsed.document);
}

/// Anchor coordinates snapshotted from the pristine relabelled document.
/// Every batch consumes fresh entries from the BACK of the document — the
/// most recently generated auctions and bidders, the hot zone of a live
/// auction site — which also keeps the changed suffix of every affected
/// list short (the store reuses encoded pages below the first changed
/// label). Each original gap is used at most once: an insert spreads its
/// labels across the gap it lands in, so reusing a gap shrinks the window
/// geometrically and the bench would measure relabel storms instead of
/// delta merges.
struct UpdatePlan {
  std::vector<uint32_t> auction_starts;  // original open auctions
  std::vector<uint32_t> bidder_starts;   // start-ordered original bidders
  size_t auction = 0;  // one past the last auction not yet given a bidder
  size_t back = 0;     // one past the last undeleted tail bidder
};

UpdatePlan SnapshotPlan(const xml::Document& doc) {
  UpdatePlan plan;
  for (xml::NodeId n : doc.NodesOfTag(doc.FindTag("open_auction"))) {
    plan.auction_starts.push_back(doc.NodeLabel(n).start);
  }
  for (xml::NodeId n : doc.NodesOfTag(doc.FindTag("bidder"))) {
    plan.bidder_starts.push_back(doc.NodeLabel(n).start);
  }
  std::sort(plan.auction_starts.begin(), plan.auction_starts.end());
  std::sort(plan.bidder_starts.begin(), plan.bidder_starts.end());
  plan.auction = plan.auction_starts.size();
  plan.back = plan.bidder_starts.size();
  return plan;
}

/// One localized batch: `inserts` bidder grafts under distinct open
/// auctions (as first child, each auction used once, newest first), then
/// `deletes` removals of original bidders from the tail of the snapshot.
std::vector<core::UpdateOp> MakeBatch(UpdatePlan* plan, size_t inserts,
                                      size_t deletes) {
  std::vector<core::UpdateOp> ops;
  for (size_t i = 0; i < inserts; ++i) {
    VJ_CHECK(plan->auction > 0)
        << "document too small for the requested batch plan";
    core::UpdateOp op;
    op.kind = core::UpdateOp::Kind::kInsertSubtree;
    op.target_tag = "open_auction";
    op.target_start = plan->auction_starts[--plan->auction];
    op.subtree = BidderFragment();
    ops.push_back(std::move(op));
  }
  for (size_t i = 0; i < deletes; ++i) {
    VJ_CHECK(plan->back > 0)
        << "document too small for the requested delete plan";
    core::UpdateOp op;
    op.kind = core::UpdateOp::Kind::kDeleteSubtree;
    op.target_tag = "bidder";
    op.target_start = plan->bidder_starts[--plan->back];
    ops.push_back(std::move(op));
  }
  return ops;
}

void BenchMaintainVsRebuild(xml::Document* doc, size_t batch_inserts,
                            size_t batch_deletes, bool smoke, UpdatePlan* plan,
                            core::Engine* delta_engine,
                            std::vector<const MaterializedView*>* delta_views,
                            JsonReport* report) {
  std::vector<QuerySpec> specs = XmarkQueries();

  // Materialize the standing views on the delta-maintained engine.
  for (const QuerySpec& spec : specs) {
    delta_views->push_back(delta_engine->AddView(spec.xpath, Scheme::kElement));
  }

  // One mixed batch, delta-maintained through a single transaction.
  std::vector<core::UpdateOp> ops =
      MakeBatch(plan, batch_inserts, batch_deletes);
  util::Timer delta_timer;
  util::StatusOr<core::UpdateResult> maintained = delta_engine->ApplyUpdates(ops);
  double delta_ms = delta_timer.ElapsedMillis();
  VJ_CHECK(maintained.ok()) << maintained.status().message();
  VJ_CHECK(maintained->failed.empty()) << maintained->failed[0];
  VJ_CHECK(!maintained->relabeled)
      << "gap exhausted: widen kLabelGap or shrink the batch";
  // The batch touches the bidder area only: Q2, Q4 and Q11 take a delta
  // merge; the other eleven standing views have empty deltas and are
  // skipped, which is itself the point — untouched views cost nothing.
  VJ_CHECK(maintained->delta_maintained == 3)
      << "expected exactly Q2/Q4/Q11 to be delta-maintained, got "
      << maintained->delta_maintained;
  VJ_CHECK(maintained->fully_rebuilt == 0);
  VJ_CHECK(maintained->quarantined == 0);

  // Full re-materialization of the same views over the same mutated
  // document, into a fresh store.
  RemoveStore(kRebuildPath);
  core::Engine rebuild_engine(const_cast<const xml::Document*>(doc),
                              kRebuildPath);
  std::vector<const MaterializedView*> rebuild_views;
  util::Timer rebuild_timer;
  for (const QuerySpec& spec : specs) {
    rebuild_views.push_back(
        rebuild_engine.AddView(spec.xpath, Scheme::kElement));
  }
  double rebuild_ms = rebuild_timer.ElapsedMillis();

  // Both paths must agree exactly: same match count, same order-independent
  // match-set hash, for every standing query.
  util::TablePrinter verify({"query", "matches", "hash_delta", "hash_rebuild"});
  for (size_t i = 0; i < specs.size(); ++i) {
    tpq::TreePattern query = ParseQuery(specs[i].xpath);
    core::RunResult via_delta =
        delta_engine->Execute(query, {(*delta_views)[i]});
    core::RunResult via_rebuild =
        rebuild_engine.Execute(query, {rebuild_views[i]});
    VJ_CHECK(via_delta.ok) << via_delta.error;
    VJ_CHECK(via_rebuild.ok) << via_rebuild.error;
    VJ_CHECK(via_delta.match_count == via_rebuild.match_count)
        << specs[i].name << ": delta-maintained view diverged";
    VJ_CHECK(via_delta.result_hash == via_rebuild.result_hash)
        << specs[i].name << ": delta-maintained view diverged";
    char delta_hex[32], rebuild_hex[32];
    std::snprintf(delta_hex, sizeof(delta_hex), "%016llx",
                  static_cast<unsigned long long>(via_delta.result_hash));
    std::snprintf(rebuild_hex, sizeof(rebuild_hex), "%016llx",
                  static_cast<unsigned long long>(via_rebuild.result_hash));
    verify.AddRow({specs[i].name, std::to_string(via_delta.match_count),
                   delta_hex, rebuild_hex});
    report->AddRow()
        .Set("section", "verify")
        .Set("query", specs[i].name)
        .Set("matches", static_cast<uint64_t>(via_delta.match_count))
        .Set("hash_delta", delta_hex)
        .Set("hash_rebuild", rebuild_hex)
        .Set("hashes_match", true);
  }

  double speedup = delta_ms > 0 ? rebuild_ms / delta_ms : 0;
  std::printf("-- maintain: %zu ops, %zu views: delta merge %.2f ms vs full "
              "rebuild %.2f ms (%.1fx) --\n",
              ops.size(), specs.size(), delta_ms, rebuild_ms, speedup);
  verify.Print();
  std::printf("\n");
  report->AddRow()
      .Set("section", "maintain")
      .Set("ops", static_cast<uint64_t>(ops.size()))
      .Set("views", static_cast<uint64_t>(specs.size()))
      .Set("delta_ms", delta_ms)
      .Set("rebuild_ms", rebuild_ms)
      .Set("speedup", speedup)
      .Set("txn_epoch", maintained->txn_epoch)
      .Set("delta_maintained",
           static_cast<uint64_t>(maintained->delta_maintained))
      .Set("fully_rebuilt", static_cast<uint64_t>(maintained->fully_rebuilt));
  if (!smoke) {
    VJ_CHECK(speedup >= 5.0)
        << "delta maintenance only " << speedup
        << "x faster than full re-materialization (acceptance bar: 5x)";
  }
}

void BenchScaling(const std::vector<size_t>& batch_sizes, UpdatePlan* plan,
                  core::Engine* delta_engine, JsonReport* report) {
  util::TablePrinter table({"batch_ops", "wall_ms", "ms_per_op", "txn_epoch"});
  for (size_t inserts : batch_sizes) {
    std::vector<core::UpdateOp> ops = MakeBatch(plan, inserts, 0);
    util::Timer timer;
    util::StatusOr<core::UpdateResult> result = delta_engine->ApplyUpdates(ops);
    double wall_ms = timer.ElapsedMillis();
    VJ_CHECK(result.ok()) << result.status().message();
    VJ_CHECK(result->failed.empty()) << result->failed[0];
    VJ_CHECK(!result->relabeled);
    double per_op = ops.empty() ? 0 : wall_ms / static_cast<double>(ops.size());
    char wall[32], per[32];
    std::snprintf(wall, sizeof(wall), "%.2f", wall_ms);
    std::snprintf(per, sizeof(per), "%.3f", per_op);
    table.AddRow({std::to_string(ops.size()), wall, per,
                  std::to_string(result->txn_epoch)});
    report->AddRow()
        .Set("section", "scaling")
        .Set("ops", static_cast<uint64_t>(ops.size()))
        .Set("wall_ms", wall_ms)
        .Set("ms_per_op", per_op)
        .Set("txn_epoch", result->txn_epoch)
        .Set("delta_maintained",
             static_cast<uint64_t>(result->delta_maintained));
  }
  std::printf("-- scaling: delta maintenance wall time per batch size --\n");
  table.Print();
  std::printf("\n");
}

void Main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  double xmark_scale = EnvScale("VIEWJOIN_XMARK_SCALE", smoke ? 0.1 : 20.0);
  size_t batch_inserts = smoke ? 4 : 16;
  size_t batch_deletes = smoke ? 2 : 8;
  std::vector<size_t> scaling_sizes =
      smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 16, 48};

  JsonReport report("update");
  report.ParseArgs(static_cast<int>(args.size()), args.data());
  report.SetMeta("smoke", static_cast<uint64_t>(smoke ? 1 : 0));
  report.SetMeta("xmark_scale", xmark_scale);
  report.SetMeta("label_gap", static_cast<uint64_t>(kLabelGap));

  std::printf("Update bench: delta maintenance vs full re-materialization\n\n");

  data::XmarkOptions options;
  options.scale = xmark_scale;
  options.seed = 42;
  xml::Document doc = data::GenerateXmark(options);
  VJ_CHECK(doc.RelabelWithGap(kLabelGap).ok());

  RemoveStore(kDeltaPath);
  core::Engine delta_engine(&doc, kDeltaPath);
  std::vector<const MaterializedView*> delta_views;
  UpdatePlan plan = SnapshotPlan(doc);

  BenchMaintainVsRebuild(&doc, batch_inserts, batch_deletes, smoke, &plan,
                         &delta_engine, &delta_views, &report);
  BenchScaling(scaling_sizes, &plan, &delta_engine, &report);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
