#ifndef VIEWJOIN_BENCH_HARNESS_H_
#define VIEWJOIN_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/workloads.h"
#include "core/engine.h"
#include "data/nasa_generator.h"
#include "data/xmark_generator.h"
#include "storage/materialized_view.h"
#include "tpq/pattern.h"
#include "xml/document.h"

namespace viewjoin::bench {

/// One algorithm × storage-scheme combination (a column of Fig. 5).
struct Combo {
  core::Algorithm algorithm;
  storage::Scheme scheme;
  std::string Label() const;
};

/// The paper's seven combinations (Table I): IJ+T, TS+E, TS+LE, TS+LE_p,
/// VJ+E, VJ+LE, VJ+LE_p.
std::vector<Combo> AllCombos();
/// The six list-scheme combinations (no IJ+T) used for twig queries.
std::vector<Combo> ListCombos();

/// Shared benchmark fixture: a generated document, an engine over it, and a
/// cache of materialized views keyed by (pattern, scheme).
class BenchContext {
 public:
  /// Builds an XMark document at the given scale.
  static std::unique_ptr<BenchContext> Xmark(double scale, uint64_t seed = 42);
  /// Builds a NASA-like document.
  static std::unique_ptr<BenchContext> Nasa(int64_t datasets,
                                            uint64_t seed = 7);

  const xml::Document& doc() const { return doc_; }
  core::Engine& engine() { return *engine_; }

  /// Materializes (with caching) one view.
  const storage::MaterializedView* View(const std::string& xpath,
                                        storage::Scheme scheme);
  const storage::MaterializedView* View(const tpq::TreePattern& pattern,
                                        storage::Scheme scheme);

  /// Materializes a whole covering set.
  std::vector<const storage::MaterializedView*> Views(
      const std::vector<std::string>& xpaths, storage::Scheme scheme);
  std::vector<const storage::MaterializedView*> Views(
      const std::vector<tpq::TreePattern>& patterns, storage::Scheme scheme);

  /// Runs query × combo over `views`, repeating `repeats` times (cold cache
  /// each run, as the paper measures) and averaging. Returns the averaged
  /// result of the last run with total_ms/io_ms averaged.
  core::RunResult Run(const tpq::TreePattern& query,
                      const std::vector<const storage::MaterializedView*>& views,
                      const Combo& combo,
                      algo::OutputMode mode = algo::OutputMode::kMemory,
                      int repeats = 3);

  /// Convenience: split the query with SplitViews, materialize, run.
  core::RunResult RunSplit(const std::string& xpath, const Combo& combo,
                           int pieces = 2,
                           algo::OutputMode mode = algo::OutputMode::kMemory);

 private:
  explicit BenchContext(xml::Document doc);

  xml::Document doc_;
  std::string storage_path_;
  std::unique_ptr<core::Engine> engine_;
  std::map<std::pair<std::string, int>, const storage::MaterializedView*>
      view_cache_;
};

/// Parses an XPath, dying on failure.
tpq::TreePattern ParseQuery(const std::string& xpath);

/// Prints the standard bench banner (doc stats, knobs).
void PrintBanner(const std::string& title, const BenchContext& context);

}  // namespace viewjoin::bench

#endif  // VIEWJOIN_BENCH_HARNESS_H_
