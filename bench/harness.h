#ifndef VIEWJOIN_BENCH_HARNESS_H_
#define VIEWJOIN_BENCH_HARNESS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/workloads.h"
#include "core/engine.h"
#include "data/nasa_generator.h"
#include "data/xmark_generator.h"
#include "storage/materialized_view.h"
#include "tpq/pattern.h"
#include "xml/document.h"

namespace viewjoin::bench {

/// One algorithm × storage-scheme combination (a column of Fig. 5).
struct Combo {
  core::Algorithm algorithm;
  storage::Scheme scheme;
  std::string Label() const;
};

/// The paper's seven combinations (Table I): IJ+T, TS+E, TS+LE, TS+LE_p,
/// VJ+E, VJ+LE, VJ+LE_p.
std::vector<Combo> AllCombos();
/// The six list-scheme combinations (no IJ+T) used for twig queries.
std::vector<Combo> ListCombos();

/// Shared benchmark fixture: a generated document, an engine over it, and a
/// cache of materialized views keyed by (pattern, scheme).
class BenchContext {
 public:
  /// Builds an XMark document at the given scale.
  static std::unique_ptr<BenchContext> Xmark(double scale, uint64_t seed = 42);
  /// Builds a NASA-like document.
  static std::unique_ptr<BenchContext> Nasa(int64_t datasets,
                                            uint64_t seed = 7);

  const xml::Document& doc() const { return doc_; }
  core::Engine& engine() { return *engine_; }

  /// Materializes (with caching) one view.
  const storage::MaterializedView* View(const std::string& xpath,
                                        storage::Scheme scheme);
  const storage::MaterializedView* View(const tpq::TreePattern& pattern,
                                        storage::Scheme scheme);

  /// Materializes a whole covering set.
  std::vector<const storage::MaterializedView*> Views(
      const std::vector<std::string>& xpaths, storage::Scheme scheme);
  std::vector<const storage::MaterializedView*> Views(
      const std::vector<tpq::TreePattern>& patterns, storage::Scheme scheme);

  /// Runs query × combo over `views`, repeating `repeats` times and
  /// averaging. Every repeat starts from a cleared pool (cold cache + reset
  /// error latch, as the paper measures), and ALL reported stats — times,
  /// page/pool counters, retries — are averaged consistently over the
  /// repeats, not taken from the last run only. Match count/hash must be
  /// identical across repeats (checked); degraded/quarantine info is the
  /// union over repeats.
  core::RunResult Run(const tpq::TreePattern& query,
                      const std::vector<const storage::MaterializedView*>& views,
                      const Combo& combo,
                      algo::OutputMode mode = algo::OutputMode::kMemory,
                      int repeats = 3);

  /// Convenience: split the query with SplitViews, materialize, run.
  core::RunResult RunSplit(const std::string& xpath, const Combo& combo,
                           int pieces = 2,
                           algo::OutputMode mode = algo::OutputMode::kMemory);

 private:
  explicit BenchContext(xml::Document doc);

  xml::Document doc_;
  std::string storage_path_;
  std::unique_ptr<core::Engine> engine_;
  std::map<std::pair<std::string, int>, const storage::MaterializedView*>
      view_cache_;
};

/// Parses an XPath, dying on failure.
tpq::TreePattern ParseQuery(const std::string& xpath);

/// Prints the standard bench banner (doc stats, knobs).
void PrintBanner(const std::string& title, const BenchContext& context);

/// Machine-readable result emitter shared by every bench binary. Each bench
/// passes its argv through ParseArgs; when the user supplied `--json out.json`
/// (or `--json=out.json`), Write() serializes the report there as
///
///   {
///     "bench": "<name>",
///     "meta":  { "<key>": <value>, ... },           // dataset knobs etc.
///     "rows":  [ { "<key>": <value>, ... }, ... ]   // one object per result
///   }
///
/// Values are JSON numbers, strings or booleans. Row::Metrics() adds the
/// standard per-run fields (see bench/README.md for the full schema). Without
/// --json the report is disabled and Write() is a no-op, so benches call it
/// unconditionally.
class JsonReport {
 public:
  class Row {
   public:
    Row& Set(const std::string& key, const std::string& value);
    Row& Set(const std::string& key, const char* value);
    Row& Set(const std::string& key, double value);
    Row& Set(const std::string& key, uint64_t value);
    Row& Set(const std::string& key, int value);
    Row& Set(const std::string& key, bool value);
    /// Standard result fields: matches, result_hash (hex string), total_ms,
    /// io_ms, pages_read, pages_written, pool_hits, pool_misses,
    /// read_retries, degraded.
    Row& Metrics(const core::RunResult& result);

   private:
    friend class JsonReport;
    /// key -> already-JSON-encoded value, in insertion order.
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Consumes `--json PATH` / `--json=PATH` from the command line (the only
  /// flag benches take). Dies on an unknown argument so typos surface.
  void ParseArgs(int argc, char** argv);

  void set_path(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  template <typename T>
  void SetMeta(const std::string& key, T value) {
    meta_.Set(key, value);
  }

  /// Appends a row and returns it for chaining; the reference stays valid
  /// for the report's lifetime.
  Row& AddRow();

  /// Writes the report to the --json path (no-op when disabled).
  void Write() const;

 private:
  std::string bench_name_;
  std::string path_;
  Row meta_;
  std::deque<Row> rows_;
};

}  // namespace viewjoin::bench

#endif  // VIEWJOIN_BENCH_HARNESS_H_
