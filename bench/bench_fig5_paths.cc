// Reproduces Fig. 5(a)/(b): total processing time of path queries over
// materialized views, for all seven algorithm × storage-scheme combinations
// (IJ+T, TS+E, TS+LE, TS+LE_p, VJ+E, VJ+LE, VJ+LE_p) on the XMark and
// NASA-like datasets. Every combo's match set is cross-checked against the
// others; a mismatch aborts the run.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace viewjoin::bench {
namespace {

void RunDataset(const std::string& title, const std::string& dataset,
                BenchContext* context, const std::vector<QuerySpec>& queries,
                JsonReport* report) {
  PrintBanner(title, *context);
  std::vector<Combo> combos = AllCombos();
  std::vector<std::string> header = {"query", "matches"};
  for (const Combo& c : combos) header.push_back(c.Label() + " (ms)");
  util::TablePrinter table(header);
  std::vector<std::string> pheader = {"query"};
  for (const Combo& c : combos) pheader.push_back(c.Label() + " (pages)");
  util::TablePrinter pages(pheader);
  for (const QuerySpec& spec : queries) {
    tpq::TreePattern query = ParseQuery(spec.xpath);
    std::vector<tpq::TreePattern> split = PairViews(query);
    std::vector<std::string> row = {spec.name, ""};
    std::vector<std::string> prow = {spec.name};
    uint64_t count = 0;
    uint64_t hash = 0;
    bool first = true;
    for (const Combo& combo : combos) {
      core::RunResult result = context->Run(
          query, context->Views(split, combo.scheme), combo);
      if (first) {
        count = result.match_count;
        hash = result.result_hash;
        first = false;
      } else {
        VJ_CHECK(result.match_count == count && result.result_hash == hash)
            << spec.name << " " << combo.Label() << " diverged: "
            << result.match_count << " vs " << count;
      }
      row.push_back(util::FormatDouble(result.total_ms, 2));
      prow.push_back(std::to_string(result.io.pages_read));
      report->AddRow()
          .Set("dataset", dataset)
          .Set("query", spec.name)
          .Set("combo", combo.Label())
          .Metrics(result);
    }
    row[1] = std::to_string(count);
    table.AddRow(row);
    pages.AddRow(prow);
  }
  table.Print();
  std::printf("\npage reads per cold run (the I/O the LE pointers save):\n");
  pages.Print();
  std::printf("\n");
}

void Main(int argc, char** argv) {
  double xmark_scale = EnvScale("VIEWJOIN_XMARK_SCALE", 2.0);
  int64_t nasa_datasets =
      static_cast<int64_t>(EnvScale("VIEWJOIN_NASA_DATASETS", 800));
  JsonReport report("fig5_paths");
  report.ParseArgs(argc, argv);
  report.SetMeta("xmark_scale", xmark_scale);
  report.SetMeta("nasa_datasets", static_cast<uint64_t>(nasa_datasets));

  std::printf("Fig. 5(a)/(b) reproduction: path queries with path views\n");
  std::printf("(views per query: covering set of ~2-node subpattern views)\n\n");

  auto xmark = BenchContext::Xmark(xmark_scale);
  RunDataset("XMark path queries (Fig. 5a)", "xmark", xmark.get(),
             XmarkPathQueries(), &report);

  auto nasa = BenchContext::Nasa(nasa_datasets);
  RunDataset("NASA path queries (Fig. 5b)", "nasa", nasa.get(),
             NasaPathQueries(), &report);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
