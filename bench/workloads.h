#ifndef VIEWJOIN_BENCH_WORKLOADS_H_
#define VIEWJOIN_BENCH_WORKLOADS_H_

#include <string>
#include <vector>

#include "tpq/pattern.h"
#include "xml/document.h"

namespace viewjoin::bench {

/// One benchmark query.
struct QuerySpec {
  std::string name;   // "Q1", "N5", ...
  std::string xpath;  // the TPQ
  bool is_path = false;
};

/// The 14 XPath TPQs derived from the XMark XQuery benchmark (paper Section
/// VI: queries Q1-Q2, Q4-Q6, Q8-Q11, Q13-Q14, Q18-Q20 with value predicates
/// and XQuery-only features dropped; 6 path + 8 twig queries). The paper
/// publishes the exact derivations only on a defunct author page, so these
/// are re-derived from the public XMark query set against the same schema
/// regions; the path/twig split follows the paper's Table V (twigs: Q4, Q8,
/// Q9, Q10, Q11, Q13, Q14, Q19).
std::vector<QuerySpec> XmarkQueries();

/// Path subset of XmarkQueries() (Q1, Q2, Q5, Q6, Q18, Q20).
std::vector<QuerySpec> XmarkPathQueries();

/// Twig subset of XmarkQueries().
std::vector<QuerySpec> XmarkTwigQueries();

/// The paper's NASA queries N1-N8 (four paths, four twigs), verbatim from
/// Section VI.
std::vector<QuerySpec> NasaQueries();
std::vector<QuerySpec> NasaPathQueries();
std::vector<QuerySpec> NasaTwigQueries();

/// The interleaving workloads of Table III: Np/Nt with view sets PV1-PV4 and
/// TV1-TV4 (decreasing number of inter-view edges).
struct InterleavingWorkload {
  std::string name;                 // "PV1" ... "TV4"
  std::string query;                // Np or Nt
  std::vector<std::string> views;   // covering view set
  int expected_conditions;          // #Cond column of Table III
};
std::vector<InterleavingWorkload> PathInterleavingWorkloads();  // Np, PV1-PV4
std::vector<InterleavingWorkload> TwigInterleavingWorkloads();  // Nt, TV1-TV4

/// The candidate views of Table II (v1-v6) for the view-selection study.
std::vector<std::string> Table2CandidateViews();
/// The Table II query (= Nt).
std::string Table2Query();

/// Deterministic covering view set for a query: splits the pattern into
/// `pieces` connected subpatterns by depth bands (piece boundaries at equal
/// depth intervals), each piece materializable as one view. Used as the
/// standing view sets of the Fig. 5 / Fig. 7 / Table V experiments. The
/// split of a path query yields path views (as InterJoin requires).
std::vector<tpq::TreePattern> SplitViews(const tpq::TreePattern& query,
                                         int pieces);

/// Covering set of ~2-node views (SplitViews with ceil(|Q|/2) pieces): the
/// generic small reusable views typical of a view pool, leaving real join
/// work to the evaluation algorithms (used by the Fig. 5 / Table V
/// experiments).
std::vector<tpq::TreePattern> PairViews(const tpq::TreePattern& query);

/// Reads an environment-variable double with a default (bench scaling knob).
double EnvScale(const char* name, double fallback);

}  // namespace viewjoin::bench

#endif  // VIEWJOIN_BENCH_WORKLOADS_H_
