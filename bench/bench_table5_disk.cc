// Reproduces Table V: memory-based vs disk-based output for TS+E and VJ+LE
// on the twig queries (XMark Q4-Q19 and NASA N5-N8). Cells are
// "total ms (io ms)", matching the paper's format. Expectations: the disk
// variants pay extra I/O (spilling + re-reading intermediate solutions) and
// VJ-D still beats TS-D.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace viewjoin::bench {
namespace {

std::string Cell(const core::RunResult& result) {
  return util::FormatDouble(result.total_ms, 2) + " (" +
         util::FormatDouble(result.io_ms, 2) + ")";
}

void RunDataset(const std::string& title, const std::string& dataset,
                BenchContext* context, const std::vector<QuerySpec>& queries,
                JsonReport* report) {
  PrintBanner(title, *context);
  Combo ts{core::Algorithm::kTwigStack, storage::Scheme::kElement};
  Combo vj{core::Algorithm::kViewJoin, storage::Scheme::kLinkedElement};
  util::TablePrinter table({"query", "matches", "TS-M", "TS-D", "VJ-M",
                            "VJ-D", "VJ-D spill pages"});
  for (const QuerySpec& spec : queries) {
    tpq::TreePattern query = ParseQuery(spec.xpath);
    std::vector<tpq::TreePattern> split = PairViews(query);
    auto ts_views = context->Views(split, ts.scheme);
    auto vj_views = context->Views(split, vj.scheme);
    core::RunResult ts_m =
        context->Run(query, ts_views, ts, algo::OutputMode::kMemory);
    core::RunResult ts_d =
        context->Run(query, ts_views, ts, algo::OutputMode::kDisk);
    core::RunResult vj_m =
        context->Run(query, vj_views, vj, algo::OutputMode::kMemory);
    core::RunResult vj_d =
        context->Run(query, vj_views, vj, algo::OutputMode::kDisk);
    VJ_CHECK_EQ(ts_m.result_hash, ts_d.result_hash);
    VJ_CHECK_EQ(ts_m.result_hash, vj_m.result_hash);
    VJ_CHECK_EQ(ts_m.result_hash, vj_d.result_hash);
    table.AddRow({spec.name, std::to_string(ts_m.match_count), Cell(ts_m),
                  Cell(ts_d), Cell(vj_m), Cell(vj_d),
                  std::to_string(vj_d.stats.spill_pages_written) + "w/" +
                      std::to_string(vj_d.stats.spill_pages_read) + "r"});
    auto add = [&](const char* variant, const core::RunResult& result) {
      report->AddRow()
          .Set("dataset", dataset)
          .Set("query", spec.name)
          .Set("variant", variant)
          .Set("spill_pages_written", result.stats.spill_pages_written)
          .Set("spill_pages_read", result.stats.spill_pages_read)
          .Metrics(result);
    };
    add("TS-M", ts_m);
    add("TS-D", ts_d);
    add("VJ-M", vj_m);
    add("VJ-D", vj_d);
  }
  table.Print();
  std::printf("\n");
}

void Main(int argc, char** argv) {
  std::printf(
      "Table V reproduction: memory- vs disk-based output "
      "(cells: total ms (I/O ms))\n\n");
  double xmark_scale = EnvScale("VIEWJOIN_XMARK_SCALE", 2.0);
  int64_t nasa_datasets =
      static_cast<int64_t>(EnvScale("VIEWJOIN_NASA_DATASETS", 800));
  JsonReport report("table5_disk");
  report.ParseArgs(argc, argv);
  report.SetMeta("xmark_scale", xmark_scale);
  report.SetMeta("nasa_datasets", static_cast<uint64_t>(nasa_datasets));

  auto xmark = BenchContext::Xmark(xmark_scale);
  RunDataset("XMark twig queries", "xmark", xmark.get(), XmarkTwigQueries(),
             &report);

  auto nasa = BenchContext::Nasa(nasa_datasets);
  RunDataset("NASA twig queries", "nasa", nasa.get(), NasaTwigQueries(),
             &report);
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
