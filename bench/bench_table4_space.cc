// Reproduces Table IV: size and number of materialized pointers of two XMark
// views under every storage scheme, at the largest benchmark scale.
//   v1 = //item//text//keyword  (a node may occur in multiple matches)
//   v2 = //person//education    (each node occurs in exactly one match)
// Expectations from the paper: E is smallest; T > LE for the recurring view
// v1 but T <= LE for v2; LE_p < LE (about half the pointers).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace viewjoin::bench {
namespace {

void Main(int argc, char** argv) {
  double scale = EnvScale("VIEWJOIN_XMARK_SCALE", 2.0) *
                 EnvScale("VIEWJOIN_TABLE4_FACTOR", 4.0);
  JsonReport report("table4_space");
  report.ParseArgs(argc, argv);
  report.SetMeta("xmark_scale", scale);
  auto context = BenchContext::Xmark(scale);
  std::printf("Table IV reproduction: view sizes and pointer counts\n\n");
  PrintBanner("XMark space study", *context);

  const std::vector<std::pair<std::string, std::string>> views = {
      {"v1", "//item//text//keyword"},
      {"v2", "//person//education"},
  };
  using storage::Scheme;

  util::TablePrinter table({"view", "pattern", "E (MB)", "T (MB)", "LE (MB)",
                            "LE_p (MB)", "#ptr LE", "#ptr LE_p",
                            "tuples", "distinct nodes"});
  for (const auto& [name, xpath] : views) {
    const auto* e = context->View(xpath, Scheme::kElement);
    const auto* t = context->View(xpath, Scheme::kTuple);
    const auto* le = context->View(xpath, Scheme::kLinkedElement);
    const auto* lep = context->View(xpath, Scheme::kLinkedElementPartial);
    auto mb = [](uint64_t bytes) {
      return util::FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0),
                                3);
    };
    uint64_t distinct = 0;
    for (size_t q = 0; q < e->pattern().size(); ++q) {
      distinct += e->ListLength(static_cast<int>(q));
    }
    table.AddRow({name, xpath, mb(e->SizeBytes()), mb(t->SizeBytes()),
                  mb(le->SizeBytes()), mb(lep->SizeBytes()),
                  std::to_string(le->PointerCount()),
                  std::to_string(lep->PointerCount()),
                  std::to_string(t->MatchCount()), std::to_string(distinct)});
    // Paper's qualitative claims, enforced:
    VJ_CHECK_LT(e->SizeBytes(), le->SizeBytes());
    VJ_CHECK_LE(lep->SizeBytes(), le->SizeBytes());
    VJ_CHECK_LT(lep->PointerCount(), le->PointerCount());
    report.AddRow()
        .Set("view", name)
        .Set("pattern", xpath)
        .Set("e_bytes", e->SizeBytes())
        .Set("t_bytes", t->SizeBytes())
        .Set("le_bytes", le->SizeBytes())
        .Set("lep_bytes", lep->SizeBytes())
        .Set("le_pointers", le->PointerCount())
        .Set("lep_pointers", lep->PointerCount())
        .Set("tuples", t->MatchCount())
        .Set("distinct_nodes", distinct);
  }
  table.Print();
  std::printf(
      "\nnote: sizes are logical (12 B per label + 4 B per materialized "
      "pointer);\nthe tuple scheme duplicates a node once per match it "
      "occurs in.\n");
  report.Write();
}

}  // namespace
}  // namespace viewjoin::bench

int main(int argc, char** argv) {
  viewjoin::bench::Main(argc, argv);
  return 0;
}
