#include "data/xmark_generator.h"

#include <algorithm>
#include <cstdint>

#include "util/check.h"
#include "util/rng.h"

namespace viewjoin::data {
namespace {

using xml::Document;

/// Stateful builder walking the XMark DTD. Each method emits one entity in
/// document order; fan-outs are randomized around the DTD's distributions.
class XmarkBuilder {
 public:
  XmarkBuilder(const XmarkOptions& options, Document* doc)
      : rng_(options.seed), doc_(doc) {
    double s = std::max(options.scale, 0.01);
    items_per_region_ = std::max<int64_t>(1, static_cast<int64_t>(120 * s));
    categories_ = std::max<int64_t>(1, static_cast<int64_t>(60 * s));
    persons_ = std::max<int64_t>(1, static_cast<int64_t>(500 * s));
    open_auctions_ = std::max<int64_t>(1, static_cast<int64_t>(240 * s));
    closed_auctions_ = std::max<int64_t>(1, static_cast<int64_t>(120 * s));
  }

  void Build() {
    Open("site");
    Regions();
    Categories();
    Catgraph();
    People();
    OpenAuctions();
    ClosedAuctions();
    Close();
    VJ_CHECK(doc_->IsComplete());
  }

 private:
  void Open(const char* tag) { doc_->StartElement(tag); }
  void Close() { doc_->EndElement(); }
  void Leaf(const char* tag) {
    doc_->StartElement(tag);
    doc_->SkipTextPositions(1);
    doc_->EndElement();
  }
  int64_t Rand(int64_t lo, int64_t hi) { return rng_.UniformRange(lo, hi); }
  bool Chance(double p) { return rng_.Bernoulli(p); }

  void Regions() {
    static constexpr const char* kRegions[] = {"africa",   "asia",  "australia",
                                               "europe",   "namerica",
                                               "samerica"};
    Open("regions");
    for (const char* region : kRegions) {
      Open(region);
      // Mirror xmlgen: region sizes differ by constant factors.
      int64_t count = items_per_region_;
      if (region[0] == 'a' && region[1] == 'f') count = items_per_region_ / 4;
      if (region[0] == 'a' && region[1] == 'u') count = items_per_region_ / 2;
      for (int64_t i = 0; i < std::max<int64_t>(1, count); ++i) Item();
      Close();
    }
    Close();
  }

  void Item() {
    Open("item");
    Leaf("location");
    Leaf("quantity");
    Leaf("name");
    Payment();
    Description();
    Leaf("shipping");
    int64_t cats = Rand(1, 3);
    for (int64_t i = 0; i < cats; ++i) Leaf("incategory");
    if (Chance(0.8)) Mailbox();
    Close();
  }

  void Payment() {
    Open("payment");
    doc_->SkipTextPositions(1);
    Close();
  }

  void Description() {
    Open("description");
    if (Chance(0.3)) {
      Parlist(/*depth=*/0);
    } else {
      Text(/*depth=*/0);
    }
    Close();
  }

  /// Recursive parlist/listitem structure — the source of nested `text`
  /// ancestors that makes `//item//text//keyword` a recurring-node view.
  void Parlist(int depth) {
    Open("parlist");
    int64_t items = Rand(1, depth == 0 ? 4 : 2);
    for (int64_t i = 0; i < items; ++i) {
      Open("listitem");
      if (depth < 2 && Chance(0.25)) {
        Parlist(depth + 1);
      } else {
        Text(0);
      }
      Close();
    }
    Close();
  }

  /// text := (#PCDATA | bold | keyword | emph)*, where bold/keyword/emph
  /// nest among themselves.
  void Text(int depth) {
    Open("text");
    doc_->SkipTextPositions(1);
    Markup(depth);
    Close();
  }

  void Markup(int depth) {
    int64_t inlines = Rand(0, 3);
    for (int64_t i = 0; i < inlines; ++i) {
      int64_t pick = Rand(0, 2);
      const char* tag = pick == 0 ? "bold" : pick == 1 ? "keyword" : "emph";
      Open(tag);
      doc_->SkipTextPositions(1);
      if (depth < 2 && Chance(0.3)) Markup(depth + 1);
      Close();
    }
  }

  void Mailbox() {
    Open("mailbox");
    int64_t mails = Rand(0, 3);
    for (int64_t i = 0; i < mails; ++i) {
      Open("mail");
      Leaf("from");
      Leaf("to");
      Leaf("date");
      Text(0);
      Close();
    }
    Close();
  }

  void Categories() {
    Open("categories");
    for (int64_t i = 0; i < categories_; ++i) {
      Open("category");
      Leaf("name");
      Description();
      Close();
    }
    Close();
  }

  void Catgraph() {
    Open("catgraph");
    for (int64_t i = 0; i < categories_; ++i) {
      Open("edge");
      doc_->SkipTextPositions(1);
      Close();
    }
    Close();
  }

  void People() {
    Open("people");
    for (int64_t i = 0; i < persons_; ++i) Person();
    Close();
  }

  void Person() {
    Open("person");
    Leaf("name");
    Leaf("emailaddress");
    if (Chance(0.5)) Leaf("phone");
    if (Chance(0.6)) Address();
    if (Chance(0.3)) Leaf("homepage");
    if (Chance(0.4)) Leaf("creditcard");
    if (Chance(0.7)) Profile();
    if (Chance(0.5)) Watches();
    Close();
  }

  void Address() {
    Open("address");
    Leaf("street");
    Leaf("city");
    Leaf("country");
    if (Chance(0.2)) Leaf("province");
    Leaf("zipcode");
    Close();
  }

  void Profile() {
    Open("profile");
    int64_t interests = Rand(0, 4);
    for (int64_t i = 0; i < interests; ++i) Leaf("interest");
    if (Chance(0.6)) Leaf("education");
    if (Chance(0.8)) Leaf("gender");
    Leaf("business");
    if (Chance(0.7)) Leaf("age");
    Close();
  }

  void Watches() {
    Open("watches");
    int64_t watches = Rand(0, 4);
    for (int64_t i = 0; i < watches; ++i) Leaf("watch");
    Close();
  }

  void OpenAuctions() {
    Open("open_auctions");
    for (int64_t i = 0; i < open_auctions_; ++i) OpenAuction();
    Close();
  }

  void OpenAuction() {
    Open("open_auction");
    Leaf("initial");
    int64_t bidders = Rand(0, 5);
    for (int64_t i = 0; i < bidders; ++i) Bidder();
    Leaf("current");
    if (Chance(0.4)) Leaf("privacy");
    Leaf("itemref");
    Leaf("seller");
    Annotation();
    Leaf("quantity");
    Leaf("type");
    Interval();
    Close();
  }

  void Bidder() {
    Open("bidder");
    Leaf("date");
    Leaf("time");
    Leaf("personref");
    Leaf("increase");
    Close();
  }

  void Annotation() {
    Open("annotation");
    Leaf("author");
    Description();
    Leaf("happiness");
    Close();
  }

  void Interval() {
    Open("interval");
    Leaf("start");
    Leaf("end");
    Close();
  }

  void ClosedAuctions() {
    Open("closed_auctions");
    for (int64_t i = 0; i < closed_auctions_; ++i) {
      Open("closed_auction");
      Leaf("seller");
      Leaf("buyer");
      Leaf("itemref");
      Leaf("price");
      Leaf("date");
      Leaf("quantity");
      Leaf("type");
      Annotation();
      Close();
    }
    Close();
  }

  util::Rng rng_;
  Document* doc_;
  int64_t items_per_region_;
  int64_t categories_;
  int64_t persons_;
  int64_t open_auctions_;
  int64_t closed_auctions_;
};

}  // namespace

Document GenerateXmark(const XmarkOptions& options) {
  Document doc;
  XmarkBuilder builder(options, &doc);
  builder.Build();
  return doc;
}

}  // namespace viewjoin::data
