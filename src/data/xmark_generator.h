#ifndef VIEWJOIN_DATA_XMARK_GENERATOR_H_
#define VIEWJOIN_DATA_XMARK_GENERATOR_H_

#include <cstdint>

#include "xml/document.h"

namespace viewjoin::data {

/// Options for the XMark-shaped synthetic generator.
///
/// This generator reproduces the element vocabulary and nesting structure of
/// the XMark auction benchmark (Schmidt et al., CWI tech report INS-R0103) —
/// regions/items with recursive parlist/listitem descriptions and nested
/// bold/keyword/emph markup, people/profiles, open and closed auctions — so
/// the 14 benchmark-derived TPQs exercise the same structural shapes as on
/// the original `xmlgen` output. `scale = 1.0` yields roughly 135k elements
/// (~2.5 MB serialized with text payload); element counts grow linearly in
/// `scale`, mirroring xmlgen's scaling behaviour.
struct XmarkOptions {
  double scale = 1.0;
  uint64_t seed = 42;
};

/// Generates an XMark-shaped document.
xml::Document GenerateXmark(const XmarkOptions& options);

}  // namespace viewjoin::data

#endif  // VIEWJOIN_DATA_XMARK_GENERATOR_H_
