#ifndef VIEWJOIN_DATA_NASA_GENERATOR_H_
#define VIEWJOIN_DATA_NASA_GENERATOR_H_

#include <cstdint>

#include "xml/document.h"

namespace viewjoin::data {

/// Options for the NASA-like synthetic generator.
///
/// The paper's real dataset is the 23 MB NASA astronomy dump from the UW XML
/// repository, characterized by a highly skewed element distribution. This
/// generator reproduces the structural features the paper's NASA experiments
/// depend on, over the same element vocabulary used by queries N1–N8 and the
/// view workloads of Tables II/III:
///  * `dataset` entries with Zipf-skewed sizes (a few huge, many tiny);
///  * recursive `definition` nesting under `field` (so one node occurs in
///    many view matches — the tuple-scheme redundancy driver);
///  * deep `tableHead/tableLinks/tableLink/title` and
///    `fields/field/definition/footnote/para` chains;
///  * `history/revision/creator/lastname` with parent-child steps (N3);
///  * `reference/source/journal` with `title/author/date/year/suffix/bibcode`
///    children (N4, N6, N7);
///  * `descriptions/description/para` with optional `observatory` (N8).
struct NasaOptions {
  /// Number of top-level dataset entries; 400 yields ~150k elements.
  int64_t datasets = 400;
  /// Zipf skew of per-dataset size (0 = uniform; the real dump is ~1.2).
  double skew = 1.2;
  uint64_t seed = 7;
};

/// Generates a NASA-like document.
xml::Document GenerateNasa(const NasaOptions& options);

}  // namespace viewjoin::data

#endif  // VIEWJOIN_DATA_NASA_GENERATOR_H_
