#include "data/nasa_generator.h"

#include <algorithm>
#include <cstdint>

#include "util/check.h"
#include "util/rng.h"

namespace viewjoin::data {
namespace {

using xml::Document;

class NasaBuilder {
 public:
  NasaBuilder(const NasaOptions& options, Document* doc)
      : rng_(options.seed), doc_(doc), options_(options) {}

  void Build() {
    Open("datasets");
    for (int64_t i = 0; i < options_.datasets; ++i) {
      // Zipf rank decides how big this dataset is: rank 0 entries are an
      // order of magnitude larger than the tail — the skew that makes
      // pointer-based skipping pay off on NASA (paper Section VI-A).
      uint64_t rank = rng_.Zipf(8, options_.skew);
      Dataset(/*weight=*/static_cast<int64_t>(8 - rank));
    }
    Close();
    VJ_CHECK(doc_->IsComplete());
  }

 private:
  void Open(const char* tag) { doc_->StartElement(tag); }
  void Close() { doc_->EndElement(); }
  void Leaf(const char* tag) {
    doc_->StartElement(tag);
    doc_->SkipTextPositions(1);
    doc_->EndElement();
  }
  int64_t Rand(int64_t lo, int64_t hi) { return rng_.UniformRange(lo, hi); }
  bool Chance(double p) { return rng_.Bernoulli(p); }

  void Dataset(int64_t weight) {
    Open("dataset");
    if (Chance(0.4)) Leaf("altname");
    Leaf("title");
    int64_t references = Rand(0, weight);
    for (int64_t i = 0; i < references; ++i) Reference();
    if (Chance(0.5)) Keywords();
    if (Chance(0.6)) Descriptions(weight);
    Leaf("identifier");
    if (Chance(0.7)) History(weight);
    int64_t table_heads = Rand(weight >= 6 ? 1 : 0, std::max<int64_t>(1, weight / 2));
    for (int64_t i = 0; i < table_heads; ++i) TableHead(weight);
    Close();
  }

  void Reference() {
    Open("reference");
    Open("source");
    if (Chance(0.7)) {
      Journal();
    } else {
      Other();
    }
    Close();
    Close();
  }

  void Journal() {
    Open("journal");
    Leaf("title");
    int64_t authors = Rand(1, 3);
    for (int64_t i = 0; i < authors; ++i) Author();
    Date();
    if (Chance(0.35)) Leaf("suffix");
    if (Chance(0.5)) Leaf("bibcode");
    Close();
  }

  void Other() {
    Open("other");
    Leaf("name");
    Author();
    Leaf("publisher");
    Leaf("city");
    Date();
    Close();
  }

  void Author() {
    Open("author");
    if (Chance(0.8)) Leaf("initial");
    Leaf("lastname");
    Close();
  }

  void Date() {
    Open("date");
    Leaf("year");
    Close();
  }

  void Keywords() {
    Open("keywords");
    int64_t keywords = Rand(1, 6);
    for (int64_t i = 0; i < keywords; ++i) Leaf("keyword");
    Close();
  }

  void Descriptions(int64_t weight) {
    Open("descriptions");
    if (Chance(0.3)) Leaf("observatory");
    int64_t descriptions = Rand(1, std::max<int64_t>(1, weight / 2));
    for (int64_t i = 0; i < descriptions; ++i) {
      Open("description");
      int64_t paras = Rand(1, 2 + weight);
      for (int64_t p = 0; p < paras; ++p) Leaf("para");
      Close();
    }
    if (Chance(0.4)) Leaf("details");
    Close();
  }

  void History(int64_t weight) {
    Open("history");
    Open("creation");
    Date();
    Close();
    int64_t revisions = Rand(0, weight);
    for (int64_t i = 0; i < revisions; ++i) Revision();
    Close();
  }

  void Revision() {
    Open("revision");
    Date();
    Open("creator");
    if (Chance(0.7)) Leaf("initial");
    Leaf("lastname");
    Close();
    int64_t paras = Rand(0, 3);
    for (int64_t i = 0; i < paras; ++i) Leaf("para");
    Close();
  }

  void TableHead(int64_t weight) {
    Open("tableHead");
    Open("tableLinks");
    int64_t links = Rand(1, std::max<int64_t>(1, weight));
    for (int64_t i = 0; i < links; ++i) {
      Open("tableLink");
      Leaf("title");
      Close();
    }
    Close();
    Open("fields");
    int64_t fields = Rand(1, std::max<int64_t>(2, 2 * weight));
    for (int64_t i = 0; i < fields; ++i) Field(weight);
    Close();
    Close();
  }

  void Field(int64_t weight) {
    Open("field");
    Leaf("name");
    if (Chance(0.85)) Definition(weight, /*depth=*/0);
    Close();
  }

  /// Recursive definitions: a `para` deep inside nested definitions occurs in
  /// one (field, definition, para) tuple per enclosing definition — the
  /// redundancy that makes the tuple scheme blow up on N1/Np-style views.
  void Definition(int64_t weight, int depth) {
    Open("definition");
    int64_t paras = Rand(1, 1 + weight / 2);
    for (int64_t i = 0; i < paras; ++i) Leaf("para");
    int64_t footnotes = Rand(0, depth == 0 ? 2 : 1);
    for (int64_t i = 0; i < footnotes; ++i) {
      Open("footnote");
      int64_t fparas = Rand(1, 2);
      for (int64_t p = 0; p < fparas; ++p) Leaf("para");
      Close();
    }
    if (depth < 3 && Chance(0.35 + 0.05 * static_cast<double>(weight))) {
      Definition(weight, depth + 1);
    }
    Close();
  }

  util::Rng rng_;
  Document* doc_;
  NasaOptions options_;
};

}  // namespace

Document GenerateNasa(const NasaOptions& options) {
  Document doc;
  NasaBuilder builder(options, &doc);
  builder.Build();
  return doc;
}

}  // namespace viewjoin::data
