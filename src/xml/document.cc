#include "xml/document.h"

#include <algorithm>

#include "util/check.h"

namespace viewjoin::xml {

TagId Document::InternTag(std::string_view name) {
  auto it = tag_ids_.find(std::string(name));
  if (it != tag_ids_.end()) return it->second;
  TagId id = static_cast<TagId>(tag_names_.size());
  tag_names_.emplace_back(name);
  tag_ids_.emplace(std::string(name), id);
  nodes_by_tag_.emplace_back();
  return id;
}

TagId Document::FindTag(std::string_view name) const {
  auto it = tag_ids_.find(std::string(name));
  return it == tag_ids_.end() ? kInvalidTag : it->second;
}

const std::string& Document::TagName(TagId tag) const {
  VJ_DCHECK(tag < tag_names_.size());
  return tag_names_[tag];
}

NodeId Document::StartElement(TagId tag) {
  VJ_CHECK(tag < tag_names_.size()) << "unknown tag id";
  VJ_CHECK(open_stack_.size() > 0 || labels_.empty())
      << "document already has a root";
  NodeId id = static_cast<NodeId>(labels_.size());
  Label label;
  label.start = next_pos_++;
  label.end = 0;  // patched in EndElement
  label.level = static_cast<uint32_t>(open_stack_.size() + 1);
  labels_.push_back(label);
  tags_.push_back(tag);
  first_child_.push_back(kInvalidNode);
  last_child_.push_back(kInvalidNode);
  next_sibling_.push_back(kInvalidNode);
  deleted_.push_back(0);

  NodeId parent = open_stack_.empty() ? kInvalidNode : open_stack_.back();
  parents_.push_back(parent);
  if (parent != kInvalidNode) {
    if (first_child_[parent] == kInvalidNode) {
      first_child_[parent] = id;
    } else {
      next_sibling_[last_child_[parent]] = id;
    }
    last_child_[parent] = id;
  }
  nodes_by_tag_[tag].push_back(id);
  open_stack_.push_back(id);
  return id;
}

void Document::EndElement() {
  VJ_CHECK(!open_stack_.empty()) << "EndElement without matching StartElement";
  NodeId id = open_stack_.back();
  open_stack_.pop_back();
  labels_[id].end = next_pos_++;
}

const std::vector<NodeId>& Document::NodesOfTag(TagId tag) const {
  if (tag >= nodes_by_tag_.size()) return empty_list_;
  return nodes_by_tag_[tag];
}

NodeId Document::FindByStart(TagId tag, uint32_t start) const {
  const std::vector<NodeId>& list = NodesOfTag(tag);
  auto it = std::lower_bound(list.begin(), list.end(), start,
                             [this](NodeId n, uint32_t s) {
                               return labels_[n].start < s;
                             });
  if (it == list.end() || labels_[*it].start != start) return kInvalidNode;
  return *it;
}

util::Status Document::RelabelWithGap(uint32_t gap) {
  if (gap == 0) {
    return util::Status::InvalidArgument("relabel gap must be positive");
  }
  if (!IsComplete()) {
    return util::Status::InvalidArgument(
        "cannot relabel a document under construction");
  }
  uint64_t max_pos = labels_[0].end;  // the root's end encloses every label
  if (max_pos * gap > 0xFFFFFFFFull) {
    return util::Status::ResourceExhausted(
        "relabel by gap " + std::to_string(gap) + " overflows 32-bit labels");
  }
  for (Label& l : labels_) {
    l.start *= gap;
    l.end *= gap;
  }
  next_pos_ = labels_[0].end + 1;
  ++revision_;
  return util::Status::Ok();
}

util::StatusOr<NodeId> Document::InsertSubtree(const SubtreeSpec& spec,
                                               NodeId parent, NodeId after) {
  if (!IsComplete()) {
    return util::Status::InvalidArgument(
        "cannot insert into a document under construction");
  }
  if (spec.nodes.empty()) {
    return util::Status::InvalidArgument("empty subtree spec");
  }
  if (!IsLive(parent)) {
    return util::Status::InvalidArgument("insert parent is not a live node");
  }
  if (after != kInvalidNode &&
      (!IsLive(after) || parents_[after] != parent)) {
    return util::Status::InvalidArgument(
        "`after` is not a live child of `parent`");
  }
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    uint32_t p = spec.nodes[i].parent;
    bool ok = (i == 0) ? p == SubtreeSpec::kNoParent
                       : p != SubtreeSpec::kNoParent && p < i;
    if (!ok) {
      return util::Status::InvalidArgument(
          "subtree spec is not a rooted preorder at node " +
          std::to_string(i));
    }
  }

  // The open label window (lo, hi) at the insertion point.
  uint32_t lo =
      after != kInvalidNode ? labels_[after].end : labels_[parent].start;
  NodeId next_node =
      after != kInvalidNode ? next_sibling_[after] : first_child_[parent];
  uint32_t hi = next_node != kInvalidNode ? labels_[next_node].start
                                          : labels_[parent].end;
  uint64_t need = 2 * static_cast<uint64_t>(spec.nodes.size());
  if (static_cast<uint64_t>(hi) - lo < need + 1) {
    return util::Status::ResourceExhausted(
        "label gap (" + std::to_string(lo) + ", " + std::to_string(hi) +
        ") cannot fit " + std::to_string(need) +
        " new positions; relabel the document");
  }
  // Spread the new positions evenly so future inserts inherit slack.
  uint32_t step = static_cast<uint32_t>((hi - lo) / (need + 1));

  // Intern tags and build the spec's child lists up front, so nothing below
  // can fail and the document mutates atomically.
  std::vector<TagId> spec_tags(spec.nodes.size());
  std::vector<std::vector<uint32_t>> spec_kids(spec.nodes.size());
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    spec_tags[i] = InternTag(spec.nodes[i].tag);
    if (i > 0) spec_kids[spec.nodes[i].parent].push_back(i);
  }

  NodeId base = static_cast<NodeId>(labels_.size());
  uint32_t base_level = labels_[parent].level;
  size_t n = spec.nodes.size();
  labels_.resize(base + n);
  tags_.resize(base + n);
  parents_.resize(base + n, kInvalidNode);
  first_child_.resize(base + n, kInvalidNode);
  last_child_.resize(base + n, kInvalidNode);
  next_sibling_.resize(base + n, kInvalidNode);
  deleted_.resize(base + n, 0);

  // Walk the spec like a document build, drawing positions lo + k*step.
  uint32_t pos_index = 1;
  struct Frame {
    uint32_t spec_node;
    size_t next_kid;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0});
  labels_[base].start = lo + step * pos_index++;
  labels_[base].level = base_level + 1;
  tags_[base] = spec_tags[0];
  parents_[base] = parent;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_kid < spec_kids[f.spec_node].size()) {
      uint32_t kid = spec_kids[f.spec_node][f.next_kid++];
      NodeId kid_id = base + kid;
      NodeId par_id = base + f.spec_node;
      labels_[kid_id].start = lo + step * pos_index++;
      labels_[kid_id].level = labels_[par_id].level + 1;
      tags_[kid_id] = spec_tags[kid];
      parents_[kid_id] = par_id;
      if (first_child_[par_id] == kInvalidNode) {
        first_child_[par_id] = kid_id;
      } else {
        next_sibling_[last_child_[par_id]] = kid_id;
      }
      last_child_[par_id] = kid_id;
      stack.push_back({kid, 0});
    } else {
      labels_[base + f.spec_node].end = lo + step * pos_index++;
      stack.pop_back();
    }
  }
  VJ_DCHECK(pos_index == need + 1);

  // Splice the subtree root into the sibling chain of `parent`.
  if (after != kInvalidNode) {
    next_sibling_[base] = next_sibling_[after];
    next_sibling_[after] = base;
    if (last_child_[parent] == after) last_child_[parent] = base;
  } else {
    next_sibling_[base] = first_child_[parent];
    first_child_[parent] = base;
    if (last_child_[parent] == kInvalidNode) last_child_[parent] = base;
  }

  // Keep every per-tag stream sorted by start label.
  for (NodeId id = base; id < base + n; ++id) {
    std::vector<NodeId>& list = nodes_by_tag_[tags_[id]];
    auto it = std::lower_bound(list.begin(), list.end(), labels_[id].start,
                               [this](NodeId a, uint32_t s) {
                                 return labels_[a].start < s;
                               });
    list.insert(it, id);
  }
  ++revision_;
  return base;
}

util::Status Document::DeleteSubtree(NodeId root,
                                     std::vector<NodeId>* removed) {
  if (!IsComplete()) {
    return util::Status::InvalidArgument(
        "cannot delete from a document under construction");
  }
  if (!IsLive(root)) {
    return util::Status::InvalidArgument(
        "delete target is not a live node");
  }
  if (root == Root()) {
    return util::Status::InvalidArgument("cannot delete the document root");
  }

  // Collect the subtree in preorder over the structure links.
  std::vector<NodeId> subtree;
  std::vector<NodeId> stack = {root};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    subtree.push_back(n);
    // Push children in reverse so preorder pops left to right.
    std::vector<NodeId> kids;
    for (NodeId c = first_child_[n]; c != kInvalidNode; c = next_sibling_[c]) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }

  // Unlink the root from its parent's child chain.
  NodeId parent = parents_[root];
  VJ_DCHECK(parent != kInvalidNode);
  if (first_child_[parent] == root) {
    first_child_[parent] = next_sibling_[root];
    if (last_child_[parent] == root) {
      last_child_[parent] = kInvalidNode;
    }
  } else {
    NodeId prev = first_child_[parent];
    while (next_sibling_[prev] != root) prev = next_sibling_[prev];
    next_sibling_[prev] = next_sibling_[root];
    if (last_child_[parent] == root) last_child_[parent] = prev;
  }

  // Tombstone: out of the per-tag streams and structure, but labels and tags
  // stay readable so delta maintenance can see what was removed.
  for (NodeId n : subtree) {
    deleted_[n] = 1;
    std::vector<NodeId>& list = nodes_by_tag_[tags_[n]];
    auto it = std::lower_bound(list.begin(), list.end(), labels_[n].start,
                               [this](NodeId a, uint32_t s) {
                                 return labels_[a].start < s;
                               });
    VJ_DCHECK(it != list.end() && *it == n);
    list.erase(it);
  }
  next_sibling_[root] = kInvalidNode;
  deleted_count_ += subtree.size();
  ++revision_;
  if (removed != nullptr) {
    removed->insert(removed->end(), subtree.begin(), subtree.end());
  }
  return util::Status::Ok();
}

SubtreeSpec SpecFromDocument(const Document& doc, NodeId root) {
  SubtreeSpec spec;
  if (root >= doc.NodeCount()) return spec;
  // Preorder walk mapping document ids to spec indices.
  std::vector<std::pair<NodeId, uint32_t>> stack;  // (node, spec parent)
  stack.push_back({root, SubtreeSpec::kNoParent});
  while (!stack.empty()) {
    auto [n, spec_parent] = stack.back();
    stack.pop_back();
    uint32_t index = static_cast<uint32_t>(spec.nodes.size());
    spec.nodes.push_back({doc.TagName(doc.NodeTag(n)), spec_parent});
    std::vector<NodeId> kids;
    for (NodeId c = doc.FirstChild(n); c != kInvalidNode;
         c = doc.NextSibling(c)) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, index});
    }
  }
  return spec;
}

size_t Document::MemoryBytes() const {
  size_t bytes = labels_.size() * (sizeof(Label) + sizeof(TagId) +
                                   3 * sizeof(NodeId) + sizeof(NodeId));
  for (const auto& name : tag_names_) bytes += name.size() + sizeof(TagId);
  return bytes;
}

}  // namespace viewjoin::xml
