#include "xml/document.h"

#include <algorithm>

#include "util/check.h"

namespace viewjoin::xml {

TagId Document::InternTag(std::string_view name) {
  auto it = tag_ids_.find(std::string(name));
  if (it != tag_ids_.end()) return it->second;
  TagId id = static_cast<TagId>(tag_names_.size());
  tag_names_.emplace_back(name);
  tag_ids_.emplace(std::string(name), id);
  nodes_by_tag_.emplace_back();
  return id;
}

TagId Document::FindTag(std::string_view name) const {
  auto it = tag_ids_.find(std::string(name));
  return it == tag_ids_.end() ? kInvalidTag : it->second;
}

const std::string& Document::TagName(TagId tag) const {
  VJ_DCHECK(tag < tag_names_.size());
  return tag_names_[tag];
}

NodeId Document::StartElement(TagId tag) {
  VJ_CHECK(tag < tag_names_.size()) << "unknown tag id";
  VJ_CHECK(open_stack_.size() > 0 || labels_.empty())
      << "document already has a root";
  NodeId id = static_cast<NodeId>(labels_.size());
  Label label;
  label.start = next_pos_++;
  label.end = 0;  // patched in EndElement
  label.level = static_cast<uint32_t>(open_stack_.size() + 1);
  labels_.push_back(label);
  tags_.push_back(tag);
  first_child_.push_back(kInvalidNode);
  last_child_.push_back(kInvalidNode);
  next_sibling_.push_back(kInvalidNode);

  NodeId parent = open_stack_.empty() ? kInvalidNode : open_stack_.back();
  parents_.push_back(parent);
  if (parent != kInvalidNode) {
    if (first_child_[parent] == kInvalidNode) {
      first_child_[parent] = id;
    } else {
      next_sibling_[last_child_[parent]] = id;
    }
    last_child_[parent] = id;
  }
  nodes_by_tag_[tag].push_back(id);
  open_stack_.push_back(id);
  return id;
}

void Document::EndElement() {
  VJ_CHECK(!open_stack_.empty()) << "EndElement without matching StartElement";
  NodeId id = open_stack_.back();
  open_stack_.pop_back();
  labels_[id].end = next_pos_++;
}

const std::vector<NodeId>& Document::NodesOfTag(TagId tag) const {
  if (tag >= nodes_by_tag_.size()) return empty_list_;
  return nodes_by_tag_[tag];
}

NodeId Document::FindByStart(TagId tag, uint32_t start) const {
  const std::vector<NodeId>& list = NodesOfTag(tag);
  auto it = std::lower_bound(list.begin(), list.end(), start,
                             [this](NodeId n, uint32_t s) {
                               return labels_[n].start < s;
                             });
  if (it == list.end() || labels_[*it].start != start) return kInvalidNode;
  return *it;
}

size_t Document::MemoryBytes() const {
  size_t bytes = labels_.size() * (sizeof(Label) + sizeof(TagId) +
                                   3 * sizeof(NodeId) + sizeof(NodeId));
  for (const auto& name : tag_names_) bytes += name.size() + sizeof(TagId);
  return bytes;
}

}  // namespace viewjoin::xml
