#include "xml/writer.h"

#include <sstream>
#include <vector>

namespace viewjoin::xml {
namespace {

constexpr const char* kPayload = "lorem";

/// Walks the tree in document order, invoking open/close callbacks.
template <typename Open, typename Close>
void Walk(const Document& doc, Open open, Close close) {
  if (doc.Root() == kInvalidNode) return;
  // Iterative DFS using explicit stack of (node, child-cursor).
  std::vector<NodeId> stack;
  stack.push_back(doc.Root());
  open(doc.Root());
  std::vector<NodeId> cursor;
  cursor.push_back(doc.FirstChild(doc.Root()));
  while (!stack.empty()) {
    NodeId child = cursor.back();
    if (child == kInvalidNode) {
      close(stack.back());
      stack.pop_back();
      cursor.pop_back();
      if (!stack.empty()) {
        cursor.back() = doc.NextSibling(cursor.back());
      }
      continue;
    }
    open(child);
    stack.push_back(child);
    cursor.push_back(doc.FirstChild(child));
  }
}

}  // namespace

std::string WriteDocument(const Document& doc, const WriterOptions& options) {
  std::ostringstream out;
  auto emit_indent = [&](uint32_t level) {
    if (options.indent > 0) {
      out << '\n';
      for (uint32_t i = 1; i < level; ++i) {
        for (int s = 0; s < options.indent; ++s) out << ' ';
      }
    }
  };
  Walk(
      doc,
      [&](NodeId n) {
        emit_indent(doc.NodeLabel(n).level);
        out << '<' << doc.TagName(doc.NodeTag(n)) << '>';
        if (options.synthetic_text && doc.FirstChild(n) == kInvalidNode) {
          out << kPayload;
        }
      },
      [&](NodeId n) {
        if (doc.FirstChild(n) != kInvalidNode) {
          emit_indent(doc.NodeLabel(n).level);
        }
        out << "</" << doc.TagName(doc.NodeTag(n)) << '>';
      });
  if (options.indent > 0) out << '\n';
  return out.str();
}

size_t SerializedSize(const Document& doc, const WriterOptions& options) {
  size_t bytes = 0;
  Walk(
      doc,
      [&](NodeId n) {
        bytes += doc.TagName(doc.NodeTag(n)).size() + 2;  // <name>
        if (options.synthetic_text && doc.FirstChild(n) == kInvalidNode) {
          bytes += 5;
        }
      },
      [&](NodeId n) {
        bytes += doc.TagName(doc.NodeTag(n)).size() + 3;  // </name>
      });
  return bytes;
}

}  // namespace viewjoin::xml
