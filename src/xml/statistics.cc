#include "xml/statistics.h"

#include "util/check.h"

namespace viewjoin::xml {

DocumentStatistics DocumentStatistics::Collect(const Document& doc) {
  DocumentStatistics stats;
  stats.node_count_ = doc.NodeCount();
  stats.tag_counts_.assign(doc.TagCount(), 0);
  if (doc.Root() == kInvalidNode) return stats;

  // Single DFS carrying, per tag, the number of currently open ancestors.
  // For node n with tag t at depth d:
  //   * tag count and depth stats update directly;
  //   * pc pair (tag(parent), t) increments by 1;
  //   * ad pair (a, t) increments by open[a] for every open ancestor tag a;
  //   * distinct counters increment by 1 the first time a qualifying
  //     parent/ancestor exists.
  std::vector<uint64_t> open(doc.TagCount(), 0);
  struct Frame {
    NodeId node;
    NodeId next_child;
  };
  std::vector<Frame> stack;

  auto enter = [&](NodeId n) {
    TagId t = doc.NodeTag(n);
    ++stats.tag_counts_[t];
    uint32_t depth = doc.NodeLabel(n).level;
    stats.depth_sum_ += depth;
    if (depth > stats.max_depth_) stats.max_depth_ = depth;
    NodeId parent = doc.Parent(n);
    if (parent != kInvalidNode) {
      TagId pt = doc.NodeTag(parent);
      ++stats.pc_pairs_[Key(pt, t)];
      ++stats.pc_distinct_[Key(pt, t)];
    }
    for (TagId a = 0; a < open.size(); ++a) {
      if (open[a] == 0) continue;
      stats.ad_pairs_[Key(a, t)] += open[a];
      ++stats.ad_distinct_[Key(a, t)];
    }
    ++open[t];
  };
  auto leave = [&](NodeId n) { --open[doc.NodeTag(n)]; };

  stack.push_back({doc.Root(), doc.FirstChild(doc.Root())});
  enter(doc.Root());
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child == kInvalidNode) {
      leave(top.node);
      NodeId finished = top.node;
      stack.pop_back();
      if (!stack.empty()) {
        stack.back().next_child = doc.NextSibling(finished);
      }
      continue;
    }
    NodeId child = top.next_child;
    enter(child);
    stack.push_back({child, doc.FirstChild(child)});
  }
  return stats;
}

uint64_t DocumentStatistics::TagCount(TagId tag) const {
  if (tag == kInvalidTag || tag >= tag_counts_.size()) return 0;
  return tag_counts_[tag];
}

uint64_t DocumentStatistics::Lookup(
    const std::unordered_map<PairKey, uint64_t>& map, TagId a, TagId b) {
  if (a == kInvalidTag || b == kInvalidTag) return 0;
  auto it = map.find(Key(a, b));
  return it == map.end() ? 0 : it->second;
}

uint64_t DocumentStatistics::PcPairCount(TagId parent, TagId child) const {
  return Lookup(pc_pairs_, parent, child);
}

uint64_t DocumentStatistics::AdPairCount(TagId ancestor,
                                         TagId descendant) const {
  return Lookup(ad_pairs_, ancestor, descendant);
}

uint64_t DocumentStatistics::DistinctPcChildren(TagId parent,
                                                TagId child) const {
  return Lookup(pc_distinct_, parent, child);
}

uint64_t DocumentStatistics::DistinctAdDescendants(TagId ancestor,
                                                   TagId descendant) const {
  return Lookup(ad_distinct_, ancestor, descendant);
}

}  // namespace viewjoin::xml
