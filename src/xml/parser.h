#ifndef VIEWJOIN_XML_PARSER_H_
#define VIEWJOIN_XML_PARSER_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "xml/document.h"

namespace viewjoin::xml {

/// Result of a parse attempt: either a complete document or an error message
/// with the byte offset where parsing failed.
struct ParseResult {
  std::optional<Document> document;
  std::string error;
  size_t error_offset = 0;

  bool ok() const { return document.has_value(); }
};

/// SAX-style consumer of the element-structure event stream. The tokenizer
/// validates well-formedness itself (it keeps its own open-tag stack), so a
/// handler sees only events from a prefix of a well-formed document and never
/// a mismatched or stray close. Every callback returns whether to continue;
/// returning false aborts the parse immediately (StreamResult::aborted) —
/// how a streaming consumer bails out cleanly when, say, its output store
/// hits an I/O error mid-document.
class ParseHandler {
 public:
  virtual ~ParseHandler() = default;
  /// An opening (or self-closing) tag. `name` is valid only for the duration
  /// of the call. A self-closing tag delivers StartElement then EndElement.
  virtual bool StartElement(std::string_view name) = 0;
  /// The matching close of the most recent unclosed StartElement.
  virtual bool EndElement() = 0;
  /// One non-whitespace text run (or CDATA section) — the label position
  /// counter advances by one per event, matching the word-position numbering
  /// Document::SkipTextPositions implements.
  virtual bool Text() { return true; }
};

/// Outcome of a streaming parse: well-formed input fully delivered (`ok`),
/// a handler-requested abort (`aborted`, error_offset = where), or a
/// well-formedness error (same messages and offsets as ParseDocument).
struct StreamResult {
  bool ok = false;
  bool aborted = false;
  std::string error;
  size_t error_offset = 0;
};

/// Parses the element structure of an XML string into a region-labelled
/// Document.
///
/// This is the subset needed for TPQ processing (the paper's data model is
/// element-only): start/end/empty tags and nesting are parsed; attributes are
/// scanned past; text content, comments (`<!-- -->`), CDATA sections,
/// processing instructions and the XML declaration are skipped. Each
/// non-whitespace text run advances the label position counter by one so that
/// labels match the common word-position numbering of real datasets.
ParseResult ParseDocument(std::string_view xml);

/// Parses a file from disk. Returns an error result if the file is missing.
ParseResult ParseDocumentFile(const std::string& path);

/// Streams the element events of `xml` into `handler` without building a
/// Document. Same grammar, error messages and offsets as ParseDocument.
StreamResult ParseStream(std::string_view xml, ParseHandler* handler);

/// Streams a file's element events into `handler`, reading `chunk_bytes` at
/// a time with a rolling buffer — peak memory is one chunk plus the longest
/// single token, independent of document size. Error offsets are absolute
/// file offsets. "cannot open file: <path>" when the file is missing.
StreamResult ParseFileStream(const std::string& path, ParseHandler* handler,
                             size_t chunk_bytes = size_t{1} << 16);

}  // namespace viewjoin::xml

#endif  // VIEWJOIN_XML_PARSER_H_
