#ifndef VIEWJOIN_XML_PARSER_H_
#define VIEWJOIN_XML_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "xml/document.h"

namespace viewjoin::xml {

/// Result of a parse attempt: either a complete document or an error message
/// with the byte offset where parsing failed.
struct ParseResult {
  std::optional<Document> document;
  std::string error;
  size_t error_offset = 0;

  bool ok() const { return document.has_value(); }
};

/// Parses the element structure of an XML string into a region-labelled
/// Document.
///
/// This is the subset needed for TPQ processing (the paper's data model is
/// element-only): start/end/empty tags and nesting are parsed; attributes are
/// scanned past; text content, comments (`<!-- -->`), CDATA sections,
/// processing instructions and the XML declaration are skipped. Each
/// non-whitespace text run advances the label position counter by one so that
/// labels match the common word-position numbering of real datasets.
ParseResult ParseDocument(std::string_view xml);

/// Parses a file from disk. Returns an error result if the file is missing.
ParseResult ParseDocumentFile(const std::string& path);

}  // namespace viewjoin::xml

#endif  // VIEWJOIN_XML_PARSER_H_
