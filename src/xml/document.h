#ifndef VIEWJOIN_XML_DOCUMENT_H_
#define VIEWJOIN_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/label.h"

namespace viewjoin::xml {

/// Region-labelled XML element tree stored in struct-of-arrays form.
///
/// Nodes are identified by `NodeId`, which is also the document-order rank:
/// node ids increase strictly with `start` labels. The document owns a tag
/// table interning element-type names to dense `TagId`s, and an inverted
/// index from TagId to the document-ordered list of nodes of that type (the
/// "element streams" all join algorithms consume).
class Document {
 public:
  Document() = default;

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  // ---- Tag table -----------------------------------------------------------

  /// Interns `name`, returning its dense id (existing id if already known).
  TagId InternTag(std::string_view name);

  /// Returns the id of `name`, or kInvalidTag if never interned.
  TagId FindTag(std::string_view name) const;

  /// Returns the name of an interned tag id.
  const std::string& TagName(TagId tag) const;

  /// Number of distinct tags.
  size_t TagCount() const { return tag_names_.size(); }

  // ---- Tree construction (document order) ----------------------------------

  /// Opens an element as a child of the element most recently opened and not
  /// yet closed (or as the root). Returns the new node's id.
  NodeId StartElement(TagId tag);
  NodeId StartElement(std::string_view name) {
    return StartElement(InternTag(name));
  }

  /// Closes the most recently opened element.
  void EndElement();

  /// Accounts `n` extra label positions for text content between tags so
  /// that serialized/real documents with text round-trip to the same labels.
  void SkipTextPositions(uint32_t n) { next_pos_ += n; }

  /// True once every opened element is closed and there is a root.
  bool IsComplete() const { return open_stack_.empty() && !labels_.empty(); }

  /// True while at least one element is open during construction.
  bool HasOpenElement() const { return !open_stack_.empty(); }

  /// Tag of the innermost open element; invalid when none is open.
  TagId OpenElementTag() const {
    return open_stack_.empty() ? kInvalidTag : tags_[open_stack_.back()];
  }

  // ---- Node accessors -------------------------------------------------------

  size_t NodeCount() const { return labels_.size(); }
  const Label& NodeLabel(NodeId n) const { return labels_[n]; }
  TagId NodeTag(NodeId n) const { return tags_[n]; }
  NodeId Parent(NodeId n) const { return parents_[n]; }
  NodeId FirstChild(NodeId n) const { return first_child_[n]; }
  NodeId NextSibling(NodeId n) const { return next_sibling_[n]; }
  NodeId Root() const { return labels_.empty() ? kInvalidNode : 0; }

  /// Document-ordered node ids of all elements of type `tag` (empty list for
  /// unknown tags).
  const std::vector<NodeId>& NodesOfTag(TagId tag) const;

  /// Node of type `tag` whose label has the given `start`, or kInvalidNode.
  /// Start labels are unique, so this resolves stored labels back to nodes.
  NodeId FindByStart(TagId tag, uint32_t start) const;

  // ---- Structural predicates on node ids ------------------------------------

  bool IsAncestor(NodeId a, NodeId b) const {
    return xml::IsAncestor(labels_[a], labels_[b]);
  }
  bool IsParent(NodeId a, NodeId b) const {
    return xml::IsParent(labels_[a], labels_[b]);
  }

  /// Approximate in-memory footprint in bytes (used for space reporting).
  size_t MemoryBytes() const;

 private:
  std::vector<Label> labels_;
  std::vector<TagId> tags_;
  std::vector<NodeId> parents_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;  // build-time helper for sibling links
  std::vector<NodeId> next_sibling_;

  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, TagId> tag_ids_;
  std::vector<std::vector<NodeId>> nodes_by_tag_;
  std::vector<NodeId> empty_list_;

  std::vector<NodeId> open_stack_;
  uint32_t next_pos_ = 1;
};

}  // namespace viewjoin::xml

#endif  // VIEWJOIN_XML_DOCUMENT_H_
