#ifndef VIEWJOIN_XML_DOCUMENT_H_
#define VIEWJOIN_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "xml/label.h"

namespace viewjoin::xml {

/// Flat preorder description of a subtree to insert into a live document.
/// `nodes[0]` is the subtree root (parent == kNoParent); every other node's
/// parent indexes an *earlier* spec node, so the vector is a valid preorder.
struct SubtreeSpec {
  static constexpr uint32_t kNoParent = 0xFFFFFFFFu;
  struct Node {
    std::string tag;
    uint32_t parent = kNoParent;
  };
  std::vector<Node> nodes;
};

/// Region-labelled XML element tree stored in struct-of-arrays form.
///
/// Nodes are identified by `NodeId`. For documents built purely through
/// StartElement/EndElement, node ids are also the document-order rank; live
/// updates (InsertSubtree/DeleteSubtree) append new ids at the end and
/// tombstone removed ones, so after updates only the per-tag streams — which
/// are kept sorted by start label — define document order. The document owns
/// a tag table interning element-type names to dense `TagId`s, and an
/// inverted index from TagId to the document-ordered list of live nodes of
/// that type (the "element streams" all join algorithms consume).
class Document {
 public:
  Document() = default;

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  // ---- Tag table -----------------------------------------------------------

  /// Interns `name`, returning its dense id (existing id if already known).
  TagId InternTag(std::string_view name);

  /// Returns the id of `name`, or kInvalidTag if never interned.
  TagId FindTag(std::string_view name) const;

  /// Returns the name of an interned tag id.
  const std::string& TagName(TagId tag) const;

  /// Number of distinct tags.
  size_t TagCount() const { return tag_names_.size(); }

  // ---- Tree construction (document order) ----------------------------------

  /// Opens an element as a child of the element most recently opened and not
  /// yet closed (or as the root). Returns the new node's id.
  NodeId StartElement(TagId tag);
  NodeId StartElement(std::string_view name) {
    return StartElement(InternTag(name));
  }

  /// Closes the most recently opened element.
  void EndElement();

  /// Accounts `n` extra label positions for text content between tags so
  /// that serialized/real documents with text round-trip to the same labels.
  void SkipTextPositions(uint32_t n) { next_pos_ += n; }

  /// True once every opened element is closed and there is a root.
  bool IsComplete() const { return open_stack_.empty() && !labels_.empty(); }

  /// True while at least one element is open during construction.
  bool HasOpenElement() const { return !open_stack_.empty(); }

  /// Tag of the innermost open element; invalid when none is open.
  TagId OpenElementTag() const {
    return open_stack_.empty() ? kInvalidTag : tags_[open_stack_.back()];
  }

  // ---- Node accessors -------------------------------------------------------

  size_t NodeCount() const { return labels_.size(); }
  const Label& NodeLabel(NodeId n) const { return labels_[n]; }
  TagId NodeTag(NodeId n) const { return tags_[n]; }
  NodeId Parent(NodeId n) const { return parents_[n]; }
  NodeId FirstChild(NodeId n) const { return first_child_[n]; }
  NodeId NextSibling(NodeId n) const { return next_sibling_[n]; }
  NodeId Root() const { return labels_.empty() ? kInvalidNode : 0; }

  /// Document-ordered node ids of all elements of type `tag` (empty list for
  /// unknown tags).
  const std::vector<NodeId>& NodesOfTag(TagId tag) const;

  /// Node of type `tag` whose label has the given `start`, or kInvalidNode.
  /// Start labels are unique, so this resolves stored labels back to nodes.
  NodeId FindByStart(TagId tag, uint32_t start) const;

  // ---- Live updates ---------------------------------------------------------
  //
  // Gap-based region labeling: RelabelWithGap(g) multiplies every label
  // position by g, opening g-1 unused positions between any two adjacent
  // ones. InsertSubtree then allocates labels strictly inside the gap at the
  // insertion point without touching any existing label; only when a gap is
  // too small for the inserted subtree does it fail with kResourceExhausted,
  // and the caller relabels (and rebuilds anything that stores labels).

  /// Multiplies all label positions by `gap` (> 0), preserving document
  /// order and all structural relations. Fails with kResourceExhausted if
  /// the largest position would overflow 32 bits, with kInvalidArgument on
  /// gap == 0 or an incomplete document. Bumps revision().
  util::Status RelabelWithGap(uint32_t gap);

  /// Inserts `spec` under `parent`, positioned after the existing child
  /// `after` (kInvalidNode inserts as the first child). New nodes take ids
  /// [NodeCount() before, NodeCount() after) in spec preorder; the returned
  /// id is the subtree root's. Labels are evenly spaced inside the gap at
  /// the insertion point; fails with kResourceExhausted when the gap cannot
  /// fit 2·|spec| new positions (relabel and retry), kInvalidArgument on a
  /// malformed spec or attachment point. Bumps revision().
  util::StatusOr<NodeId> InsertSubtree(const SubtreeSpec& spec, NodeId parent,
                                       NodeId after = kInvalidNode);

  /// Unlinks the subtree rooted at `root` (which must not be the document
  /// root) and tombstones its nodes: they leave every per-tag stream and the
  /// structure links, but their labels and tags stay readable so callers can
  /// compute deltas from the ids appended to `removed` (preorder). Bumps
  /// revision(). Fails with kInvalidArgument on the document root or an
  /// already-deleted node.
  util::Status DeleteSubtree(NodeId root,
                             std::vector<NodeId>* removed = nullptr);

  /// True iff `n` is a valid, non-tombstoned node.
  bool IsLive(NodeId n) const {
    return n < labels_.size() && !deleted_[n];
  }

  /// Nodes currently in the tree (NodeCount() minus tombstones).
  size_t LiveNodeCount() const { return labels_.size() - deleted_count_; }

  /// Monotone counter bumped by every mutating call after construction;
  /// caches keyed on document content (statistics, plans) compare this.
  uint64_t revision() const { return revision_; }

  // ---- Structural predicates on node ids ------------------------------------

  bool IsAncestor(NodeId a, NodeId b) const {
    return xml::IsAncestor(labels_[a], labels_[b]);
  }
  bool IsParent(NodeId a, NodeId b) const {
    return xml::IsParent(labels_[a], labels_[b]);
  }

  /// Approximate in-memory footprint in bytes (used for space reporting).
  size_t MemoryBytes() const;

 private:
  std::vector<Label> labels_;
  std::vector<TagId> tags_;
  std::vector<NodeId> parents_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;  // build-time helper for sibling links
  std::vector<NodeId> next_sibling_;
  std::vector<uint8_t> deleted_;  // tombstones from DeleteSubtree

  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, TagId> tag_ids_;
  std::vector<std::vector<NodeId>> nodes_by_tag_;
  std::vector<NodeId> empty_list_;

  std::vector<NodeId> open_stack_;
  uint32_t next_pos_ = 1;
  size_t deleted_count_ = 0;
  uint64_t revision_ = 0;
};

/// Converts the subtree of `doc` rooted at `root` (default: the whole
/// document) into a SubtreeSpec, e.g. to graft a parsed fragment into a live
/// document via InsertSubtree.
SubtreeSpec SpecFromDocument(const Document& doc, NodeId root = 0);

}  // namespace viewjoin::xml

#endif  // VIEWJOIN_XML_DOCUMENT_H_
