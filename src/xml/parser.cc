#include "xml/parser.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace viewjoin::xml {
namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == ':' || c == '.';
}

/// Cursor over the raw XML text with single-token lookahead helpers.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  size_t pos() const { return pos_; }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t delta) const {
    return pos_ + delta < text_.size() ? text_[pos_ + delta] : '\0';
  }
  void Advance(size_t n = 1) { pos_ += n; }

  bool StartsWith(std::string_view prefix) const {
    return text_.compare(pos_, prefix.size(), prefix) == 0;
  }

  /// Advances past the first occurrence of `needle`; false if absent.
  bool SkipPast(std::string_view needle) {
    size_t found = text_.find(needle, pos_);
    if (found == std::string_view::npos) return false;
    pos_ = found + needle.size();
    return true;
  }

  /// Reads an XML name (letters, digits, '_', '-', ':', '.').
  std::string_view ReadName() {
    size_t begin = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return text_.substr(begin, pos_ - begin);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// Scanner over an istream read chunk-at-a-time with a rolling buffer: the
/// consumed prefix is discarded on every refill, so resident memory is one
/// chunk plus the longest in-flight token (a tag name or quoted attribute
/// value), never the document. Absolute offsets are preserved across
/// refills, so error positions match what a whole-file scan would report.
class ChunkedScanner {
 public:
  ChunkedScanner(std::istream& in, size_t chunk_bytes)
      : in_(in), chunk_(std::max<size_t>(chunk_bytes, 64)) {}

  bool AtEnd() { return !Ensure(1); }
  size_t pos() const { return fail_pos_set_ ? fail_pos_ : base_ + rel_; }
  char Peek() { return buf_[rel_]; }
  char PeekAt(size_t delta) {
    return Ensure(delta + 1) ? buf_[rel_ + delta] : '\0';
  }
  void Advance(size_t n = 1) { rel_ += n; }

  bool StartsWith(std::string_view prefix) {
    if (!Ensure(prefix.size())) return false;
    return std::memcmp(buf_.data() + rel_, prefix.data(), prefix.size()) == 0;
  }

  /// Resumable across refills. Long skipped spans (a multi-chunk comment)
  /// retain only a needle-sized tail between refills. On failure the
  /// reported position reverts to where the search began — the offset of the
  /// construct whose terminator is missing, as a whole-file scan reports it —
  /// and the scanner is exhausted (the grammar always fails right after).
  bool SkipPast(std::string_view needle) {
    const size_t start_abs = base_ + rel_;
    for (;;) {
      size_t from = std::min(rel_, buf_.size());
      size_t found = buf_.find(needle.data(), from, needle.size());
      if (found != std::string::npos) {
        rel_ = found + needle.size();
        return true;
      }
      if (eof_in_) {
        rel_ = buf_.size();
        fail_pos_ = start_abs;
        fail_pos_set_ = true;
        return false;
      }
      size_t tail = needle.size() - 1;
      rel_ = buf_.size() > tail ? buf_.size() - tail : 0;
      Refill();
    }
  }

  std::string_view ReadName() {
    mark_active_ = true;
    mark_rel_ = std::min(rel_, buf_.size());
    while (Ensure(1) && IsNameChar(buf_[rel_])) ++rel_;
    mark_active_ = false;
    return std::string_view(buf_).substr(mark_rel_, rel_ - mark_rel_);
  }

 private:
  /// Makes bytes [pos, pos+n) resident, refilling as needed; false when the
  /// input ends first.
  bool Ensure(size_t n) {
    while (rel_ + n > buf_.size() && !eof_in_) Refill();
    return rel_ + n <= buf_.size();
  }

  void Refill() {
    size_t keep_from = std::min(rel_, buf_.size());
    if (mark_active_) keep_from = std::min(keep_from, mark_rel_);
    if (keep_from > 0) {
      buf_.erase(0, keep_from);
      base_ += keep_from;
      rel_ -= keep_from;
      if (mark_active_) mark_rel_ -= keep_from;
    }
    size_t old = buf_.size();
    buf_.resize(old + chunk_);
    in_.read(buf_.data() + old, static_cast<std::streamsize>(chunk_));
    size_t got = static_cast<size_t>(in_.gcount());
    buf_.resize(old + got);
    if (got < chunk_) eof_in_ = true;
  }

  std::istream& in_;
  const size_t chunk_;
  std::string buf_;
  size_t base_ = 0;      // absolute offset of buf_[0]
  size_t rel_ = 0;       // cursor within buf_ (may run past the end at EOF)
  bool eof_in_ = false;  // the stream has no further bytes
  bool mark_active_ = false;
  size_t mark_rel_ = 0;  // refills keep bytes from here (in-flight token)
  size_t fail_pos_ = 0;  // position override after a failed SkipPast
  bool fail_pos_set_ = false;
};

/// The tokenizer proper, shared by the document-building and streaming entry
/// points. Well-formedness is checked here against the tokenizer's own
/// open-tag stack (not the handler's state), so every front-end reports the
/// same errors at the same offsets.
template <typename ScannerT>
StreamResult Tokenize(ScannerT& scan, ParseHandler& handler) {
  StreamResult result;
  auto fail = [&result](std::string message, size_t offset) -> StreamResult& {
    result.error = std::move(message);
    result.error_offset = offset;
    return result;
  };
  auto aborted = [&result](size_t offset) -> StreamResult& {
    result.aborted = true;
    result.error = "parse aborted by handler";
    result.error_offset = offset;
    return result;
  };

  std::vector<std::string> open;
  bool saw_root = false;
  bool pending_text = false;

  while (!scan.AtEnd()) {
    char c = scan.Peek();
    if (c != '<') {
      if (!std::isspace(static_cast<unsigned char>(c))) pending_text = true;
      scan.Advance();
      continue;
    }
    if (pending_text) {
      if (!handler.Text()) return aborted(scan.pos());
      pending_text = false;
    }
    if (scan.StartsWith("<!--")) {
      if (!scan.SkipPast("-->")) return fail("unterminated comment", scan.pos());
      continue;
    }
    if (scan.StartsWith("<![CDATA[")) {
      if (!scan.SkipPast("]]>")) return fail("unterminated CDATA", scan.pos());
      if (!handler.Text()) return aborted(scan.pos());
      continue;
    }
    if (scan.StartsWith("<?")) {
      if (!scan.SkipPast("?>")) return fail("unterminated PI", scan.pos());
      continue;
    }
    if (scan.StartsWith("<!")) {  // DOCTYPE etc.
      if (!scan.SkipPast(">")) return fail("unterminated declaration", scan.pos());
      continue;
    }
    if (scan.PeekAt(1) == '/') {
      // Closing tag.
      scan.Advance(2);
      std::string_view name = scan.ReadName();
      if (name.empty()) return fail("empty closing tag name", scan.pos());
      if (open.empty()) {
        return fail("closing tag with no open element", scan.pos());
      }
      if (open.back() != name) {
        return fail("mismatched closing tag </" + std::string(name) + ">",
                    scan.pos());
      }
      if (!handler.EndElement()) return aborted(scan.pos());
      open.pop_back();
      if (!scan.SkipPast(">")) return fail("unterminated closing tag", scan.pos());
      continue;
    }
    // Opening or empty tag.
    scan.Advance(1);
    std::string_view name = scan.ReadName();
    if (name.empty()) return fail("empty tag name", scan.pos());
    if (saw_root && open.empty()) {
      return fail("multiple root elements", scan.pos());
    }
    if (!handler.StartElement(name)) return aborted(scan.pos());
    open.emplace_back(name);
    saw_root = true;
    // Scan attributes until '>' or '/>', respecting quoted values.
    bool closed = false;
    bool self_closing = false;
    while (!scan.AtEnd()) {
      char a = scan.Peek();
      if (a == '"' || a == '\'') {
        scan.Advance();
        while (!scan.AtEnd() && scan.Peek() != a) scan.Advance();
        if (scan.AtEnd()) return fail("unterminated attribute value", scan.pos());
        scan.Advance();
      } else if (a == '/' && scan.PeekAt(1) == '>') {
        scan.Advance(2);
        closed = true;
        self_closing = true;
        break;
      } else if (a == '>') {
        scan.Advance();
        closed = true;
        break;
      } else {
        scan.Advance();
      }
    }
    if (!closed) return fail("unterminated opening tag", scan.pos());
    if (self_closing) {
      if (!handler.EndElement()) return aborted(scan.pos());
      open.pop_back();
    }
  }

  if (!saw_root) return fail("no root element", 0);
  if (!open.empty()) return fail("unclosed elements at end of input", scan.pos());

  result.ok = true;
  return result;
}

/// ParseHandler that rebuilds the classic in-memory Document.
class DocumentBuildHandler : public ParseHandler {
 public:
  bool StartElement(std::string_view name) override {
    doc_.StartElement(name);
    return true;
  }
  bool EndElement() override {
    doc_.EndElement();
    return true;
  }
  bool Text() override {
    doc_.SkipTextPositions(1);
    return true;
  }

  Document&& TakeDocument() { return std::move(doc_); }

 private:
  Document doc_;
};

ParseResult ToParseResult(StreamResult stream, DocumentBuildHandler& builder) {
  ParseResult result;
  if (stream.ok) {
    result.document = builder.TakeDocument();
  } else {
    result.error = std::move(stream.error);
    result.error_offset = stream.error_offset;
  }
  return result;
}

}  // namespace

ParseResult ParseDocument(std::string_view xml) {
  Scanner scan(xml);
  DocumentBuildHandler builder;
  return ToParseResult(Tokenize(scan, builder), builder);
}

ParseResult ParseDocumentFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ParseResult result;
    result.error = "cannot open file: " + path;
    result.error_offset = 0;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  return ParseDocument(text);
}

StreamResult ParseStream(std::string_view xml, ParseHandler* handler) {
  Scanner scan(xml);
  return Tokenize(scan, *handler);
}

StreamResult ParseFileStream(const std::string& path, ParseHandler* handler,
                             size_t chunk_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    StreamResult result;
    result.error = "cannot open file: " + path;
    result.error_offset = 0;
    return result;
  }
  ChunkedScanner scan(in, chunk_bytes);
  return Tokenize(scan, *handler);
}

}  // namespace viewjoin::xml
