#include "xml/parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace viewjoin::xml {
namespace {

/// Cursor over the raw XML text with single-token lookahead helpers.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  size_t pos() const { return pos_; }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t delta) const {
    return pos_ + delta < text_.size() ? text_[pos_ + delta] : '\0';
  }
  void Advance(size_t n = 1) { pos_ += n; }

  bool StartsWith(std::string_view prefix) const {
    return text_.compare(pos_, prefix.size(), prefix) == 0;
  }

  /// Advances past the first occurrence of `needle`; false if absent.
  bool SkipPast(std::string_view needle) {
    size_t found = text_.find(needle, pos_);
    if (found == std::string_view::npos) return false;
    pos_ = found + needle.size();
    return true;
  }

  /// Reads an XML name (letters, digits, '_', '-', ':', '.').
  std::string_view ReadName() {
    size_t begin = pos_;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == ':' || c == '.') {
        Advance();
      } else {
        break;
      }
    }
    return text_.substr(begin, pos_ - begin);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

ParseResult Fail(std::string message, size_t offset) {
  ParseResult result;
  result.error = std::move(message);
  result.error_offset = offset;
  return result;
}

}  // namespace

ParseResult ParseDocument(std::string_view xml) {
  Scanner scan(xml);
  Document doc;
  bool saw_root = false;
  bool pending_text = false;

  while (!scan.AtEnd()) {
    char c = scan.Peek();
    if (c != '<') {
      if (!std::isspace(static_cast<unsigned char>(c))) pending_text = true;
      scan.Advance();
      continue;
    }
    if (pending_text) {
      doc.SkipTextPositions(1);
      pending_text = false;
    }
    if (scan.StartsWith("<!--")) {
      if (!scan.SkipPast("-->")) return Fail("unterminated comment", scan.pos());
      continue;
    }
    if (scan.StartsWith("<![CDATA[")) {
      if (!scan.SkipPast("]]>")) return Fail("unterminated CDATA", scan.pos());
      doc.SkipTextPositions(1);
      continue;
    }
    if (scan.StartsWith("<?")) {
      if (!scan.SkipPast("?>")) return Fail("unterminated PI", scan.pos());
      continue;
    }
    if (scan.StartsWith("<!")) {  // DOCTYPE etc.
      if (!scan.SkipPast(">")) return Fail("unterminated declaration", scan.pos());
      continue;
    }
    if (scan.PeekAt(1) == '/') {
      // Closing tag.
      scan.Advance(2);
      std::string_view name = scan.ReadName();
      if (name.empty()) return Fail("empty closing tag name", scan.pos());
      if (!doc.HasOpenElement()) {
        return Fail("closing tag with no open element", scan.pos());
      }
      if (doc.TagName(doc.OpenElementTag()) != name) {
        return Fail("mismatched closing tag </" + std::string(name) + ">",
                    scan.pos());
      }
      doc.EndElement();
      if (!scan.SkipPast(">")) return Fail("unterminated closing tag", scan.pos());
      continue;
    }
    // Opening or empty tag.
    scan.Advance(1);
    std::string_view name = scan.ReadName();
    if (name.empty()) return Fail("empty tag name", scan.pos());
    if (saw_root && doc.IsComplete()) {
      return Fail("multiple root elements", scan.pos());
    }
    doc.StartElement(name);
    saw_root = true;
    // Scan attributes until '>' or '/>', respecting quoted values.
    bool closed = false;
    bool self_closing = false;
    while (!scan.AtEnd()) {
      char a = scan.Peek();
      if (a == '"' || a == '\'') {
        scan.Advance();
        while (!scan.AtEnd() && scan.Peek() != a) scan.Advance();
        if (scan.AtEnd()) return Fail("unterminated attribute value", scan.pos());
        scan.Advance();
      } else if (a == '/' && scan.PeekAt(1) == '>') {
        scan.Advance(2);
        closed = true;
        self_closing = true;
        break;
      } else if (a == '>') {
        scan.Advance();
        closed = true;
        break;
      } else {
        scan.Advance();
      }
    }
    if (!closed) return Fail("unterminated opening tag", scan.pos());
    if (self_closing) doc.EndElement();
  }

  if (!saw_root) return Fail("no root element", 0);
  if (!doc.IsComplete()) return Fail("unclosed elements at end of input", scan.pos());

  ParseResult result;
  result.document = std::move(doc);
  return result;
}

ParseResult ParseDocumentFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail("cannot open file: " + path, 0);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  return ParseDocument(text);
}

}  // namespace viewjoin::xml
