#ifndef VIEWJOIN_XML_WRITER_H_
#define VIEWJOIN_XML_WRITER_H_

#include <string>

#include "xml/document.h"

namespace viewjoin::xml {

/// Options controlling serialization.
struct WriterOptions {
  /// When true, each element gets a one-word synthetic text payload so the
  /// serialized size approximates a real dataset of the same element count
  /// (used when reporting document sizes in MB, paper Section VI-D).
  bool synthetic_text = false;

  /// Indentation per level; 0 writes a compact single line.
  int indent = 0;
};

/// Serializes the element tree back to XML text.
std::string WriteDocument(const Document& doc, const WriterOptions& options = {});

/// Serialized size in bytes without building the string.
size_t SerializedSize(const Document& doc, const WriterOptions& options = {});

}  // namespace viewjoin::xml

#endif  // VIEWJOIN_XML_WRITER_H_
