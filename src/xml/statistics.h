#ifndef VIEWJOIN_XML_STATISTICS_H_
#define VIEWJOIN_XML_STATISTICS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "xml/document.h"

namespace viewjoin::xml {

/// Summary statistics of a document, collected in one pass: per-tag counts,
/// depth profile, and the tag-pair structure counts that drive cardinality
/// estimation for tree patterns (parent-child and ancestor-descendant pair
/// counts per tag pair).
///
/// The ancestor-descendant count `ad(a, b)` is the number of (ancestor,
/// descendant) node pairs with those tags — exactly |matches of //a//b| —
/// computed by a single DFS carrying the count of open ancestors per tag.
class DocumentStatistics {
 public:
  /// Collects statistics for `doc` (O(nodes × depth) time, one DFS).
  static DocumentStatistics Collect(const Document& doc);

  uint64_t node_count() const { return node_count_; }
  uint32_t max_depth() const { return max_depth_; }
  double average_depth() const {
    return node_count_ == 0
               ? 0
               : static_cast<double>(depth_sum_) /
                     static_cast<double>(node_count_);
  }

  /// Number of elements with this tag (0 for unknown tags).
  uint64_t TagCount(TagId tag) const;

  /// Number of (parent, child) element pairs with the given tags.
  uint64_t PcPairCount(TagId parent, TagId child) const;

  /// Number of (ancestor, descendant) element pairs with the given tags
  /// (= the exact match count of //parent//child).
  uint64_t AdPairCount(TagId ancestor, TagId descendant) const;

  /// Distinct elements of tag `child` having at least one `parent`-tagged
  /// parent (pc) / ancestor (ad) — the building block of list-length
  /// estimation.
  uint64_t DistinctPcChildren(TagId parent, TagId child) const;
  uint64_t DistinctAdDescendants(TagId ancestor, TagId descendant) const;

 private:
  using PairKey = uint64_t;
  static PairKey Key(TagId a, TagId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  static uint64_t Lookup(const std::unordered_map<PairKey, uint64_t>& map,
                         TagId a, TagId b);

  uint64_t node_count_ = 0;
  uint64_t depth_sum_ = 0;
  uint32_t max_depth_ = 0;
  std::vector<uint64_t> tag_counts_;
  std::unordered_map<PairKey, uint64_t> pc_pairs_;
  std::unordered_map<PairKey, uint64_t> ad_pairs_;
  std::unordered_map<PairKey, uint64_t> pc_distinct_;
  std::unordered_map<PairKey, uint64_t> ad_distinct_;
};

}  // namespace viewjoin::xml

#endif  // VIEWJOIN_XML_STATISTICS_H_
