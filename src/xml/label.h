#ifndef VIEWJOIN_XML_LABEL_H_
#define VIEWJOIN_XML_LABEL_H_

#include <cstdint>

namespace viewjoin::xml {

/// Region label of one XML element under the <start, end, level> scheme of
/// Li & Moon (paper Section II): `start`/`end` are the word positions of the
/// element's start and end tags in document order, `level` is the depth of
/// the element (root = 1).
///
/// For two nodes a, b in the same document:
///  * a is an ancestor of b  iff a.start < b.start && b.end < a.end
///  * a is the parent of b   iff ancestor && a.level == b.level - 1
///  * b follows a            iff b.start > a.end
struct Label {
  uint32_t start = 0;
  uint32_t end = 0;
  uint32_t level = 0;

  friend bool operator==(const Label&, const Label&) = default;
};

/// True iff `a` is a proper ancestor of `b`.
inline bool IsAncestor(const Label& a, const Label& b) {
  return a.start < b.start && b.end < a.end;
}

/// True iff `a` is the parent of `b`.
inline bool IsParent(const Label& a, const Label& b) {
  return IsAncestor(a, b) && a.level + 1 == b.level;
}

/// True iff `b` is a following node of `a` (starts after `a` ends).
inline bool IsFollowing(const Label& a, const Label& b) {
  return b.start > a.end;
}

/// Interned element-type id. Tag names are interned per document (or per
/// TagTable shared between a document and the queries over it).
using TagId = uint32_t;

/// Node handle: index into the owning document's arrays.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;
inline constexpr TagId kInvalidTag = 0xFFFFFFFFu;

}  // namespace viewjoin::xml

#endif  // VIEWJOIN_XML_LABEL_H_
