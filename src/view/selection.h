#ifndef VIEWJOIN_VIEW_SELECTION_H_
#define VIEWJOIN_VIEW_SELECTION_H_

#include <cstdint>
#include <vector>

#include "tpq/pattern.h"
#include "xml/document.h"
#include "xml/statistics.h"

namespace viewjoin::view {

/// Heuristic family for picking a covering view set (paper Section V).
enum class SelectionHeuristic {
  /// The paper's cost-based benefit |new nodes| / c(v,Q) with λ given below.
  kCostBased,
  /// The size-only baseline of Example 5.1: benefit |new nodes| / Σ|L_q|.
  kSizeOnly,
};

struct SelectionOptions {
  SelectionHeuristic heuristic = SelectionHeuristic::kCostBased;
  /// Weight between I/O and join cost; the paper uses λ = 1 (CPU-bound).
  double lambda = 1.0;
  /// When set, |L_q| values come from the independence estimator over these
  /// single-pass statistics instead of exact evaluation — how a production
  /// optimizer would run the paper's heuristic without touching the views.
  const xml::DocumentStatistics* statistics = nullptr;
};

struct SelectionResult {
  /// Indices into the candidate vector, in selection order.
  std::vector<size_t> selected;
  /// True iff the selected set covers every query node.
  bool covers = false;
  /// Per candidate: c(v,Q) under the options' λ (NaN for non-subpatterns).
  std::vector<double> costs;
  /// Per candidate: Σ|L_q| (the size metric, paper Table II's "Size").
  std::vector<uint64_t> sizes;
};

/// Greedy view selection (paper Section V, after Harinarayan et al.):
/// iteratively picks the unselected candidate with the highest benefit
/// (newly covered query nodes per unit cost) until the query is covered or
/// no candidate helps. Candidates that are not subpatterns of the query are
/// unusable; candidates sharing an element type with an already selected
/// view are skipped, keeping the chosen set disjoint as the evaluation
/// algorithms require.
///
/// If the heuristic terminates with full coverage the result is a minimal
/// covering view set.
SelectionResult SelectViews(const xml::Document& doc,
                            const tpq::TreePattern& query,
                            const std::vector<tpq::TreePattern>& candidates,
                            const SelectionOptions& options = {});

/// Workload-level selection: one materialized-view set serving a whole
/// workload of queries — the setting the paper's greedy ancestor
/// (Harinarayan et al.) was designed for. A candidate's benefit is the sum,
/// over the workload queries it can serve (subpattern + type-disjoint from
/// the views already chosen for that query), of newly covered query nodes,
/// divided by the view's cost aggregated over those queries.
struct WorkloadSelectionResult {
  /// Indices of chosen candidates, in selection order.
  std::vector<size_t> selected;
  /// Per query: the indices (into `selected`'s candidates) forming its
  /// covering set, in usage order.
  std::vector<std::vector<size_t>> per_query_views;
  /// Per query: whether its covering completed.
  std::vector<uint8_t> covered;
  /// True iff every workload query is covered.
  bool all_covered = false;
};

WorkloadSelectionResult SelectViewsForWorkload(
    const xml::Document& doc, const std::vector<tpq::TreePattern>& workload,
    const std::vector<tpq::TreePattern>& candidates,
    const SelectionOptions& options = {});

}  // namespace viewjoin::view

#endif  // VIEWJOIN_VIEW_SELECTION_H_
