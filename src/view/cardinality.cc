#include "view/cardinality.h"

#include <algorithm>

#include "util/check.h"

namespace viewjoin::view {

using tpq::Axis;
using tpq::TreePattern;
using xml::DocumentStatistics;
using xml::TagId;

namespace {

struct NodeEstimates {
  std::vector<double> sub;    // P(subtree below q matches | q's tag)
  std::vector<double> chain;  // P(ancestor chain above q matches)
  std::vector<TagId> tags;
};

NodeEstimates ComputeFractions(const DocumentStatistics& stats,
                               const xml::Document& doc,
                               const TreePattern& pattern) {
  size_t nq = pattern.size();
  NodeEstimates est;
  est.sub.assign(nq, 1.0);
  est.chain.assign(nq, 1.0);
  est.tags.resize(nq);
  for (size_t q = 0; q < nq; ++q) {
    est.tags[q] = doc.FindTag(pattern.node(static_cast<int>(q)).tag);
  }
  // Bottom-up subtree fractions (children have larger preorder indexes).
  for (int q = static_cast<int>(nq) - 1; q >= 0; --q) {
    double frac = 1.0;
    TagId tq = est.tags[static_cast<size_t>(q)];
    double count_q = static_cast<double>(stats.TagCount(tq));
    for (int c : pattern.node(q).children) {
      TagId tc = est.tags[static_cast<size_t>(c)];
      double pairs =
          pattern.node(c).incoming == Axis::kChild
              ? static_cast<double>(stats.PcPairCount(tq, tc))
              : static_cast<double>(stats.AdPairCount(tq, tc));
      double expected =
          count_q > 0 ? pairs / count_q * est.sub[static_cast<size_t>(c)] : 0;
      frac *= std::min(1.0, expected);
    }
    est.sub[static_cast<size_t>(q)] = frac;
  }
  // Top-down ancestor-chain fractions.
  for (size_t q = 1; q < nq; ++q) {
    const tpq::PatternNode& pn = pattern.node(static_cast<int>(q));
    size_t p = static_cast<size_t>(pn.parent);
    TagId tq = est.tags[q];
    TagId tp = est.tags[p];
    double count_q = static_cast<double>(stats.TagCount(tq));
    double with_parent =
        pn.incoming == Axis::kChild
            ? static_cast<double>(stats.DistinctPcChildren(tp, tq))
            : static_cast<double>(stats.DistinctAdDescendants(tp, tq));
    double frac = count_q > 0 ? with_parent / count_q : 0;
    est.chain[q] = est.chain[p] * std::min(1.0, frac);
  }
  return est;
}

}  // namespace

std::vector<double> EstimateListLengths(const DocumentStatistics& stats,
                                        const xml::Document& doc,
                                        const TreePattern& pattern) {
  NodeEstimates est = ComputeFractions(stats, doc, pattern);
  std::vector<double> lengths(pattern.size());
  for (size_t q = 0; q < pattern.size(); ++q) {
    lengths[q] = static_cast<double>(stats.TagCount(est.tags[q])) *
                 est.chain[q] * est.sub[q];
  }
  return lengths;
}

double EstimateMatchCount(const DocumentStatistics& stats,
                          const xml::Document& doc,
                          const TreePattern& pattern) {
  NodeEstimates est = ComputeFractions(stats, doc, pattern);
  // Root matches times expected fan-out per edge.
  TagId root_tag = est.tags[0];
  double matches =
      static_cast<double>(stats.TagCount(root_tag)) * est.sub[0];
  for (size_t q = 1; q < pattern.size(); ++q) {
    const tpq::PatternNode& pn = pattern.node(static_cast<int>(q));
    TagId tp = est.tags[static_cast<size_t>(pn.parent)];
    TagId tq = est.tags[q];
    double count_p = static_cast<double>(stats.TagCount(tp));
    double pairs = pn.incoming == Axis::kChild
                       ? static_cast<double>(stats.PcPairCount(tp, tq))
                       : static_cast<double>(stats.AdPairCount(tp, tq));
    double fanout = count_p > 0 ? pairs / count_p : 0;
    // Conditioned on the parent having at least one qualifying child, the
    // per-parent fan-out is at least 1.
    matches *= std::max(fanout, pairs > 0 ? 1.0 : 0.0);
  }
  return matches;
}

}  // namespace viewjoin::view
