#ifndef VIEWJOIN_VIEW_CARDINALITY_H_
#define VIEWJOIN_VIEW_CARDINALITY_H_

#include <vector>

#include "tpq/pattern.h"
#include "xml/document.h"
#include "xml/statistics.h"

namespace viewjoin::view {

/// Independence-assumption cardinality estimator for tree patterns, in the
/// System-R tradition: estimates each pattern node's solution-list length
/// |L_q| from single-pass document statistics instead of evaluating the
/// pattern.
///
///   est[q] = count(tag_q) · chain(q) · sub(q)
///
/// where `chain(q)` multiplies, along q's root path, the probability that a
/// tag_q node sits under a tag_p parent/ancestor (distinct-pair counts), and
/// `sub(q)` multiplies, over q's children, the probability that a tag_q node
/// has a qualifying child subtree (expected-count capped at 1).
///
/// Exact for single-node patterns and for the descendant side of two-node
/// patterns; the view-selection cost model only needs relative magnitudes.
std::vector<double> EstimateListLengths(const xml::DocumentStatistics& stats,
                                        const xml::Document& doc,
                                        const tpq::TreePattern& pattern);

/// Estimated total matches of the pattern (product along expected fan-outs;
/// a coarse figure for planning, exact for paths of length <= 2).
double EstimateMatchCount(const xml::DocumentStatistics& stats,
                          const xml::Document& doc,
                          const tpq::TreePattern& pattern);

}  // namespace viewjoin::view

#endif  // VIEWJOIN_VIEW_CARDINALITY_H_
