#include "view/selection.h"

#include <cmath>
#include <limits>

#include "tpq/subpattern.h"
#include "view/cardinality.h"
#include "view/cost_model.h"

namespace viewjoin::view {

using tpq::TreePattern;

SelectionResult SelectViews(const xml::Document& doc, const TreePattern& query,
                            const std::vector<TreePattern>& candidates,
                            const SelectionOptions& options) {
  SelectionResult result;
  size_t n = candidates.size();
  result.costs.assign(n, std::numeric_limits<double>::quiet_NaN());
  result.sizes.assign(n, 0);

  std::vector<std::optional<tpq::PatternMapping>> mappings(n);
  for (size_t i = 0; i < n; ++i) {
    mappings[i] = tpq::SubpatternMapping(candidates[i], query);
    if (!mappings[i].has_value()) continue;  // unusable: not a subpattern
    std::vector<uint32_t> lengths;
    if (options.statistics != nullptr) {
      for (double est : EstimateListLengths(*options.statistics, doc,
                                            candidates[i])) {
        lengths.push_back(static_cast<uint32_t>(est + 0.5));
      }
    } else {
      lengths = ViewListLengths(doc, candidates[i]);
    }
    for (uint32_t len : lengths) result.sizes[i] += len;
    result.costs[i] =
        ViewCost(query, candidates[i], lengths, options.lambda);
  }

  std::vector<uint8_t> covered(query.size(), 0);
  std::vector<uint8_t> used(n, 0);
  size_t covered_count = 0;
  while (covered_count < query.size()) {
    double best_benefit = -1;
    int best = -1;
    for (size_t i = 0; i < n; ++i) {
      if (used[i] || !mappings[i].has_value()) continue;
      // Disjointness: a candidate whose types overlap an already covered
      // query node is skipped (the evaluation algorithms require views with
      // pairwise-distinct element types).
      size_t fresh = 0;
      bool overlap = false;
      for (int qnode : *mappings[i]) {
        if (covered[static_cast<size_t>(qnode)]) {
          overlap = true;
          break;
        }
        ++fresh;
      }
      if (overlap || fresh == 0) continue;
      double denom = options.heuristic == SelectionHeuristic::kSizeOnly
                         ? static_cast<double>(result.sizes[i])
                         : result.costs[i];
      if (denom <= 0) denom = 1e-9;  // free views are infinitely beneficial
      double benefit = static_cast<double>(fresh) / denom;
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // nothing usable remains
    used[static_cast<size_t>(best)] = 1;
    result.selected.push_back(static_cast<size_t>(best));
    for (int qnode : *mappings[static_cast<size_t>(best)]) {
      covered[static_cast<size_t>(qnode)] = 1;
      ++covered_count;
    }
  }
  result.covers = covered_count == query.size();
  return result;
}

WorkloadSelectionResult SelectViewsForWorkload(
    const xml::Document& doc, const std::vector<TreePattern>& workload,
    const std::vector<TreePattern>& candidates,
    const SelectionOptions& options) {
  size_t nq = workload.size();
  size_t nc = candidates.size();
  WorkloadSelectionResult result;
  result.per_query_views.resize(nq);
  result.covered.assign(nq, 0);

  // Per (query, candidate): the subpattern mapping, when usable.
  std::vector<std::vector<std::optional<tpq::PatternMapping>>> mappings(nq);
  // Per (query, candidate): cost c(v, Q_i).
  std::vector<std::vector<double>> costs(nq);
  for (size_t q = 0; q < nq; ++q) {
    mappings[q].resize(nc);
    costs[q].assign(nc, 0);
    for (size_t c = 0; c < nc; ++c) {
      mappings[q][c] = tpq::SubpatternMapping(candidates[c], workload[q]);
      if (!mappings[q][c].has_value()) continue;
      std::vector<uint32_t> lengths;
      if (options.statistics != nullptr) {
        for (double est :
             EstimateListLengths(*options.statistics, doc, candidates[c])) {
          lengths.push_back(static_cast<uint32_t>(est + 0.5));
        }
      } else {
        lengths = ViewListLengths(doc, candidates[c]);
      }
      if (options.heuristic == SelectionHeuristic::kSizeOnly) {
        double size = 0;
        for (uint32_t len : lengths) size += len;
        costs[q][c] = size;
      } else {
        costs[q][c] = ViewCost(workload[q], candidates[c], lengths,
                               options.lambda);
      }
    }
  }

  // Greedy: per query, track covered nodes; a candidate's marginal benefit
  // sums over queries where it is usable and type-disjoint from that
  // query's already-assigned views.
  std::vector<std::vector<uint8_t>> covered_nodes(nq);
  for (size_t q = 0; q < nq; ++q) {
    covered_nodes[q].assign(workload[q].size(), 0);
  }
  std::vector<uint8_t> used(nc, 0);
  while (true) {
    double best_benefit = 0;
    int best = -1;
    for (size_t c = 0; c < nc; ++c) {
      if (used[c]) continue;
      double gain = 0;
      double cost = 0;
      for (size_t q = 0; q < nq; ++q) {
        if (result.covered[q] || !mappings[q][c].has_value()) continue;
        size_t fresh = 0;
        bool overlap = false;
        for (int qnode : *mappings[q][c]) {
          if (covered_nodes[q][static_cast<size_t>(qnode)]) {
            overlap = true;
            break;
          }
          ++fresh;
        }
        if (overlap || fresh == 0) continue;
        gain += static_cast<double>(fresh);
        cost += costs[q][c];
      }
      if (gain == 0) continue;
      if (cost <= 0) cost = 1e-9;
      double benefit = gain / cost;
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best = static_cast<int>(c);
      }
    }
    if (best < 0) break;
    size_t c = static_cast<size_t>(best);
    used[c] = 1;
    size_t selected_index = result.selected.size();
    result.selected.push_back(c);
    for (size_t q = 0; q < nq; ++q) {
      if (result.covered[q] || !mappings[q][c].has_value()) continue;
      bool overlap = false;
      for (int qnode : *mappings[q][c]) {
        overlap |= covered_nodes[q][static_cast<size_t>(qnode)] != 0;
      }
      if (overlap) continue;
      result.per_query_views[q].push_back(selected_index);
      size_t total = 0;
      for (int qnode : *mappings[q][c]) {
        covered_nodes[q][static_cast<size_t>(qnode)] = 1;
      }
      for (uint8_t f : covered_nodes[q]) total += f;
      if (total == workload[q].size()) result.covered[q] = 1;
    }
    bool all = true;
    for (uint8_t f : result.covered) all &= (f != 0);
    if (all) break;
  }
  result.all_covered = true;
  for (uint8_t f : result.covered) {
    if (f == 0) result.all_covered = false;
  }
  return result;
}

}  // namespace viewjoin::view
