#ifndef VIEWJOIN_VIEW_COST_MODEL_H_
#define VIEWJOIN_VIEW_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "tpq/pattern.h"
#include "xml/document.h"

namespace viewjoin::view {

/// |L_q| for every node of `pattern` materialized over `doc` — the sizes the
/// cost model consumes. (Identical to the list lengths a materialized view
/// would have; computable without materializing.)
std::vector<uint32_t> ViewListLengths(const xml::Document& doc,
                                      const tpq::TreePattern& pattern);

/// The paper's evaluation cost model (Section V):
///
///   c(v, Q) = (1-λ) · Σ_q |L_q|  +  λ · Σ_q |L_q| · e_q
///
/// summed over the nodes q of `view`, where e_q is the number of edges of q
/// in Q that are not present in v (the interleaving conditions q will pay
/// structural comparisons for). λ = 1 approximates the observed CPU-bound
/// behaviour; λ = 0 degenerates to the pure I/O (view size) heuristic that
/// Example 5.1 shows picking worse view sets.
///
/// `view` must be a subpattern of `query`; `list_lengths` are the |L_q| of
/// the view's nodes (in view node order).
double ViewCost(const tpq::TreePattern& query, const tpq::TreePattern& view,
                const std::vector<uint32_t>& list_lengths, double lambda);

/// e_q values per view node (exposed for tests and the benches' tables).
std::vector<int> MissingEdgeCounts(const tpq::TreePattern& query,
                                   const tpq::TreePattern& view);

}  // namespace viewjoin::view

#endif  // VIEWJOIN_VIEW_COST_MODEL_H_
