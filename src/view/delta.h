#ifndef VIEWJOIN_VIEW_DELTA_H_
#define VIEWJOIN_VIEW_DELTA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tpq/pattern.h"
#include "xml/document.h"
#include "xml/label.h"

namespace viewjoin::view {

/// Per-pattern-node solution-list deltas of one view pattern: added[q] /
/// removed[q] are the labels entering / leaving the solution list L_q,
/// sorted by start. Shapes match storage::ViewCatalog::ListDeltas so the
/// engine can hand them over verbatim.
struct PatternDeltas {
  std::vector<std::vector<xml::Label>> added;
  std::vector<std::vector<xml::Label>> removed;

  bool empty() const {
    for (const auto& a : added)
      if (!a.empty()) return false;
    for (const auto& r : removed)
      if (!r.empty()) return false;
    return true;
  }
};

/// Computes, for a batch of live-document updates, the exact change to every
/// view's solution-node lists — without re-evaluating any pattern over the
/// whole document.
///
/// The key containment property of region-labelled TPQ matching: a subtree
/// insert or delete of subtree S at attachment point p can change the
/// solution status only of (a) nodes inside S, (b) pattern-tagged strict
/// ancestors of p whose *support* (heading an embedding of their pattern
/// subtree) flips — support depends solely on a node's descendants, and the
/// only existing nodes whose descendant set changes are ancestors of p —
/// and (c) nodes below such a flipped ancestor, whose reachability from a
/// pattern-root image may change with it.
///
/// So each mutation is sandwiched over a tight region: the mutated subtree
/// itself in the common case, widening to the subtree of the highest
/// support-flipped ancestor only when one exists. Ancestors above the
/// region are probed with exact early-exit witness searches over the full
/// per-tag streams (cost O(depth * witness distance), not O(container)),
/// and injected into both restricted evaluations with their support status
/// pinned, so embeddings of region nodes can climb through them. The set
/// difference of the pre and post solution sets is the delta. Deltas from
/// successive operations in one batch cancel (a label added then removed
/// contributes nothing), so TakeDeltas() returns the net batch effect —
/// exactly what storage::ViewCatalog::ApplyUpdateBatch merges.
///
/// Restricted evaluation is the standard two-pass solution-node
/// characterization: a bottom-up pass marks nodes that head an embedding of
/// their pattern subtree, a top-down pass keeps those reachable from a
/// pattern-root image. Cost is proportional to the tag-list sizes inside the
/// scope region, not the document — for a batch of localized updates this is
/// O(|S|) per op plus the ancestor probes, independent of how fat the
/// surrounding containers are.
class DeltaCollector {
 public:
  /// `doc` must outlive the collector; `patterns` are the view patterns to
  /// maintain, copied. Every pattern must have unique tags (the system-wide
  /// standing assumption).
  DeltaCollector(const xml::Document* doc,
                 std::vector<tpq::TreePattern> patterns);

  // Sandwich calls around each document mutation. Will* must be called
  // before the corresponding Document::InsertSubtree / DeleteSubtree, Did*
  // immediately after it succeeds (skip Did* if the mutation failed).
  void WillInsert(xml::NodeId parent);
  void DidInsert(xml::NodeId new_root);
  void WillDelete(xml::NodeId victim);
  void DidDelete();

  /// Net deltas accumulated since construction (or the previous take), one
  /// PatternDeltas per pattern in construction order, labels sorted by
  /// start. Resets the accumulator.
  std::vector<PatternDeltas> TakeDeltas();

  size_t pattern_count() const { return patterns_.size(); }

 private:
  struct Scope {
    /// A pattern-tagged strict ancestor of the attachment point with its
    /// exact support status before and after the mutation.
    struct Anc {
      xml::NodeId node;
      int q;  // the pattern node it can image (unique tags: at most one)
      bool pre_supported;
      bool post_supported;
    };

    bool pending_root = false;  // region resolves at DidInsert (new subtree)
    xml::Label region{0, 0, 0};
    std::vector<Anc> ancestors;  // strictly above region, outermost first
    std::vector<std::vector<xml::NodeId>> pre;  // solutions before the op
  };

  /// Exact existence check: does `self` (imaging pattern node q) head an
  /// embedding of q's pattern subtree? Walks the full per-tag streams with
  /// early exit at the first witness; candidates whose start lies inside
  /// `exclude` are skipped (simulating the pre/post state of a mutation).
  bool SupportedExists(const tpq::TreePattern& pattern,
                       const std::vector<xml::TagId>& tags, int q,
                       const xml::Label& self,
                       const xml::Label* exclude) const;

  /// Pattern-tagged ancestors of `from` (inclusive), outermost first, with
  /// support flags unset.
  std::vector<Scope::Anc> TaggedAncestors(size_t pattern_index,
                                          const std::vector<xml::TagId>& tags,
                                          xml::NodeId from) const;

  /// Picks the sandwich region — the mutated subtree, or the subtree of the
  /// highest support-flipped ancestor — and drops ancestors the region now
  /// covers.
  void ResolveScope(size_t pattern_index, Scope* scope,
                    const xml::Label& mutated);

  void FinishScope(size_t pattern_index, Scope* scope);

  /// Solution nodes of patterns_[pattern_index] restricted to the document
  /// region [region.start, region.end] (per pattern node, sorted by start),
  /// with `ancestors` injected as extra candidates carrying pinned support
  /// status (pre or post flags per `use_pre_flags`) and candidates inside
  /// `exclude` masked out. Tag ids are resolved fresh per call: an insert
  /// may intern pattern tags the document had never seen.
  std::vector<std::vector<xml::NodeId>> RestrictedSolutions(
      size_t pattern_index, const xml::Label& region,
      const std::vector<Scope::Anc>& ancestors, bool use_pre_flags,
      const xml::Label* exclude) const;

  const xml::Document* doc_;
  std::vector<tpq::TreePattern> patterns_;

  std::vector<Scope> open_;  // per pattern, valid between Will* and Did*

  // Net accumulator: per pattern, per pattern node, start -> label. A label
  // entering `added` cancels a pending `removed` entry and vice versa.
  std::vector<std::vector<std::unordered_map<uint32_t, xml::Label>>> added_;
  std::vector<std::vector<std::unordered_map<uint32_t, xml::Label>>> removed_;
};

}  // namespace viewjoin::view

#endif  // VIEWJOIN_VIEW_DELTA_H_
