#include "view/delta.h"

#include <algorithm>

#include "util/check.h"

namespace viewjoin::view {

namespace {

/// Tag ids of a pattern's nodes in this document (kInvalidTag for element
/// types the document has never interned: their candidate lists are empty).
std::vector<xml::TagId> ResolveTags(const xml::Document& doc,
                                    const tpq::TreePattern& pattern) {
  std::vector<xml::TagId> tags(pattern.size(), xml::kInvalidTag);
  for (size_t q = 0; q < pattern.size(); ++q) {
    tags[q] = doc.FindTag(pattern.node(static_cast<int>(q)).tag);
  }
  return tags;
}

/// True iff the label's start lies inside the excluded region (region
/// labels nest, so a start inside implies the whole label is).
bool Excluded(const xml::Label& label, const xml::Label* exclude) {
  return exclude != nullptr && label.start >= exclude->start &&
         label.start <= exclude->end;
}

}  // namespace

DeltaCollector::DeltaCollector(const xml::Document* doc,
                               std::vector<tpq::TreePattern> patterns)
    : doc_(doc), patterns_(std::move(patterns)) {
  VJ_CHECK(doc_ != nullptr) << "DeltaCollector needs a document";
  open_.resize(patterns_.size());
  added_.resize(patterns_.size());
  removed_.resize(patterns_.size());
  for (size_t i = 0; i < patterns_.size(); ++i) {
    VJ_CHECK(patterns_[i].HasUniqueTags())
        << "view patterns must have unique element types";
    added_[i].resize(patterns_[i].size());
    removed_[i].resize(patterns_[i].size());
  }
}

bool DeltaCollector::SupportedExists(const tpq::TreePattern& pattern,
                                     const std::vector<xml::TagId>& tags,
                                     int q, const xml::Label& self,
                                     const xml::Label* exclude) const {
  for (int c : pattern.node(q).children) {
    const xml::TagId tc = tags[static_cast<size_t>(c)];
    if (tc == xml::kInvalidTag) return false;
    const bool pc = pattern.node(c).incoming == tpq::Axis::kChild;
    const std::vector<xml::NodeId>& stream = doc_->NodesOfTag(tc);
    auto it = std::upper_bound(
        stream.begin(), stream.end(), self.start,
        [this](uint32_t s, xml::NodeId n) { return s < doc_->NodeLabel(n).start; });
    bool found = false;
    for (; it != stream.end(); ++it) {
      const xml::Label lc = doc_->NodeLabel(*it);
      if (lc.start >= self.end) break;
      if (Excluded(lc, exclude)) continue;
      if (pc && lc.level != self.level + 1) continue;
      if (SupportedExists(pattern, tags, c, lc, exclude)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::vector<DeltaCollector::Scope::Anc> DeltaCollector::TaggedAncestors(
    size_t pattern_index, const std::vector<xml::TagId>& tags,
    xml::NodeId from) const {
  std::vector<Scope::Anc> ancestors;
  if (from == xml::kInvalidNode) return ancestors;
  const tpq::TreePattern& pattern = patterns_[pattern_index];
  for (xml::NodeId n = from; n != xml::kInvalidNode; n = doc_->Parent(n)) {
    const xml::TagId t = doc_->NodeTag(n);
    for (size_t q = 0; q < pattern.size(); ++q) {
      if (tags[q] != xml::kInvalidTag && tags[q] == t) {
        ancestors.push_back({n, static_cast<int>(q), false, false});
        break;
      }
    }
    if (n == doc_->Root()) break;
  }
  std::reverse(ancestors.begin(), ancestors.end());  // outermost first
  return ancestors;
}

void DeltaCollector::ResolveScope(size_t pattern_index, Scope* scope,
                                  const xml::Label& mutated) {
  // The region is the mutated subtree itself unless some pattern-tagged
  // ancestor's support flipped: then every node in that ancestor's subtree
  // may gain or lose reachability, so the sandwich widens to the highest
  // flipped ancestor. Ancestors strictly above the region keep exact
  // support flags and are injected into both restricted evaluations.
  scope->region = mutated;
  for (const Scope::Anc& a : scope->ancestors) {
    if (a.pre_supported != a.post_supported) {
      scope->region = doc_->NodeLabel(a.node);
      break;
    }
  }
  scope->ancestors.erase(
      std::remove_if(scope->ancestors.begin(), scope->ancestors.end(),
                     [&](const Scope::Anc& a) {
                       return doc_->NodeLabel(a.node).start >=
                              scope->region.start;
                     }),
      scope->ancestors.end());
  (void)pattern_index;
}

void DeltaCollector::WillInsert(xml::NodeId parent) {
  for (size_t i = 0; i < patterns_.size(); ++i) {
    Scope scope;
    scope.pending_root = true;
    const std::vector<xml::TagId> tags = ResolveTags(*doc_, patterns_[i]);
    scope.ancestors = TaggedAncestors(i, tags, parent);
    for (Scope::Anc& a : scope.ancestors) {
      a.pre_supported = SupportedExists(patterns_[i], tags, a.q,
                                        doc_->NodeLabel(a.node), nullptr);
    }
    open_[i] = std::move(scope);
  }
}

void DeltaCollector::WillDelete(xml::NodeId victim) {
  const xml::Label victim_label = doc_->NodeLabel(victim);
  for (size_t i = 0; i < patterns_.size(); ++i) {
    Scope scope;
    const std::vector<xml::TagId> tags = ResolveTags(*doc_, patterns_[i]);
    scope.ancestors = TaggedAncestors(i, tags, doc_->Parent(victim));
    for (Scope::Anc& a : scope.ancestors) {
      const xml::Label la = doc_->NodeLabel(a.node);
      a.pre_supported = SupportedExists(patterns_[i], tags, a.q, la, nullptr);
      // Deleting the victim removes exactly the candidates inside its
      // region, so the post state is computable before the mutation.
      a.post_supported =
          SupportedExists(patterns_[i], tags, a.q, la, &victim_label);
    }
    ResolveScope(i, &scope, victim_label);
    // The pre snapshot must be taken now: tombstoned nodes leave the
    // per-tag streams once the delete lands.
    scope.pre = RestrictedSolutions(i, scope.region, scope.ancestors,
                                    /*use_pre_flags=*/true, nullptr);
    open_[i] = std::move(scope);
  }
}

void DeltaCollector::DidInsert(xml::NodeId new_root) {
  const xml::Label inserted = doc_->NodeLabel(new_root);
  for (size_t i = 0; i < patterns_.size(); ++i) {
    Scope& scope = open_[i];
    scope.pending_root = false;
    // Tags resolve fresh: the insert may have interned pattern tags the
    // document had never seen.
    const std::vector<xml::TagId> tags = ResolveTags(*doc_, patterns_[i]);
    for (Scope::Anc& a : scope.ancestors) {
      a.post_supported = SupportedExists(patterns_[i], tags, a.q,
                                         doc_->NodeLabel(a.node), nullptr);
    }
    ResolveScope(i, &scope, inserted);
    // The insert only added the new subtree, so the pre state is the post
    // state with the inserted region's candidates masked out.
    scope.pre = RestrictedSolutions(i, scope.region, scope.ancestors,
                                    /*use_pre_flags=*/true, &inserted);
    FinishScope(i, &scope);
  }
}

void DeltaCollector::DidDelete() {
  for (size_t i = 0; i < patterns_.size(); ++i) {
    FinishScope(i, &open_[i]);
  }
}

void DeltaCollector::FinishScope(size_t pattern_index, Scope* scope) {
  std::vector<std::vector<xml::NodeId>> post =
      RestrictedSolutions(pattern_index, scope->region, scope->ancestors,
                          /*use_pre_flags=*/false, nullptr);
  const size_t nq = patterns_[pattern_index].size();
  for (size_t q = 0; q < nq; ++q) {
    // Both sides are sorted by start and starts are unique; labels of nodes
    // surviving the operation are unchanged (gap labeling), so a start-keyed
    // merge is an exact set difference.
    const std::vector<xml::NodeId>& pre = scope->pre[q];
    const std::vector<xml::NodeId>& now = post[q];
    auto& add = added_[pattern_index][q];
    auto& rem = removed_[pattern_index][q];
    size_t a = 0, b = 0;
    while (a < pre.size() || b < now.size()) {
      const uint32_t sa = a < pre.size()
                              ? doc_->NodeLabel(pre[a]).start
                              : 0xFFFFFFFFu;
      const uint32_t sb = b < now.size()
                              ? doc_->NodeLabel(now[b]).start
                              : 0xFFFFFFFFu;
      if (sa == sb) {
        ++a;
        ++b;
      } else if (sa < sb) {
        // In pre only: the node left the solution list.
        const xml::Label label = doc_->NodeLabel(pre[a]);
        if (add.erase(label.start) == 0) rem.emplace(label.start, label);
        ++a;
      } else {
        // In post only: the node entered the solution list.
        const xml::Label label = doc_->NodeLabel(now[b]);
        if (rem.erase(label.start) == 0) add.emplace(label.start, label);
        ++b;
      }
    }
  }
  scope->pre.clear();
}

std::vector<std::vector<xml::NodeId>> DeltaCollector::RestrictedSolutions(
    size_t pattern_index, const xml::Label& region,
    const std::vector<Scope::Anc>& ancestors, bool use_pre_flags,
    const xml::Label* exclude) const {
  const tpq::TreePattern& pattern = patterns_[pattern_index];
  const std::vector<xml::TagId> tags = ResolveTags(*doc_, pattern);
  const size_t nq = pattern.size();

  // Candidates per pattern node: the injected path ancestors (strictly
  // above the region, outermost first, so ascending by start), then live
  // nodes of the tag whose labels lie inside [region.start, region.end].
  // Per-tag streams are start-sorted, so the region is a contiguous slice
  // (labels nest: a start inside the region implies the whole label is).
  // Injected ancestors carry their exact, whole-document support status —
  // computing it from the region-restricted candidate lists would miss
  // witnesses elsewhere in their subtrees.
  std::vector<std::vector<xml::NodeId>> candidates(nq);
  std::vector<size_t> injected(nq, 0);
  std::vector<std::vector<bool>> injected_flags(nq);
  for (const Scope::Anc& a : ancestors) {
    const size_t q = static_cast<size_t>(a.q);
    candidates[q].push_back(a.node);
    injected_flags[q].push_back(use_pre_flags ? a.pre_supported
                                              : a.post_supported);
    ++injected[q];
  }
  for (size_t q = 0; q < nq; ++q) {
    if (tags[q] == xml::kInvalidTag) continue;
    const std::vector<xml::NodeId>& stream = doc_->NodesOfTag(tags[q]);
    auto first = std::lower_bound(
        stream.begin(), stream.end(), region.start,
        [this](xml::NodeId n, uint32_t s) { return doc_->NodeLabel(n).start < s; });
    for (auto it = first;
         it != stream.end() && doc_->NodeLabel(*it).start <= region.end; ++it) {
      if (Excluded(doc_->NodeLabel(*it), exclude)) continue;
      candidates[q].push_back(*it);
    }
  }

  // Bottom-up: supported[q] = candidates heading an embedding of pattern
  // subtree q. Nodes are in preorder, so reverse iteration sees children
  // before parents. Injected ancestors use their precomputed flag; region
  // candidates' subtrees lie inside the region, so the restricted check is
  // exact for them.
  std::vector<std::vector<xml::NodeId>> supported(nq);
  std::vector<std::vector<uint32_t>> supported_starts(nq);
  for (size_t qi = nq; qi-- > 0;) {
    const int q = static_cast<int>(qi);
    const tpq::PatternNode& pn = pattern.node(q);
    for (size_t ci = 0; ci < candidates[qi].size(); ++ci) {
      const xml::NodeId n = candidates[qi][ci];
      const xml::Label ln = doc_->NodeLabel(n);
      bool ok;
      if (ci < injected[qi]) {
        ok = injected_flags[qi][ci];
      } else {
        ok = true;
        for (int c : pn.children) {
          const auto& cs = supported_starts[static_cast<size_t>(c)];
          const auto& cn = supported[static_cast<size_t>(c)];
          auto it = std::upper_bound(cs.begin(), cs.end(), ln.start);
          bool found = false;
          if (pattern.node(c).incoming == tpq::Axis::kDescendant) {
            found = it != cs.end() && *it < ln.end;
          } else {
            for (size_t k = static_cast<size_t>(it - cs.begin());
                 k < cs.size() && cs[k] < ln.end; ++k) {
              if (doc_->NodeLabel(cn[k]).level == ln.level + 1) {
                found = true;
                break;
              }
            }
          }
          if (!found) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        supported[qi].push_back(n);
        supported_starts[qi].push_back(ln.start);
      }
    }
  }

  // Top-down: keep supported nodes reachable from a pattern-root image. A
  // pc-bound pattern root matches only the document root element,
  // everywhere-bound roots match any supported candidate.
  std::vector<std::vector<xml::NodeId>> solutions(nq);
  if (pattern.node(0).incoming == tpq::Axis::kChild) {
    for (xml::NodeId n : supported[0]) {
      if (n == doc_->Root()) solutions[0].push_back(n);
    }
  } else {
    solutions[0] = supported[0];
  }
  for (size_t q = 1; q < nq; ++q) {
    const tpq::PatternNode& pn = pattern.node(static_cast<int>(q));
    const bool pc = pn.incoming == tpq::Axis::kChild;
    const std::vector<xml::NodeId>& up = solutions[static_cast<size_t>(pn.parent)];
    for (xml::NodeId m : supported[q]) {
      const xml::Label lm = doc_->NodeLabel(m);
      for (xml::NodeId n : up) {
        const xml::Label ln = doc_->NodeLabel(n);
        if (ln.start >= lm.start) break;  // up is start-sorted
        if (lm.end < ln.end && (!pc || ln.level + 1 == lm.level)) {
          solutions[q].push_back(m);
          break;
        }
      }
    }
  }
  return solutions;
}

std::vector<PatternDeltas> DeltaCollector::TakeDeltas() {
  std::vector<PatternDeltas> out(patterns_.size());
  for (size_t i = 0; i < patterns_.size(); ++i) {
    const size_t nq = patterns_[i].size();
    out[i].added.resize(nq);
    out[i].removed.resize(nq);
    for (size_t q = 0; q < nq; ++q) {
      for (auto& [start, label] : added_[i][q]) out[i].added[q].push_back(label);
      for (auto& [start, label] : removed_[i][q])
        out[i].removed[q].push_back(label);
      auto by_start = [](const xml::Label& a, const xml::Label& b) {
        return a.start < b.start;
      };
      std::sort(out[i].added[q].begin(), out[i].added[q].end(), by_start);
      std::sort(out[i].removed[q].begin(), out[i].removed[q].end(), by_start);
      added_[i][q].clear();
      removed_[i][q].clear();
    }
  }
  return out;
}

}  // namespace viewjoin::view
