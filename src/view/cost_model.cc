#include "view/cost_model.h"

#include "tpq/evaluator.h"
#include "tpq/subpattern.h"
#include "util/check.h"

namespace viewjoin::view {

using tpq::TreePattern;

std::vector<uint32_t> ViewListLengths(const xml::Document& doc,
                                      const TreePattern& pattern) {
  tpq::NaiveEvaluator evaluator(doc, pattern);
  std::vector<std::vector<xml::NodeId>> solutions = evaluator.SolutionNodes();
  std::vector<uint32_t> lengths;
  lengths.reserve(solutions.size());
  for (const auto& list : solutions) {
    lengths.push_back(static_cast<uint32_t>(list.size()));
  }
  return lengths;
}

std::vector<int> MissingEdgeCounts(const TreePattern& query,
                                   const TreePattern& view) {
  std::optional<tpq::PatternMapping> mapping =
      tpq::SubpatternMapping(view, query);
  VJ_CHECK(mapping.has_value()) << "view is not a subpattern of the query";
  // Invert: query node -> view node (-1 when uncovered by this view).
  std::vector<int> inverse(query.size(), -1);
  for (size_t vn = 0; vn < mapping->size(); ++vn) {
    inverse[static_cast<size_t>((*mapping)[vn])] = static_cast<int>(vn);
  }
  // A Q-edge (p, q) is "present in v" iff both endpoints are covered and
  // their view nodes are adjacent in the view.
  auto present = [&](int qp, int qq) {
    int vp = inverse[static_cast<size_t>(qp)];
    int vq = inverse[static_cast<size_t>(qq)];
    if (vp < 0 || vq < 0) return false;
    return view.node(vq).parent == vp || view.node(vp).parent == vq;
  };
  std::vector<int> counts(view.size(), 0);
  for (size_t vn = 0; vn < view.size(); ++vn) {
    int q = (*mapping)[vn];
    const tpq::PatternNode& qn = query.node(q);
    if (qn.parent >= 0 && !present(qn.parent, q)) ++counts[vn];
    for (int c : qn.children) {
      if (!present(q, c)) ++counts[vn];
    }
  }
  return counts;
}

double ViewCost(const TreePattern& query, const TreePattern& view,
                const std::vector<uint32_t>& list_lengths, double lambda) {
  VJ_CHECK_EQ(list_lengths.size(), view.size());
  std::vector<int> missing = MissingEdgeCounts(query, view);
  double io = 0;
  double join = 0;
  for (size_t vn = 0; vn < view.size(); ++vn) {
    io += list_lengths[vn];
    join += static_cast<double>(list_lengths[vn]) * missing[vn];
  }
  return (1.0 - lambda) * io + lambda * join;
}

}  // namespace viewjoin::view
