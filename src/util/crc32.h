#ifndef VIEWJOIN_UTIL_CRC32_H_
#define VIEWJOIN_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace viewjoin::util {

/// CRC-32 (IEEE 802.3 polynomial, reflected form 0xEDB88320) over a byte
/// range. Used by the pager to checksum page payloads and its file header;
/// table built once on first use.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace viewjoin::util

#endif  // VIEWJOIN_UTIL_CRC32_H_
