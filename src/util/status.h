#ifndef VIEWJOIN_UTIL_STATUS_H_
#define VIEWJOIN_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace viewjoin::util {

/// Outcome category of a fallible operation. The storage layer returns these
/// instead of aborting, so media faults (short reads, torn pages, bit flips)
/// become recoverable events the engine can degrade around — VJ_CHECK remains
/// reserved for true programmer invariants.
enum class StatusCode {
  kOk = 0,
  kIoError,          // the device failed the operation (possibly transient)
  kCorruption,       // bytes came back but fail validation (checksum, magic)
  kNotFound,         // a required file/object does not exist
  kInvalidArgument,  // caller asked for something structurally impossible
  kResourceExhausted,  // a memory/disk budget or quota would be exceeded
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

/// Lightweight status value: a code plus a human-readable message. The
/// default-constructed Status is OK and carries no allocation.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-OK Status. Construction from a value yields ok();
/// construction from a Status must carry a non-OK code.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    VJ_CHECK(!status_.ok()) << "StatusOr constructed from an OK status";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    VJ_CHECK(ok()) << "value() on failed StatusOr: " << status_.ToString();
    return *value_;
  }
  const T& value() const {
    VJ_CHECK(ok()) << "value() on failed StatusOr: " << status_.ToString();
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace viewjoin::util

#endif  // VIEWJOIN_UTIL_STATUS_H_
