#ifndef VIEWJOIN_UTIL_TIMER_H_
#define VIEWJOIN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace viewjoin::util {

/// Monotonic wall-clock stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in microseconds since construction / last Reset().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in milliseconds (floating point, for reporting).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across many scoped intervals; used by the pager to
/// attribute the I/O share of total processing time, as the paper reports.
class AccumulatingTimer {
 public:
  /// RAII guard adding the interval it was alive for to the accumulator.
  class Scope {
   public:
    explicit Scope(AccumulatingTimer* owner) : owner_(owner) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { owner_->micros_ += timer_.ElapsedMicros(); }

   private:
    AccumulatingTimer* owner_;
    Timer timer_;
  };

  int64_t TotalMicros() const { return micros_; }
  double TotalMillis() const { return static_cast<double>(micros_) / 1000.0; }
  void Reset() { micros_ = 0; }

 private:
  int64_t micros_ = 0;
};

}  // namespace viewjoin::util

#endif  // VIEWJOIN_UTIL_TIMER_H_
