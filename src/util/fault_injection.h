#ifndef VIEWJOIN_UTIL_FAULT_INJECTION_H_
#define VIEWJOIN_UTIL_FAULT_INJECTION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace viewjoin::util {

/// Fault applied to a physical page write.
enum class WriteFault {
  kNone = 0,
  kShortWrite,  // only a prefix of the page reaches the file; the write fails
  kTornPage,    // the tail of the page is garbage, but the write "succeeds"
  kBitFlip,     // one payload bit flips after the checksum was computed
  kNoSpace,     // the device is full (ENOSPC); nothing reaches the file
};

/// Simulated kill -9 instants inside the view-install protocol (shadow
/// build -> seal rename -> data append+sync -> journal commit). When the
/// armed point is reached the storage layer abandons the operation exactly
/// as a crash would — no cleanup, no rollback, files left mid-flight — and
/// surfaces kIoError("injected crash ..."); the crash-matrix test then
/// reopens the store and asserts recovery.
enum class CrashPoint {
  kNone = 0,
  kCrashBeforeRename,   // shadow tmp fully written, not yet sealed
  kCrashAfterRename,    // shadow sealed, main pager file untouched
  kCrashAfterDataSync,  // pages appended+synced to the main file, no commit
  kCrashMidJournal,     // journal commit record torn mid-record (short write)
  // Update-batch crash points (ApplyUpdateBatch): the batch is one manifest
  // transaction — kUpdateBegin, per-view installs, kUpdateCommit — so a crash
  // anywhere before the commit record must roll the whole batch back.
  kCrashMidDeltaMerge,    // some views of the batch installed, others not
  kCrashBeforeEpochBump,  // all views staged+installed, commit record missing
  kCrashAfterEpochBump,   // commit durable; shadow + sidecars not yet removed
  // Checkpoint compaction crash point: the rewritten journal torn mid-write,
  // tmp left on disk, the original journal untouched.
  kCrashMidCompaction,
  // Hot-backup crash point: the backup copy dies mid-page, leaving a partial
  // image directory. The SOURCE store must be byte-identical afterwards —
  // backup is strictly read-only over the live files.
  kCrashMidBackupCopy,
};

/// Human-readable crash-point name (test matrix labels).
const char* CrashPointName(CrashPoint point);

/// Deterministic, programmatically-armed fault injector consulted by the
/// pager on every physical read attempt and page write. Tests arm a fault
/// relative to the current operation count ("fail the 2nd read from now"),
/// run the scenario, and assert on the surfaced Status — no real disk faults
/// or flaky timing involved.
///
/// Thread-safe: the pager hooks and arming calls are mutex-guarded, so fault
/// tests can run against concurrent ExecuteBatch workers ("fail the next N
/// reads, whichever thread issues them"). All state lives in the process-wide
/// instance returned by Global(); prefer ScopedFaultInjection in tests so a
/// failing test cannot leak armed faults into the next one.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Disarms everything and clears the counters.
  void Reset();

  /// Arms `count` consecutive failing read attempts starting at the `nth`
  /// upcoming physical read (1-based; nth=1 fails the very next read).
  /// count < 0 means every read from that point on fails.
  void ArmReadFault(uint64_t nth, int count = 1);

  /// Arms `kind` on `count` consecutive writes starting at the `nth` upcoming
  /// page write (1-based). count < 0 applies it to every write from there on.
  void ArmWriteFault(WriteFault kind, uint64_t nth, int count = 1);

  /// Arms `kind` on the `nth` upcoming *header* write (1-based). Header
  /// writes — the pager file header and the manifest journal header /
  /// checkpoint — are counted on a channel separate from page writes, so
  /// arming one cannot shift the page-write counting existing tests rely on.
  void ArmHeaderWriteFault(WriteFault kind, uint64_t nth, int count = 1);

  /// Arms a failure of the `nth` upcoming Flush/Sync call (1-based).
  /// count < 0 fails every flush from that point on.
  void ArmFlushFault(uint64_t nth, int count = 1);

  /// Arms the budgeted free-space injector: the next `budget_bytes` bytes of
  /// charged writes succeed, and every write after the budget is exhausted
  /// fails as ENOSPC — exactly how a filling disk behaves (writes succeed
  /// until the device is full, then everything fails until space is freed).
  /// The exhausted state is sticky until Reset()/DisarmDiskBudget(). A
  /// budget of 0 makes the very next charged write fail.
  void ArmDiskBudget(uint64_t budget_bytes);

  /// Disarms the free-space injector; charged writes stop being counted.
  void DisarmDiskBudget();

  /// Arms a simulated crash at `point`; fires on the `nth` time that point
  /// is reached (1-based). Only one crash point is armed at a time.
  void ArmCrashPoint(CrashPoint point, uint64_t nth = 1);

  /// Arms a barrier at the engine's post-recovery point: after a faulting
  /// query quarantines and rebuilds a view, its worker blocks inside
  /// OnRecoveryPoint() until ReleaseRecoveryBarrier() (or Reset()) runs.
  /// Lets a test pin an event — e.g. flipping a cancellation token —
  /// deterministically between the rebuild and the retry run, with no
  /// sleep-based timing.
  void ArmRecoveryBarrier();

  /// Releases (and disarms) an armed recovery barrier. Safe to call before
  /// the barrier is reached: the recovering worker then passes through.
  void ReleaseRecoveryBarrier();

  bool armed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return read_remaining_ != 0 || write_remaining_ != 0 ||
           header_remaining_ != 0 || flush_remaining_ != 0 ||
           crash_point_ != CrashPoint::kNone || disk_budget_armed_;
  }

  // ---- Pager hooks ---------------------------------------------------------

  /// Consumes one read-attempt slot; true → the pager must fail this attempt
  /// as a short read.
  bool OnReadAttempt();

  /// Consumes one write slot and returns the fault to apply (kNone usually).
  WriteFault OnWriteAttempt();

  /// Consumes one header-write slot (pager header, journal header or
  /// checkpoint) and returns the fault to apply.
  WriteFault OnHeaderWriteAttempt();

  /// Consumes one flush slot; true → the Flush/Sync must report failure.
  bool OnFlushAttempt();

  /// Charges `bytes` against an armed disk budget; true → the write must
  /// fail as ENOSPC (typed kResourceExhausted) WITHOUT touching the file.
  /// Always false when no budget is armed. A charge that would overdraw the
  /// budget pins it to zero, so every later write fails too (full disk).
  bool OnDiskCharge(uint64_t bytes);

  /// True (once) when execution reaches the armed crash point; the caller
  /// must then abandon the operation mid-flight. Unmatched points never fire.
  bool AtCrashPoint(CrashPoint point);

  /// Engine hook at the quarantine-recovery retry point: blocks while an
  /// armed recovery barrier is unreleased, no-op otherwise.
  void OnRecoveryPoint();

  // ---- Observability -------------------------------------------------------

  uint64_t reads_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reads_seen_;
  }
  uint64_t writes_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writes_seen_;
  }
  uint64_t injected_read_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_read_faults_;
  }
  uint64_t injected_write_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_write_faults_;
  }
  uint64_t injected_crashes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_crashes_;
  }
  uint64_t injected_no_space_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_no_space_faults_;
  }
  /// Bytes left in an armed disk budget (0 when exhausted or disarmed).
  uint64_t disk_budget_remaining() const {
    std::lock_guard<std::mutex> lock(mu_);
    return disk_budget_armed_ ? disk_budget_remaining_ : 0;
  }

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  uint64_t reads_seen_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t injected_read_faults_ = 0;
  uint64_t injected_write_faults_ = 0;

  uint64_t read_trigger_ = 0;   // absolute read index at which faults start
  int64_t read_remaining_ = 0;  // faults left to fire; -1 = unbounded

  uint64_t write_trigger_ = 0;
  int64_t write_remaining_ = 0;
  WriteFault write_kind_ = WriteFault::kNone;

  uint64_t headers_seen_ = 0;
  uint64_t header_trigger_ = 0;
  int64_t header_remaining_ = 0;
  WriteFault header_kind_ = WriteFault::kNone;

  uint64_t flushes_seen_ = 0;
  uint64_t flush_trigger_ = 0;
  int64_t flush_remaining_ = 0;

  bool disk_budget_armed_ = false;
  uint64_t disk_budget_remaining_ = 0;
  uint64_t injected_no_space_faults_ = 0;

  CrashPoint crash_point_ = CrashPoint::kNone;
  uint64_t crash_trigger_ = 0;   // nth reach of the point at which it fires
  uint64_t crash_reached_ = 0;   // times the armed point has been reached
  uint64_t injected_crashes_ = 0;

  std::condition_variable recovery_cv_;
  bool recovery_barrier_armed_ = false;
};

// ---- Network fault injection ----------------------------------------------

/// Fault applied to one socket send/recv call (server/net.cc consults the
/// injector on every call). These are the wire-level analogues of the pager
/// faults above: deterministic stand-ins for the partial I/O, RSTs and
/// stalls a real network produces, so every server degradation path is
/// testable without flaky timing or packet-mangling privileges.
enum class SocketFault {
  kNone = 0,
  kShortRead,   // recv delivers a 1-byte prefix on this call
  kShortWrite,  // send consumes a 1-byte prefix on this call
  kReset,       // the connection is hard-closed (RST on the wire); call fails
  kStall,       // the call sleeps for the armed stall before proceeding
};

/// Human-readable fault name ("short-read", "reset", ...).
const char* SocketFaultName(SocketFault fault);

/// Which end of a connection an armed socket fault targets. In-process tests
/// run client and server sockets side by side; targeting one end keeps the
/// nth-call counting deterministic regardless of how the other end's I/O
/// interleaves.
enum class SocketEnd {
  kAny = 0,
  kClient,
  kServer,
};

/// Deterministic socket-fault injector, mirroring FaultInjector's arming
/// model: arm `kind` on the `nth` upcoming matching call ("reset the 2nd
/// server-side recv from now"). Only calls whose end matches the armed
/// target consume slots. Thread-safe; state lives in Global(). Prefer
/// ScopedSocketFaultInjection in tests.
class SocketFaultInjector {
 public:
  static SocketFaultInjector& Global();

  /// Disarms everything and clears the counters.
  void Reset();

  /// Arms `kind` on `count` consecutive recv calls at `target` ends,
  /// starting with the `nth` matching call from now (1-based). count < 0
  /// applies it to every matching recv from that point on.
  void ArmRecvFault(SocketFault kind, uint64_t nth, int count = 1,
                    SocketEnd target = SocketEnd::kAny);

  /// Same for send calls.
  void ArmSendFault(SocketFault kind, uint64_t nth, int count = 1,
                    SocketEnd target = SocketEnd::kAny);

  /// Duration of a kStall fault, in milliseconds (default 50).
  void set_stall_ms(double ms);
  double stall_ms() const;

  bool armed() const;

  // ---- net.cc hooks --------------------------------------------------------

  /// Consumes one matching recv slot and returns the fault to apply.
  SocketFault OnRecvAttempt(SocketEnd end);

  /// Consumes one matching send slot and returns the fault to apply.
  SocketFault OnSendAttempt(SocketEnd end);

  // ---- Observability -------------------------------------------------------

  uint64_t recvs_seen() const;
  uint64_t sends_seen() const;
  uint64_t injected_faults() const;

 private:
  SocketFaultInjector() = default;

  static bool Matches(SocketEnd target, SocketEnd end) {
    return target == SocketEnd::kAny || target == end;
  }

  mutable std::mutex mu_;
  uint64_t recvs_seen_ = 0;
  uint64_t sends_seen_ = 0;
  uint64_t injected_faults_ = 0;
  double stall_ms_ = 50;

  // Matching-call counters restart at arming time, so "nth" always means
  // "nth matching call from now" regardless of earlier traffic.
  uint64_t recv_matching_seen_ = 0;
  uint64_t recv_trigger_ = 0;
  int64_t recv_remaining_ = 0;
  SocketFault recv_kind_ = SocketFault::kNone;
  SocketEnd recv_target_ = SocketEnd::kAny;

  uint64_t send_matching_seen_ = 0;
  uint64_t send_trigger_ = 0;
  int64_t send_remaining_ = 0;
  SocketFault send_kind_ = SocketFault::kNone;
  SocketEnd send_target_ = SocketEnd::kAny;
};

/// RAII guard for tests: resets the global injector on entry and exit.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() { FaultInjector::Global().Reset(); }
  ~ScopedFaultInjection() { FaultInjector::Global().Reset(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector& operator*() { return FaultInjector::Global(); }
  FaultInjector* operator->() { return &FaultInjector::Global(); }
};

/// RAII guard for tests: resets the global socket injector on entry and exit.
class ScopedSocketFaultInjection {
 public:
  ScopedSocketFaultInjection() { SocketFaultInjector::Global().Reset(); }
  ~ScopedSocketFaultInjection() { SocketFaultInjector::Global().Reset(); }

  ScopedSocketFaultInjection(const ScopedSocketFaultInjection&) = delete;
  ScopedSocketFaultInjection& operator=(const ScopedSocketFaultInjection&) =
      delete;

  SocketFaultInjector& operator*() { return SocketFaultInjector::Global(); }
  SocketFaultInjector* operator->() { return &SocketFaultInjector::Global(); }
};

}  // namespace viewjoin::util

#endif  // VIEWJOIN_UTIL_FAULT_INJECTION_H_
