#ifndef VIEWJOIN_UTIL_FAULT_INJECTION_H_
#define VIEWJOIN_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>

namespace viewjoin::util {

/// Fault applied to a physical page write.
enum class WriteFault {
  kNone = 0,
  kShortWrite,  // only a prefix of the page reaches the file; the write fails
  kTornPage,    // the tail of the page is garbage, but the write "succeeds"
  kBitFlip,     // one payload bit flips after the checksum was computed
};

/// Deterministic, programmatically-armed fault injector consulted by the
/// pager on every physical read attempt and page write. Tests arm a fault
/// relative to the current operation count ("fail the 2nd read from now"),
/// run the scenario, and assert on the surfaced Status — no real disk faults
/// or flaky timing involved.
///
/// Thread-safe: the pager hooks and arming calls are mutex-guarded, so fault
/// tests can run against concurrent ExecuteBatch workers ("fail the next N
/// reads, whichever thread issues them"). All state lives in the process-wide
/// instance returned by Global(); prefer ScopedFaultInjection in tests so a
/// failing test cannot leak armed faults into the next one.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Disarms everything and clears the counters.
  void Reset();

  /// Arms `count` consecutive failing read attempts starting at the `nth`
  /// upcoming physical read (1-based; nth=1 fails the very next read).
  /// count < 0 means every read from that point on fails.
  void ArmReadFault(uint64_t nth, int count = 1);

  /// Arms `kind` on `count` consecutive writes starting at the `nth` upcoming
  /// page write (1-based). count < 0 applies it to every write from there on.
  void ArmWriteFault(WriteFault kind, uint64_t nth, int count = 1);

  bool armed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return read_remaining_ != 0 || write_remaining_ != 0;
  }

  // ---- Pager hooks ---------------------------------------------------------

  /// Consumes one read-attempt slot; true → the pager must fail this attempt
  /// as a short read.
  bool OnReadAttempt();

  /// Consumes one write slot and returns the fault to apply (kNone usually).
  WriteFault OnWriteAttempt();

  // ---- Observability -------------------------------------------------------

  uint64_t reads_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reads_seen_;
  }
  uint64_t writes_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writes_seen_;
  }
  uint64_t injected_read_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_read_faults_;
  }
  uint64_t injected_write_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_write_faults_;
  }

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  uint64_t reads_seen_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t injected_read_faults_ = 0;
  uint64_t injected_write_faults_ = 0;

  uint64_t read_trigger_ = 0;   // absolute read index at which faults start
  int64_t read_remaining_ = 0;  // faults left to fire; -1 = unbounded

  uint64_t write_trigger_ = 0;
  int64_t write_remaining_ = 0;
  WriteFault write_kind_ = WriteFault::kNone;
};

/// RAII guard for tests: resets the global injector on entry and exit.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() { FaultInjector::Global().Reset(); }
  ~ScopedFaultInjection() { FaultInjector::Global().Reset(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector& operator*() { return FaultInjector::Global(); }
  FaultInjector* operator->() { return &FaultInjector::Global(); }
};

}  // namespace viewjoin::util

#endif  // VIEWJOIN_UTIL_FAULT_INJECTION_H_
