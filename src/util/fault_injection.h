#ifndef VIEWJOIN_UTIL_FAULT_INJECTION_H_
#define VIEWJOIN_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>

namespace viewjoin::util {

/// Fault applied to a physical page write.
enum class WriteFault {
  kNone = 0,
  kShortWrite,  // only a prefix of the page reaches the file; the write fails
  kTornPage,    // the tail of the page is garbage, but the write "succeeds"
  kBitFlip,     // one payload bit flips after the checksum was computed
};

/// Simulated kill -9 instants inside the view-install protocol (shadow
/// build -> seal rename -> data append+sync -> journal commit). When the
/// armed point is reached the storage layer abandons the operation exactly
/// as a crash would — no cleanup, no rollback, files left mid-flight — and
/// surfaces kIoError("injected crash ..."); the crash-matrix test then
/// reopens the store and asserts recovery.
enum class CrashPoint {
  kNone = 0,
  kCrashBeforeRename,   // shadow tmp fully written, not yet sealed
  kCrashAfterRename,    // shadow sealed, main pager file untouched
  kCrashAfterDataSync,  // pages appended+synced to the main file, no commit
  kCrashMidJournal,     // journal commit record torn mid-record (short write)
};

/// Human-readable crash-point name (test matrix labels).
const char* CrashPointName(CrashPoint point);

/// Deterministic, programmatically-armed fault injector consulted by the
/// pager on every physical read attempt and page write. Tests arm a fault
/// relative to the current operation count ("fail the 2nd read from now"),
/// run the scenario, and assert on the surfaced Status — no real disk faults
/// or flaky timing involved.
///
/// Thread-safe: the pager hooks and arming calls are mutex-guarded, so fault
/// tests can run against concurrent ExecuteBatch workers ("fail the next N
/// reads, whichever thread issues them"). All state lives in the process-wide
/// instance returned by Global(); prefer ScopedFaultInjection in tests so a
/// failing test cannot leak armed faults into the next one.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Disarms everything and clears the counters.
  void Reset();

  /// Arms `count` consecutive failing read attempts starting at the `nth`
  /// upcoming physical read (1-based; nth=1 fails the very next read).
  /// count < 0 means every read from that point on fails.
  void ArmReadFault(uint64_t nth, int count = 1);

  /// Arms `kind` on `count` consecutive writes starting at the `nth` upcoming
  /// page write (1-based). count < 0 applies it to every write from there on.
  void ArmWriteFault(WriteFault kind, uint64_t nth, int count = 1);

  /// Arms `kind` on the `nth` upcoming *header* write (1-based). Header
  /// writes — the pager file header and the manifest journal header /
  /// checkpoint — are counted on a channel separate from page writes, so
  /// arming one cannot shift the page-write counting existing tests rely on.
  void ArmHeaderWriteFault(WriteFault kind, uint64_t nth, int count = 1);

  /// Arms a failure of the `nth` upcoming Flush/Sync call (1-based).
  /// count < 0 fails every flush from that point on.
  void ArmFlushFault(uint64_t nth, int count = 1);

  /// Arms a simulated crash at `point`; fires on the `nth` time that point
  /// is reached (1-based). Only one crash point is armed at a time.
  void ArmCrashPoint(CrashPoint point, uint64_t nth = 1);

  bool armed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return read_remaining_ != 0 || write_remaining_ != 0 ||
           header_remaining_ != 0 || flush_remaining_ != 0 ||
           crash_point_ != CrashPoint::kNone;
  }

  // ---- Pager hooks ---------------------------------------------------------

  /// Consumes one read-attempt slot; true → the pager must fail this attempt
  /// as a short read.
  bool OnReadAttempt();

  /// Consumes one write slot and returns the fault to apply (kNone usually).
  WriteFault OnWriteAttempt();

  /// Consumes one header-write slot (pager header, journal header or
  /// checkpoint) and returns the fault to apply.
  WriteFault OnHeaderWriteAttempt();

  /// Consumes one flush slot; true → the Flush/Sync must report failure.
  bool OnFlushAttempt();

  /// True (once) when execution reaches the armed crash point; the caller
  /// must then abandon the operation mid-flight. Unmatched points never fire.
  bool AtCrashPoint(CrashPoint point);

  // ---- Observability -------------------------------------------------------

  uint64_t reads_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reads_seen_;
  }
  uint64_t writes_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writes_seen_;
  }
  uint64_t injected_read_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_read_faults_;
  }
  uint64_t injected_write_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_write_faults_;
  }
  uint64_t injected_crashes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_crashes_;
  }

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  uint64_t reads_seen_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t injected_read_faults_ = 0;
  uint64_t injected_write_faults_ = 0;

  uint64_t read_trigger_ = 0;   // absolute read index at which faults start
  int64_t read_remaining_ = 0;  // faults left to fire; -1 = unbounded

  uint64_t write_trigger_ = 0;
  int64_t write_remaining_ = 0;
  WriteFault write_kind_ = WriteFault::kNone;

  uint64_t headers_seen_ = 0;
  uint64_t header_trigger_ = 0;
  int64_t header_remaining_ = 0;
  WriteFault header_kind_ = WriteFault::kNone;

  uint64_t flushes_seen_ = 0;
  uint64_t flush_trigger_ = 0;
  int64_t flush_remaining_ = 0;

  CrashPoint crash_point_ = CrashPoint::kNone;
  uint64_t crash_trigger_ = 0;   // nth reach of the point at which it fires
  uint64_t crash_reached_ = 0;   // times the armed point has been reached
  uint64_t injected_crashes_ = 0;
};

/// RAII guard for tests: resets the global injector on entry and exit.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() { FaultInjector::Global().Reset(); }
  ~ScopedFaultInjection() { FaultInjector::Global().Reset(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector& operator*() { return FaultInjector::Global(); }
  FaultInjector* operator->() { return &FaultInjector::Global(); }
};

}  // namespace viewjoin::util

#endif  // VIEWJOIN_UTIL_FAULT_INJECTION_H_
