#ifndef VIEWJOIN_UTIL_TABLE_PRINTER_H_
#define VIEWJOIN_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace viewjoin::util {

/// Fixed-width ASCII table writer used by the benchmark binaries to print
/// paper-style tables (Table II, IV, V and the figure data series).
class TablePrinter {
 public:
  /// `columns` are the header labels; widths adapt to content.
  explicit TablePrinter(std::vector<std::string> columns);

  /// Appends one row; must have exactly as many cells as columns.
  void AddRow(std::vector<std::string> row);

  /// Renders the full table (header, separator, rows) to a string.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);

/// Formats a byte count as a human-readable "x.xx MB" string.
std::string FormatMegabytes(uint64_t bytes);

}  // namespace viewjoin::util

#endif  // VIEWJOIN_UTIL_TABLE_PRINTER_H_
