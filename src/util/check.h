#ifndef VIEWJOIN_UTIL_CHECK_H_
#define VIEWJOIN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace viewjoin::util {

/// Terminates the process with a message. Used by the CHECK macros; call
/// directly only for unrecoverable invariant violations.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

namespace internal {

/// Stream-collecting helper so `VJ_CHECK(x) << "context"` works. Constructed
/// only on failure; aborts in the destructor after the message is complete.
class CheckMessageSink {
 public:
  CheckMessageSink(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageSink(const CheckMessageSink&) = delete;
  CheckMessageSink& operator=(const CheckMessageSink&) = delete;

  template <typename T>
  CheckMessageSink& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  ~CheckMessageSink() { CheckFail(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< consumer making the macro's both branches void.
struct Voidify {
  void operator&(const CheckMessageSink&) const {}
};

/// No-op sink selected when DCHECKs are compiled out.
struct NullSink {
  template <typename T>
  const NullSink& operator<<(const T&) const {
    return *this;
  }
};

}  // namespace internal
}  // namespace viewjoin::util

/// Always-on invariant check. Evaluates `cond` exactly once. Additional
/// context may be streamed: VJ_CHECK(n > 0) << "n=" << n;
#define VJ_CHECK(cond)                                  \
  (cond) ? (void)0                                      \
         : ::viewjoin::util::internal::Voidify() &      \
               ::viewjoin::util::internal::CheckMessageSink(__FILE__, \
                                                            __LINE__, #cond)

#define VJ_CHECK_EQ(a, b) VJ_CHECK((a) == (b))
#define VJ_CHECK_NE(a, b) VJ_CHECK((a) != (b))
#define VJ_CHECK_LT(a, b) VJ_CHECK((a) < (b))
#define VJ_CHECK_LE(a, b) VJ_CHECK((a) <= (b))
#define VJ_CHECK_GT(a, b) VJ_CHECK((a) > (b))
#define VJ_CHECK_GE(a, b) VJ_CHECK((a) >= (b))

#ifndef NDEBUG
#define VJ_DCHECK(cond) VJ_CHECK(cond)
#else
#define VJ_DCHECK(cond) \
  ::viewjoin::util::internal::NullSink() << !!(cond)
#endif

#endif  // VIEWJOIN_UTIL_CHECK_H_
