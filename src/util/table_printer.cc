#include "util/table_printer.h"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace viewjoin::util {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  VJ_CHECK_EQ(row.size(), columns_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
      out << " |";
    }
    out << "\n";
  };
  emit_row(columns_);
  out << "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) out << '-';
    out << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatMegabytes(uint64_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f MB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace viewjoin::util
