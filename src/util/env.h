#ifndef VIEWJOIN_UTIL_ENV_H_
#define VIEWJOIN_UTIL_ENV_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/status.h"

namespace viewjoin::util {

/// Strict environment-variable parsing. A malformed value returns a typed
/// InvalidArgument naming the variable and the offending text instead of
/// being silently coerced to the default — a tuning knob that is set but
/// ignored (e.g. VIEWJOIN_PAGE_READ_MICROS="100ms") would otherwise make
/// every measurement taken under it a lie. Unset or empty variables return
/// `default_value`: absence is not an error.
inline StatusOr<int64_t> ParseNonNegativeIntEnv(const char* name,
                                                int64_t default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  // strtoll quietly skips leading whitespace and accepts a sign; strict
  // means digits only, from the first character.
  if (*env < '0' || *env > '9') {
    return Status::InvalidArgument(std::string(name) +
                                   ": expected a non-negative integer, got '" +
                                   env + "'");
  }
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(env, &end, 10);
  if (errno == ERANGE || end == env || *end != '\0') {
    return Status::InvalidArgument(std::string(name) +
                                   ": expected a non-negative integer, got '" +
                                   env + "'");
  }
  if (parsed < 0) {
    return Status::InvalidArgument(std::string(name) +
                                   ": must be non-negative, got '" + env + "'");
  }
  return static_cast<int64_t>(parsed);
}

/// Strict closed-set string knob: the value must equal one of `allowed`
/// exactly (case-sensitive). The error message lists every legal spelling so
/// a typo'd "Disk" is immediately diagnosable.
inline StatusOr<std::string> ParseEnumEnv(
    const char* name, const std::vector<std::string>& allowed,
    const std::string& default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  std::string value(env);
  for (const std::string& candidate : allowed) {
    if (value == candidate) return value;
  }
  std::string expected;
  for (size_t i = 0; i < allowed.size(); ++i) {
    if (i > 0) expected += "/";
    expected += allowed[i];
  }
  return Status::InvalidArgument(std::string(name) + ": expected " + expected +
                                 ", got '" + value + "'");
}

/// Strict boolean: "0"/"false" and "1"/"true" only. Anything else — "yes",
/// "2", a typo'd "ture" — is a typed InvalidArgument, not a guess.
inline StatusOr<bool> ParseBoolEnv(const char* name, bool default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  std::string value(env);
  if (value == "0" || value == "false") return false;
  if (value == "1" || value == "true") return true;
  return Status::InvalidArgument(std::string(name) +
                                 ": expected 0/1/true/false, got '" + value +
                                 "'");
}

}  // namespace viewjoin::util

#endif  // VIEWJOIN_UTIL_ENV_H_
