#include "util/fault_injection.h"

namespace viewjoin::util {

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kCrashBeforeRename:
      return "before-rename";
    case CrashPoint::kCrashAfterRename:
      return "after-rename";
    case CrashPoint::kCrashAfterDataSync:
      return "after-data-sync";
    case CrashPoint::kCrashMidJournal:
      return "mid-journal";
    case CrashPoint::kCrashMidDeltaMerge:
      return "mid-delta-merge";
    case CrashPoint::kCrashBeforeEpochBump:
      return "before-epoch-bump";
    case CrashPoint::kCrashAfterEpochBump:
      return "after-epoch-bump";
    case CrashPoint::kCrashMidCompaction:
      return "mid-compaction";
    case CrashPoint::kCrashMidBackupCopy:
      return "mid-backup-copy";
  }
  return "?";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  reads_seen_ = 0;
  writes_seen_ = 0;
  injected_read_faults_ = 0;
  injected_write_faults_ = 0;
  read_trigger_ = 0;
  read_remaining_ = 0;
  write_trigger_ = 0;
  write_remaining_ = 0;
  write_kind_ = WriteFault::kNone;
  headers_seen_ = 0;
  header_trigger_ = 0;
  header_remaining_ = 0;
  header_kind_ = WriteFault::kNone;
  flushes_seen_ = 0;
  flush_trigger_ = 0;
  flush_remaining_ = 0;
  disk_budget_armed_ = false;
  disk_budget_remaining_ = 0;
  injected_no_space_faults_ = 0;
  crash_point_ = CrashPoint::kNone;
  crash_trigger_ = 0;
  crash_reached_ = 0;
  injected_crashes_ = 0;
  recovery_barrier_armed_ = false;
  recovery_cv_.notify_all();
}

void FaultInjector::ArmReadFault(uint64_t nth, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  read_trigger_ = reads_seen_ + (nth == 0 ? 1 : nth);
  read_remaining_ = count;
}

void FaultInjector::ArmWriteFault(WriteFault kind, uint64_t nth, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  write_trigger_ = writes_seen_ + (nth == 0 ? 1 : nth);
  write_remaining_ = kind == WriteFault::kNone ? 0 : count;
  write_kind_ = kind;
}

bool FaultInjector::OnReadAttempt() {
  std::lock_guard<std::mutex> lock(mu_);
  ++reads_seen_;
  if (read_remaining_ == 0 || reads_seen_ < read_trigger_) return false;
  if (read_remaining_ > 0) --read_remaining_;
  ++injected_read_faults_;
  return true;
}

WriteFault FaultInjector::OnWriteAttempt() {
  std::lock_guard<std::mutex> lock(mu_);
  ++writes_seen_;
  if (write_remaining_ == 0 || writes_seen_ < write_trigger_) {
    return WriteFault::kNone;
  }
  if (write_remaining_ > 0) --write_remaining_;
  ++injected_write_faults_;
  return write_kind_;
}

void FaultInjector::ArmHeaderWriteFault(WriteFault kind, uint64_t nth,
                                        int count) {
  std::lock_guard<std::mutex> lock(mu_);
  header_trigger_ = headers_seen_ + (nth == 0 ? 1 : nth);
  header_remaining_ = kind == WriteFault::kNone ? 0 : count;
  header_kind_ = kind;
}

WriteFault FaultInjector::OnHeaderWriteAttempt() {
  std::lock_guard<std::mutex> lock(mu_);
  ++headers_seen_;
  if (header_remaining_ == 0 || headers_seen_ < header_trigger_) {
    return WriteFault::kNone;
  }
  if (header_remaining_ > 0) --header_remaining_;
  ++injected_write_faults_;
  return header_kind_;
}

void FaultInjector::ArmFlushFault(uint64_t nth, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  flush_trigger_ = flushes_seen_ + (nth == 0 ? 1 : nth);
  flush_remaining_ = count;
}

void FaultInjector::ArmDiskBudget(uint64_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  disk_budget_armed_ = true;
  disk_budget_remaining_ = budget_bytes;
}

void FaultInjector::DisarmDiskBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  disk_budget_armed_ = false;
  disk_budget_remaining_ = 0;
}

bool FaultInjector::OnDiskCharge(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!disk_budget_armed_) return false;
  if (bytes > disk_budget_remaining_) {
    // Full disk: this write and every later one fail until space is freed
    // (Reset/DisarmDiskBudget). The remainder is pinned, not left fractional,
    // so a smaller follow-up write cannot sneak through a "full" device.
    disk_budget_remaining_ = 0;
    ++injected_no_space_faults_;
    return true;
  }
  disk_budget_remaining_ -= bytes;
  return false;
}

bool FaultInjector::OnFlushAttempt() {
  std::lock_guard<std::mutex> lock(mu_);
  ++flushes_seen_;
  if (flush_remaining_ == 0 || flushes_seen_ < flush_trigger_) return false;
  if (flush_remaining_ > 0) --flush_remaining_;
  return true;
}

void FaultInjector::ArmCrashPoint(CrashPoint point, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_point_ = point;
  crash_trigger_ = nth == 0 ? 1 : nth;
  crash_reached_ = 0;
}

void FaultInjector::ArmRecoveryBarrier() {
  std::lock_guard<std::mutex> lock(mu_);
  recovery_barrier_armed_ = true;
}

void FaultInjector::ReleaseRecoveryBarrier() {
  std::lock_guard<std::mutex> lock(mu_);
  recovery_barrier_armed_ = false;
  recovery_cv_.notify_all();
}

void FaultInjector::OnRecoveryPoint() {
  std::unique_lock<std::mutex> lock(mu_);
  recovery_cv_.wait(lock, [this] { return !recovery_barrier_armed_; });
}

bool FaultInjector::AtCrashPoint(CrashPoint point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (point != crash_point_ || point == CrashPoint::kNone) return false;
  if (++crash_reached_ < crash_trigger_) return false;
  crash_point_ = CrashPoint::kNone;  // a process crashes once
  ++injected_crashes_;
  return true;
}

const char* SocketFaultName(SocketFault fault) {
  switch (fault) {
    case SocketFault::kNone:
      return "none";
    case SocketFault::kShortRead:
      return "short-read";
    case SocketFault::kShortWrite:
      return "short-write";
    case SocketFault::kReset:
      return "reset";
    case SocketFault::kStall:
      return "stall";
  }
  return "?";
}

SocketFaultInjector& SocketFaultInjector::Global() {
  static SocketFaultInjector injector;
  return injector;
}

void SocketFaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  recvs_seen_ = 0;
  sends_seen_ = 0;
  injected_faults_ = 0;
  stall_ms_ = 50;
  recv_matching_seen_ = 0;
  recv_trigger_ = 0;
  recv_remaining_ = 0;
  recv_kind_ = SocketFault::kNone;
  recv_target_ = SocketEnd::kAny;
  send_matching_seen_ = 0;
  send_trigger_ = 0;
  send_remaining_ = 0;
  send_kind_ = SocketFault::kNone;
  send_target_ = SocketEnd::kAny;
}

void SocketFaultInjector::ArmRecvFault(SocketFault kind, uint64_t nth,
                                       int count, SocketEnd target) {
  std::lock_guard<std::mutex> lock(mu_);
  recv_matching_seen_ = 0;
  recv_trigger_ = nth == 0 ? 1 : nth;
  recv_remaining_ = kind == SocketFault::kNone ? 0 : count;
  recv_kind_ = kind;
  recv_target_ = target;
}

void SocketFaultInjector::ArmSendFault(SocketFault kind, uint64_t nth,
                                       int count, SocketEnd target) {
  std::lock_guard<std::mutex> lock(mu_);
  send_matching_seen_ = 0;
  send_trigger_ = nth == 0 ? 1 : nth;
  send_remaining_ = kind == SocketFault::kNone ? 0 : count;
  send_kind_ = kind;
  send_target_ = target;
}

void SocketFaultInjector::set_stall_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_ms_ = ms;
}

double SocketFaultInjector::stall_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_ms_;
}

bool SocketFaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recv_remaining_ != 0 || send_remaining_ != 0;
}

uint64_t SocketFaultInjector::recvs_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recvs_seen_;
}

uint64_t SocketFaultInjector::sends_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sends_seen_;
}

uint64_t SocketFaultInjector::injected_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_faults_;
}

SocketFault SocketFaultInjector::OnRecvAttempt(SocketEnd end) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recvs_seen_;
  if (recv_remaining_ == 0 || !Matches(recv_target_, end)) {
    return SocketFault::kNone;
  }
  if (++recv_matching_seen_ < recv_trigger_) return SocketFault::kNone;
  if (recv_remaining_ > 0) --recv_remaining_;
  ++injected_faults_;
  return recv_kind_;
}

SocketFault SocketFaultInjector::OnSendAttempt(SocketEnd end) {
  std::lock_guard<std::mutex> lock(mu_);
  ++sends_seen_;
  if (send_remaining_ == 0 || !Matches(send_target_, end)) {
    return SocketFault::kNone;
  }
  if (++send_matching_seen_ < send_trigger_) return SocketFault::kNone;
  if (send_remaining_ > 0) --send_remaining_;
  ++injected_faults_;
  return send_kind_;
}

}  // namespace viewjoin::util
