#include "util/fault_injection.h"

namespace viewjoin::util {

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  reads_seen_ = 0;
  writes_seen_ = 0;
  injected_read_faults_ = 0;
  injected_write_faults_ = 0;
  read_trigger_ = 0;
  read_remaining_ = 0;
  write_trigger_ = 0;
  write_remaining_ = 0;
  write_kind_ = WriteFault::kNone;
}

void FaultInjector::ArmReadFault(uint64_t nth, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  read_trigger_ = reads_seen_ + (nth == 0 ? 1 : nth);
  read_remaining_ = count;
}

void FaultInjector::ArmWriteFault(WriteFault kind, uint64_t nth, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  write_trigger_ = writes_seen_ + (nth == 0 ? 1 : nth);
  write_remaining_ = kind == WriteFault::kNone ? 0 : count;
  write_kind_ = kind;
}

bool FaultInjector::OnReadAttempt() {
  std::lock_guard<std::mutex> lock(mu_);
  ++reads_seen_;
  if (read_remaining_ == 0 || reads_seen_ < read_trigger_) return false;
  if (read_remaining_ > 0) --read_remaining_;
  ++injected_read_faults_;
  return true;
}

WriteFault FaultInjector::OnWriteAttempt() {
  std::lock_guard<std::mutex> lock(mu_);
  ++writes_seen_;
  if (write_remaining_ == 0 || writes_seen_ < write_trigger_) {
    return WriteFault::kNone;
  }
  if (write_remaining_ > 0) --write_remaining_;
  ++injected_write_faults_;
  return write_kind_;
}

}  // namespace viewjoin::util
