#ifndef VIEWJOIN_UTIL_BACKOFF_H_
#define VIEWJOIN_UTIL_BACKOFF_H_

#include <algorithm>

#include "util/rng.h"

namespace viewjoin::util {

/// Decorrelated-jitter retry backoff: each delay is drawn uniformly from
/// [base, min(cap, 3 * previous delay)].
///
/// Deterministic exponential backoff has a fleet-level failure mode: every
/// retrier that failed on the same transient fault sleeps for the *same*
/// base, 2*base, 4*base... schedule, so the retries arrive back at the
/// struggling medium in synchronized waves (a thundering herd) and keep
/// re-tripping the fault together. Randomizing the whole interval — not just
/// adding a small epsilon — spreads the waves out; carrying the previous
/// delay forward ("decorrelated") still grows the expected delay roughly
/// geometrically, so persistent faults back off as fast as the deterministic
/// ladder did.
class DecorrelatedJitterBackoff {
 public:
  /// Delays start at `base_ms` and never exceed `cap_ms` (clamped up to
  /// `base_ms` if smaller). `seed` decorrelates independent retriers: give
  /// every worker/session its own.
  DecorrelatedJitterBackoff(double base_ms, double cap_ms, uint64_t seed)
      : base_ms_(std::max(base_ms, 0.0)),
        cap_ms_(std::max(cap_ms, base_ms_)),
        prev_ms_(base_ms_),
        rng_(seed) {}

  /// The delay to sleep before the next retry, in [base_ms, cap_ms].
  double NextDelayMs() {
    double hi = std::min(cap_ms_, prev_ms_ * 3.0);
    double lo = std::min(base_ms_, hi);
    prev_ms_ = lo + (hi - lo) * rng_.NextDouble();
    return prev_ms_;
  }

  /// Restarts the schedule (a new operation's first retry starts from base).
  void Reset() { prev_ms_ = base_ms_; }

  double base_ms() const { return base_ms_; }
  double cap_ms() const { return cap_ms_; }

 private:
  double base_ms_;
  double cap_ms_;
  double prev_ms_;
  Rng rng_;
};

}  // namespace viewjoin::util

#endif  // VIEWJOIN_UTIL_BACKOFF_H_
