#ifndef VIEWJOIN_UTIL_RNG_H_
#define VIEWJOIN_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace viewjoin::util {

/// Deterministic 64-bit PRNG (splitmix64). All data generators and property
/// tests seed from this so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) {
    VJ_DCHECK(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    VJ_DCHECK(lo <= hi);
    return lo +
           static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-like skewed choice over [0, n): rank r is picked with weight
  /// 1/(r+1)^theta. Used by the NASA-like generator to produce the skewed
  /// element distribution the paper relies on. `n` is small in our usage so
  /// a linear inverse-CDF walk is fine.
  uint64_t Zipf(uint64_t n, double theta) {
    VJ_DCHECK(n > 0);
    double total = 0;
    for (uint64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    }
    double target = NextDouble() * total;
    double acc = 0;
    for (uint64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      if (target < acc) return i;
    }
    return n - 1;
  }

 private:
  uint64_t state_;
};

}  // namespace viewjoin::util

#endif  // VIEWJOIN_UTIL_RNG_H_
