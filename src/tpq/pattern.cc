#include "tpq/pattern.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <unordered_set>

#include "util/check.h"

namespace viewjoin::tpq {
namespace {

/// Recursive-descent parser for the {/, //, []} XPath fragment.
///
/// Grammar:
///   pattern    := step+
///   step       := axis name predicate*
///   axis       := '//' | '/' | (empty, inside predicates: child)
///   predicate  := '[' pattern ']'
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<TreePattern> Run() {
    TreePattern pattern;
    if (!ParseSteps(&pattern, /*parent=*/-1, /*allow_bare_first=*/false)) {
      return std::nullopt;
    }
    if (pos_ != text_.size()) {
      Fail("trailing characters");
      return std::nullopt;
    }
    if (pattern.empty()) {
      Fail("empty pattern");
      return std::nullopt;
    }
    return pattern;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void Fail(const std::string& message) {
    if (error_ != nullptr) {
      std::ostringstream out;
      out << message << " at offset " << pos_;
      *error_ = out.str();
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':' || c == '.' || c == '*';
  }

  /// Parses a chain of steps under `parent`; each step becomes the parent of
  /// the next. `allow_bare_first` permits the leading axis to be omitted
  /// (child axis), which XPath allows inside predicates, e.g. `[title]`.
  bool ParseSteps(TreePattern* pattern, int parent, bool allow_bare_first) {
    bool first = true;
    int current = parent;
    while (!AtEnd() && Peek() != ']') {
      Axis axis;
      if (Peek() == '/') {
        ++pos_;
        if (!AtEnd() && Peek() == '/') {
          ++pos_;
          axis = Axis::kDescendant;
        } else {
          axis = Axis::kChild;
        }
      } else if (first && allow_bare_first) {
        axis = Axis::kChild;
      } else if (first) {
        Fail("pattern must start with '/' or '//'");
        return false;
      } else {
        Fail("expected '/' or '//' or '['");
        return false;
      }
      first = false;
      size_t name_begin = pos_;
      while (!AtEnd() && IsNameChar(Peek())) ++pos_;
      if (pos_ == name_begin) {
        Fail("expected element name");
        return false;
      }
      std::string_view name = text_.substr(name_begin, pos_ - name_begin);
      current = pattern->AddNode(name, current, axis);
      // Predicates attach additional children to `current`.
      while (!AtEnd() && Peek() == '[') {
        ++pos_;
        if (!ParseSteps(pattern, current, /*allow_bare_first=*/true)) {
          return false;
        }
        if (AtEnd() || Peek() != ']') {
          Fail("expected ']'");
          return false;
        }
        ++pos_;
      }
    }
    if (current == parent) {
      Fail("empty step list");
      return false;
    }
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

void AppendNode(const TreePattern& pattern, int node, std::ostringstream* out) {
  const PatternNode& n = pattern.node(node);
  *out << (n.incoming == Axis::kDescendant ? "//" : "/") << n.tag;
  if (n.children.empty()) return;
  // All children but the last render as predicates; the last continues the
  // main path (canonical form).
  for (size_t i = 0; i + 1 < n.children.size(); ++i) {
    *out << '[';
    AppendNode(pattern, n.children[i], out);
    *out << ']';
  }
  AppendNode(pattern, n.children.back(), out);
}

}  // namespace

std::optional<TreePattern> TreePattern::Parse(std::string_view xpath,
                                              std::string* error) {
  Parser parser(xpath, error);
  return parser.Run();
}

int TreePattern::FindByTag(std::string_view tag) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].tag == tag) return static_cast<int>(i);
  }
  return -1;
}

bool TreePattern::HasUniqueTags() const {
  std::unordered_set<std::string> seen;
  for (const PatternNode& n : nodes_) {
    if (!seen.insert(n.tag).second) return false;
  }
  return true;
}

bool TreePattern::IsPath() const {
  for (const PatternNode& n : nodes_) {
    if (n.children.size() > 1) return false;
  }
  return true;
}

std::vector<int> TreePattern::PreorderNodes() const {
  std::vector<int> order(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) order[i] = static_cast<int>(i);
  return order;
}

std::string TreePattern::ToString() const {
  if (nodes_.empty()) return "";
  std::ostringstream out;
  AppendNode(*this, root(), &out);
  return out.str();
}

uint64_t TreePattern::Fingerprint() const {
  // FNV-1a over a canonical serialization of (tag bytes, axis, parent) per
  // node in preorder, with splitmix finalization. Nodes are stored in
  // preorder, so equal trees hash equal regardless of how they were built.
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t byte) {
    h ^= byte;
    h *= 0x100000001B3ULL;
  };
  for (const PatternNode& n : nodes_) {
    for (char c : n.tag) mix(static_cast<uint8_t>(c));
    mix(0xFF);  // tag terminator (tags never contain 0xFF)
    mix(n.incoming == Axis::kChild ? 1 : 2);
    mix(static_cast<uint64_t>(n.parent + 1));
  }
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

int TreePattern::AddNode(std::string_view tag, int parent, Axis axis) {
  VJ_CHECK(parent >= -1 && parent < static_cast<int>(nodes_.size()));
  VJ_CHECK(parent >= 0 || nodes_.empty()) << "pattern already has a root";
  int index = static_cast<int>(nodes_.size());
  PatternNode node;
  node.tag = std::string(tag);
  node.incoming = axis;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  if (parent >= 0) nodes_[static_cast<size_t>(parent)].children.push_back(index);
  return index;
}

void HashingSink::OnMatch(const Match& match) {
  // Order-independent combine: sum of per-match hashes. Each match hash is a
  // polynomial of its node ids mixed through splitmix-style finalization.
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (xml::NodeId id : match) {
    h = h * 0x100000001B3ULL + id + 1;
    h ^= h >> 29;
  }
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  hash_ += h;
  ++count_;
}

}  // namespace viewjoin::tpq
