#include "tpq/subpattern.h"

#include "util/check.h"

namespace viewjoin::tpq {
namespace {

/// True iff q-node `anc` is a proper ancestor of q-node `desc` in `q`.
bool IsPatternAncestor(const TreePattern& q, int anc, int desc) {
  for (int p = q.node(desc).parent; p >= 0; p = q.node(p).parent) {
    if (p == anc) return true;
  }
  return false;
}

}  // namespace

std::optional<PatternMapping> SubpatternMapping(const TreePattern& v,
                                                const TreePattern& q) {
  VJ_DCHECK(v.HasUniqueTags() && q.HasUniqueTags());
  PatternMapping mapping(v.size(), -1);
  for (size_t i = 0; i < v.size(); ++i) {
    int target = q.FindByTag(v.node(static_cast<int>(i)).tag);
    if (target < 0) return std::nullopt;  // type missing from q
    mapping[i] = target;
  }
  for (size_t i = 0; i < v.size(); ++i) {
    const PatternNode& vn = v.node(static_cast<int>(i));
    if (vn.parent < 0) continue;
    int mapped = mapping[i];
    int mapped_parent = mapping[static_cast<size_t>(vn.parent)];
    if (vn.incoming == Axis::kChild) {
      // pc-edge must map to a pc-edge.
      const PatternNode& qn = q.node(mapped);
      if (qn.parent != mapped_parent || qn.incoming != Axis::kChild) {
        return std::nullopt;
      }
    } else {
      // ad-edge must map to a proper ancestor-descendant pair.
      if (!IsPatternAncestor(q, mapped_parent, mapped)) return std::nullopt;
    }
  }
  return mapping;
}

bool IsSubpattern(const TreePattern& v, const TreePattern& q) {
  return SubpatternMapping(v, q).has_value();
}

bool IsConnectedSubpattern(const TreePattern& v, const TreePattern& q) {
  std::optional<PatternMapping> mapping = SubpatternMapping(v, q);
  if (!mapping.has_value()) return false;
  for (size_t i = 0; i < v.size(); ++i) {
    const PatternNode& vn = v.node(static_cast<int>(i));
    if (vn.parent < 0) continue;
    // Every v-edge must map to a direct q-edge.
    int mapped = (*mapping)[i];
    int mapped_parent = (*mapping)[static_cast<size_t>(vn.parent)];
    if (q.node(mapped).parent != mapped_parent) return false;
  }
  return true;
}

CoveringInfo AnalyzeCovering(const TreePattern& query,
                             const std::vector<TreePattern>& views) {
  CoveringInfo info;
  info.view_of.assign(query.size(), -1);
  info.mappings.resize(views.size());
  for (size_t vi = 0; vi < views.size(); ++vi) {
    info.mappings[vi] = SubpatternMapping(views[vi], query);
    if (!info.mappings[vi].has_value()) continue;
    for (int qnode : *info.mappings[vi]) {
      if (info.view_of[static_cast<size_t>(qnode)] >= 0) {
        info.overlapping = true;
      } else {
        info.view_of[static_cast<size_t>(qnode)] = static_cast<int>(vi);
      }
    }
  }
  info.covers = true;
  for (int owner : info.view_of) {
    if (owner < 0) info.covers = false;
  }
  return info;
}

bool IsCoveringSet(const TreePattern& query,
                   const std::vector<TreePattern>& views) {
  return AnalyzeCovering(query, views).covers;
}

bool IsMinimalCoveringSet(const TreePattern& query,
                          const std::vector<TreePattern>& views) {
  if (!IsCoveringSet(query, views)) return false;
  for (size_t skip = 0; skip < views.size(); ++skip) {
    std::vector<TreePattern> subset;
    for (size_t i = 0; i < views.size(); ++i) {
      if (i != skip) subset.push_back(views[i]);
    }
    if (IsCoveringSet(query, subset)) return false;
  }
  return true;
}

}  // namespace viewjoin::tpq
