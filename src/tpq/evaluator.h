#ifndef VIEWJOIN_TPQ_EVALUATOR_H_
#define VIEWJOIN_TPQ_EVALUATOR_H_

#include <vector>

#include "tpq/pattern.h"
#include "xml/document.h"

namespace viewjoin::tpq {

/// Exhaustive TPQ evaluator used as the correctness oracle for every join
/// algorithm in this repository, and as the view materializer's embedding
/// enumerator.
///
/// It enumerates all embeddings of `pattern` into `doc` by recursive
/// backtracking over the per-tag node lists, restricting each candidate list
/// to the (start, end) range of the assigned parent via binary search. It is
/// output-sensitive enough for test- and view-materialization-sized inputs
/// but performs no skipping and keeps no stacks — by design it shares no code
/// with the algorithms under test.
class NaiveEvaluator {
 public:
  NaiveEvaluator(const xml::Document& doc, const TreePattern& pattern);

  /// Streams every match into `sink`, in document order of the root match
  /// (and recursively of each child match).
  void Evaluate(MatchSink* sink) const;

  /// Convenience: collects all matches.
  std::vector<Match> Collect() const;

  /// Convenience: counts matches.
  uint64_t Count() const;

  /// The distinct solution nodes per pattern node (document order): node n is
  /// a solution node of pattern node q iff it occurs in some match at q.
  /// This is exactly the content of the element/linked-element lists L_q.
  std::vector<std::vector<xml::NodeId>> SolutionNodes() const;

 private:
  bool EvaluateNode(int q, xml::NodeId assigned, Match* match,
                    MatchSink* sink) const;

  const xml::Document& doc_;
  TreePattern pattern_;  // owned copy: callers may pass temporaries
  std::vector<xml::TagId> tags_;  // resolved per pattern node; may be invalid
};

/// Sorts matches lexicographically (canonical order for test comparison).
void SortMatches(std::vector<Match>* matches);

}  // namespace viewjoin::tpq

#endif  // VIEWJOIN_TPQ_EVALUATOR_H_
