#ifndef VIEWJOIN_TPQ_SUBPATTERN_H_
#define VIEWJOIN_TPQ_SUBPATTERN_H_

#include <optional>
#include <vector>

#include "tpq/pattern.h"

namespace viewjoin::tpq {

/// Mapping from the nodes of a (sub)pattern `v` to nodes of a pattern `Q`:
/// entry i is the Q-node index that v-node i maps to. Because patterns have
/// unique element types, the mapping is unique when it exists.
using PatternMapping = std::vector<int>;

/// Computes the subpattern embedding of `v` into `q` (paper Section II):
///  * type preservation: each v-node maps to the q-node of the same tag;
///  * pc-edges of v map to pc-edges of q;
///  * ad-edges of v map to proper ancestor-descendant pairs in q.
/// Returns std::nullopt if `v` is not a subpattern of `q`.
std::optional<PatternMapping> SubpatternMapping(const TreePattern& v,
                                                const TreePattern& q);

/// True iff `v` is a subpattern of `q`.
bool IsSubpattern(const TreePattern& v, const TreePattern& q);

/// True iff `v` is a *connected* subpattern of `q`: a subpattern whose every
/// edge maps to an actual edge of `q` (ad-edges of `v` may map to either pc-
/// or ad-edges; pc-edges must map to pc-edges).
bool IsConnectedSubpattern(const TreePattern& v, const TreePattern& q);

/// Covering analysis of a query by a set of candidate views.
struct CoveringInfo {
  /// view_of[qnode] = index into `views` of the view covering that query
  /// node, or -1 if uncovered. With the paper's assumption that used views
  /// share no element types, the assignment is unique.
  std::vector<int> view_of;
  /// Per view: the subpattern mapping into the query (empty if the view is
  /// not a subpattern and hence unusable).
  std::vector<std::optional<PatternMapping>> mappings;
  /// True iff every query node is covered by some usable view.
  bool covers = false;
  /// True iff two usable views share an element type occurring in the query.
  bool overlapping = false;
};

/// Analyzes how `views` cover `query`. A view covers the query nodes its
/// tags map onto, provided it is a subpattern of the query.
CoveringInfo AnalyzeCovering(const TreePattern& query,
                             const std::vector<TreePattern>& views);

/// True iff `views` is a covering view set of `query` (every query node
/// covered by a view that is a subpattern of the query).
bool IsCoveringSet(const TreePattern& query,
                   const std::vector<TreePattern>& views);

/// True iff `views` covers `query` and no proper subset does.
bool IsMinimalCoveringSet(const TreePattern& query,
                          const std::vector<TreePattern>& views);

}  // namespace viewjoin::tpq

#endif  // VIEWJOIN_TPQ_SUBPATTERN_H_
