#ifndef VIEWJOIN_TPQ_PATTERN_H_
#define VIEWJOIN_TPQ_PATTERN_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/label.h"

namespace viewjoin::tpq {

/// Edge axis between a pattern node and its parent.
enum class Axis {
  kChild,       // pc-edge: '/'
  kDescendant,  // ad-edge: '//'
};

/// One node of a tree pattern. Nodes are stored in preorder; node 0 is the
/// pattern root.
struct PatternNode {
  /// Element type name (patterns carry names; algorithms resolve them to a
  /// document's interned TagId at evaluation time).
  std::string tag;
  /// Axis of the incoming edge from `parent` (for the root: the axis binding
  /// the root to the document — '//' matches anywhere, '/' only the document
  /// root element).
  Axis incoming = Axis::kDescendant;
  /// Parent node index; -1 for the root.
  int parent = -1;
  /// Child node indices in syntax order.
  std::vector<int> children;
};

/// A tree pattern query / view pattern over the XPath fragment {/, //, []}.
///
/// Following the paper (Section II): every node is an output node, and a
/// well-formed pattern for this system has no duplicate element types.
class TreePattern {
 public:
  TreePattern() = default;

  /// Parses an XPath expression of the {/, //, []} fragment, e.g.
  /// `//a//b[//c/d]//e` or `//journal[//suffix][title]/date/year`.
  /// Returns std::nullopt and sets *error on malformed input.
  static std::optional<TreePattern> Parse(std::string_view xpath,
                                          std::string* error = nullptr);

  /// Number of pattern nodes (|Q| in the paper).
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  const PatternNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  int root() const { return 0; }

  /// Index of the node with element type `tag`, or -1. Patterns in this
  /// system have unique element types, so the answer is unambiguous.
  int FindByTag(std::string_view tag) const;

  /// True iff no element type occurs twice (the paper's standing assumption).
  bool HasUniqueTags() const;

  /// True iff the pattern is a path (no branching).
  bool IsPath() const;

  /// Nodes in a fixed top-down (preorder) order; equals 0..size-1 since nodes
  /// are stored in preorder, but exposed for readability at call sites.
  std::vector<int> PreorderNodes() const;

  /// Serializes back to XPath syntax (canonical: predicates for all but the
  /// last child).
  std::string ToString() const;

  /// Structural fingerprint: a 64-bit hash over the node tags, incoming axes
  /// and parent links, stable across processes. Two patterns share a
  /// fingerprint iff they are the same tree (modulo the astronomically
  /// unlikely hash collision) — the plan cache keys on it together with the
  /// catalog version.
  uint64_t Fingerprint() const;

  /// Builder API for programmatic construction (used by tests/generators).
  /// Adds a node under `parent` (-1 creates the root) and returns its index.
  int AddNode(std::string_view tag, int parent, Axis axis);

 private:
  std::vector<PatternNode> nodes_;
};

/// A query match: match[i] is the document node embedding pattern node i.
using Match = std::vector<xml::NodeId>;

/// Consumer of query matches. Algorithms stream matches into a sink so that
/// benches can count without materializing and tests can collect.
class MatchSink {
 public:
  virtual ~MatchSink() = default;
  /// Called once per tree-pattern instance; `match` is indexed by pattern
  /// node and valid only for the duration of the call.
  virtual void OnMatch(const Match& match) = 0;
};

/// Counts matches.
class CountingSink : public MatchSink {
 public:
  void OnMatch(const Match&) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Collects matches (tests / small results only).
class CollectingSink : public MatchSink {
 public:
  void OnMatch(const Match& match) override { matches_.push_back(match); }
  const std::vector<Match>& matches() const { return matches_; }
  std::vector<Match>& mutable_matches() { return matches_; }

 private:
  std::vector<Match> matches_;
};

/// Order-independent fingerprint of a match set; used by differential tests
/// to compare algorithms without sorting huge result sets.
class HashingSink : public MatchSink {
 public:
  void OnMatch(const Match& match) override;
  uint64_t hash() const { return hash_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t hash_ = 0;
  uint64_t count_ = 0;
};

}  // namespace viewjoin::tpq

#endif  // VIEWJOIN_TPQ_PATTERN_H_
