#include "tpq/evaluator.h"

#include <algorithm>

#include "util/check.h"

namespace viewjoin::tpq {

using xml::Document;
using xml::kInvalidNode;
using xml::NodeId;
using xml::TagId;

namespace {

/// Per-pattern-node boolean over document nodes (indexed by NodeId).
using NodeSet = std::vector<uint8_t>;

/// Computes, for every pattern node q, the set of data nodes that root a
/// match of the subtree of q (`sub`), then filters top-down to solution
/// nodes (`top`). Ancestor walks use the document's parent pointers; depth
/// is bounded by the document height.
class SolutionComputer {
 public:
  SolutionComputer(const Document& doc, const TreePattern& pattern,
                   const std::vector<TagId>& tags)
      : doc_(doc), pattern_(pattern), tags_(tags) {}

  /// Returns top[q] for all q, or empty vectors when some pattern tag is
  /// absent from the document (no matches possible).
  std::vector<NodeSet> Compute() const {
    size_t nq = pattern_.size();
    std::vector<NodeSet> sub(nq);
    for (size_t q = 0; q < nq; ++q) {
      if (tags_[q] == xml::kInvalidTag) return {};  // tag absent => no matches
    }
    // Bottom-up: reverse preorder visits children before parents.
    for (int q = static_cast<int>(nq) - 1; q >= 0; --q) {
      const PatternNode& pn = pattern_.node(q);
      sub[q].assign(doc_.NodeCount(), 1);
      // Restrict to nodes of the right tag implicitly: we only ever read
      // sub[q][d] for d of tag q; but child marking below needs explicit
      // intersection, so build it as: marked-for-every-child AND tag match.
      for (int c : pn.children) {
        NodeSet marked(doc_.NodeCount(), 0);
        Axis axis = pattern_.node(c).incoming;
        for (NodeId d : doc_.NodesOfTag(tags_[c])) {
          if (!sub[c][d]) continue;
          if (axis == Axis::kChild) {
            NodeId p = doc_.Parent(d);
            if (p != kInvalidNode && doc_.NodeTag(p) == tags_[q]) marked[p] = 1;
          } else {
            for (NodeId p = doc_.Parent(d); p != kInvalidNode;
                 p = doc_.Parent(p)) {
              if (doc_.NodeTag(p) == tags_[q]) {
                if (marked[p]) break;  // ancestors above already marked
                marked[p] = 1;
              }
            }
          }
        }
        for (NodeId d : doc_.NodesOfTag(tags_[q])) {
          sub[q][d] = sub[q][d] && marked[d];
        }
      }
    }
    // Top-down: keep only nodes whose ancestor chain matches up to the root.
    std::vector<NodeSet> top(nq);
    top[0].assign(doc_.NodeCount(), 0);
    for (NodeId d : doc_.NodesOfTag(tags_[0])) {
      if (!sub[0][d]) continue;
      if (pattern_.node(0).incoming == Axis::kChild && d != doc_.Root()) {
        continue;  // absolute '/' root step must match the document root
      }
      top[0][d] = 1;
    }
    for (size_t q = 1; q < nq; ++q) {
      const PatternNode& pn = pattern_.node(static_cast<int>(q));
      int p = pn.parent;
      top[q].assign(doc_.NodeCount(), 0);
      for (NodeId d : doc_.NodesOfTag(tags_[q])) {
        if (!sub[q][d]) continue;
        if (pn.incoming == Axis::kChild) {
          NodeId par = doc_.Parent(d);
          if (par != kInvalidNode && doc_.NodeTag(par) == tags_[p] &&
              top[p][par]) {
            top[q][d] = 1;
          }
        } else {
          for (NodeId a = doc_.Parent(d); a != kInvalidNode;
               a = doc_.Parent(a)) {
            if (doc_.NodeTag(a) == tags_[p] && top[p][a]) {
              top[q][d] = 1;
              break;
            }
          }
        }
      }
    }
    return top;
  }

 private:
  const Document& doc_;
  const TreePattern& pattern_;
  const std::vector<TagId>& tags_;
};

/// Output-sensitive enumerator over the precomputed solution sets: every
/// candidate explored extends to at least one full match, so total work is
/// proportional to the number of matches emitted.
class Enumerator {
 public:
  Enumerator(const Document& doc, const TreePattern& pattern,
             const std::vector<TagId>& tags, const std::vector<NodeSet>& top,
             MatchSink* sink)
      : doc_(doc), pattern_(pattern), tags_(tags), top_(top), sink_(sink) {
    // Solution lists per pattern node, document order.
    lists_.resize(pattern_.size());
    for (size_t q = 0; q < pattern_.size(); ++q) {
      for (NodeId d : doc_.NodesOfTag(tags_[q])) {
        if (top_[q][d]) lists_[q].push_back(d);
      }
    }
    match_.assign(pattern_.size(), kInvalidNode);
  }

  const std::vector<std::vector<NodeId>>& lists() const { return lists_; }

  void Run() {
    for (NodeId d : lists_[0]) {
      match_[0] = d;
      Recurse(1);
    }
  }

 private:
  void Recurse(size_t q) {
    if (q == pattern_.size()) {
      sink_->OnMatch(match_);
      return;
    }
    const PatternNode& pn = pattern_.node(static_cast<int>(q));
    NodeId parent_match = match_[static_cast<size_t>(pn.parent)];
    const xml::Label& pl = doc_.NodeLabel(parent_match);
    const std::vector<NodeId>& list = lists_[q];
    // Nodes strictly inside (pl.start, pl.end) are exactly the descendants.
    auto begin = std::lower_bound(
        list.begin(), list.end(), pl.start, [&](NodeId n, uint32_t s) {
          return doc_.NodeLabel(n).start < s;
        });
    for (auto it = begin; it != list.end(); ++it) {
      const xml::Label& dl = doc_.NodeLabel(*it);
      if (dl.start > pl.end) break;
      if (pn.incoming == Axis::kChild && dl.level != pl.level + 1) continue;
      match_[q] = *it;
      Recurse(q + 1);
    }
  }

  const Document& doc_;
  const TreePattern& pattern_;
  const std::vector<TagId>& tags_;
  const std::vector<NodeSet>& top_;
  MatchSink* sink_;
  std::vector<std::vector<NodeId>> lists_;
  Match match_;
};

}  // namespace

NaiveEvaluator::NaiveEvaluator(const Document& doc, const TreePattern& pattern)
    : doc_(doc), pattern_(pattern) {
  VJ_CHECK(!pattern.empty());
  tags_.reserve(pattern.size());
  for (size_t q = 0; q < pattern.size(); ++q) {
    tags_.push_back(doc.FindTag(pattern.node(static_cast<int>(q)).tag));
  }
}

void NaiveEvaluator::Evaluate(MatchSink* sink) const {
  SolutionComputer computer(doc_, pattern_, tags_);
  std::vector<NodeSet> top = computer.Compute();
  if (top.empty()) return;
  Enumerator enumerator(doc_, pattern_, tags_, top, sink);
  enumerator.Run();
}

std::vector<Match> NaiveEvaluator::Collect() const {
  CollectingSink sink;
  Evaluate(&sink);
  return sink.matches();
}

uint64_t NaiveEvaluator::Count() const {
  CountingSink sink;
  Evaluate(&sink);
  return sink.count();
}

std::vector<std::vector<NodeId>> NaiveEvaluator::SolutionNodes() const {
  SolutionComputer computer(doc_, pattern_, tags_);
  std::vector<NodeSet> top = computer.Compute();
  std::vector<std::vector<NodeId>> lists(pattern_.size());
  if (top.empty()) return lists;
  for (size_t q = 0; q < pattern_.size(); ++q) {
    for (NodeId d : doc_.NodesOfTag(tags_[q])) {
      if (top[q][d]) lists[q].push_back(d);
    }
  }
  return lists;
}

void SortMatches(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end());
}

}  // namespace viewjoin::tpq
