#include "plan/algorithm.h"

namespace viewjoin::plan {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTwigStack:
      return "TS";
    case Algorithm::kViewJoin:
      return "VJ";
    case Algorithm::kInterJoin:
      return "IJ";
    case Algorithm::kAuto:
      return "auto";
  }
  return "?";
}

std::optional<Algorithm> ParseAlgorithm(std::string_view name) {
  if (name == "TS") return Algorithm::kTwigStack;
  if (name == "VJ") return Algorithm::kViewJoin;
  if (name == "IJ") return Algorithm::kInterJoin;
  if (name == "auto") return Algorithm::kAuto;
  return std::nullopt;
}

}  // namespace viewjoin::plan
