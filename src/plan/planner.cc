#include "plan/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_set>

#include "algo/query_binding.h"
#include "core/segmented_query.h"
#include "storage/pager.h"
#include "storage/stored_list.h"
#include "tpq/subpattern.h"
#include "view/cardinality.h"
#include "view/cost_model.h"

namespace viewjoin::plan {

using storage::MaterializedView;
using storage::Scheme;
using tpq::TreePattern;

namespace {

// ---- Cost constants (entry units) ------------------------------------------
//
// Calibrated against BENCH_plan.json on the Fig. 5 path/twig workloads: the
// absolute values are arbitrary, only the ratios matter for the argmin.

/// Per-entry scan weight of each scheme: wider records cost more pages for
/// the same |L_q| (paper Table IV — LE stores all pointers, LE_p only child
/// + far pointers, E none). Scanning a kept list touches every entry no
/// matter the scheme, so pointers only ever add width here; their payoff is
/// the removed-node terms below.
double WidthFactor(Scheme scheme) {
  switch (scheme) {
    case Scheme::kElement:
      return 1.0;
    case Scheme::kTuple:
      return 1.0;
    case Scheme::kLinkedElement:
      return 1.35;
    case Scheme::kLinkedElementPartial:
      return 1.2;
  }
  return 1.0;
}

bool HasPointers(Scheme scheme) {
  return scheme == Scheme::kLinkedElement ||
         scheme == Scheme::kLinkedElementPartial;
}

/// Measured scan-width ratio of one stored list against the 12-byte E
/// record: pages it actually occupies × page size ÷ entry count. Unlike the
/// scheme constants this sees the on-disk format — a delta-compressed LE
/// list can scan *cheaper* per entry than an uncompressed E list — and the
/// one-page floor correctly prices tiny lists as one page read. Falls back
/// to the scheme constant for empty or memory-backed lists.
double MeasuredWidthFactor(const MaterializedView* view, int vn,
                           Scheme scheme) {
  const storage::StoredList& list = view->list(vn);
  if (list.count == 0 || list.PageSpan() == 0) return WidthFactor(scheme);
  double per_entry = static_cast<double>(list.PageSpan()) *
                     storage::Pager::kPageSize /
                     static_cast<double>(list.count);
  return std::max(0.25, per_entry / 12.0);
}

/// Residency surcharge of one stored list: a list whose first page is not
/// cached scans cold — every block landing is a synchronous page read —
/// while a resident list is mostly a memory walk. Probing only the first
/// page is deliberate: sequential scans either find the whole list warm or
/// fault it in from the front, so the head page is a faithful proxy.
/// Background read-ahead overlaps the cold reads with decode/join work and
/// shrinks (without erasing) the penalty.
double ColdFactor(storage::BufferPool* pool, const MaterializedView* view,
                  int vn, size_t readahead_pages) {
  constexpr double kColdScan = 1.4;       // synchronous read per block landing
  constexpr double kColdReadAhead = 1.1;  // reads overlapped by the IO thread
  const storage::StoredList& list = view->list(vn);
  if (pool == nullptr || list.count == 0 || list.PageSpan() == 0) return 1.0;
  if (pool->Contains(list.first_page)) return 1.0;
  return readahead_pages > 0 ? kColdReadAhead : kColdScan;
}

/// CPU weight of one inter-view structural comparison, per entry of the
/// SMALLER edge side: the interleaving check advances the sparser list and
/// probes the denser one, so its cost tracks min(|L_parent|, |L_child|).
/// Fitted on the one-edge NASA paths, where VJ's measured overhead over TS
/// is 9% (N1: min side 13% of volume), 26% (N2: 40%) and 20% (N3: 19%).
constexpr double kInterViewEdgeCpu = 0.65;
/// Far-pointer skipping on a kept list only pays when the entries that
/// survive the full query's constraints are rare — the effective scan is
/// min(len, est_qualifying·kSkipCost + anchors·kSkipFanout), where
/// est_qualifying is the cardinality estimate of the node under the whole
/// query (each retained entry is reached by a pointer chase, hence the
/// kSkipCost weight) and the second term charges the jump overhead per
/// anchor region. Raw anchor count alone is the wrong gate: a one-entry
/// //site anchor spans the whole document, so nothing under it is skippable
/// even though the anchor is tiny (XMark Q6), and a 2× reduction (XMark Q1)
/// is eaten by the chase overhead — only order-of-magnitude skew like N8's
/// 236 description anchors over a 107k-entry //para list wins outright.
/// Block-mode cursors gallop over fence keys and binary-search inside one
/// decoded page per landing, so a pointer-directed skip costs O(log) probes
/// instead of the scalar path's per-entry stepping: both the chase weight
/// and the per-anchor jump overhead shrink, and skipping starts paying at
/// milder anchor skew.
double SkipCost() {
  return storage::DefaultCursorMode() == storage::CursorMode::kBlock ? 1.6
                                                                     : 2.5;
}
double SkipFanout() {
  return storage::DefaultCursorMode() == storage::CursorMode::kBlock ? 4.0
                                                                     : 8.0;
}
/// Per-anchor-entry weight of recovering a removed trunk node through child
/// pointers in the output pass: every surviving segment match chases and
/// enumerates, which costs well more than scanning the dropped list would
/// have unless that list dwarfs its anchor.
constexpr double kExtensionPointer = 2.5;
/// Per-anchor-entry weight of verifying a removed branch predicate through
/// pointers: an existence probe with early exit, much cheaper than trunk
/// enumeration.
constexpr double kBranchVerify = 0.5;
/// Per-tuple weight of InterJoin's binary-join cascade growth per extra view.
constexpr double kInterJoinGrowth = 0.5;

// ---- Candidate bookkeeping -------------------------------------------------

/// One distinct view pattern usable for the query, with every scheme the
/// catalog has it materialized in.
struct Candidate {
  const MaterializedView* representative = nullptr;  // caller's instance
  tpq::PatternMapping mapping;                       // view node -> query node
  std::vector<std::pair<Scheme, const MaterializedView*>> schemes;
  double paper_cost = 0;  // c(v,Q), λ=1 — the greedy's denominator

  const MaterializedView* WithScheme(Scheme want) const {
    for (const auto& [scheme, view] : schemes) {
      if (scheme == want) return view;
    }
    return nullptr;
  }
};

std::string DescribeViews(
    const std::vector<const MaterializedView*>& views) {
  std::ostringstream out;
  out << "views:";
  for (const MaterializedView* v : views) {
    out << " " << v->pattern().ToString() << " ("
        << storage::SchemeName(v->scheme()) << ")";
  }
  if (views.empty()) out << " (none)";
  return out.str();
}

/// Fills the fixed step pipeline for a resolved plan. Eval/extension details
/// use the segmented query when the views bind (best effort — a failing bind
/// keeps its error for Operator::Open, the plan just stays less descriptive).
void BuildSteps(const PlannerInput& in, PhysicalPlan* plan) {
  plan->steps.clear();
  PlanStep resolve;
  resolve.kind = StepKind::kResolveCover;
  resolve.detail = DescribeViews(plan->views);
  plan->steps.push_back(std::move(resolve));

  PlanStep eval;
  eval.kind = StepKind::kEvalSegments;
  PlanStep extend;
  extend.kind = StepKind::kExtendOutput;
  extend.detail = "match enumeration";
  std::ostringstream detail;
  detail << AlgorithmName(plan->algorithm);
  if (plan->algorithm == Algorithm::kViewJoin && in.doc != nullptr) {
    std::optional<algo::QueryBinding> binding =
        algo::QueryBinding::Bind(*in.doc, *in.query, plan->views);
    if (binding.has_value()) {
      core::SegmentedQuery sq = core::BuildSegmentedQuery(*binding);
      detail << " over Q' " << sq.ToString(*in.query) << " ("
             << sq.inter_view_edges << " inter-view edges)";
      std::ostringstream ext;
      ext << sq.removed.size() << " removed node"
          << (sq.removed.size() == 1 ? "" : "s") << " + enumeration";
      extend.detail = ext.str();
    }
  } else if (plan->algorithm == Algorithm::kInterJoin) {
    detail << " binary-join cascade over " << plan->views.size()
           << " tuple list" << (plan->views.size() == 1 ? "" : "s");
    extend.detail = "interleaving verification + enumeration";
  } else {
    detail << " over " << plan->views.size() << " view"
           << (plan->views.size() == 1 ? "" : "s");
  }
  eval.detail = detail.str();
  plan->steps.push_back(std::move(eval));
  plan->steps.push_back(std::move(extend));

  if (plan->mode == algo::OutputMode::kDisk) {
    PlanStep spill;
    spill.kind = StepKind::kSpill;
    spill.detail = "disk-mode intermediate solutions";
    plan->steps.push_back(std::move(spill));
  }

  PlanStep verify;
  verify.kind = StepKind::kVerifyFallback;
  verify.detail = "quarantine + rebuild on fault; base TwigStack last";
  plan->steps.push_back(std::move(verify));
}

/// Greedy covering-subset selection over the candidates (paper Section V's
/// benefit rule: newly covered query nodes per unit cost), keeping the chosen
/// set type-disjoint. Returns indices into `candidates`, empty on failure.
std::vector<size_t> GreedyCover(const TreePattern& query,
                                const std::vector<Candidate>& candidates) {
  size_t nq = query.size();
  std::vector<uint8_t> covered(nq, 0);
  std::unordered_set<std::string> used_tags;
  std::vector<size_t> chosen;
  size_t covered_count = 0;
  while (covered_count < nq) {
    double best_benefit = 0;
    size_t best = candidates.size();
    size_t best_new = 0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      const Candidate& cand = candidates[c];
      bool overlaps = false;
      for (int vn = 0; vn < static_cast<int>(cand.mapping.size()); ++vn) {
        if (used_tags.count(
                cand.representative->pattern().node(vn).tag) != 0) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) continue;
      size_t fresh = 0;
      for (int q : cand.mapping) {
        if (covered[static_cast<size_t>(q)] == 0) ++fresh;
      }
      if (fresh == 0) continue;
      double cost = cand.paper_cost > 0 ? cand.paper_cost : 1.0;
      double benefit = static_cast<double>(fresh) / cost;
      if (best == candidates.size() || benefit > best_benefit) {
        best_benefit = benefit;
        best = c;
        best_new = fresh;
      }
    }
    if (best == candidates.size()) return {};  // stuck: cannot cover
    chosen.push_back(best);
    covered_count += best_new;
    const Candidate& cand = candidates[best];
    for (int q : cand.mapping) covered[static_cast<size_t>(q)] = 1;
    for (int vn = 0; vn < static_cast<int>(cand.mapping.size()); ++vn) {
      used_tags.insert(cand.representative->pattern().node(vn).tag);
    }
  }
  return chosen;
}

/// Cost workspace for one chosen covering set: which view serves each query
/// node, the inter-view edge counts e_q, and the kept/removed partition of
/// the view-segmented query.
struct CoverShape {
  std::vector<int> view_of;     // query node -> index into chosen set
  std::vector<double> lengths;  // |L_q| per query node
  std::vector<int> eq;          // inter-view edges incident to q
  std::vector<uint8_t> kept;    // survives into Q'
  std::vector<int> children;    // query children per node (branch detection)
};

CoverShape ShapeCover(const TreePattern& query,
                      const std::vector<Candidate>& candidates,
                      const std::vector<size_t>& chosen) {
  size_t nq = query.size();
  CoverShape shape;
  shape.view_of.assign(nq, -1);
  shape.lengths.assign(nq, 0);
  shape.eq.assign(nq, 0);
  shape.kept.assign(nq, 0);
  for (size_t slot = 0; slot < chosen.size(); ++slot) {
    const Candidate& cand = candidates[chosen[slot]];
    for (int vn = 0; vn < static_cast<int>(cand.mapping.size()); ++vn) {
      int q = cand.mapping[static_cast<size_t>(vn)];
      shape.view_of[static_cast<size_t>(q)] = static_cast<int>(slot);
      shape.lengths[static_cast<size_t>(q)] =
          cand.representative->ListLength(vn);
    }
  }
  shape.children.assign(nq, 0);
  for (size_t q = 1; q < nq; ++q) {
    int p = query.node(static_cast<int>(q)).parent;
    ++shape.children[static_cast<size_t>(p)];
    if (shape.view_of[q] != shape.view_of[static_cast<size_t>(p)]) {
      ++shape.eq[q];
      ++shape.eq[static_cast<size_t>(p)];
    }
  }
  for (size_t q = 0; q < nq; ++q) {
    shape.kept[q] = (q == 0 || shape.eq[q] > 0) ? 1 : 0;
  }
  return shape;
}

}  // namespace

uint64_t Planner::EnvFingerprint(
    Algorithm algorithm, algo::OutputMode mode,
    const std::vector<const MaterializedView*>& views, bool disk_doc_mode,
    size_t readahead_pages) {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  auto mix = [&h](uint64_t value) {
    h ^= value + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(algorithm) + 1);
  mix(static_cast<uint64_t>(mode) + 1);
  // Cursor mode changes the skip-cost calibration below; a cached plan from
  // the other mode would carry the wrong algorithm choice. Same for the
  // out-of-core knobs: doc mode and read-ahead depth shift the cold-scan
  // pricing.
  mix(static_cast<uint64_t>(storage::DefaultCursorMode()) + 1);
  mix(disk_doc_mode ? 2 : 1);
  mix(static_cast<uint64_t>(readahead_pages) + 1);
  for (const MaterializedView* v : views) {
    mix(reinterpret_cast<uintptr_t>(v));
  }
  return h;
}

std::shared_ptr<const PhysicalPlan> Planner::Plan(const PlannerInput& in,
                                                  bool* from_cache) const {
  if (from_cache != nullptr) *from_cache = false;
  PlanCache::Key key;
  key.query_fingerprint = in.query->Fingerprint();
  key.env_fingerprint = EnvFingerprint(in.algorithm, in.mode, in.views,
                                       in.disk_doc_mode, in.readahead_pages);
  key.catalog_epoch = in.catalog != nullptr ? in.catalog->epoch() : 0;
  if (cache_ != nullptr) {
    if (std::shared_ptr<const PhysicalPlan> hit = cache_->Lookup(key)) {
      if (from_cache != nullptr) *from_cache = true;
      return hit;
    }
  }

  auto plan = std::make_shared<PhysicalPlan>();
  plan->mode = in.mode;
  plan->query_fingerprint = key.query_fingerprint;
  plan->catalog_epoch = key.catalog_epoch;

  // Quarantine redirect: stale caller pointers keep working after a view was
  // rebuilt in an earlier call.
  std::vector<const MaterializedView*> active = in.views;
  if (in.catalog != nullptr) {
    for (const MaterializedView*& v : active) {
      if (const MaterializedView* r = in.catalog->ReplacementFor(v)) v = r;
    }
  }

  if (in.algorithm != Algorithm::kAuto) {
    // Forced algorithm: pass the views through untouched so bind errors (and
    // their exact messages) surface at Operator::Open as they always did.
    plan->algorithm = in.algorithm;
    plan->views = std::move(active);
    BuildSteps(in, plan.get());
    if (cache_ != nullptr) cache_->Insert(key, plan);
    return plan;
  }

  // ---- kAuto: candidate pool = caller views + catalog scheme twins ---------
  std::vector<Candidate> candidates;
  {
    std::unordered_set<std::string> seen_patterns;
    for (const MaterializedView* v : active) {
      std::string pattern_string = v->pattern().ToString();
      if (!seen_patterns.insert(pattern_string).second) continue;
      std::optional<tpq::PatternMapping> mapping =
          tpq::SubpatternMapping(v->pattern(), *in.query);
      if (!mapping.has_value()) continue;
      Candidate cand;
      cand.representative = v;
      cand.mapping = *mapping;
      cand.schemes.emplace_back(v->scheme(), v);
      if (in.catalog != nullptr) {
        for (Scheme s : {Scheme::kElement, Scheme::kTuple,
                         Scheme::kLinkedElement,
                         Scheme::kLinkedElementPartial}) {
          if (s == v->scheme()) continue;
          if (const MaterializedView* twin =
                  in.catalog->FindView(pattern_string, s)) {
            cand.schemes.emplace_back(s, twin);
          }
        }
      }
      std::vector<uint32_t> lengths(v->pattern().size());
      for (size_t i = 0; i < lengths.size(); ++i) {
        lengths[i] = v->ListLength(static_cast<int>(i));
      }
      cand.paper_cost =
          view::ViewCost(*in.query, v->pattern(), lengths, /*lambda=*/1.0);
      candidates.push_back(std::move(cand));
    }
  }

  std::vector<size_t> chosen = GreedyCover(*in.query, candidates);
  if (chosen.empty()) {
    // No covering subset: pass through and let the binder explain why.
    plan->algorithm = Algorithm::kViewJoin;
    plan->views = std::move(active);
    BuildSteps(in, plan.get());
    if (cache_ != nullptr) cache_->Insert(key, plan);
    return plan;
  }

  CoverShape shape = ShapeCover(*in.query, candidates, chosen);

  // Estimated |L_q| under the FULL query's constraints — how many entries of
  // each kept list actually fall inside qualifying regions, the quantity
  // far-pointer skipping can shrink a scan to.
  std::vector<double> est_qualifying;
  if (in.statistics != nullptr && in.doc != nullptr) {
    est_qualifying =
        view::EstimateListLengths(*in.statistics, *in.doc, *in.query);
  }

  // ---- Cost the alternatives, choosing each view's scheme per algorithm ----

  // Inter-view condition checks don't depend on scheme choice: charge each
  // edge once, on its smaller side.
  double edge_cost = 0;
  for (size_t q = 1; q < in.query->size(); ++q) {
    int p = in.query->node(static_cast<int>(q)).parent;
    if (shape.view_of[q] != shape.view_of[static_cast<size_t>(p)]) {
      edge_cost += kInterViewEdgeCpu *
                   std::min(shape.lengths[q],
                            shape.lengths[static_cast<size_t>(p)]);
    }
  }
  // Smallest kept list per chosen view (segment anchor), and for each view
  // the smallest anchor among the OTHER views — the partner a kept list's
  // far-pointer skipping is gated on.
  std::vector<double> kept_min(chosen.size(),
                               std::numeric_limits<double>::infinity());
  for (size_t q = 0; q < in.query->size(); ++q) {
    if (shape.kept[q] != 0 && shape.view_of[q] >= 0) {
      size_t slot = static_cast<size_t>(shape.view_of[q]);
      kept_min[slot] = std::min(kept_min[slot], shape.lengths[q]);
    }
  }

  // TwigStack scans every list fully; the cheapest scheme is the narrowest.
  double cost_ts = 0;
  std::vector<const MaterializedView*> ts_views;
  // ViewJoin scans kept lists (far pointers may shrink the effective scan
  // under extreme anchor skew), pays the inter-view condition checks, and
  // recovers removed nodes in the output pass. Without pointers nothing can
  // be removed — the binder keeps the whole view in Q' — so the E variant
  // prices every node as kept.
  double cost_vj = edge_cost;
  std::vector<const MaterializedView*> vj_views;
  for (size_t slot = 0; slot < chosen.size(); ++slot) {
    const Candidate& cand = candidates[chosen[slot]];
    double best_ts = std::numeric_limits<double>::infinity();
    double best_vj = std::numeric_limits<double>::infinity();
    const MaterializedView* best_ts_view = nullptr;
    const MaterializedView* best_vj_view = nullptr;
    double anchor = std::isinf(kept_min[slot]) ? 0 : kept_min[slot];
    double partner = std::numeric_limits<double>::infinity();
    for (size_t other = 0; other < chosen.size(); ++other) {
      if (other != slot) partner = std::min(partner, kept_min[other]);
    }
    for (const auto& [scheme, view] : cand.schemes) {
      if (scheme == Scheme::kTuple) continue;  // element family only
      double ts = 0;
      double vj = 0;
      for (int vn = 0; vn < static_cast<int>(cand.mapping.size()); ++vn) {
        size_t q = static_cast<size_t>(cand.mapping[static_cast<size_t>(vn)]);
        double len = shape.lengths[q];
        double width = MeasuredWidthFactor(view, vn, scheme) *
                       ColdFactor(in.catalog != nullptr ? in.catalog->pool()
                                                        : nullptr,
                                  view, vn, in.readahead_pages);
        ts += len * width;
        if (shape.kept[q] == 0 && HasPointers(scheme)) {
          // Removed from Q': branch predicates verify cheaply with early
          // exit, trunk nodes enumerate into every output tuple.
          int parent = in.query->node(static_cast<int>(q)).parent;
          bool branch =
              parent >= 0 && shape.children[static_cast<size_t>(parent)] > 1;
          vj += anchor * (branch ? kBranchVerify : kExtensionPointer);
        } else {
          double effective = len;
          if (HasPointers(scheme) && shape.eq[q] > 0 &&
              !std::isinf(partner) && q < est_qualifying.size()) {
            effective = std::min(
                len, est_qualifying[q] * SkipCost() + partner * SkipFanout());
          }
          vj += effective * width;
        }
      }
      if (ts < best_ts) {
        best_ts = ts;
        best_ts_view = view;
      }
      if (vj < best_vj) {
        best_vj = vj;
        best_vj_view = view;
      }
    }
    if (best_ts_view == nullptr) {
      // Tuple-only candidate: TS/VJ cannot use it; poison those alternatives.
      cost_ts = std::numeric_limits<double>::infinity();
      cost_vj = std::numeric_limits<double>::infinity();
      break;
    }
    cost_ts += best_ts;
    cost_vj += best_vj;
    ts_views.push_back(best_ts_view);
    vj_views.push_back(best_vj_view);
  }

  // InterJoin: path query over tuple-scheme path views only.
  double cost_ij = std::numeric_limits<double>::infinity();
  std::vector<const MaterializedView*> ij_views;
  if (in.query->IsPath()) {
    double tuples = 0;
    bool feasible = true;
    for (size_t c : chosen) {
      const Candidate& cand = candidates[c];
      const MaterializedView* tuple = cand.WithScheme(Scheme::kTuple);
      if (tuple == nullptr || !tuple->pattern().IsPath()) {
        feasible = false;
        break;
      }
      ij_views.push_back(tuple);
      tuples += static_cast<double>(tuple->MatchCount()) *
                static_cast<double>(tuple->pattern().size());
    }
    if (feasible && !ij_views.empty()) {
      cost_ij = tuples * (1.0 + kInterJoinGrowth *
                                    static_cast<double>(ij_views.size() - 1));
    } else {
      ij_views.clear();
    }
  }

  // Cheapest alternative wins; ties fall to TwigStack, which measures
  // fastest on tied workloads (its getNext loop has no condition-check or
  // extension machinery to set up).
  plan->algorithm = Algorithm::kTwigStack;
  plan->views = ts_views;
  plan->estimated_cost = cost_ts;
  if (cost_vj < plan->estimated_cost) {
    plan->algorithm = Algorithm::kViewJoin;
    plan->views = vj_views;
    plan->estimated_cost = cost_vj;
  }
  if (cost_ij < plan->estimated_cost) {
    plan->algorithm = Algorithm::kInterJoin;
    plan->views = ij_views;
    plan->estimated_cost = cost_ij;
  }
  if (std::isinf(plan->estimated_cost)) {
    plan->algorithm = Algorithm::kViewJoin;  // nothing costable: pass through
    plan->views = std::move(active);
    plan->estimated_cost = 0;
  }

  BuildSteps(in, plan.get());
  if (!plan->steps.empty()) {
    auto cost_str = [](double c) -> std::string {
      if (std::isinf(c)) return "n/a";
      return std::to_string(static_cast<long long>(std::llround(c)));
    };
    std::ostringstream costs;
    costs << plan->steps[0].detail << "  [auto: VJ=" << cost_str(cost_vj)
          << " TS=" << cost_str(cost_ts) << " IJ=" << cost_str(cost_ij)
          << "]";
    plan->steps[0].detail = costs.str();
  }
  if (cache_ != nullptr) cache_->Insert(key, plan);
  return plan;
}

}  // namespace viewjoin::plan
