#include "plan/physical_plan.h"

#include <cstdio>
#include <sstream>

namespace viewjoin::plan {

const char* StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kResolveCover:
      return "resolve-cover";
    case StepKind::kEvalSegments:
      return "eval-segments";
    case StepKind::kExtendOutput:
      return "extend-output";
    case StepKind::kSpill:
      return "spill";
    case StepKind::kVerifyFallback:
      return "verify-fallback";
  }
  return "?";
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream out;
  out << "Plan [" << AlgorithmName(algorithm) << ", "
      << (mode == algo::OutputMode::kMemory ? "memory" : "disk") << "]";
  if (estimated_cost > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", estimated_cost);
    out << " cost=" << buf;
  }
  out << " views=" << views.size();
  if (from_cache) out << " (cached)";
  out << "\n";
  for (const PlanStep& step : steps) {
    out << "  -> " << StepKindName(step.kind);
    for (size_t pad = std::string(StepKindName(step.kind)).size(); pad < 16;
         ++pad) {
      out << ' ';
    }
    out << step.detail << "\n";
  }
  return out.str();
}

std::string ExplainResult::ToString() const {
  std::ostringstream out;
  out << text;
  if (!steps.empty()) {
    out << "  step              elapsed_ms  pages_read  entries     jumps\n";
    for (const PlanStep& step : steps) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-16s  %10.3f  %10llu  %10llu  %8llu\n",
                    StepKindName(step.kind), step.stats.elapsed_ms,
                    static_cast<unsigned long long>(step.stats.pages_read),
                    static_cast<unsigned long long>(
                        step.stats.entries_advanced),
                    static_cast<unsigned long long>(step.stats.pointer_jumps));
      out << line;
    }
  }
  return out.str();
}

}  // namespace viewjoin::plan
