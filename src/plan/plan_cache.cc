#include "plan/plan_cache.h"

#include <utility>

namespace viewjoin::plan {

uint64_t PlanCache::MapKey(const Key& key) {
  // The catalog epoch is intentionally left out of the map key: epochs live
  // in the entries, so a re-plan after invalidation overwrites the stale
  // entry in place instead of accumulating one entry per epoch.
  uint64_t h = key.query_fingerprint;
  h ^= key.env_fingerprint + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

std::shared_ptr<const PhysicalPlan> PlanCache::Lookup(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(MapKey(key));
  if (it == entries_.end() || it->second.catalog_epoch != key.catalog_epoch) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second.plan;
}

void PlanCache::Insert(const Key& key, std::shared_ptr<const PhysicalPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[MapKey(key)] = Entry{key.catalog_epoch, std::move(plan)};
}

uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace viewjoin::plan
