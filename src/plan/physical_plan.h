#ifndef VIEWJOIN_PLAN_PHYSICAL_PLAN_H_
#define VIEWJOIN_PLAN_PHYSICAL_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algo/holistic_stats.h"
#include "plan/algorithm.h"
#include "storage/materialized_view.h"

namespace viewjoin::plan {

/// Kind of one physical plan step. A plan is a short, fixed pipeline — the
/// interesting planning decisions (algorithm, scheme, view set) are encoded
/// in the step details, not in the plan shape.
enum class StepKind {
  kResolveCover,    // quarantine redirects + (kAuto) cover/scheme selection
  kEvalSegments,    // segment evaluation: the operator's getNext machinery
  kExtendOutput,    // extension walk + match enumeration (output pass)
  kSpill,           // disk-mode intermediate-solution spill traffic
  kVerifyFallback,  // fault verification, quarantine/rebuild, base fallback
};

const char* StepKindName(StepKind kind);

/// Runtime counters of one executed plan step. The engine guarantees that
/// over a finished RunResult the step columns sum exactly to the run totals:
/// Σ elapsed_ms = total_ms, Σ pages_read = io.pages_read, Σ entries_advanced
/// = stats.entries_scanned, Σ pointer_jumps = stats.pointer_jumps. Residual
/// work that cannot be attributed to a measured step (retry bookkeeping,
/// quarantine/rebuild, the base-document fallback) lands in kVerifyFallback.
struct StepStats {
  double elapsed_ms = 0;
  uint64_t pages_read = 0;
  uint64_t entries_advanced = 0;
  uint64_t pointer_jumps = 0;

  StepStats& operator+=(const StepStats& other) {
    elapsed_ms += other.elapsed_ms;
    pages_read += other.pages_read;
    entries_advanced += other.entries_advanced;
    pointer_jumps += other.pointer_jumps;
    return *this;
  }
};

/// One step of a physical plan: its kind, a human-readable detail line
/// (algorithm, views, schemes, estimated cost) and, after execution, its
/// measured stats.
struct PlanStep {
  StepKind kind = StepKind::kEvalSegments;
  std::string detail;
  StepStats stats;
};

/// The typed execution plan for one query: the resolved algorithm (never
/// kAuto), the covering views in use, the output mode, and the step pipeline.
/// Built by the Planner; interpreted by Engine::ExecuteInternal; rendered by
/// ToString() for EXPLAIN.
struct PhysicalPlan {
  Algorithm algorithm = Algorithm::kViewJoin;
  algo::OutputMode mode = algo::OutputMode::kMemory;
  /// Covering views after quarantine redirect (and, under kAuto, after
  /// cover/scheme selection). Owned by the catalog; valid for its lifetime.
  std::vector<const storage::MaterializedView*> views;
  std::vector<PlanStep> steps;
  /// Estimated cost (entry units) of the chosen alternative; 0 when the
  /// algorithm was forced and no costing ran.
  double estimated_cost = 0;
  /// Cache bookkeeping: the key this plan was stored under.
  uint64_t query_fingerprint = 0;
  uint64_t catalog_epoch = 0;
  bool from_cache = false;

  /// Renders the plan tree without stats, e.g.
  ///   Plan [VJ, memory] cost=412 views=2
  ///     -> resolve-cover    views: //a//b (LE), //c (LE)
  ///     -> eval-segments    VJ over Q' {a} {c}
  ///     -> extend-output    2 removed nodes via pointers
  ///     -> verify-fallback  quarantine+rebuild, base TwigStack if exhausted
  std::string ToString() const;
};

/// What the engine hands back for EXPLAIN: the resolved plan description plus
/// (when the query actually ran) the measured per-step stats. RunResult
/// carries one of these for every executed query.
struct ExplainResult {
  Algorithm algorithm = Algorithm::kViewJoin;
  bool from_cache = false;
  double estimated_cost = 0;
  /// Plan rendering (PhysicalPlan::ToString()).
  std::string text;
  /// Steps with measured stats (empty until the query has executed).
  std::vector<PlanStep> steps;

  /// Renders text plus a per-step stats table.
  std::string ToString() const;
};

}  // namespace viewjoin::plan

#endif  // VIEWJOIN_PLAN_PHYSICAL_PLAN_H_
