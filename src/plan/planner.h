#ifndef VIEWJOIN_PLAN_PLANNER_H_
#define VIEWJOIN_PLAN_PLANNER_H_

#include <memory>
#include <vector>

#include "algo/holistic_stats.h"
#include "plan/algorithm.h"
#include "plan/physical_plan.h"
#include "plan/plan_cache.h"
#include "storage/materialized_view.h"
#include "tpq/pattern.h"
#include "xml/document.h"
#include "xml/statistics.h"

namespace viewjoin::plan {

/// Everything the planner consults for one query.
struct PlannerInput {
  const xml::Document* doc = nullptr;
  const tpq::TreePattern* query = nullptr;
  /// Caller-supplied covering views (pre-redirect; the planner applies
  /// quarantine replacements itself).
  std::vector<const storage::MaterializedView*> views;
  /// Catalog for replacement lookups and (kAuto) scheme-twin discovery.
  storage::ViewCatalog* catalog = nullptr;
  /// Document statistics for cardinality estimation under kAuto (optional;
  /// without them the far-pointer skip discount never engages).
  const xml::DocumentStatistics* statistics = nullptr;
  Algorithm algorithm = Algorithm::kViewJoin;
  algo::OutputMode mode = algo::OutputMode::kMemory;
  /// Out-of-core environment: whether the base document serves from a paged
  /// store, and the buffer pools' background read-ahead depth. Both shape
  /// the cost calibration (cold scans price differently) and therefore the
  /// plan-cache environment fingerprint.
  bool disk_doc_mode = false;
  size_t readahead_pages = 0;
};

/// Cost-based query planner.
///
/// A forced algorithm passes through: the plan pins that algorithm on the
/// caller's views (after quarantine redirect) and no costing runs — bind
/// errors, if any, surface at Operator::Open() with the binder's message,
/// exactly as before the plan layer existed.
///
/// Algorithm::kAuto engages planning proper (satisfying the paper's central
/// experimental question — which algorithm × scheme combination wins — per
/// query instead of per benchmark):
///   1. candidate pool = the caller's views plus their catalog twins (same
///      pattern materialized in another scheme, via ViewCatalog::FindView);
///   2. a greedy covering subset is chosen by the paper's benefit rule
///      (newly covered query nodes per unit cost, exact |L_q| from the
///      materialized lists);
///   3. per covering view the cheapest available scheme is picked (the cost
///      contributions are per-view separable), independently for the TS and
///      VJ alternatives;
///   4. TS, VJ and (for path queries over tuple-scheme path views) IJ are
///      costed in entry units and the cheapest becomes the plan.
/// When no candidate subset covers the query the caller's original views
/// pass through unchanged (the binder reports the real error at Open).
///
/// Plans are memoized in the PlanCache keyed by (query fingerprint,
/// environment fingerprint, catalog manifest epoch); see plan_cache.h.
class Planner {
 public:
  /// `cache` may be null (planning always runs).
  explicit Planner(PlanCache* cache = nullptr) : cache_(cache) {}

  /// Builds (or recalls) the plan for `input`. Never fails: un-plannable
  /// inputs yield a pass-through plan whose errors surface at Open().
  /// `*from_cache` (optional) reports whether the plan came from the cache.
  std::shared_ptr<const PhysicalPlan> Plan(const PlannerInput& input,
                                           bool* from_cache = nullptr) const;

  /// Folds algorithm, mode, view identities, cursor mode and the out-of-core
  /// environment (doc mode, read-ahead depth) into the cache key's
  /// environment fingerprint.
  static uint64_t EnvFingerprint(
      Algorithm algorithm, algo::OutputMode mode,
      const std::vector<const storage::MaterializedView*>& views,
      bool disk_doc_mode = false, size_t readahead_pages = 0);

 private:
  PlanCache* cache_;
};

}  // namespace viewjoin::plan

#endif  // VIEWJOIN_PLAN_PLANNER_H_
