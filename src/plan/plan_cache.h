#ifndef VIEWJOIN_PLAN_PLAN_CACHE_H_
#define VIEWJOIN_PLAN_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "plan/physical_plan.h"

namespace viewjoin::plan {

/// Cache of planned queries, keyed by (query fingerprint, environment
/// fingerprint, catalog manifest epoch).
///
/// The environment fingerprint folds in everything besides the pattern that
/// shapes the plan: requested algorithm, output mode, and the identities of
/// the caller-supplied views — two queries with the same pattern but
/// different covering sets must not share a plan. The catalog epoch is the
/// invalidation lever: materializing, quarantining or replacing any view
/// advances it (and, for a persistent store, it resumes from the manifest
/// journal across restarts), so every cached plan referencing the old catalog state goes
/// stale at once without the cache enumerating dependencies. Stale entries
/// are overwritten lazily on the next insert with the same (fingerprint,
/// env) pair.
///
/// Thread-safe; ExecuteBatch workers share one cache. View pointers inside
/// cached plans stay valid because the catalog owns every view for its
/// lifetime (quarantined views included).
class PlanCache {
 public:
  struct Key {
    uint64_t query_fingerprint = 0;
    uint64_t env_fingerprint = 0;
    uint64_t catalog_epoch = 0;
  };

  /// Returns the cached plan for `key`, or nullptr. A hit's catalog epoch
  /// matches exactly — plans from older catalog states never resolve.
  std::shared_ptr<const PhysicalPlan> Lookup(const Key& key);

  /// Stores `plan` under `key`, replacing any entry for the same
  /// (fingerprint, env) pair — at most one catalog epoch is retained per
  /// logical query, so quarantine churn cannot grow the cache.
  void Insert(const Key& key, std::shared_ptr<const PhysicalPlan> plan);

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;
  void Clear();

 private:
  struct Entry {
    uint64_t catalog_epoch = 0;
    std::shared_ptr<const PhysicalPlan> plan;
  };

  static uint64_t MapKey(const Key& key);

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace viewjoin::plan

#endif  // VIEWJOIN_PLAN_PLAN_CACHE_H_
