#ifndef VIEWJOIN_PLAN_ALGORITHM_H_
#define VIEWJOIN_PLAN_ALGORITHM_H_

#include <optional>
#include <string_view>

namespace viewjoin::plan {

/// Evaluation algorithm (paper Table I's columns). Historically the caller
/// hard-wired one of the three concrete algorithms; kAuto hands the choice to
/// the cost-based Planner, which picks algorithm × scheme per query from the
/// catalog's statistics (the paper's central experimental question — which
/// combination wins — answered inside the engine instead of by the client).
enum class Algorithm {
  kTwigStack,  // TS — also PathStack on path queries
  kViewJoin,   // VJ — this paper
  kInterJoin,  // IJ — tuple-scheme path views only
  kAuto,       // cost-based planner chooses among the above
};

/// Human-readable name ("TS", "VJ", "IJ", "auto").
const char* AlgorithmName(Algorithm algorithm);

/// Inverse of AlgorithmName: parses "TS"/"VJ"/"IJ"/"auto" (case-sensitive,
/// matching the names the CLI and benches print). std::nullopt on anything
/// else — callers reject unknown spellings instead of silently defaulting.
std::optional<Algorithm> ParseAlgorithm(std::string_view name);

}  // namespace viewjoin::plan

#endif  // VIEWJOIN_PLAN_ALGORITHM_H_
