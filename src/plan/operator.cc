#include "plan/operator.h"

#include <optional>
#include <string>
#include <utility>

#include "algo/inter_join.h"
#include "algo/query_binding.h"
#include "algo/twig_stack.h"
#include "core/segmented_query.h"
#include "core/view_join.h"
#include "util/check.h"

namespace viewjoin::plan {
namespace {

/// Shared base: owns the config, the governance default, and the per-run
/// I/O accounting every concrete operator would otherwise duplicate.
/// Subclasses implement DoOpen/DoEvaluate only.
class OperatorBase : public Operator {
 public:
  explicit OperatorBase(Config config) : config_(std::move(config)) {}

  util::Status Open() final {
    std::string error;
    if (!DoOpen(&error)) {
      // The binder's message is the caller-facing error; wrap it without
      // rewriting so existing error-string contracts survive the refactor.
      return util::Status::InvalidArgument(error);
    }
    open_ = true;
    return util::Status::Ok();
  }

  void Evaluate(tpq::MatchSink* sink, algo::QueryContext* ctx) final {
    VJ_CHECK(open_) << name() << " operator evaluated before Open()";
    algo::QueryContext* gov = ctx != nullptr ? ctx : &ungoverned_;
    // Scope-count this thread's page traffic so the operator can report its
    // own I/O share even when the pool is shared with sibling queries. The
    // document store has its own pool, scoped separately and summed in.
    storage::BufferPool::StatsScope scope(config_.pool);
    storage::BufferPool::StatsScope doc_scope(
        config_.doc_store != nullptr ? config_.doc_store->pool() : nullptr);
    DoEvaluate(sink, gov);
    io_.pool_hits += scope.hits() + doc_scope.hits();
    io_.pool_misses += scope.misses() + doc_scope.misses();
    io_.pages_read += scope.misses() + doc_scope.misses();
  }

  void Close() override { open_ = false; }

 protected:
  /// Binds; returns false with *error set on caller mistakes.
  virtual bool DoOpen(std::string* error) = 0;
  virtual void DoEvaluate(tpq::MatchSink* sink, algo::QueryContext* gov) = 0;

  Config config_;

 private:
  bool open_ = false;
  algo::QueryContext ungoverned_;
};

class TwigStackOperator : public OperatorBase {
 public:
  using OperatorBase::OperatorBase;
  const char* name() const override { return "TS"; }

  bool DoOpen(std::string* error) override {
    binding_ = algo::QueryBinding::Bind(*config_.doc, *config_.query,
                                        config_.views, error);
    return binding_.has_value();
  }

  void DoEvaluate(tpq::MatchSink* sink, algo::QueryContext* gov) override {
    algo::TwigStack twig(&*binding_, config_.pool);
    twig.Evaluate(sink, config_.mode, config_.spill, gov);
    stats_ = twig.stats();
  }

  void Close() override {
    binding_.reset();
    OperatorBase::Close();
  }

 private:
  std::optional<algo::QueryBinding> binding_;
};

class ViewJoinOperator : public OperatorBase {
 public:
  using OperatorBase::OperatorBase;
  const char* name() const override { return "VJ"; }

  bool DoOpen(std::string* error) override {
    binding_ = algo::QueryBinding::Bind(*config_.doc, *config_.query,
                                        config_.views, error);
    if (!binding_.has_value()) return false;
    segmented_ = core::BuildSegmentedQuery(*binding_);
    return true;
  }

  void DoEvaluate(tpq::MatchSink* sink, algo::QueryContext* gov) override {
    core::ViewJoin join(&*binding_, &segmented_, config_.pool);
    join.Evaluate(sink, config_.mode, config_.spill, gov);
    stats_ = join.stats();
  }

  void Close() override {
    binding_.reset();
    OperatorBase::Close();
  }

 private:
  std::optional<algo::QueryBinding> binding_;
  core::SegmentedQuery segmented_;
};

class InterJoinOperator : public OperatorBase {
 public:
  using OperatorBase::OperatorBase;
  const char* name() const override { return "IJ"; }

  bool DoOpen(std::string* error) override {
    join_ = algo::InterJoin::Bind(*config_.doc, *config_.query, config_.views,
                                  config_.pool, error);
    return join_.has_value();
  }

  void DoEvaluate(tpq::MatchSink* sink, algo::QueryContext* gov) override {
    // InterJoin holds all relations in memory; mode/spill do not apply.
    join_->Evaluate(sink, gov);
    stats_ = join_->stats();
  }

  void Close() override {
    join_.reset();
    OperatorBase::Close();
  }

 private:
  std::optional<algo::InterJoin> join_;
};

class BaseFallbackOperator : public OperatorBase {
 public:
  using OperatorBase::OperatorBase;
  const char* name() const override { return "TS-base"; }

  bool DoOpen(std::string* error) override {
    // Disk doc-mode binds the document store's page lists; otherwise the
    // in-memory label vectors serve (and no stored page is ever touched).
    binding_ = config_.doc_store != nullptr
                   ? algo::QueryBinding::BindBase(
                         *config_.doc, *config_.doc_store, *config_.query,
                         error)
                   : algo::QueryBinding::BindBase(*config_.doc, *config_.query,
                                                  error);
    return binding_.has_value();
  }

  void DoEvaluate(tpq::MatchSink* sink, algo::QueryContext* gov) override {
    algo::TwigStack twig(&*binding_, config_.pool);
    // Memory mode with no spill: the fallback must not touch the (possibly
    // faulting) spill spool either.
    twig.Evaluate(sink, algo::OutputMode::kMemory, nullptr, gov);
    stats_ = twig.stats();
  }

  void Close() override {
    binding_.reset();
    OperatorBase::Close();
  }

 private:
  std::optional<algo::QueryBinding> binding_;
};

}  // namespace

std::unique_ptr<Operator> MakeOperator(Algorithm algorithm,
                                       const Operator::Config& config) {
  switch (algorithm) {
    case Algorithm::kTwigStack:
      return std::make_unique<TwigStackOperator>(config);
    case Algorithm::kViewJoin:
      return std::make_unique<ViewJoinOperator>(config);
    case Algorithm::kInterJoin:
      return std::make_unique<InterJoinOperator>(config);
    case Algorithm::kAuto:
      break;
  }
  VJ_CHECK(false) << "kAuto must be resolved by the planner before execution";
  return nullptr;
}

std::unique_ptr<Operator> MakeBaseFallbackOperator(
    const xml::Document& doc, const tpq::TreePattern& query,
    storage::BufferPool* pool, const storage::DocumentStore* doc_store) {
  Operator::Config config;
  config.doc = &doc;
  config.query = &query;
  config.pool = pool;
  config.doc_store = doc_store;
  return std::make_unique<BaseFallbackOperator>(config);
}

}  // namespace viewjoin::plan
