#ifndef VIEWJOIN_PLAN_OPERATOR_H_
#define VIEWJOIN_PLAN_OPERATOR_H_

#include <memory>
#include <vector>

#include "algo/holistic_stats.h"
#include "algo/query_context.h"
#include "plan/algorithm.h"
#include "storage/buffer_pool.h"
#include "storage/document_store.h"
#include "storage/io_stats.h"
#include "storage/materialized_view.h"
#include "storage/pager.h"
#include "tpq/pattern.h"
#include "util/status.h"
#include "xml/document.h"

namespace viewjoin::plan {

/// The uniform physical-operator interface every evaluation algorithm is
/// wrapped into. The engine's plan interpreter speaks only this vocabulary —
/// it holds no per-algorithm knowledge; MakeOperator is the single place the
/// Algorithm enum is dispatched on.
///
/// Lifecycle: Open() binds the query to its inputs (views or base document)
/// and is where caller mistakes (non-covering views, wrong scheme family)
/// surface as InvalidArgument, with the binder's original message preserved
/// verbatim. Evaluate() streams matches under the governance context; an
/// aborted run's partial output must be discarded by the caller. Close()
/// drops bound state; the operator may then be destroyed or re-Opened (the
/// engine builds a fresh operator per recovery attempt instead).
class Operator {
 public:
  /// Execution environment shared by every operator: the document, the query,
  /// the covering views (ignored by the base fallback), the page cache and
  /// the spill spool + output mode for disk-mode intermediates.
  struct Config {
    const xml::Document* doc = nullptr;
    const tpq::TreePattern* query = nullptr;
    std::vector<const storage::MaterializedView*> views;
    storage::BufferPool* pool = nullptr;
    algo::OutputMode mode = algo::OutputMode::kMemory;
    storage::Pager* spill = nullptr;
    /// Paged base document (disk doc-mode). When set, the base fallback
    /// scans the store's tag-list pages instead of in-memory label vectors,
    /// and the store pool's traffic is counted into the operator's io().
    const storage::DocumentStore* doc_store = nullptr;
  };

  virtual ~Operator() = default;

  /// Operator name for plans and logs ("TS", "VJ", "IJ", "TS-base").
  virtual const char* name() const = 0;

  /// Binds the query. InvalidArgument carries the binder's message.
  virtual util::Status Open() = 0;

  /// Runs the bound query, streaming every match to `sink` under `ctx`
  /// (never null — the engine passes an ungoverned context when the caller
  /// set no limits). Requires a successful Open().
  virtual void Evaluate(tpq::MatchSink* sink, algo::QueryContext* ctx) = 0;

  /// Releases bound state (idempotent; the destructor also closes).
  virtual void Close() = 0;

  /// Evaluation counters of the last Evaluate() run.
  const algo::HolisticStats& stats() const { return stats_; }
  /// Page traffic this operator caused (hits + misses observed by the
  /// calling thread during Evaluate()).
  const storage::IoStats& io() const { return io_; }

 protected:
  algo::HolisticStats stats_;
  storage::IoStats io_;
};

/// Builds the operator for a resolved algorithm (kAuto is a planner input,
/// never an operator — passing it dies). This is the engine's single
/// algorithm dispatch point.
std::unique_ptr<Operator> MakeOperator(Algorithm algorithm,
                                       const Operator::Config& config);

/// The last rung of the fault ladder: TwigStack over the base document's own
/// tag lists. In memory doc-mode (`doc_store` null) it touches no stored
/// page, so it cannot be harmed by view-store or spill faults; in disk
/// doc-mode it streams the document store's page lists through the store's
/// own pool, which stays isolated from view-store faults.
std::unique_ptr<Operator> MakeBaseFallbackOperator(
    const xml::Document& doc, const tpq::TreePattern& query,
    storage::BufferPool* pool,
    const storage::DocumentStore* doc_store = nullptr);

}  // namespace viewjoin::plan

#endif  // VIEWJOIN_PLAN_OPERATOR_H_
