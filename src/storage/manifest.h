#ifndef VIEWJOIN_STORAGE_MANIFEST_H_
#define VIEWJOIN_STORAGE_MANIFEST_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/stored_list.h"
#include "util/status.h"

namespace viewjoin::storage {

/// Record types of the manifest journal (see ManifestJournal below).
enum class ManifestRecordType : uint8_t {
  kBegin = 1,       // a (re-)materialization started: epoch, scheme, pattern
  kInstall = 2,     // a view's pages are durable and it is now visible
  kQuarantine = 3,  // an installed view was found corrupt and is unusable
  kReplace = 4,     // a quarantined view has a healthy replacement
  kDrop = 5,        // a view was removed from the catalog
  kUpdateBegin = 6,   // an update batch opened a multi-record transaction
  kUpdateCommit = 7,  // the update batch committed (its epoch bump is durable)
  kEpochMark = 8,     // epoch high-water mark; checkpoints write one so
                      // compaction never regresses the epoch counter
};

/// Everything an install record carries — the full metadata of one
/// materialized view, so the journal alone (plus the pager file it refers
/// to) reconstructs the catalog with no side files.
struct ManifestViewRecord {
  uint64_t epoch = 0;  // install epoch; doubles as the view's durable id
  uint8_t scheme = 0;  // storage::Scheme as stored on disk
  std::string pattern;
  uint64_t match_count = 0;
  uint64_t size_bytes = 0;
  uint64_t pointer_count = 0;
  /// Pager page count right after this view's pages were appended. The
  /// maximum over all install records is the durable prefix of the pager
  /// file; anything beyond it is an uncommitted crash artifact.
  uint32_t page_count_after = 0;
  std::vector<uint32_t> list_lengths;
  std::vector<StoredList> lists;
  StoredList tuple_list;
};

/// Outcome of replaying a manifest journal front to back.
struct ManifestReplayResult {
  /// Largest epoch any record carried; the catalog's epoch counter resumes
  /// above it so plan-cache keys stay monotone across restarts.
  uint64_t last_epoch = 0;
  /// Durable pager prefix (max page_count_after over installs).
  uint32_t durable_page_count = 0;
  /// A torn final record (crash mid-append) was skipped.
  bool tail_torn = false;
  /// File offset at which the torn tail starts (= file size when clean).
  long valid_bytes = 0;
  /// Install records in epoch order, dropped views already removed.
  std::vector<ManifestViewRecord> installed;
  /// Epochs of installed views currently quarantined.
  std::unordered_set<uint64_t> quarantined;
  /// old epoch -> replacement epoch.
  std::unordered_map<uint64_t, uint64_t> replaced;
  /// Begin records with no matching install: the (re-)materialization was
  /// cut down by a crash and rolled back; recovery re-queues these.
  std::vector<std::pair<std::string, uint8_t>> rolled_back;  // pattern, scheme
  /// Update transactions (kUpdateBegin) that never reached kUpdateCommit:
  /// their installs/replaces were undone wholesale and valid_bytes points at
  /// the kUpdateBegin record, so recovery truncates the half-applied batch
  /// and the catalog reopens at the pre-batch epoch.
  uint64_t rolled_back_update_batches = 0;
  /// Records whose leading epoch was *smaller* than an earlier record's.
  /// The journal is append-only with a monotone epoch allocator, so any
  /// regression means the epoch counter was reused after a faulty
  /// compaction; fsck reports this as corruption.
  uint64_t epoch_regressions = 0;
  /// The file held a pre-journal plain-text manifest ("VIEWJOINCAT"); the
  /// caller must parse it with the legacy loader and convert.
  bool legacy_text = false;
  /// Format version from the journal header (1 = fixed-format lists only,
  /// 2 = versioned StoredList encoding with list format + page directory).
  /// Catalogs upgrade v1 journals wholesale via Checkpoint after open.
  uint32_t header_version = 0;
};

/// Append-only, checksummed journal of view-lifecycle events — the
/// authoritative record of which views exist and which pager pages are
/// durable. One journal lives next to each persistent pager file as
/// "<pager-path>.manifest".
///
/// On-disk layout:
///
///   [ 16-byte header: magic "VJMANIFJ", u32 version (1 or 2), u32 CRC32 ]
///   [ record ]*
///
/// where each record is
///
///   u32 payload_length | u8 type | payload | u32 CRC32(type || payload)
///
/// all little-endian. Appends are fsynced, so a record's presence implies
/// everything it describes is durable (install records are only appended
/// *after* the view's pages were synced into the pager file — write-ahead
/// ordering, data before commit).
///
/// Failure semantics, chosen so a crash is always distinguishable from rot:
///   - a record whose bytes are incomplete at EOF is a *torn tail* (crash
///     mid-append): replay ignores it and reports tail_torn, recovery
///     truncates it away;
///   - a fully present record with a CRC mismatch is *corruption* (bit rot
///     or tampering) and fails the replay with kCorruption;
///   - a file beginning with the legacy text magic "VIEWJOINCAT" is flagged
///     legacy_text for the caller to convert.
///
/// Thread-safety: appends are serialized by an internal mutex; Replay and
/// Checkpoint are static and operate on paths.
class ManifestJournal {
 public:
  /// v1: fixed-format lists, 17-byte StoredList encoding. v2: adds a list
  /// format byte and the delta page directory / fence keys per list. Replay
  /// accepts both; writers always emit kFormatVersion.
  static constexpr uint32_t kFormatVersion = 2;
  /// Sanity cap on one record's payload (a view with thousands of lists is
  /// still far below this); a larger length prefix is treated as garbage.
  static constexpr uint32_t kMaxPayload = 1u << 24;

  /// The journal path for a pager file path.
  static std::string PathFor(const std::string& pager_path) {
    return pager_path + ".manifest";
  }

  /// Creates (truncating) a fresh journal with just the header.
  static util::StatusOr<std::unique_ptr<ManifestJournal>> Create(
      const std::string& path);

  /// Opens an existing, already-replayed journal for further appends.
  /// `valid_bytes` (from ManifestReplayResult) truncates a torn tail first,
  /// so new records never land after garbage; pass a negative value to skip
  /// the truncation (fresh checkpoint, nothing to trim).
  static util::StatusOr<std::unique_ptr<ManifestJournal>> OpenForAppend(
      const std::string& path, long valid_bytes);

  /// Reads and validates `path` front to back. kNotFound when missing,
  /// kCorruption on a bad header, mid-file CRC mismatch, or unparsable
  /// payload. A torn tail is NOT an error (see class comment).
  static util::StatusOr<ManifestReplayResult> Replay(const std::string& path);

  /// Atomically replaces `path` with a compact journal holding exactly
  /// `records` (+ quarantine markers for `quarantined_epochs`), via
  /// tmp file + fsync + rename. Used by checkpointing and by the legacy
  /// text-manifest conversion. The header write is fault-injectable.
  static util::Status WriteCheckpoint(
      const std::string& path, const std::vector<ManifestViewRecord>& records,
      const std::vector<uint64_t>& quarantined_epochs, uint64_t last_epoch);

  ~ManifestJournal();

  ManifestJournal(const ManifestJournal&) = delete;
  ManifestJournal& operator=(const ManifestJournal&) = delete;

  // ---- Appends (each fsynced before returning) ----------------------------

  util::Status AppendBegin(uint64_t epoch, uint8_t scheme,
                           const std::string& pattern);
  util::Status AppendInstall(const ManifestViewRecord& record);
  util::Status AppendQuarantine(uint64_t epoch, uint64_t target_epoch);
  util::Status AppendReplace(uint64_t epoch, uint64_t old_epoch,
                             uint64_t new_epoch);
  util::Status AppendDrop(uint64_t epoch, uint64_t target_epoch);

  /// Opens an update-batch transaction: every record appended until the
  /// matching AppendUpdateCommit belongs to the batch and is undone by
  /// replay if the commit never lands. `view_count` is advisory (how many
  /// view installs the batch intends), recorded for observability.
  util::Status AppendUpdateBegin(uint64_t epoch, uint32_t view_count);

  /// Commits the update batch opened at `txn_epoch`. `epoch` is a freshly
  /// allocated epoch for the commit record itself, keeping leading epochs
  /// monotone through the journal.
  util::Status AppendUpdateCommit(uint64_t epoch, uint64_t txn_epoch);

  /// Current append position in bytes, or -1 if the handle is closed.
  /// Captured before a multi-record transaction so a clean in-process abort
  /// (a full disk, not a crash) can roll partial records back with
  /// TruncateTo — crash recovery never needs this (Replay drops an
  /// uncommitted batch on its own).
  long AppendOffset();

  /// Cuts the journal back to `offset` bytes (a value from AppendOffset)
  /// and resumes appending there. Only for the in-process abort path; the
  /// records removed must not have been acted on.
  util::Status TruncateTo(long offset);

  /// Closes the file handle (idempotent; the destructor calls it).
  void Close();

  const std::string& path() const { return path_; }

 private:
  ManifestJournal(std::string path, std::FILE* file);

  util::Status AppendRecord(ManifestRecordType type,
                            const std::vector<uint8_t>& payload);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mu_;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_MANIFEST_H_
