#ifndef VIEWJOIN_STORAGE_SCRUBBER_H_
#define VIEWJOIN_STORAGE_SCRUBBER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "storage/materialized_view.h"
#include "util/status.h"

namespace viewjoin::storage {

/// Counters of the scrubber's lifetime work (monotone; snapshot-copyable).
struct ScrubStats {
  uint64_t pages_scanned = 0;      // checksum verifications performed
  uint64_t corrupt_pages = 0;      // verifications that found corruption
  uint64_t views_quarantined = 0;  // views the scrubber pulled from service
  uint64_t views_healed = 0;       // quarantined views re-materialized OK
  uint64_t heal_failures = 0;      // healer calls that failed
  uint64_t full_passes = 0;        // complete sweeps over the catalog
};

/// Background integrity scrubber: incrementally re-verifies the checksums of
/// every page belonging to a live view, so latent corruption (bit rot under
/// cold data) is found *before* a query trips over it. A corrupt view is
/// quarantined immediately and, when a healer is installed, re-materialized
/// proactively — queries arriving later never see the bad pages.
///
/// The unit of work is Step(budget): verify up to `budget` pages, resuming
/// where the previous step left off and restarting from the oldest view
/// after a full pass. Tests drive Step() synchronously for determinism;
/// Start(interval) runs it from a background thread. The scrub cursor tracks
/// views by epoch, so views installed or quarantined mid-pass are picked up
/// naturally on the next lap.
///
/// Thread-safety: the scan and stats are serialized by an internal mutex;
/// the healer runs at the end of Step *outside* that mutex (it acquires
/// engine-side locks that query threads hold while reading stats(), so
/// calling it under the scrubber mutex would be a lock-order inversion),
/// but still completes before Step returns.
/// Verification reads bypass the buffer pool (Pager::VerifyPage), so a
/// scrub never evicts a query's hot pages and never poisons pool frames.
class Scrubber {
 public:
  /// Re-materializes a quarantined view (typically: rebuild from the source
  /// document and SetReplacement). Called with no scrubber or catalog locks
  /// that the healer itself would need.
  using Healer = std::function<util::Status(const MaterializedView*)>;

  static constexpr uint32_t kDefaultStepPages = 64;

  explicit Scrubber(ViewCatalog* catalog, Healer healer = nullptr);
  ~Scrubber();  // stops the background thread if running

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Verifies up to `page_budget` pages of live views. Returns the number of
  /// pages actually verified (0 when the catalog holds no scannable pages —
  /// the step ends at a pass boundary rather than wrapping within one call).
  uint32_t Step(uint32_t page_budget = kDefaultStepPages);

  /// Spawns the background thread: one Step(page_budget) every `interval`.
  /// No-op when already running.
  void Start(std::chrono::milliseconds interval,
             uint32_t page_budget = kDefaultStepPages);

  /// Stops and joins the background thread (idempotent).
  void Stop();

  bool running() const;

  ScrubStats stats() const;

 private:
  void Loop(std::chrono::milliseconds interval, uint32_t page_budget);
  /// The mu_-guarded scan: verifies pages, quarantines corrupt views, and
  /// collects them into `to_heal` for Step to heal after unlocking.
  uint32_t ScanLocked(uint32_t page_budget,
                      std::vector<const MaterializedView*>* to_heal);

  ViewCatalog* catalog_;
  Healer healer_;

  /// Serializes Step (manual and background) and guards cursor + stats.
  mutable std::mutex mu_;
  uint64_t cursor_epoch_ = 0;  // next view to scrub has epoch >= this
  uint32_t cursor_page_ = 0;   // linear page index within that view
  ScrubStats stats_;

  std::thread thread_;
  mutable std::mutex thread_mu_;  // guards thread_ + stop_ + cv handshake
  std::condition_variable stop_cv_;
  bool stop_ = false;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_SCRUBBER_H_
