#ifndef VIEWJOIN_STORAGE_MATERIALIZED_VIEW_H_
#define VIEWJOIN_STORAGE_MATERIALIZED_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/stored_list.h"
#include "tpq/pattern.h"
#include "util/status.h"
#include "xml/document.h"

namespace viewjoin::storage {

/// Physical storage scheme of a materialized view (paper Sections I & III).
enum class Scheme {
  kElement,               // E : one plain label list per view node
  kTuple,                 // T : sorted n-tuples of labels (InterJoin's input)
  kLinkedElement,         // LE : label lists + all pointers
  kLinkedElementPartial,  // LE_p : child pointers + "far" follow/desc pointers
};

/// Human-readable scheme name ("E", "T", "LE", "LE_p").
const char* SchemeName(Scheme scheme);

/// Inverse of SchemeName: parses "E"/"T"/"LE"/"LE_p" (case-sensitive).
/// std::nullopt on anything else — callers reject unknown spellings instead
/// of silently defaulting.
std::optional<Scheme> ParseScheme(std::string_view name);

/// One materialized TPQ view in one storage scheme, resident in a pager file.
///
/// For E/LE/LE_p schemes, `lists()[i]` is L_q for view pattern node i — the
/// document-ordered solution nodes of that node, as 12-byte labels (E) or
/// labels + pointers (LE/LE_p). For the T scheme, `tuple_list()` holds all
/// view matches as n-tuples of labels sorted by composite start key.
///
/// Pointer deviation from the paper (see DESIGN.md): the stored *following*
/// pointer targets the first following same-type node in the list with no
/// "same lowest parent-type ancestor" side condition. The unconstrained
/// pointer makes every pointer jump provably safe (it skips exactly the
/// failed node's same-type descendants); the constrained variant can jump
/// over live nodes when view types nest recursively.
class MaterializedView {
 public:
  const tpq::TreePattern& pattern() const { return pattern_; }
  Scheme scheme() const { return scheme_; }

  /// Per-view-node stored lists (E/LE/LE_p). Index = pattern node index.
  const std::vector<StoredList>& lists() const { return lists_; }
  const StoredList& list(int vnode) const {
    return lists_[static_cast<size_t>(vnode)];
  }

  /// The tuple list (T scheme only).
  const StoredList& tuple_list() const { return tuple_list_; }

  /// |L_q| for view node q (solution-node count; same for all schemes).
  uint32_t ListLength(int vnode) const {
    return list_lengths_[static_cast<size_t>(vnode)];
  }

  /// Number of matches of the view pattern (= tuple count in the T scheme).
  uint64_t MatchCount() const { return match_count_; }

  /// Logical size in bytes: labels (12 B each) for every scheme, plus 4 B
  /// per materialized (non-null, non-dropped) pointer for LE/LE_p.
  uint64_t SizeBytes() const { return size_bytes_; }

  /// Number of materialized pointers (LE/LE_p; 0 for E/T). Paper Table IV.
  uint64_t PointerCount() const { return pointer_count_; }

 private:
  friend class ViewCatalog;

  tpq::TreePattern pattern_;
  Scheme scheme_ = Scheme::kElement;
  std::vector<StoredList> lists_;
  StoredList tuple_list_;
  std::vector<uint32_t> list_lengths_;
  uint64_t match_count_ = 0;
  uint64_t size_bytes_ = 0;
  uint64_t pointer_count_ = 0;
};

/// Owns the pager + buffer pool and materializes views into them.
///
/// Usage:
///   ViewCatalog catalog("/tmp/views.db", /*pool_pages=*/256);
///   const MaterializedView* v = catalog.Materialize(doc, pattern, scheme);
///   ListCursor cursor(&v->list(0), catalog.pool());
///
/// Thread-safety: the view registry (views/quarantine/replacement maps) is
/// mutex-guarded and the pager/pool are internally synchronized, so batch
/// workers can read views, look up replacements and even quarantine +
/// re-materialize concurrently. views() returns the registry by reference
/// and is for single-threaded setup/inspection only.
class ViewCatalog {
 public:
  /// `path` is the backing pager file; `pool_pages` the buffer pool capacity
  /// (must be >= 1 — the pool rejects capacity 0). With `persistent` the
  /// pager file survives the catalog (pair with SaveManifest/Open to reuse
  /// materialized views across processes).
  ViewCatalog(const std::string& path, size_t pool_pages,
              bool persistent = false);
  ~ViewCatalog();

  /// Writes the catalog manifest (view patterns, schemes, list locations)
  /// next to the pager file ("<path>.manifest"). Requires `persistent`.
  void SaveManifest() const;

  /// Reopens a persisted catalog: the pager file plus its manifest. Returns
  /// kNotFound when either file is missing, kCorruption when the pager header
  /// is invalid (pre-checksum or truncated file), the manifest is malformed,
  /// or a manifest list points outside the pager file.
  static util::StatusOr<std::unique_ptr<ViewCatalog>> Open(
      const std::string& path, size_t pool_pages);

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  /// Materializes `pattern` over `doc` in `scheme`. The returned view lives
  /// as long as the catalog. The view pattern must have unique element types.
  /// Dies on storage failure (setup-time convenience); TryMaterialize is the
  /// recoverable variant.
  const MaterializedView* Materialize(const xml::Document& doc,
                                      const tpq::TreePattern& pattern,
                                      Scheme scheme);

  /// Recoverable materialization: surfaces page-write failures as a Status
  /// and leaves the catalog's view list untouched on failure (already-written
  /// pages become dead space in the pager file).
  util::StatusOr<const MaterializedView*> TryMaterialize(
      const xml::Document& doc, const tpq::TreePattern& pattern, Scheme scheme);

  /// Materializes a view from precomputed solution-node lists (one
  /// document-ordered list per pattern node) instead of evaluating the
  /// pattern — how a query's answer is stored back as a view (ViewJoin
  /// keeps its intermediate solutions in the view DAG structure precisely to
  /// enable this, paper Section IV-B feature 2). List schemes only.
  const MaterializedView* MaterializeFromLists(
      const xml::Document& doc, const tpq::TreePattern& pattern,
      const std::vector<std::vector<xml::NodeId>>& solutions, Scheme scheme);

  /// Recoverable variant of MaterializeFromLists.
  util::StatusOr<const MaterializedView*> TryMaterializeFromLists(
      const xml::Document& doc, const tpq::TreePattern& pattern,
      const std::vector<std::vector<xml::NodeId>>& solutions, Scheme scheme);

  // ---- Quarantine (fault-tolerant degradation) -----------------------------
  //
  // A view whose pages fail checksum or read verification is quarantined:
  // it stays owned by the catalog (callers may hold pointers) but is marked
  // unusable. The engine re-materializes a replacement when the source
  // document is at hand and records the mapping here, so later Execute calls
  // holding the stale pointer are transparently redirected.

  void Quarantine(const MaterializedView* view);
  bool IsQuarantined(const MaterializedView* view) const;
  size_t quarantined_count() const;

  /// Latest healthy replacement for `view` (follows replacement chains), or
  /// nullptr when none has been materialized yet.
  const MaterializedView* ReplacementFor(const MaterializedView* view) const;
  void SetReplacement(const MaterializedView* from, const MaterializedView* to);

  /// The view whose stored lists contain `page`, or nullptr (spill pages and
  /// dead space belong to no view).
  const MaterializedView* ViewOfPage(PageId page) const;

  /// Scans every page of `view`'s lists through checksum verification.
  util::Status VerifyView(const MaterializedView* view);

  BufferPool* pool() { return pool_.get(); }
  Pager* pager() { return pager_.get(); }

  /// Cumulative I/O statistics (pager counters + pool hit/miss).
  IoStats Stats() const;
  void ResetStats();

  /// Drops cached pages so a subsequent query run starts cold.
  void DropCaches() { pool_->Clear(); }

  /// Views held by the catalog, in materialization (or manifest) order.
  const std::vector<std::unique_ptr<MaterializedView>>& views() const {
    return views_;
  }

  /// Monotone catalog version, bumped whenever the set of usable views
  /// changes: a view is materialized, quarantined, or replaced. Cached plans
  /// key on it, so any such change invalidates every plan referencing the
  /// old catalog state without the cache having to enumerate dependencies.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// The healthy view with the given pattern serialization and scheme, or
  /// nullptr. Quarantined views (without a replacement) never match; a
  /// replaced view resolves to its latest replacement. The planner uses this
  /// to find same-pattern twins in alternative schemes.
  const MaterializedView* FindView(const std::string& pattern_string,
                                   Scheme scheme) const;

 private:
  ViewCatalog(const std::string& path, size_t pool_pages, bool persistent,
              Pager::Mode mode);

  util::StatusOr<StoredList> WriteList(const std::vector<uint8_t>& bytes,
                                       RecordLayout layout, uint32_t count);

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  /// Guards views_, quarantined_ and replacement_. MaterializedView objects
  /// themselves are immutable once registered and may be read lock-free.
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<MaterializedView>> views_;
  std::unordered_set<const MaterializedView*> quarantined_;
  std::unordered_map<const MaterializedView*, const MaterializedView*>
      replacement_;
  std::atomic<uint64_t> version_{1};
  bool persistent_ = false;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_MATERIALIZED_VIEW_H_
