#ifndef VIEWJOIN_STORAGE_MATERIALIZED_VIEW_H_
#define VIEWJOIN_STORAGE_MATERIALIZED_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/manifest.h"
#include "storage/stored_list.h"
#include "tpq/pattern.h"
#include "util/status.h"
#include "xml/document.h"

namespace viewjoin::storage {

/// Physical storage scheme of a materialized view (paper Sections I & III).
enum class Scheme {
  kElement,               // E : one plain label list per view node
  kTuple,                 // T : sorted n-tuples of labels (InterJoin's input)
  kLinkedElement,         // LE : label lists + all pointers
  kLinkedElementPartial,  // LE_p : child pointers + "far" follow/desc pointers
};

/// Human-readable scheme name ("E", "T", "LE", "LE_p").
const char* SchemeName(Scheme scheme);

/// Inverse of SchemeName: parses "E"/"T"/"LE"/"LE_p" (case-sensitive).
/// std::nullopt on anything else — callers reject unknown spellings instead
/// of silently defaulting.
std::optional<Scheme> ParseScheme(std::string_view name);

/// One materialized TPQ view in one storage scheme, resident in a pager file.
///
/// For E/LE/LE_p schemes, `lists()[i]` is L_q for view pattern node i — the
/// document-ordered solution nodes of that node, as 12-byte labels (E) or
/// labels + pointers (LE/LE_p). For the T scheme, `tuple_list()` holds all
/// view matches as n-tuples of labels sorted by composite start key.
///
/// Pointer deviation from the paper (see DESIGN.md): the stored *following*
/// pointer targets the first following same-type node in the list with no
/// "same lowest parent-type ancestor" side condition. The unconstrained
/// pointer makes every pointer jump provably safe (it skips exactly the
/// failed node's same-type descendants); the constrained variant can jump
/// over live nodes when view types nest recursively.
class MaterializedView {
 public:
  const tpq::TreePattern& pattern() const { return pattern_; }
  Scheme scheme() const { return scheme_; }

  /// The catalog epoch at which this view was installed — its durable
  /// identity in the manifest journal (0 only before installation).
  uint64_t epoch() const { return epoch_; }

  /// Per-view-node stored lists (E/LE/LE_p). Index = pattern node index.
  const std::vector<StoredList>& lists() const { return lists_; }
  const StoredList& list(int vnode) const {
    return lists_[static_cast<size_t>(vnode)];
  }

  /// The tuple list (T scheme only).
  const StoredList& tuple_list() const { return tuple_list_; }

  /// |L_q| for view node q (solution-node count; same for all schemes).
  uint32_t ListLength(int vnode) const {
    return list_lengths_[static_cast<size_t>(vnode)];
  }

  /// Number of matches of the view pattern (= tuple count in the T scheme).
  uint64_t MatchCount() const { return match_count_; }

  /// Logical size in bytes: labels (12 B each) for every scheme, plus 4 B
  /// per materialized (non-null, non-dropped) pointer for LE/LE_p.
  uint64_t SizeBytes() const { return size_bytes_; }

  /// Number of materialized pointers (LE/LE_p; 0 for E/T). Paper Table IV.
  uint64_t PointerCount() const { return pointer_count_; }

 private:
  friend class ViewCatalog;

  tpq::TreePattern pattern_;
  Scheme scheme_ = Scheme::kElement;
  uint64_t epoch_ = 0;
  std::vector<StoredList> lists_;
  StoredList tuple_list_;
  std::vector<uint32_t> list_lengths_;
  uint64_t match_count_ = 0;
  uint64_t size_bytes_ = 0;
  uint64_t pointer_count_ = 0;
};

/// What startup recovery did (and found) while reopening a persistent
/// catalog. Every action is the safe one: uncommitted state is rolled back,
/// not patched forward, and anything lost is re-queued for rebuilding.
struct RecoveryReport {
  /// The manifest journal ended in a torn record (crash mid-append); the
  /// fragment was dropped and the journal truncated at the last valid record.
  bool journal_tail_truncated = false;
  /// Pager pages past the journal's durable prefix (a crash between the data
  /// append and the journal commit) that were truncated away.
  uint32_t orphan_pages_truncated = 0;
  /// Leftover shadow files (sealed or tmp) from interrupted installs that
  /// were deleted.
  int orphan_shadows_removed = 0;
  /// A pre-journal plain-text manifest was converted to the journal format.
  bool legacy_manifest_converted = false;
  /// Update batches whose commit record never landed: replay rolled their
  /// installs back wholesale and recovery truncated the half-applied suffix,
  /// so the store reopened at the pre-batch epoch with the pre-batch views.
  uint64_t rolled_back_update_batches = 0;
  /// Leftover delta spill files ("<base>.updatedelta") from interrupted
  /// update batches that were deleted (pure staging, like shadows).
  int orphan_delta_files_removed = 0;
  /// A v1 binary journal was rewritten at the current format version (via a
  /// checkpoint) so subsequent appends carry the versioned list encoding.
  bool journal_upgraded = false;
  /// Views whose (re-)materialization a crash rolled back, plus quarantined
  /// views with no healthy replacement: the store serves without them, but a
  /// caller holding the source document should re-materialize each one.
  std::vector<std::pair<std::string, Scheme>> pending_rebuild;
};

/// Owns the pager + buffer pool and materializes views into them.
///
/// Usage:
///   ViewCatalog catalog("/tmp/views.db", /*pool_pages=*/256);
///   const MaterializedView* v = catalog.Materialize(doc, pattern, scheme);
///   ListCursor cursor(&v->list(0), catalog.pool());
///
/// Durability (persistent catalogs): every view is installed via *shadow
/// materialization* — its pages are staged in memory, written to a shadow
/// file which is fsynced and sealed by rename, appended to the pager file in
/// one contiguous write, fsynced again, and only then committed by an
/// install record in the manifest journal ("<path>.manifest"). A crash at
/// any instant leaves either the old catalog or the new one, never a
/// half-installed view: Open() replays the journal, truncates uncommitted
/// pager pages and torn journal tails, deletes orphan shadows, and reports
/// rolled-back views in recovery_report().pending_rebuild.
///
/// Thread-safety: the view registry (views/quarantine/replacement maps) is
/// mutex-guarded and the pager/pool are internally synchronized, so batch
/// workers can read views, look up replacements and even quarantine +
/// re-materialize concurrently; installs are serialized by an internal
/// install mutex (staging runs outside it, so evaluations still overlap).
/// views() returns the registry by reference and is for single-threaded
/// setup/inspection only — concurrent readers use ViewsSnapshot().
class ViewCatalog {
 public:
  /// `path` is the backing pager file; `pool_pages` the buffer pool capacity
  /// (must be >= 1 — the pool rejects capacity 0). With `persistent` the
  /// pager file survives the catalog and every install is journaled (pair
  /// with Open to reuse materialized views across processes).
  ViewCatalog(const std::string& path, size_t pool_pages,
              bool persistent = false);
  ~ViewCatalog();

  /// Compacts the manifest journal to one install record per live view
  /// (atomic tmp + fsync + rename) and reopens it for appending. Requires
  /// `persistent`. Journaled installs make this optional — it bounds journal
  /// growth and replay time, nothing more.
  util::Status Checkpoint();

  /// Legacy spelling of Checkpoint() that dies on failure (setup-time
  /// convenience, mirroring Materialize vs TryMaterialize).
  void SaveManifest();

  /// Point-in-time image of the catalog's durable state, for the hot-backup
  /// module: install records for every live view, quarantined epochs, the
  /// epoch counter, and the pager page count. Taken under the install mutex,
  /// so no install or update transaction is mid-flight: every page below
  /// `page_count` is committed and — because the catalog pager is
  /// append-only for committed pages — immutable, copyable afterwards with
  /// no lock held. Writing these records as a checkpoint-format manifest
  /// next to a copy of those pages yields a store Open() recovers cleanly.
  struct BackupSnapshot {
    std::vector<ManifestViewRecord> records;
    std::vector<uint64_t> quarantined_epochs;
    uint64_t epoch = 0;
    uint32_t page_count = 0;
  };
  BackupSnapshot SnapshotForBackup();

  /// Reopens a persisted catalog: the pager file plus its manifest journal,
  /// running startup recovery (see class comment; recovery_report() tells
  /// what it did). Returns kNotFound when either file is missing, kCorruption
  /// when the pager header is invalid, a journal record fails its checksum
  /// mid-file, or an install record points outside the pager file. A torn
  /// journal tail or a crash-truncated pager file is NOT corruption — those
  /// are the crash artifacts recovery exists to repair.
  static util::StatusOr<std::unique_ptr<ViewCatalog>> Open(
      const std::string& path, size_t pool_pages);

  /// What startup recovery did when this catalog was opened via Open()
  /// (default-constructed for fresh catalogs).
  const RecoveryReport& recovery_report() const { return recovery_; }

  /// Flushes and closes the journal and the pager, surfacing the final
  /// flush verdict (a swallowed close-time failure would hand the next Open
  /// a truncated file with no witness). Idempotent; the destructor calls it
  /// and logs — callers that must know invoke Close() explicitly first.
  util::Status Close();

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  /// Materializes `pattern` over `doc` in `scheme`. The returned view lives
  /// as long as the catalog. The view pattern must have unique element types.
  /// Dies on storage failure (setup-time convenience); TryMaterialize is the
  /// recoverable variant.
  const MaterializedView* Materialize(const xml::Document& doc,
                                      const tpq::TreePattern& pattern,
                                      Scheme scheme);

  /// Recoverable materialization: surfaces staging/install failures as a
  /// Status and leaves the catalog's view list untouched on failure (an
  /// interrupted install leaves at most dead bytes past the durable prefix,
  /// which the next Open truncates).
  util::StatusOr<const MaterializedView*> TryMaterialize(
      const xml::Document& doc, const tpq::TreePattern& pattern, Scheme scheme);

  /// Materializes a view from precomputed solution-node lists (one
  /// document-ordered list per pattern node) instead of evaluating the
  /// pattern — how a query's answer is stored back as a view (ViewJoin
  /// keeps its intermediate solutions in the view DAG structure precisely to
  /// enable this, paper Section IV-B feature 2). List schemes only.
  const MaterializedView* MaterializeFromLists(
      const xml::Document& doc, const tpq::TreePattern& pattern,
      const std::vector<std::vector<xml::NodeId>>& solutions, Scheme scheme);

  /// Recoverable variant of MaterializeFromLists.
  util::StatusOr<const MaterializedView*> TryMaterializeFromLists(
      const xml::Document& doc, const tpq::TreePattern& pattern,
      const std::vector<std::vector<xml::NodeId>>& solutions, Scheme scheme);

  // ---- Incremental maintenance (live document updates) ---------------------
  //
  // After the source document mutates, each affected view is either
  // delta-maintained — its sorted per-node label deltas are merged into the
  // stored lists and the pointers recomputed — or fully rebuilt from fresh
  // solution lists when deltas are unavailable (T scheme, or a relabel).
  // The whole batch commits as ONE manifest transaction: kUpdateBegin, the
  // new views' install+replace records, kUpdateCommit. A crash anywhere
  // before the commit record rolls the entire batch back on reopen; after
  // it, the batch is fully applied. Old views stay registered (in-flight
  // queries keep reading their pages) with replacement links to the new
  // ones, exactly like quarantine replacements.

  /// Start-sorted label deltas for one view: added[q] / removed[q] are the
  /// labels entering / leaving the solution list of view pattern node q.
  struct ListDeltas {
    std::vector<std::vector<xml::Label>> added;
    std::vector<std::vector<xml::Label>> removed;
    bool empty() const {
      for (const auto& a : added)
        if (!a.empty()) return false;
      for (const auto& r : removed)
        if (!r.empty()) return false;
      return true;
    }
  };

  /// One view's maintenance work inside an update batch.
  struct ViewUpdateSpec {
    const MaterializedView* view = nullptr;
    /// Sorted deltas to merge (list schemes; ignored when full_rebuild).
    ListDeltas deltas;
    /// Rebuild from scratch instead of merging: required for the T scheme
    /// (tuples have no per-node delta form) and after a document relabel.
    bool full_rebuild = false;
    /// Fresh solution-node lists for a list-scheme full rebuild; T-scheme
    /// rebuilds re-evaluate the pattern over `doc` instead.
    std::vector<std::vector<xml::NodeId>> solutions;
  };

  struct UpdateBatchOptions {
    /// Serialized deltas larger than this spill to a "<path>.updatedelta"
    /// sidecar (CRC-checked, re-read before merging, removed at commit);
    /// crash artifacts are swept by recovery and reported by fsck.
    size_t delta_spill_bytes = 1u << 20;
  };

  struct UpdateBatchResult {
    /// Epoch of the kUpdateBegin record (the transaction's identity).
    uint64_t txn_epoch = 0;
    /// New view per spec, in spec order.
    std::vector<const MaterializedView*> new_views;
    size_t delta_maintained = 0;
    size_t fully_rebuilt = 0;
    /// The deltas took the spill-sidecar path.
    bool deltas_spilled = false;
  };

  /// Applies one update batch atomically (see section comment). `doc` is the
  /// post-update document (T-scheme rebuilds and list-scheme solutions are
  /// resolved against it). Crash-point injectable at kCrashMidDeltaMerge /
  /// kCrashBeforeEpochBump / kCrashAfterEpochBump; on an injected crash the
  /// catalog object must be abandoned and the store reopened, like the
  /// install crash points. InvalidArgument when a delta does not match the
  /// stored list (a removed label absent, an added label already present, a
  /// T-scheme spec without full_rebuild).
  util::StatusOr<UpdateBatchResult> ApplyUpdateBatch(
      const xml::Document& doc, const std::vector<ViewUpdateSpec>& specs,
      const UpdateBatchOptions& options);
  util::StatusOr<UpdateBatchResult> ApplyUpdateBatch(
      const xml::Document& doc, const std::vector<ViewUpdateSpec>& specs) {
    return ApplyUpdateBatch(doc, specs, UpdateBatchOptions());
  }

  // ---- Quarantine (fault-tolerant degradation) -----------------------------
  //
  // A view whose pages fail checksum or read verification is quarantined:
  // it stays owned by the catalog (callers may hold pointers) but is marked
  // unusable. The engine re-materializes a replacement when the source
  // document is at hand and records the mapping here, so later Execute calls
  // holding the stale pointer are transparently redirected. On a persistent
  // catalog both events are journaled, so quarantine and replacement survive
  // a restart.

  void Quarantine(const MaterializedView* view);
  bool IsQuarantined(const MaterializedView* view) const;
  size_t quarantined_count() const;

  /// Latest healthy replacement for `view` (follows replacement chains), or
  /// nullptr when none has been materialized yet.
  const MaterializedView* ReplacementFor(const MaterializedView* view) const;
  void SetReplacement(const MaterializedView* from, const MaterializedView* to);

  /// The view whose stored lists contain `page`, or nullptr (spill pages and
  /// dead space belong to no view).
  const MaterializedView* ViewOfPage(PageId page) const;

  /// Scans every page of `view`'s lists through checksum verification.
  util::Status VerifyView(const MaterializedView* view);

  BufferPool* pool() { return pool_.get(); }
  Pager* pager() { return pager_.get(); }

  /// Cumulative I/O statistics (pager counters + pool hit/miss).
  IoStats Stats() const;
  void ResetStats();

  /// Drops cached pages so a subsequent query run starts cold.
  void DropCaches() { pool_->Clear(); }

  /// Views held by the catalog, in installation (epoch) order. Reference into
  /// the registry — single-threaded setup/inspection only.
  const std::vector<std::unique_ptr<MaterializedView>>& views() const {
    return views_;
  }

  /// Registry snapshot safe to take while other threads install or
  /// quarantine views (the scrubber's worklist). View pointers stay valid
  /// for the catalog's lifetime.
  std::vector<const MaterializedView*> ViewsSnapshot() const;

  /// Monotone catalog epoch: the largest epoch any recorded event (install,
  /// quarantine, replacement) carries, resuming across restarts on a
  /// persistent catalog because it is replayed from the manifest journal.
  /// Cached plans key on it, so any change to the set of usable views — in
  /// this process or a previous one — invalidates every plan referencing the
  /// old catalog state without the cache having to enumerate dependencies.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Pre-journal name for epoch(), kept for callers of the old in-memory
  /// version counter.
  uint64_t version() const { return epoch(); }

  /// The healthy view with the given pattern serialization and scheme, or
  /// nullptr. Quarantined views (without a replacement) never match; a
  /// replaced view resolves to its latest replacement. The planner uses this
  /// to find same-pattern twins in alternative schemes.
  const MaterializedView* FindView(const std::string& pattern_string,
                                   Scheme scheme) const;

  /// Physical encoding for lists materialized after the call (existing views
  /// keep the format they were built with; both read fine side by side).
  /// Defaults from VIEWJOIN_LIST_FORMAT ("fixed"/"delta"; delta if unset).
  ListFormat list_format() const { return list_format_; }
  void set_list_format(ListFormat format) { list_format_ = format; }

 private:
  /// Payload pages of a view staged in memory before installation.
  struct StagedPages;

  ViewCatalog(const std::string& path, size_t pool_pages, bool persistent,
              Pager::Mode mode);

  /// Lays `bytes` (records of `layout`) out into staged pages — verbatim
  /// fixed records or delta-compressed varint pages per `format`; the
  /// returned list's first_page is *relative* to the staged build until
  /// InstallView rebases it onto final page ids. InvalidArgument when a
  /// record cannot fit one page (pathological pattern fan-out).
  static util::StatusOr<StoredList> StageList(StagedPages& staged,
                                              const std::vector<uint8_t>& bytes,
                                              RecordLayout layout,
                                              uint32_t count,
                                              ListFormat format);

  /// The shadow-materialization install protocol (see class comment). Takes
  /// ownership of `view`; on success the registered pointer is returned.
  util::StatusOr<const MaterializedView*> InstallView(
      std::unique_ptr<MaterializedView> view, StagedPages& staged);

  /// Builds a list-scheme view (records, pointers, lengths) from per-node
  /// solution labels and stages its pages into `staged` without installing —
  /// the update batch stages many views into one StagedPages and installs
  /// them under a single manifest transaction.
  util::StatusOr<std::unique_ptr<MaterializedView>> StageListView(
      const tpq::TreePattern& pattern, Scheme scheme,
      const std::vector<std::vector<xml::Label>>& labels, StagedPages& staged);

  /// Delta-merges `deltas` into an E-scheme view without rewriting the
  /// unchanged prefix: encoded pages wholly below the first changed label
  /// are copied into `staged` verbatim (no decode / re-encode), and only
  /// the affected suffix is read, merged, and freshly encoded. Lists with
  /// empty deltas are copied page-for-page. Element records carry no
  /// cross-list pointers, so prefix bytes cannot go stale — pointer
  /// schemes must take the full re-encode path instead.
  util::StatusOr<std::unique_ptr<MaterializedView>> StageMergedElementView(
      const MaterializedView& old, const ListDeltas& deltas,
      StagedPages& staged);

  /// The journal install record describing `view`.
  ManifestViewRecord RecordFor(const MaterializedView& view,
                               uint32_t page_count_after) const;

  /// Parses a pre-journal "VIEWJOINCAT" text manifest into views_ (Open's
  /// legacy path; the caller then converts the file to the journal format).
  util::Status LoadLegacyManifest();

  uint64_t AllocateEpoch() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  /// Journal of view-lifecycle events; null for non-persistent catalogs.
  std::unique_ptr<ManifestJournal> journal_;
  /// Serializes InstallView (page-id assignment through journal commit) and
  /// Checkpoint. Ordered before registry_mu_ when both are taken.
  std::mutex install_mu_;
  /// Guards views_, quarantined_ and replacement_. MaterializedView objects
  /// themselves are immutable once registered and may be read lock-free.
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<MaterializedView>> views_;
  std::unordered_set<const MaterializedView*> quarantined_;
  std::unordered_map<const MaterializedView*, const MaterializedView*>
      replacement_;
  /// Last allocated epoch (== current catalog epoch).
  std::atomic<uint64_t> epoch_{1};
  RecoveryReport recovery_;
  bool persistent_ = false;
  ListFormat list_format_ = ListFormat::kDelta;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_MATERIALIZED_VIEW_H_
