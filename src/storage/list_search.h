#ifndef VIEWJOIN_STORAGE_LIST_SEARCH_H_
#define VIEWJOIN_STORAGE_LIST_SEARCH_H_

#include <cstdint>

namespace viewjoin::storage {

/// Result of a galloping lower-bound: the first index at which the monotone
/// predicate flipped (or `size` when it never did), plus whether the search
/// was cut short by its probe hook (cancellation / deadline).
struct GallopResult {
  uint32_t pos = 0;
  bool aborted = false;
};

/// Overflow-safe galloping + binary-search lower bound over [from, size).
///
/// `below(i)` must be monotone: true on a (possibly empty) prefix of the
/// range, false after — "entry i is still below the target". Returns the
/// first index where `below` is false, or `size` when every entry is below.
///
/// `on_probe()` runs before every `below` evaluation (both the exponential
/// probes and the binary-search midpoints); returning true aborts the search
/// and yields the tightest bound proven so far — every index < pos is known
/// below the target, so a caller that seeks to pos skips only dead entries.
///
/// This is the one shared skip-search core: the scalar cursor paths and the
/// block cursor's page gallop both route through it, so the uint32 overflow
/// that the old open-coded loops had (`lo + step` wrapping near 2^31
/// entries, looping forever) is fixed in exactly one place. All arithmetic
/// here is on differences (`step < hi - lo`), which cannot wrap.
template <typename BelowFn, typename ProbeFn>
GallopResult GallopLowerBound(uint32_t from, uint32_t size, BelowFn&& below,
                              ProbeFn&& on_probe) {
  if (from >= size) return {size, false};
  if (on_probe()) return {from, true};
  if (!below(from)) return {from, false};
  // Invariant: below(lo) is true, and hi is `size` or an index where below
  // is false. Exponential probes double the step without ever computing an
  // index above hi (step is compared against hi - lo, never added blindly).
  uint32_t lo = from;
  uint32_t hi = size;
  uint32_t step = 1;
  while (step < hi - lo) {
    uint32_t probe = lo + step;
    if (on_probe()) return {lo + 1, true};
    if (below(probe)) {
      lo = probe;
      step = step <= (0xFFFFFFFFu >> 1) ? step * 2 : step;
    } else {
      hi = probe;
      break;
    }
  }
  // Binary search in (lo, hi): first index where below flips.
  while (hi - lo > 1) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (on_probe()) return {lo + 1, true};
    if (below(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return {hi, false};
}

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_LIST_SEARCH_H_
