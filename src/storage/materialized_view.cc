#include "storage/materialized_view.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <set>

#include "storage/list_codec.h"
#include "tpq/evaluator.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fault_injection.h"

namespace viewjoin::storage {

using tpq::TreePattern;
using xml::Document;
using xml::Label;
using xml::NodeId;

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kElement:
      return "E";
    case Scheme::kTuple:
      return "T";
    case Scheme::kLinkedElement:
      return "LE";
    case Scheme::kLinkedElementPartial:
      return "LE_p";
  }
  return "?";
}

std::optional<Scheme> ParseScheme(std::string_view name) {
  if (name == "E") return Scheme::kElement;
  if (name == "T") return Scheme::kTuple;
  if (name == "LE") return Scheme::kLinkedElement;
  if (name == "LE_p") return Scheme::kLinkedElementPartial;
  return std::nullopt;
}

// ---- Staging ---------------------------------------------------------------

/// Payload pages of one view accumulated in memory before installation. The
/// staged lists carry page ids *relative* to this build; InstallView rebases
/// them onto the pager's tail under the install lock, so staging (and the
/// pattern evaluation feeding it) runs outside any catalog lock.
struct ViewCatalog::StagedPages {
  std::vector<uint8_t> payload;  // page_count * kPageSize, zero-padded
  uint32_t page_count = 0;
};

util::StatusOr<StoredList> ViewCatalog::StageList(
    StagedPages& staged, const std::vector<uint8_t>& bytes, RecordLayout layout,
    uint32_t count, ListFormat format) {
  StoredList list;
  list.layout = layout;
  list.count = count;
  list.format = format;
  uint32_t record_size = layout.RecordSize();
  // A record wider than one page has no (page, offset) representation:
  // RecordsPerPage() would be 0 and every PageOf/OffsetOf a division by
  // zero. Wide fan-out patterns (LE child pointers grow the record by 4
  // bytes per pc/ad child) must be rejected here, at materialization, with
  // a typed error — not crash in the cursor arithmetic later.
  if (record_size == 0 || record_size > Pager::kPageSize) {
    return util::Status::InvalidArgument(
        "list record layout (" + std::to_string(record_size) +
        " bytes) does not fit a " + std::to_string(Pager::kPageSize) +
        "-byte page; pattern fan-out too wide to materialize");
  }
  if (count == 0) {
    list.first_page = kInvalidPage;
    return list;
  }
  if (format == ListFormat::kDelta) {
    util::StatusOr<DeltaEncoded> encoded =
        EncodeDeltaList(bytes.data(), count, layout);
    if (!encoded.ok()) return encoded.status();
    uint32_t pages = static_cast<uint32_t>(encoded->pages.size());
    list.first_page = staged.page_count;  // relative until installed
    list.page_first_entry = std::move(encoded->page_first_entry);
    list.page_first_start = std::move(encoded->page_first_start);
    staged.payload.resize(
        static_cast<size_t>(staged.page_count + pages) * Pager::kPageSize, 0);
    for (uint32_t p = 0; p < pages; ++p) {
      std::memcpy(staged.payload.data() +
                      static_cast<size_t>(staged.page_count + p) *
                          Pager::kPageSize,
                  encoded->pages[p].data(), Pager::kPageSize);
    }
    staged.page_count += pages;
    return list;
  }
  uint32_t per_page = static_cast<uint32_t>(Pager::kPageSize) / record_size;
  uint32_t pages = (count + per_page - 1) / per_page;
  list.first_page = staged.page_count;  // relative until installed
  staged.payload.resize(
      static_cast<size_t>(staged.page_count + pages) * Pager::kPageSize, 0);
  list.page_first_start.reserve(pages);
  for (uint32_t p = 0; p < pages; ++p) {
    uint32_t first_record = p * per_page;
    uint32_t n_records = std::min(per_page, count - first_record);
    std::memcpy(staged.payload.data() +
                    static_cast<size_t>(staged.page_count + p) *
                        Pager::kPageSize,
                bytes.data() + static_cast<size_t>(first_record) * record_size,
                static_cast<size_t>(n_records) * record_size);
    // Fence key: the first record's start label, for page-level galloping.
    uint32_t fence;
    std::memcpy(&fence,
                bytes.data() + static_cast<size_t>(first_record) * record_size,
                4);
    list.page_first_start.push_back(fence);
  }
  staged.page_count += pages;
  return list;
}

// ---- Construction / teardown ----------------------------------------------

ViewCatalog::ViewCatalog(const std::string& path, size_t pool_pages,
                         bool persistent)
    : ViewCatalog(path, pool_pages, persistent,
                  persistent ? Pager::Mode::kPersist : Pager::Mode::kTruncate) {
  // A zero-frame pool would make every Fetch fail with InvalidArgument; a
  // fresh catalog asking for one is a configuration error, like a catalog
  // that cannot create its backing file (Open() is the recoverable path).
  VJ_CHECK(pool_pages > 0) << "view catalog needs a pool of >= 1 page";
  VJ_CHECK(pager_->init_status().ok()) << pager_->init_status().ToString();
  if (persistent) {
    auto journal = ManifestJournal::Create(ManifestJournal::PathFor(path));
    VJ_CHECK(journal.ok()) << journal.status().ToString();
    journal_ = std::move(*journal);
  }
}

namespace {

ListFormat DefaultListFormat() {
  const char* env = std::getenv("VIEWJOIN_LIST_FORMAT");
  if (env == nullptr || *env == '\0') return ListFormat::kDelta;
  if (std::strcmp(env, "fixed") == 0) return ListFormat::kFixed;
  if (std::strcmp(env, "delta") == 0) return ListFormat::kDelta;
  VJ_CHECK(false) << "VIEWJOIN_LIST_FORMAT must be \"fixed\" or \"delta\", "
                     "got \""
                  << env << "\"";
  return ListFormat::kDelta;
}

}  // namespace

ViewCatalog::ViewCatalog(const std::string& path, size_t pool_pages,
                         bool persistent, Pager::Mode mode)
    : pager_(std::make_unique<Pager>(path, mode)),
      pool_(std::make_unique<BufferPool>(pager_.get(), pool_pages)),
      persistent_(persistent),
      list_format_(DefaultListFormat()) {}

ViewCatalog::~ViewCatalog() { (void)Close(); }

util::Status ViewCatalog::Close() {
  if (journal_ != nullptr) journal_->Close();
  return pager_->Close();
}

// ---- Manifest journal / checkpoint ----------------------------------------

ManifestViewRecord ViewCatalog::RecordFor(const MaterializedView& view,
                                          uint32_t page_count_after) const {
  ManifestViewRecord record;
  record.epoch = view.epoch_;
  record.scheme = static_cast<uint8_t>(view.scheme_);
  record.pattern = view.pattern_.ToString();
  record.match_count = view.match_count_;
  record.size_bytes = view.size_bytes_;
  record.pointer_count = view.pointer_count_;
  record.page_count_after = page_count_after;
  record.list_lengths = view.list_lengths_;
  record.lists = view.lists_;
  record.tuple_list = view.tuple_list_;
  return record;
}

util::Status ViewCatalog::Checkpoint() {
  if (!persistent_) {
    return util::Status::InvalidArgument(
        "checkpoint requires a persistent catalog");
  }
  std::lock_guard<std::mutex> install_lock(install_mu_);
  std::vector<ManifestViewRecord> records;
  std::vector<uint64_t> quarantined;
  uint32_t pages = pager_->page_count();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    records.reserve(views_.size());
    for (const auto& view : views_) records.push_back(RecordFor(*view, pages));
    quarantined.reserve(quarantined_.size());
    for (const MaterializedView* view : quarantined_) {
      quarantined.push_back(view->epoch_);
    }
    std::sort(quarantined.begin(), quarantined.end());
  }
  const std::string journal_path = ManifestJournal::PathFor(pager_->path());
  util::Status written = ManifestJournal::WriteCheckpoint(
      journal_path, records, quarantined, epoch());
  if (!written.ok()) return written;
  // The rename replaced the inode the open journal handle points at; switch
  // appends over to the fresh compact file.
  journal_->Close();
  auto reopened = ManifestJournal::OpenForAppend(journal_path,
                                                 /*valid_bytes=*/-1);
  if (!reopened.ok()) return reopened.status();
  journal_ = std::move(*reopened);
  return util::Status::Ok();
}

void ViewCatalog::SaveManifest() {
  VJ_CHECK(persistent_) << "SaveManifest requires a persistent catalog";
  util::Status status = Checkpoint();
  VJ_CHECK(status.ok()) << status.ToString();
}

ViewCatalog::BackupSnapshot ViewCatalog::SnapshotForBackup() {
  std::lock_guard<std::mutex> install_lock(install_mu_);
  BackupSnapshot snap;
  snap.page_count = pager_->page_count();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    snap.records.reserve(views_.size());
    for (const auto& view : views_) {
      snap.records.push_back(RecordFor(*view, snap.page_count));
    }
    snap.quarantined_epochs.reserve(quarantined_.size());
    for (const MaterializedView* view : quarantined_) {
      snap.quarantined_epochs.push_back(view->epoch_);
    }
    std::sort(snap.quarantined_epochs.begin(), snap.quarantined_epochs.end());
  }
  snap.epoch = epoch();
  return snap;
}

// ---- Open / startup recovery ----------------------------------------------

namespace {

/// Deletes leftover shadow files ("<base>.shadow.*", sealed or .tmp) and a
/// stray checkpoint tmp next to the pager file. Returns how many were
/// removed. A shadow is pure staging — its content is either uncommitted
/// (discard) or already appended into the pager file (redundant), so
/// deletion is always the right recovery action.
int RemoveOrphanShadows(const std::string& pager_path,
                        int* delta_files_removed = nullptr) {
  std::string dir = ".";
  std::string base = pager_path;
  size_t slash = pager_path.rfind('/');
  if (slash != std::string::npos) {
    dir = pager_path.substr(0, slash);
    base = pager_path.substr(slash + 1);
  }
  const std::string shadow_prefix = base + ".shadow.";
  const std::string checkpoint_tmp = base + ".manifest.tmp";
  const std::string delta_sidecar = base + ".updatedelta";
  int removed = 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind(shadow_prefix, 0) == 0 || name == checkpoint_tmp) {
      if (std::remove((dir + "/" + name).c_str()) == 0) ++removed;
    } else if (name == delta_sidecar || name == delta_sidecar + ".tmp") {
      // Delta spill sidecars are staging for an update batch in flight; any
      // survivor (torn or whole) belongs to a batch that either committed
      // (sidecar redundant) or rolled back (sidecar garbage).
      if (std::remove((dir + "/" + name).c_str()) == 0 &&
          delta_files_removed != nullptr) {
        ++*delta_files_removed;
      }
    }
  }
  ::closedir(d);
  return removed;
}

util::Status MalformedManifest(const std::string& path,
                               const std::string& message) {
  return util::Status::Corruption("malformed manifest for " + path + ": " +
                                  message);
}

/// Every stored list must lie inside the (checksummed) pager file; a
/// manifest pointing past the end means one of the two files is stale.
bool ListInRange(const StoredList& list, uint32_t pages) {
  if (list.count == 0) return true;
  uint32_t record = list.layout.RecordSize();
  if (record == 0 || record > Pager::kPageSize) return false;
  if (list.format == ListFormat::kDelta) {
    // Delta lists locate records through the page directory; a manifest with
    // a non-monotone or truncated directory would send cursors to arbitrary
    // offsets, so reject it as decisively as an out-of-range page.
    if (list.page_first_entry.empty() ||
        list.page_first_entry.size() != list.page_first_start.size() ||
        list.page_first_entry.front() != 0 ||
        list.page_first_entry.back() >= list.count) {
      return false;
    }
    for (size_t p = 1; p < list.page_first_entry.size(); ++p) {
      if (list.page_first_entry[p] <= list.page_first_entry[p - 1] ||
          list.page_first_start[p] < list.page_first_start[p - 1]) {
        return false;
      }
    }
  } else if (!list.page_first_start.empty() &&
             list.page_first_start.size() != list.PageSpan()) {
    return false;
  }
  return list.first_page != kInvalidPage && list.first_page < pages &&
         list.PageSpan() <= pages - list.first_page;
}

}  // namespace

util::StatusOr<std::unique_ptr<ViewCatalog>> ViewCatalog::Open(
    const std::string& path, size_t pool_pages) {
  if (pool_pages == 0) {
    return util::Status::InvalidArgument(
        "cannot open catalog " + path + " with a zero-page buffer pool");
  }
  const std::string journal_path = ManifestJournal::PathFor(path);
  auto replayed = ManifestJournal::Replay(journal_path);
  if (!replayed.ok()) {
    if (replayed.status().code() == util::StatusCode::kNotFound) {
      return util::Status::NotFound("missing manifest for " + path);
    }
    return replayed.status();
  }
  ManifestReplayResult replay = std::move(*replayed);

  RecoveryReport report;
  report.orphan_shadows_removed =
      RemoveOrphanShadows(path, &report.orphan_delta_files_removed);
  report.rolled_back_update_batches = replay.rolled_back_update_batches;

  if (replay.legacy_text) {
    // Pre-journal text manifest: load with the legacy parser, then convert
    // the store to the journal format in place.
    auto catalog = std::unique_ptr<ViewCatalog>(new ViewCatalog(
        path, pool_pages, /*persistent=*/true, Pager::Mode::kReopen));
    if (!catalog->pager_->init_status().ok()) {
      return catalog->pager_->init_status();
    }
    util::Status loaded = catalog->LoadLegacyManifest();
    if (!loaded.ok()) return loaded;
    uint32_t pages = catalog->pager_->page_count();
    std::vector<ManifestViewRecord> records;
    records.reserve(catalog->views_.size());
    for (const auto& view : catalog->views_) {
      records.push_back(catalog->RecordFor(*view, pages));
    }
    util::Status converted = ManifestJournal::WriteCheckpoint(
        journal_path, records, {}, catalog->epoch());
    if (!converted.ok()) return converted;
    auto journal = ManifestJournal::OpenForAppend(journal_path,
                                                  /*valid_bytes=*/-1);
    if (!journal.ok()) return journal.status();
    catalog->journal_ = std::move(*journal);
    report.legacy_manifest_converted = true;
    catalog->recovery_ = std::move(report);
    return catalog;
  }

  // Roll the pager file back to the journal's durable prefix *before* the
  // pager validates it: a crash between the data append and the journal
  // commit leaves uncommitted tail pages (possibly a partial page) that
  // would otherwise be rejected as a truncated/oversized file.
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    const long expected =
        static_cast<long>(Pager::kHeaderSize) +
        static_cast<long>(replay.durable_page_count) *
            static_cast<long>(Pager::kPhysicalPageSize);
    if (st.st_size < expected) {
      return util::Status::Corruption(
          "manifest for " + path + " records " +
          std::to_string(replay.durable_page_count) +
          " durable pages but the pager file is shorter — journal and data "
          "file are out of step");
    }
    if (st.st_size > expected) {
      if (::truncate(path.c_str(), expected) != 0) {
        return util::Status::IoError("cannot roll back uncommitted pages of " +
                                     path + ": " + std::strerror(errno));
      }
      report.orphan_pages_truncated = static_cast<uint32_t>(
          (st.st_size - expected + Pager::kPhysicalPageSize - 1) /
          Pager::kPhysicalPageSize);
    }
  }

  auto catalog = std::unique_ptr<ViewCatalog>(new ViewCatalog(
      path, pool_pages, /*persistent=*/true, Pager::Mode::kReopen));
  if (!catalog->pager_->init_status().ok()) {
    return catalog->pager_->init_status();
  }

  report.journal_tail_truncated = replay.tail_torn;
  auto journal = ManifestJournal::OpenForAppend(journal_path,
                                                replay.valid_bytes);
  if (!journal.ok()) return journal.status();
  catalog->journal_ = std::move(*journal);

  const uint32_t pages = catalog->pager_->page_count();
  std::unordered_map<uint64_t, MaterializedView*> by_epoch;
  for (ManifestViewRecord& r : replay.installed) {
    std::optional<TreePattern> pattern = TreePattern::Parse(r.pattern);
    if (!pattern.has_value()) {
      return MalformedManifest(path, "unparsable view pattern " + r.pattern);
    }
    auto view = std::make_unique<MaterializedView>();
    view->pattern_ = *pattern;
    view->scheme_ = static_cast<Scheme>(r.scheme);
    view->epoch_ = r.epoch;
    view->match_count_ = r.match_count;
    view->size_bytes_ = r.size_bytes;
    view->pointer_count_ = r.pointer_count;
    view->list_lengths_ = std::move(r.list_lengths);
    view->lists_ = std::move(r.lists);
    view->tuple_list_ = r.tuple_list;
    for (const StoredList& list : view->lists_) {
      if (!ListInRange(list, pages)) {
        return MalformedManifest(path, "view " + r.pattern +
                                           " references pages beyond the "
                                           "pager file");
      }
    }
    if (!ListInRange(view->tuple_list_, pages)) {
      return MalformedManifest(path, "view " + r.pattern +
                                         " references pages beyond the pager "
                                         "file");
    }
    by_epoch[r.epoch] = view.get();
    catalog->views_.push_back(std::move(view));
  }
  for (uint64_t e : replay.quarantined) {
    auto it = by_epoch.find(e);
    if (it != by_epoch.end()) catalog->quarantined_.insert(it->second);
  }
  for (const auto& [old_epoch, new_epoch] : replay.replaced) {
    auto from = by_epoch.find(old_epoch);
    auto to = by_epoch.find(new_epoch);
    if (from != by_epoch.end() && to != by_epoch.end() &&
        from->second != to->second) {
      catalog->replacement_[from->second] = to->second;
    }
  }
  catalog->epoch_.store(std::max<uint64_t>(replay.last_epoch, 1),
                        std::memory_order_release);

  // Re-queue what recovery could not restore: rolled-back builds and
  // quarantined views with no healthy stand-in.
  std::set<std::pair<std::string, int>> seen;
  auto queue_rebuild = [&](const std::string& pattern, Scheme scheme) {
    if (seen.insert({pattern, static_cast<int>(scheme)}).second) {
      report.pending_rebuild.emplace_back(pattern, scheme);
    }
  };
  for (const auto& [pattern, scheme] : replay.rolled_back) {
    // A Begin with no Install at its epoch stays in the journal until the
    // next checkpoint; if a later attempt (new epoch) did commit the same
    // view, there is nothing left to rebuild.
    if (catalog->FindView(pattern, static_cast<Scheme>(scheme)) == nullptr) {
      queue_rebuild(pattern, static_cast<Scheme>(scheme));
    }
  }
  for (const MaterializedView* view : catalog->quarantined_) {
    const std::string pattern = view->pattern_.ToString();
    if (catalog->FindView(pattern, view->scheme_) == nullptr) {
      queue_rebuild(pattern, view->scheme_);
    }
  }
  // A v1 journal decodes fine, but appending v2-encoded records to it would
  // produce a mixed-version file no single header version describes.
  // Rewrite it wholesale at the current version before any append happens
  // (the views just built re-encode through the v2 writer; the data file is
  // untouched).
  if (replay.header_version < ManifestJournal::kFormatVersion) {
    util::Status upgraded = catalog->Checkpoint();
    if (!upgraded.ok()) return upgraded;
    report.journal_upgraded = true;
  }

  catalog->recovery_ = std::move(report);
  return catalog;
}

util::Status ViewCatalog::LoadLegacyManifest() {
  const std::string path = pager_->path();
  auto fail = [&path](const std::string& message) {
    return MalformedManifest(path, message);
  };
  std::FILE* in = std::fopen((path + ".manifest").c_str(), "r");
  if (in == nullptr) {
    return util::Status::NotFound("missing manifest for " + path);
  }
  char magic[16];
  int version = 0;
  size_t num_views = 0;
  bool ok = std::fscanf(in, "%15s %d %zu", magic, &version, &num_views) == 3 &&
            std::string(magic) == "VIEWJOINCAT" && version == 1;
  for (size_t v = 0; ok && v < num_views; ++v) {
    auto view = std::make_unique<MaterializedView>();
    int scheme = 0;
    char pattern_buf[512];
    ok = std::fscanf(in, " V %d %511s", &scheme, pattern_buf) == 2;
    if (!ok) break;
    std::optional<tpq::TreePattern> pattern =
        tpq::TreePattern::Parse(pattern_buf);
    if (!pattern.has_value()) {
      ok = false;
      break;
    }
    view->pattern_ = *pattern;
    view->scheme_ = static_cast<Scheme>(scheme);
    unsigned long long mc = 0, sb = 0, pc = 0;
    ok = std::fscanf(in, " M %llu %llu %llu", &mc, &sb, &pc) == 3;
    if (!ok) break;
    view->match_count_ = mc;
    view->size_bytes_ = sb;
    view->pointer_count_ = pc;
    ok = std::fscanf(in, " G") == 0;
    for (size_t q = 0; ok && q < view->pattern_.size(); ++q) {
      uint32_t len = 0;
      ok = std::fscanf(in, "%u", &len) == 1;
      view->list_lengths_.push_back(len);
    }
    size_t num_lists = 0;
    ok = ok && std::fscanf(in, " L %zu", &num_lists) == 1;
    auto load = [&](StoredList* list) {
      uint32_t hp = 0;
      return std::fscanf(in, "%u %u %u %u %u", &list->first_page,
                         &list->count, &list->layout.label_count, &hp,
                         &list->layout.child_count) == 5 &&
             ((list->layout.has_pointers = hp != 0), true);
    };
    for (size_t i = 0; ok && i < num_lists; ++i) {
      StoredList list;
      ok = load(&list);
      view->lists_.push_back(list);
    }
    ok = ok && load(&view->tuple_list_);
    if (ok) {
      view->epoch_ = AllocateEpoch();
      views_.push_back(std::move(view));
    }
  }
  std::fclose(in);
  if (!ok) return fail("truncated or unparsable view records");
  uint32_t pages = pager_->page_count();
  for (const auto& view : views_) {
    for (const StoredList& list : view->lists_) {
      if (!ListInRange(list, pages)) {
        return fail("view " + view->pattern_.ToString() +
                    " references pages beyond the pager file");
      }
    }
    if (!ListInRange(view->tuple_list_, pages)) {
      return fail("view " + view->pattern_.ToString() +
                  " references pages beyond the pager file");
    }
  }
  return util::Status::Ok();
}

IoStats ViewCatalog::Stats() const {
  IoStats stats = pager_->stats();
  stats.pool_hits = pool_->hits();
  stats.pool_misses = pool_->misses();
  stats.prefetch_issued = pool_->prefetch_issued();
  stats.prefetch_hits = pool_->prefetch_hits();
  stats.prefetch_wasted = pool_->prefetch_wasted();
  return stats;
}

void ViewCatalog::ResetStats() {
  pager_->ResetStats();
  pool_->ResetStats();
}

// ---- Shadow installation ---------------------------------------------------

namespace {

/// Writes `size` bytes to `tmp_path` and makes them durable. Best-effort
/// cleanup on failure (this is a genuine error path, not a simulated crash).
util::Status WriteShadowFile(const std::string& tmp_path, const uint8_t* data,
                             size_t size) {
  if (util::FaultInjector::Global().OnDiskCharge(size)) {
    // Full disk before the staging file exists: nothing to clean up, and the
    // typed code lets the engine abort the batch instead of quarantining.
    return util::Status::ResourceExhausted(
        "cannot write shadow file " + tmp_path +
        ": no space left on device (injected)");
  }
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::IoError("cannot create shadow file " + tmp_path +
                                 ": " + std::strerror(errno));
  }
  errno = 0;
  bool ok = size == 0 || std::fwrite(data, 1, size, file) == size;
  ok = ok && std::fflush(file) == 0 && ::fsync(fileno(file)) == 0;
  int err = errno;
  std::fclose(file);
  if (!ok) {
    std::remove(tmp_path.c_str());
    if (err == ENOSPC) {
      return util::Status::ResourceExhausted("cannot write shadow file " +
                                             tmp_path +
                                             ": no space left on device");
    }
    return util::Status::IoError("cannot write shadow file " + tmp_path);
  }
  return util::Status::Ok();
}

}  // namespace

util::StatusOr<const MaterializedView*> ViewCatalog::InstallView(
    std::unique_ptr<MaterializedView> view, StagedPages& staged) {
  auto& injector = util::FaultInjector::Global();
  std::lock_guard<std::mutex> install_lock(install_mu_);

  const uint64_t epoch = AllocateEpoch();
  view->epoch_ = epoch;
  const long journal_mark =
      journal_ != nullptr ? journal_->AppendOffset() : -1;
  if (journal_ != nullptr) {
    // Intent record first: if the rest of the install never commits, replay
    // finds a begin without an install and re-queues the pattern.
    util::Status begun =
        journal_->AppendBegin(epoch, static_cast<uint8_t>(view->scheme_),
                              view->pattern_.ToString());
    if (!begun.ok()) return begun;
  }

  // Rebase the staged lists onto their final page ids and encode the pages
  // with those ids stamped in the footers — the bytes appended below are
  // byte-identical to what page-at-a-time writes would have produced.
  const PageId base = pager_->page_count();
  for (StoredList& list : view->lists_) {
    if (list.count != 0) list.first_page += base;
  }
  if (view->tuple_list_.count != 0) view->tuple_list_.first_page += base;
  std::vector<uint8_t> phys(static_cast<size_t>(staged.page_count) *
                            Pager::kPhysicalPageSize);
  for (uint32_t p = 0; p < staged.page_count; ++p) {
    Pager::EncodePhysicalPage(
        base + p,
        staged.payload.data() + static_cast<size_t>(p) * Pager::kPageSize,
        phys.data() + static_cast<size_t>(p) * Pager::kPhysicalPageSize);
  }

  const std::string shadow =
      pager_->path() + ".shadow." + std::to_string(epoch);
  // A returned ENOSPC is an in-process abort, not a crash: the process is
  // alive to undo its own partial transaction, so roll the store back to
  // exactly its pre-install state (no orphan pages, no sealed shadow, no
  // dangling begin record) and fsck finds nothing to repair. Every other
  // failure kind — injected crashes above all — must keep leaving the
  // artifacts a dying process would, because recovery is what handles them.
  auto abort_on_no_space = [&](const util::Status& status) {
    if (status.code() != util::StatusCode::kResourceExhausted) return;
    (void)pager_->TruncateToPageCount(base);
    std::remove(shadow.c_str());
    if (journal_ != nullptr && journal_mark >= 0) {
      (void)journal_->TruncateTo(journal_mark);
    }
  };
  const bool shadowed = journal_ != nullptr && staged.page_count > 0;
  if (shadowed) {
    const std::string tmp = shadow + ".tmp";
    util::Status staged_ok = WriteShadowFile(tmp, phys.data(), phys.size());
    if (!staged_ok.ok()) {
      abort_on_no_space(staged_ok);
      return staged_ok;
    }
    if (injector.AtCrashPoint(util::CrashPoint::kCrashBeforeRename)) {
      // Crash with the shadow fully written but unsealed: recovery must
      // treat the .tmp as garbage and roll the view back.
      return util::Status::IoError("injected crash before shadow rename (" +
                                   tmp + ")");
    }
    if (std::rename(tmp.c_str(), shadow.c_str()) != 0) {
      util::Status renamed = util::Status::IoError(
          "cannot seal shadow file " + shadow + ": " + std::strerror(errno));
      std::remove(tmp.c_str());
      return renamed;
    }
    if (injector.AtCrashPoint(util::CrashPoint::kCrashAfterRename)) {
      // Crash with a sealed shadow but nothing in the main file: recovery
      // must delete the orphan shadow and roll the view back.
      return util::Status::IoError("injected crash after shadow rename (" +
                                   shadow + ")");
    }
  }

  if (staged.page_count > 0) {
    util::Status appended =
        pager_->AppendPhysicalPages(phys.data(), staged.page_count);
    if (appended.ok() && journal_ != nullptr) appended = pager_->Sync();
    if (!appended.ok()) {
      if (shadowed) std::remove(shadow.c_str());
      abort_on_no_space(appended);
      return appended;
    }
  }
  if (injector.AtCrashPoint(util::CrashPoint::kCrashAfterDataSync)) {
    // Crash with the pages durable but uncommitted: recovery must truncate
    // them away (they are unreferenced dead bytes) and roll the view back.
    return util::Status::IoError(
        "injected crash after data sync, before journal commit");
  }

  if (journal_ != nullptr) {
    util::Status committed =
        journal_->AppendInstall(RecordFor(*view, pager_->page_count()));
    if (!committed.ok()) {
      // Mid-journal crash injection surfaces here: leave everything exactly
      // as a dying process would (sealed shadow, appended pages, torn
      // record) for recovery to clean up. A typed ENOSPC instead aborts
      // cleanly — see abort_on_no_space above.
      abort_on_no_space(committed);
      return committed;
    }
    if (shadowed) std::remove(shadow.c_str());
  }

  const MaterializedView* result = view.get();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    views_.push_back(std::move(view));
  }
  return result;
}

// ---- Materialization -------------------------------------------------------

namespace {

void AppendU32(std::vector<uint8_t>* out, uint32_t value) {
  uint8_t buf[4];
  std::memcpy(buf, &value, 4);
  out->insert(out->end(), buf, buf + 4);
}

void AppendLabel(std::vector<uint8_t>* out, const Label& label) {
  AppendU32(out, label.start);
  AppendU32(out, label.end);
  AppendU32(out, label.level);
}

/// Streams tuple-scheme matches straight into the record byte buffer.
class TupleWriterSink : public tpq::MatchSink {
 public:
  TupleWriterSink(const Document& doc, std::vector<uint8_t>* out)
      : doc_(doc), out_(out) {}

  void OnMatch(const tpq::Match& match) override {
    for (NodeId n : match) AppendLabel(out_, doc_.NodeLabel(n));
    ++count_;
  }

  uint64_t count() const { return count_; }

 private:
  const Document& doc_;
  std::vector<uint8_t>* out_;
  uint64_t count_ = 0;
};

/// First index j in `labels` with labels[j].start > bound, starting the
/// binary search at `from`.
size_t FirstStartAfter(const std::vector<Label>& labels, size_t from,
                       uint32_t bound) {
  return static_cast<size_t>(
      std::lower_bound(labels.begin() + static_cast<ptrdiff_t>(from),
                       labels.end(), bound,
                       [](const Label& l, uint32_t b) { return l.start <= b; }) -
      labels.begin());
}

/// Encodes the stored records of view node q — labels plus, for the linked
/// schemes, the following/descendant/child pointers recomputed from the
/// given solution labels of *every* node. Shared by initial materialization
/// and delta maintenance (merged lists re-enter here, so freshly patched
/// lists carry exactly the pointers a from-scratch build would).
/// InvalidArgument when a child pointer has no target: the lists are not a
/// consistent view instance (e.g. a delta removed a child but not its
/// parent match).
util::StatusOr<std::vector<uint8_t>> EncodeListRecords(
    const TreePattern& pattern, const std::vector<std::vector<Label>>& labels,
    size_t q, Scheme scheme, uint64_t* pointer_count) {
  const bool with_pointers = scheme != Scheme::kElement;
  const bool partial = scheme == Scheme::kLinkedElementPartial;
  const std::vector<Label>& lq = labels[q];
  const tpq::PatternNode& pn = pattern.node(static_cast<int>(q));
  RecordLayout layout;
  layout.label_count = 1;
  layout.has_pointers = with_pointers;
  layout.child_count =
      with_pointers ? static_cast<uint32_t>(pn.children.size()) : 0;
  std::vector<uint8_t> bytes;
  bytes.reserve(lq.size() * layout.RecordSize());
  for (size_t i = 0; i < lq.size(); ++i) {
    AppendLabel(&bytes, lq[i]);
    if (!with_pointers) continue;
    // Following pointer: first entry starting after this node ends.
    EntryIndex follow = kNullEntry;
    size_t j = FirstStartAfter(lq, i + 1, lq[i].end);
    if (j < lq.size()) follow = static_cast<EntryIndex>(j);
    if (partial && follow != kNullEntry && follow <= i + 1) {
      follow = kNullEntry;  // adjacent targets are not materialized in LE_p
    }
    if (follow != kNullEntry) ++*pointer_count;
    AppendU32(&bytes, follow);
    // Descendant pointer: the next entry iff it is nested in this one.
    EntryIndex desc = kNullEntry;
    if (i + 1 < lq.size() && lq[i + 1].start < lq[i].end) {
      desc = static_cast<EntryIndex>(i + 1);
    }
    if (partial) desc = kNullEntry;  // always one entry away
    if (desc != kNullEntry) ++*pointer_count;
    AppendU32(&bytes, desc);
    // Child pointers: first matching child/descendant entry per pc/ad
    // child of q in the view. Never null for a consistent view instance
    // (every stored node participates in at least one view match).
    for (int c : pn.children) {
      const std::vector<Label>& lc = labels[static_cast<size_t>(c)];
      size_t k = FirstStartAfter(lc, 0, lq[i].start);
      EntryIndex child = kNullEntry;
      if (pattern.node(c).incoming == tpq::Axis::kDescendant) {
        if (k < lc.size() && lc[k].start < lq[i].end) {
          child = static_cast<EntryIndex>(k);
        }
      } else {
        while (k < lc.size() && lc[k].start < lq[i].end) {
          if (lc[k].level == lq[i].level + 1) {
            child = static_cast<EntryIndex>(k);
            break;
          }
          ++k;
        }
      }
      if (child == kNullEntry) {
        return util::Status::InvalidArgument(
            "missing child pointer target in view " + pattern.ToString() +
            ": solution lists are not a consistent view instance");
      }
      ++*pointer_count;
      AppendU32(&bytes, child);
    }
  }
  return bytes;
}

}  // namespace

const MaterializedView* ViewCatalog::Materialize(const Document& doc,
                                                 const TreePattern& pattern,
                                                 Scheme scheme) {
  util::StatusOr<const MaterializedView*> result =
      TryMaterialize(doc, pattern, scheme);
  VJ_CHECK(result.ok()) << "materialization of " << pattern.ToString()
                        << " failed: " << result.status().ToString();
  return *result;
}

util::StatusOr<const MaterializedView*> ViewCatalog::TryMaterialize(
    const Document& doc, const TreePattern& pattern, Scheme scheme) {
  VJ_CHECK(pattern.HasUniqueTags())
      << "view patterns must have unique element types: " << pattern.ToString();
  tpq::NaiveEvaluator evaluator(doc, pattern);

  if (scheme == Scheme::kTuple) {
    auto view = std::make_unique<MaterializedView>();
    view->pattern_ = pattern;
    view->scheme_ = scheme;
    std::vector<uint8_t> bytes;
    TupleWriterSink sink(doc, &bytes);
    evaluator.Evaluate(&sink);
    RecordLayout layout;
    layout.label_count = static_cast<uint32_t>(pattern.size());
    StagedPages staged;
    util::StatusOr<StoredList> tuples =
        StageList(staged, bytes, layout, static_cast<uint32_t>(sink.count()),
                  list_format_);
    if (!tuples.ok()) return tuples.status();
    view->tuple_list_ = *tuples;
    view->match_count_ = sink.count();
    view->size_bytes_ = sink.count() * 12ull * pattern.size();
    // The per-node solution list lengths still drive the cost model.
    std::vector<std::vector<NodeId>> solutions = evaluator.SolutionNodes();
    for (const auto& list : solutions) {
      view->list_lengths_.push_back(static_cast<uint32_t>(list.size()));
    }
    return InstallView(std::move(view), staged);
  }

  // Element-list based schemes. Gather solution node lists and their labels.
  std::vector<std::vector<NodeId>> solutions = evaluator.SolutionNodes();
  return TryMaterializeFromLists(doc, pattern, solutions, scheme);
}

const MaterializedView* ViewCatalog::MaterializeFromLists(
    const Document& doc, const TreePattern& pattern,
    const std::vector<std::vector<NodeId>>& solutions, Scheme scheme) {
  util::StatusOr<const MaterializedView*> result =
      TryMaterializeFromLists(doc, pattern, solutions, scheme);
  VJ_CHECK(result.ok()) << "materialization of " << pattern.ToString()
                        << " failed: " << result.status().ToString();
  return *result;
}

util::StatusOr<std::unique_ptr<MaterializedView>> ViewCatalog::StageListView(
    const TreePattern& pattern, Scheme scheme,
    const std::vector<std::vector<Label>>& labels, StagedPages& staged) {
  VJ_CHECK(scheme != Scheme::kTuple)
      << "StageListView supports the list schemes only";
  VJ_CHECK_EQ(labels.size(), pattern.size());
  auto view = std::make_unique<MaterializedView>();
  view->pattern_ = pattern;
  view->scheme_ = scheme;
  view->match_count_ = 0;  // not tracked for list schemes (cheap to recount)
  const size_t nq = pattern.size();
  const bool with_pointers = scheme != Scheme::kElement;
  view->lists_.resize(nq);
  for (size_t q = 0; q < nq; ++q) {
    view->list_lengths_.push_back(static_cast<uint32_t>(labels[q].size()));
    view->size_bytes_ += 12ull * labels[q].size();
    const tpq::PatternNode& pn = pattern.node(static_cast<int>(q));
    RecordLayout layout;
    layout.label_count = 1;
    layout.has_pointers = with_pointers;
    layout.child_count =
        with_pointers ? static_cast<uint32_t>(pn.children.size()) : 0;
    util::StatusOr<std::vector<uint8_t>> bytes =
        EncodeListRecords(pattern, labels, q, scheme, &view->pointer_count_);
    if (!bytes.ok()) return bytes.status();
    util::StatusOr<StoredList> staged_list =
        StageList(staged, *bytes, layout,
                  static_cast<uint32_t>(labels[q].size()), list_format_);
    if (!staged_list.ok()) return staged_list.status();
    view->lists_[q] = *staged_list;
  }
  view->size_bytes_ += 4ull * view->pointer_count_;
  return view;
}

util::StatusOr<const MaterializedView*> ViewCatalog::TryMaterializeFromLists(
    const Document& doc, const TreePattern& pattern,
    const std::vector<std::vector<NodeId>>& solutions, Scheme scheme) {
  VJ_CHECK(scheme != Scheme::kTuple)
      << "MaterializeFromLists supports the list schemes only";
  VJ_CHECK_EQ(solutions.size(), pattern.size());
  const size_t nq = pattern.size();
  std::vector<std::vector<Label>> labels(nq);
  for (size_t q = 0; q < nq; ++q) {
    labels[q].reserve(solutions[q].size());
    for (NodeId n : solutions[q]) labels[q].push_back(doc.NodeLabel(n));
  }
  StagedPages staged;
  util::StatusOr<std::unique_ptr<MaterializedView>> view =
      StageListView(pattern, scheme, labels, staged);
  if (!view.ok()) return view.status();
  return InstallView(std::move(*view), staged);
}

// ---- Incremental maintenance (ApplyUpdateBatch) ----------------------------

namespace {

/// Merges start-sorted `removed`/`added` deltas into the start-sorted
/// `old_labels`. Every removed start must name a present label and every
/// added start must be new — anything else means the delta and the stored
/// list disagree about the pre-update state, which would silently corrupt
/// the view if merged anyway.
util::StatusOr<std::vector<Label>> MergeDelta(
    const std::vector<Label>& old_labels, const std::vector<Label>& removed,
    const std::vector<Label>& added, const std::string& what) {
  std::vector<Label> merged;
  merged.reserve(old_labels.size() + added.size());
  size_t r = 0;
  size_t a = 0;
  for (const Label& l : old_labels) {
    if (r < removed.size() && removed[r].start < l.start) {
      return util::Status::InvalidArgument(
          "delta for " + what + " removes a label (start " +
          std::to_string(removed[r].start) + ") the stored list does not hold");
    }
    while (a < added.size() && added[a].start < l.start) {
      merged.push_back(added[a++]);
    }
    if (a < added.size() && added[a].start == l.start) {
      return util::Status::InvalidArgument(
          "delta for " + what + " adds a label (start " +
          std::to_string(added[a].start) + ") the stored list already holds");
    }
    if (r < removed.size() && removed[r].start == l.start) {
      ++r;
      continue;
    }
    merged.push_back(l);
  }
  if (r < removed.size()) {
    return util::Status::InvalidArgument(
        "delta for " + what + " removes a label (start " +
        std::to_string(removed[r].start) + ") the stored list does not hold");
  }
  while (a < added.size()) merged.push_back(added[a++]);
  return merged;
}

// Delta spill sidecar ("<pager>.updatedelta"): big update batches stage
// their serialized deltas on disk instead of holding two copies in memory.
// Layout: magic "VJUPDELT" | u32 spec_count | per spec (u32 nq, per node:
// u32 added_count, labels..., u32 removed_count, labels...) | u32 CRC32 of
// everything after the magic. The file is pure staging: recovery deletes
// any survivor, torn or whole.

constexpr char kDeltaMagic[8] = {'V', 'J', 'U', 'P', 'D', 'E', 'L', 'T'};

void PutLabelVec(std::vector<uint8_t>* out, const std::vector<Label>& v) {
  AppendU32(out, static_cast<uint32_t>(v.size()));
  for (const Label& l : v) AppendLabel(out, l);
}

std::vector<uint8_t> EncodeDeltaSidecar(
    const std::vector<const ViewCatalog::ListDeltas*>& deltas) {
  std::vector<uint8_t> out(kDeltaMagic, kDeltaMagic + sizeof(kDeltaMagic));
  AppendU32(&out, static_cast<uint32_t>(deltas.size()));
  for (const ViewCatalog::ListDeltas* d : deltas) {
    if (d == nullptr) {
      AppendU32(&out, 0);
      continue;
    }
    AppendU32(&out, static_cast<uint32_t>(d->added.size()));
    for (size_t q = 0; q < d->added.size(); ++q) {
      PutLabelVec(&out, d->added[q]);
      PutLabelVec(&out, d->removed[q]);
    }
  }
  AppendU32(&out, util::Crc32(out.data() + sizeof(kDeltaMagic),
                              out.size() - sizeof(kDeltaMagic)));
  return out;
}

util::StatusOr<std::vector<ViewCatalog::ListDeltas>> DecodeDeltaSidecar(
    const std::vector<uint8_t>& bytes, const std::string& path) {
  auto torn = [&path]() {
    return util::Status::Corruption("delta spill file " + path +
                                    " is torn or corrupt");
  };
  if (bytes.size() < sizeof(kDeltaMagic) + 8 ||
      std::memcmp(bytes.data(), kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    return torn();
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (stored_crc != util::Crc32(bytes.data() + sizeof(kDeltaMagic),
                                bytes.size() - sizeof(kDeltaMagic) - 4)) {
    return torn();
  }
  size_t pos = sizeof(kDeltaMagic);
  const size_t end = bytes.size() - 4;
  auto read_u32 = [&](uint32_t* v) {
    if (end - pos < 4) return false;
    std::memcpy(v, bytes.data() + pos, 4);
    pos += 4;
    return true;
  };
  auto read_labels = [&](std::vector<Label>* v) {
    uint32_t n = 0;
    if (!read_u32(&n) || (end - pos) / 12 < n) return false;
    v->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Label l;
      std::memcpy(&l.start, bytes.data() + pos, 4);
      std::memcpy(&l.end, bytes.data() + pos + 4, 4);
      std::memcpy(&l.level, bytes.data() + pos + 8, 4);
      pos += 12;
      v->push_back(l);
    }
    return true;
  };
  uint32_t spec_count = 0;
  if (!read_u32(&spec_count)) return torn();
  std::vector<ViewCatalog::ListDeltas> deltas(spec_count);
  for (uint32_t s = 0; s < spec_count; ++s) {
    uint32_t nq = 0;
    if (!read_u32(&nq)) return torn();
    deltas[s].added.resize(nq);
    deltas[s].removed.resize(nq);
    for (uint32_t q = 0; q < nq; ++q) {
      if (!read_labels(&deltas[s].added[q]) ||
          !read_labels(&deltas[s].removed[q])) {
        return torn();
      }
    }
  }
  if (pos != end) return torn();
  return deltas;
}

util::StatusOr<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::Status::IoError("cannot open " + path + ": " +
                                 std::strerror(errno));
  }
  std::fseek(file, 0, SEEK_END);
  long size = std::ftell(file);
  std::rewind(file);
  std::vector<uint8_t> bytes(static_cast<size_t>(size < 0 ? 0 : size));
  size_t got = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  if (got != bytes.size()) {
    return util::Status::IoError("cannot read " + path);
  }
  return bytes;
}

}  // namespace

util::StatusOr<std::unique_ptr<MaterializedView>>
ViewCatalog::StageMergedElementView(const MaterializedView& old,
                                    const ListDeltas& deltas,
                                    StagedPages& staged) {
  VJ_CHECK(old.scheme() == Scheme::kElement)
      << "prefix-preserving merge requires the pointerless E scheme";
  const TreePattern& pattern = old.pattern();
  const size_t nq = pattern.size();
  auto view = std::make_unique<MaterializedView>();
  view->pattern_ = pattern;
  view->scheme_ = Scheme::kElement;
  view->match_count_ = 0;  // not tracked for list schemes (cheap to recount)
  view->lists_.resize(nq);
  for (size_t q = 0; q < nq; ++q) {
    const StoredList& old_list = old.list(static_cast<int>(q));
    const std::vector<Label>& added = deltas.added[q];
    const std::vector<Label>& removed = deltas.removed[q];
    RecordLayout layout;
    layout.label_count = 1;

    // Prefix reuse needs per-page fence keys to prove a page holds only
    // labels below the first change; v1 lists without fences re-encode
    // fully (prefix_pages stays 0).
    const uint32_t old_pages = old_list.PageSpan();
    const bool fenced =
        old_list.count > 0 && old_list.page_first_start.size() == old_pages &&
        (old_list.format != ListFormat::kDelta ||
         old_list.page_first_entry.size() == old_pages);
    uint32_t prefix_pages = 0;
    if (fenced) {
      if (added.empty() && removed.empty()) {
        prefix_pages = old_pages;  // untouched list: copy page-for-page
      } else {
        uint32_t first_change = 0xFFFFFFFFu;
        if (!removed.empty()) first_change = removed[0].start;
        if (!added.empty())
          first_change = std::min(first_change, added[0].start);
        // Pages [0, p) hold only labels strictly below fence p (starts are
        // strictly increasing), so every page before the last fence <=
        // first_change is reusable; the page containing the first change —
        // and everything after it — is re-encoded.
        auto it = std::upper_bound(old_list.page_first_start.begin(),
                                   old_list.page_first_start.end(),
                                   first_change);
        if (it != old_list.page_first_start.begin()) {
          prefix_pages =
              static_cast<uint32_t>(it - old_list.page_first_start.begin()) -
              1;
        }
      }
    }
    const uint32_t prefix_entries = prefix_pages >= old_pages
                                        ? old_list.count
                                        : old_list.FirstEntryOfPage(prefix_pages);

    // Raw-copy the reusable prefix pages into the staging area.
    const uint32_t rel_first_page = staged.page_count;
    if (prefix_pages > 0) {
      staged.payload.resize(
          static_cast<size_t>(staged.page_count + prefix_pages) *
              Pager::kPageSize,
          0);
      for (uint32_t p = 0; p < prefix_pages; ++p) {
        BufferPool::PinnedPage pin;
        util::Status fetched = pool_->Fetch(old_list.first_page + p, &pin);
        if (!fetched.ok()) return fetched;
        std::memcpy(staged.payload.data() +
                        static_cast<size_t>(staged.page_count + p) *
                            Pager::kPageSize,
                    pin.data(), Pager::kPageSize);
      }
      staged.page_count += prefix_pages;
    }

    // Read the affected suffix, merge the deltas, re-encode it as fresh
    // pages directly behind the prefix (one contiguous staged run).
    std::vector<Label> tail_old;
    tail_old.reserve(old_list.count - prefix_entries);
    ListCursor cursor(&old_list, pool_.get());
    cursor.Seek(prefix_entries);
    if (cursor.block_capable()) {
      while (!cursor.AtEnd()) {
        const BlockView block = cursor.CurrentBlock();
        const uint32_t off = cursor.index() - block.first;
        for (uint32_t j = off; j < block.count; ++j) {
          tail_old.push_back({block.starts[j], block.ends[j], block.levels[j]});
        }
        cursor.Seek(block.first + block.count);
      }
    }
    while (!cursor.AtEnd()) {
      tail_old.push_back(cursor.LabelAt(0));
      cursor.Next();
    }
    util::StatusOr<std::vector<Label>> merged = MergeDelta(
        tail_old, removed, added,
        pattern.ToString() + " node " + std::to_string(q));
    if (!merged.ok()) return merged.status();

    StoredList list;
    list.layout = layout;
    list.format = old_list.format;
    list.count = prefix_entries + static_cast<uint32_t>(merged->size());
    if (list.count == 0) {
      list.first_page = kInvalidPage;
    } else {
      list.first_page = rel_first_page;  // relative until installed
      list.page_first_start.assign(
          old_list.page_first_start.begin(),
          old_list.page_first_start.begin() + prefix_pages);
      if (old_list.format == ListFormat::kDelta) {
        list.page_first_entry.assign(
            old_list.page_first_entry.begin(),
            old_list.page_first_entry.begin() + prefix_pages);
      }
      if (!merged->empty()) {
        std::vector<uint8_t> bytes;
        bytes.reserve(merged->size() * 12);
        for (const Label& l : *merged) AppendLabel(&bytes, l);
        util::StatusOr<StoredList> tail =
            StageList(staged, bytes, layout,
                      static_cast<uint32_t>(merged->size()), old_list.format);
        if (!tail.ok()) return tail.status();
        list.page_first_start.insert(list.page_first_start.end(),
                                     tail->page_first_start.begin(),
                                     tail->page_first_start.end());
        for (uint32_t e : tail->page_first_entry) {
          list.page_first_entry.push_back(e + prefix_entries);
        }
      }
    }
    view->lists_[q] = list;
    view->list_lengths_.push_back(list.count);
    view->size_bytes_ += 12ull * list.count;
  }
  return view;
}

util::StatusOr<ViewCatalog::UpdateBatchResult> ViewCatalog::ApplyUpdateBatch(
    const Document& doc, const std::vector<ViewUpdateSpec>& specs,
    const UpdateBatchOptions& options) {
  if (specs.empty()) {
    return util::Status::InvalidArgument("empty update batch");
  }
  auto& injector = util::FaultInjector::Global();
  // One lock across staging AND install: the batch must observe a frozen
  // catalog (page ids, epochs) from first delta read to commit record.
  std::lock_guard<std::mutex> install_lock(install_mu_);

  UpdateBatchResult result;

  // ---- Validate specs ------------------------------------------------------
  for (const ViewUpdateSpec& spec : specs) {
    if (spec.view == nullptr) {
      return util::Status::InvalidArgument("update spec without a view");
    }
    const size_t nq = spec.view->pattern().size();
    if (spec.view->scheme() == Scheme::kTuple && !spec.full_rebuild) {
      return util::Status::InvalidArgument(
          "T-scheme view " + spec.view->pattern().ToString() +
          " cannot be delta-maintained; request full_rebuild");
    }
    if (spec.full_rebuild) {
      if (spec.view->scheme() != Scheme::kTuple && spec.solutions.size() != nq) {
        return util::Status::InvalidArgument(
            "full rebuild of " + spec.view->pattern().ToString() +
            " needs one solution list per pattern node");
      }
    } else if (spec.deltas.added.size() != nq ||
               spec.deltas.removed.size() != nq) {
      return util::Status::InvalidArgument(
          "delta for " + spec.view->pattern().ToString() +
          " needs one added+removed list per pattern node");
    }
  }

  // ---- Spill large deltas through the on-disk sidecar ----------------------
  // The merge below then consumes the re-read, CRC-verified copy, so the
  // spill path is exercised end to end whenever it is taken.
  std::vector<const ListDeltas*> delta_for(specs.size(), nullptr);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (!specs[i].full_rebuild) delta_for[i] = &specs[i].deltas;
  }
  const std::string sidecar = pager_->path() + ".updatedelta";
  std::vector<ListDeltas> spilled;
  bool sidecar_on_disk = false;
  if (persistent_) {
    std::vector<uint8_t> serialized = EncodeDeltaSidecar(delta_for);
    if (serialized.size() > options.delta_spill_bytes) {
      util::Status written =
          WriteShadowFile(sidecar, serialized.data(), serialized.size());
      if (!written.ok()) return written;
      sidecar_on_disk = true;
      util::StatusOr<std::vector<uint8_t>> reread = ReadWholeFile(sidecar);
      if (!reread.ok()) return reread.status();
      util::StatusOr<std::vector<ListDeltas>> decoded =
          DecodeDeltaSidecar(*reread, sidecar);
      if (!decoded.ok()) return decoded.status();
      spilled = std::move(*decoded);
      for (size_t i = 0; i < specs.size(); ++i) {
        if (delta_for[i] != nullptr) delta_for[i] = &spilled[i];
      }
      result.deltas_spilled = true;
    }
  }
  // From here on the sidecar (if any) must be removed on every non-crash
  // exit; injected crashes leave it for recovery, like the shadow file.
  auto remove_sidecar = [&]() {
    if (sidecar_on_disk) std::remove(sidecar.c_str());
  };

  // ---- Stage every new view into one page run ------------------------------
  StagedPages staged;
  std::vector<std::unique_ptr<MaterializedView>> new_views;
  new_views.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const ViewUpdateSpec& spec = specs[i];
    const MaterializedView& old = *spec.view;
    const TreePattern& pattern = old.pattern();
    if (spec.full_rebuild && old.scheme() == Scheme::kTuple) {
      tpq::NaiveEvaluator evaluator(doc, pattern);
      auto view = std::make_unique<MaterializedView>();
      view->pattern_ = pattern;
      view->scheme_ = Scheme::kTuple;
      std::vector<uint8_t> bytes;
      TupleWriterSink sink(doc, &bytes);
      evaluator.Evaluate(&sink);
      RecordLayout layout;
      layout.label_count = static_cast<uint32_t>(pattern.size());
      util::StatusOr<StoredList> tuples =
          StageList(staged, bytes, layout, static_cast<uint32_t>(sink.count()),
                    list_format_);
      if (!tuples.ok()) {
        remove_sidecar();
        return tuples.status();
      }
      view->tuple_list_ = *tuples;
      view->match_count_ = sink.count();
      view->size_bytes_ = sink.count() * 12ull * pattern.size();
      for (const auto& list : evaluator.SolutionNodes()) {
        view->list_lengths_.push_back(static_cast<uint32_t>(list.size()));
      }
      new_views.push_back(std::move(view));
      ++result.fully_rebuilt;
      continue;
    }
    if (!spec.full_rebuild && old.scheme() == Scheme::kElement) {
      // E-scheme delta merge: reuse encoded pages below the first changed
      // label instead of decoding and re-encoding whole lists.
      util::StatusOr<std::unique_ptr<MaterializedView>> view =
          StageMergedElementView(old, *delta_for[i], staged);
      if (!view.ok()) {
        remove_sidecar();
        return view.status();
      }
      new_views.push_back(std::move(*view));
      ++result.delta_maintained;
      continue;
    }
    std::vector<std::vector<Label>> labels(pattern.size());
    if (spec.full_rebuild) {
      for (size_t q = 0; q < pattern.size(); ++q) {
        labels[q].reserve(spec.solutions[q].size());
        for (NodeId n : spec.solutions[q]) labels[q].push_back(doc.NodeLabel(n));
      }
      ++result.fully_rebuilt;
    } else {
      // Sorted-merge the deltas into the stored lists. Block-capable
      // cursors hand back whole decoded pages as struct-of-arrays spans —
      // one decode per page instead of one block lookup per record; scalar
      // cursors and multi-label layouts fall back to record-at-a-time.
      for (size_t q = 0; q < pattern.size(); ++q) {
        std::vector<Label> old_labels;
        old_labels.reserve(old.ListLength(static_cast<int>(q)));
        ListCursor cursor(&old.list(static_cast<int>(q)), pool_.get());
        if (cursor.block_capable() &&
            old.list(static_cast<int>(q)).layout.label_count == 1) {
          while (!cursor.AtEnd()) {
            const BlockView block = cursor.CurrentBlock();
            const uint32_t off = cursor.index() - block.first;
            for (uint32_t j = off; j < block.count; ++j) {
              old_labels.push_back(
                  {block.starts[j], block.ends[j], block.levels[j]});
            }
            cursor.Seek(block.first + block.count);
          }
        }
        while (!cursor.AtEnd()) {
          old_labels.push_back(cursor.LabelAt(0));
          cursor.Next();
        }
        util::StatusOr<std::vector<Label>> merged = MergeDelta(
            old_labels, delta_for[i]->removed[q], delta_for[i]->added[q],
            pattern.ToString() + " node " + std::to_string(q));
        if (!merged.ok()) {
          remove_sidecar();
          return merged.status();
        }
        labels[q] = std::move(*merged);
      }
      ++result.delta_maintained;
    }
    util::StatusOr<std::unique_ptr<MaterializedView>> view =
        StageListView(pattern, old.scheme(), labels, staged);
    if (!view.ok()) {
      remove_sidecar();
      return view.status();
    }
    new_views.push_back(std::move(*view));
  }

  // ---- Transaction: begin, data, installs, commit --------------------------
  const uint64_t ue = AllocateEpoch();
  result.txn_epoch = ue;
  const long journal_mark =
      journal_ != nullptr ? journal_->AppendOffset() : -1;
  if (journal_ != nullptr) {
    util::Status begun =
        journal_->AppendUpdateBegin(ue, static_cast<uint32_t>(specs.size()));
    if (!begun.ok()) {
      remove_sidecar();
      return begun;
    }
  }

  // Rebase all staged lists onto their final page ids and encode the pages.
  const PageId base = pager_->page_count();
  for (auto& view : new_views) {
    for (StoredList& list : view->lists_) {
      if (list.count != 0) list.first_page += base;
    }
    if (view->tuple_list_.count != 0) view->tuple_list_.first_page += base;
  }
  std::vector<uint8_t> phys(static_cast<size_t>(staged.page_count) *
                            Pager::kPhysicalPageSize);
  for (uint32_t p = 0; p < staged.page_count; ++p) {
    Pager::EncodePhysicalPage(
        base + p,
        staged.payload.data() + static_cast<size_t>(p) * Pager::kPageSize,
        phys.data() + static_cast<size_t>(p) * Pager::kPhysicalPageSize);
  }

  // One shadow for the whole batch, named after the transaction epoch.
  const std::string shadow = pager_->path() + ".shadow." + std::to_string(ue);
  // In-process abort for a full disk: unlike the injected crashes below
  // (which must leave sealed shadows, orphan pages and a dangling
  // kUpdateBegin for reopen-time recovery to roll back), a returned ENOSPC
  // happens in a process that is still alive to undo its own transaction.
  // Roll the pager, journal and staging files back to their pre-batch state
  // so fsck finds nothing to repair.
  auto abort_on_no_space = [&](const util::Status& status) {
    if (status.code() != util::StatusCode::kResourceExhausted) return;
    (void)pager_->TruncateToPageCount(base);
    std::remove(shadow.c_str());
    remove_sidecar();
    if (journal_ != nullptr && journal_mark >= 0) {
      (void)journal_->TruncateTo(journal_mark);
    }
  };
  const bool shadowed = journal_ != nullptr && staged.page_count > 0;
  if (shadowed) {
    const std::string tmp = shadow + ".tmp";
    util::Status staged_ok = WriteShadowFile(tmp, phys.data(), phys.size());
    if (!staged_ok.ok()) {
      remove_sidecar();
      abort_on_no_space(staged_ok);
      return staged_ok;
    }
    if (std::rename(tmp.c_str(), shadow.c_str()) != 0) {
      util::Status renamed = util::Status::IoError(
          "cannot seal shadow file " + shadow + ": " + std::strerror(errno));
      std::remove(tmp.c_str());
      remove_sidecar();
      return renamed;
    }
  }

  if (staged.page_count > 0) {
    util::Status appended =
        pager_->AppendPhysicalPages(phys.data(), staged.page_count);
    if (appended.ok() && journal_ != nullptr) appended = pager_->Sync();
    if (!appended.ok()) {
      if (shadowed) std::remove(shadow.c_str());
      remove_sidecar();
      abort_on_no_space(appended);
      return appended;
    }
  }

  // Per-view install + replace records inside the transaction. The crash
  // point fires at the top of the nth armed iteration, leaving views
  // [0, n-1) installed and the rest missing — exactly the half-merged state
  // replay must roll back.
  for (size_t i = 0; i < specs.size(); ++i) {
    if (injector.AtCrashPoint(util::CrashPoint::kCrashMidDeltaMerge)) {
      return util::Status::IoError(
          "injected crash mid delta merge (view " + std::to_string(i) + " of " +
          std::to_string(specs.size()) + ")");
    }
    const uint64_t view_epoch = AllocateEpoch();
    new_views[i]->epoch_ = view_epoch;
    if (journal_ != nullptr) {
      util::Status installed = journal_->AppendInstall(
          RecordFor(*new_views[i], pager_->page_count()));
      if (!installed.ok()) {
        abort_on_no_space(installed);
        return installed;
      }
      util::Status replaced = journal_->AppendReplace(
          AllocateEpoch(), specs[i].view->epoch(), view_epoch);
      if (!replaced.ok()) {
        abort_on_no_space(replaced);
        return replaced;
      }
    }
  }

  if (injector.AtCrashPoint(util::CrashPoint::kCrashBeforeEpochBump)) {
    return util::Status::IoError(
        "injected crash with all views installed but the update commit "
        "record missing");
  }
  if (journal_ != nullptr) {
    util::Status committed = journal_->AppendUpdateCommit(AllocateEpoch(), ue);
    if (!committed.ok()) {
      abort_on_no_space(committed);
      return committed;
    }
  }
  if (injector.AtCrashPoint(util::CrashPoint::kCrashAfterEpochBump)) {
    return util::Status::IoError(
        "injected crash after the update commit, before staging cleanup");
  }

  if (shadowed) std::remove(shadow.c_str());
  remove_sidecar();

  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (size_t i = 0; i < specs.size(); ++i) {
      result.new_views.push_back(new_views[i].get());
      replacement_[specs[i].view] = new_views[i].get();
      views_.push_back(std::move(new_views[i]));
    }
  }
  return result;
}

// ---- Quarantine / lookup ---------------------------------------------------

void ViewCatalog::Quarantine(const MaterializedView* view) {
  const uint64_t epoch = AllocateEpoch();
  if (journal_ != nullptr) {
    // Best-effort: a lost quarantine record means the view comes back
    // healthy-looking after a restart, where verification re-detects the
    // corruption — annoying, never incorrect.
    (void)journal_->AppendQuarantine(epoch, view->epoch());
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  quarantined_.insert(view);
}

bool ViewCatalog::IsQuarantined(const MaterializedView* view) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return quarantined_.count(view) != 0;
}

size_t ViewCatalog::quarantined_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return quarantined_.size();
}

const MaterializedView* ViewCatalog::ReplacementFor(
    const MaterializedView* view) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const MaterializedView* current = nullptr;
  auto it = replacement_.find(view);
  // Follow the chain: a replacement may itself have been quarantined and
  // replaced again.
  while (it != replacement_.end()) {
    current = it->second;
    it = replacement_.find(current);
  }
  return current;
}

void ViewCatalog::SetReplacement(const MaterializedView* from,
                                 const MaterializedView* to) {
  VJ_CHECK(from != to);
  const uint64_t epoch = AllocateEpoch();
  if (journal_ != nullptr) {
    (void)journal_->AppendReplace(epoch, from->epoch(), to->epoch());
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  replacement_[from] = to;
}

const MaterializedView* ViewCatalog::FindView(
    const std::string& pattern_string, Scheme scheme) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  // Scan newest-first so a re-materialized twin wins over its corrupt
  // predecessor even before the replacement link is consulted.
  for (auto it = views_.rbegin(); it != views_.rend(); ++it) {
    const MaterializedView* v = it->get();
    if (v->scheme() != scheme || v->pattern().ToString() != pattern_string) {
      continue;
    }
    // Follow replacements, then reject anything still quarantined.
    auto r = replacement_.find(v);
    while (r != replacement_.end()) {
      v = r->second;
      r = replacement_.find(v);
    }
    if (quarantined_.count(v) != 0) continue;
    return v;
  }
  return nullptr;
}

std::vector<const MaterializedView*> ViewCatalog::ViewsSnapshot() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<const MaterializedView*> snapshot;
  snapshot.reserve(views_.size());
  for (const auto& view : views_) snapshot.push_back(view.get());
  return snapshot;
}

const MaterializedView* ViewCatalog::ViewOfPage(PageId page) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto contains = [page](const StoredList& list) {
    return list.count != 0 && list.first_page != kInvalidPage &&
           page >= list.first_page && page - list.first_page < list.PageSpan();
  };
  for (const auto& view : views_) {
    for (const StoredList& list : view->lists_) {
      if (contains(list)) return view.get();
    }
    if (contains(view->tuple_list_)) return view.get();
  }
  return nullptr;
}

util::Status ViewCatalog::VerifyView(const MaterializedView* view) {
  std::vector<uint8_t> page(Pager::kPageSize);
  auto verify_list = [&](const StoredList& list) {
    if (list.count == 0) return util::Status::Ok();
    for (uint32_t p = 0; p < list.PageSpan(); ++p) {
      util::Status status = pager_->VerifyPage(list.first_page + p,
                                               page.data());
      if (!status.ok()) return status;
    }
    return util::Status::Ok();
  };
  for (const StoredList& list : view->lists_) {
    util::Status status = verify_list(list);
    if (!status.ok()) return status;
  }
  return verify_list(view->tuple_list_);
}

}  // namespace viewjoin::storage
