#include "storage/materialized_view.h"

#include <algorithm>
#include <cstring>

#include "tpq/evaluator.h"
#include "util/check.h"

namespace viewjoin::storage {

using tpq::TreePattern;
using xml::Document;
using xml::Label;
using xml::NodeId;

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kElement:
      return "E";
    case Scheme::kTuple:
      return "T";
    case Scheme::kLinkedElement:
      return "LE";
    case Scheme::kLinkedElementPartial:
      return "LE_p";
  }
  return "?";
}

std::optional<Scheme> ParseScheme(std::string_view name) {
  if (name == "E") return Scheme::kElement;
  if (name == "T") return Scheme::kTuple;
  if (name == "LE") return Scheme::kLinkedElement;
  if (name == "LE_p") return Scheme::kLinkedElementPartial;
  return std::nullopt;
}

ViewCatalog::ViewCatalog(const std::string& path, size_t pool_pages,
                         bool persistent)
    : pager_(std::make_unique<Pager>(path, persistent
                                               ? Pager::Mode::kPersist
                                               : Pager::Mode::kTruncate)),
      pool_(std::make_unique<BufferPool>(pager_.get(), pool_pages)),
      persistent_(persistent) {
  // A zero-frame pool would make every Fetch fail with InvalidArgument; a
  // fresh catalog asking for one is a configuration error, like a catalog
  // that cannot create its backing file (Open() is the recoverable path).
  VJ_CHECK(pool_pages > 0) << "view catalog needs a pool of >= 1 page";
  VJ_CHECK(pager_->init_status().ok()) << pager_->init_status().ToString();
}

ViewCatalog::~ViewCatalog() = default;

void ViewCatalog::SaveManifest() const {
  VJ_CHECK(persistent_) << "SaveManifest requires a persistent catalog";
  std::FILE* out = std::fopen((pager_->path() + ".manifest").c_str(), "w");
  VJ_CHECK(out != nullptr);
  std::fprintf(out, "VIEWJOINCAT 1\n%zu\n", views_.size());
  for (const auto& view : views_) {
    std::fprintf(out, "V %d %s\n", static_cast<int>(view->scheme_),
                 view->pattern_.ToString().c_str());
    std::fprintf(out, "M %llu %llu %llu\n",
                 static_cast<unsigned long long>(view->match_count_),
                 static_cast<unsigned long long>(view->size_bytes_),
                 static_cast<unsigned long long>(view->pointer_count_));
    std::fprintf(out, "G");
    for (uint32_t len : view->list_lengths_) std::fprintf(out, " %u", len);
    std::fprintf(out, "\n");
    std::fprintf(out, "L %zu\n", view->lists_.size());
    auto dump = [&](const StoredList& list) {
      std::fprintf(out, "%u %u %u %u %u\n", list.first_page, list.count,
                   list.layout.label_count,
                   list.layout.has_pointers ? 1 : 0, list.layout.child_count);
    };
    for (const StoredList& list : view->lists_) dump(list);
    dump(view->tuple_list_);
  }
  std::fclose(out);
}

util::StatusOr<std::unique_ptr<ViewCatalog>> ViewCatalog::Open(
    const std::string& path, size_t pool_pages) {
  auto fail = [&path](const std::string& message) {
    return util::Status::Corruption("malformed manifest for " + path + ": " +
                                    message);
  };
  if (pool_pages == 0) {
    return util::Status::InvalidArgument(
        "cannot open catalog " + path + " with a zero-page buffer pool");
  }
  std::FILE* in = std::fopen((path + ".manifest").c_str(), "r");
  if (in == nullptr) {
    return util::Status::NotFound("missing manifest for " + path);
  }
  auto catalog = std::unique_ptr<ViewCatalog>(new ViewCatalog(
      path, pool_pages, /*persistent=*/true, Pager::Mode::kReopen));
  if (!catalog->pager_->init_status().ok()) {
    std::fclose(in);
    return catalog->pager_->init_status();
  }
  char magic[16];
  int version = 0;
  size_t num_views = 0;
  bool ok = std::fscanf(in, "%15s %d %zu", magic, &version, &num_views) == 3 &&
            std::string(magic) == "VIEWJOINCAT" && version == 1;
  for (size_t v = 0; ok && v < num_views; ++v) {
    auto view = std::make_unique<MaterializedView>();
    int scheme = 0;
    char pattern_buf[512];
    ok = std::fscanf(in, " V %d %511s", &scheme, pattern_buf) == 2;
    if (!ok) break;
    std::optional<tpq::TreePattern> pattern =
        tpq::TreePattern::Parse(pattern_buf);
    if (!pattern.has_value()) {
      ok = false;
      break;
    }
    view->pattern_ = *pattern;
    view->scheme_ = static_cast<Scheme>(scheme);
    unsigned long long mc = 0, sb = 0, pc = 0;
    ok = std::fscanf(in, " M %llu %llu %llu", &mc, &sb, &pc) == 3;
    if (!ok) break;
    view->match_count_ = mc;
    view->size_bytes_ = sb;
    view->pointer_count_ = pc;
    ok = std::fscanf(in, " G") == 0;
    for (size_t q = 0; ok && q < view->pattern_.size(); ++q) {
      uint32_t len = 0;
      ok = std::fscanf(in, "%u", &len) == 1;
      view->list_lengths_.push_back(len);
    }
    size_t num_lists = 0;
    ok = ok && std::fscanf(in, " L %zu", &num_lists) == 1;
    auto load = [&](StoredList* list) {
      uint32_t hp = 0;
      return std::fscanf(in, "%u %u %u %u %u", &list->first_page,
                         &list->count, &list->layout.label_count, &hp,
                         &list->layout.child_count) == 5 &&
             ((list->layout.has_pointers = hp != 0), true);
    };
    for (size_t i = 0; ok && i < num_lists; ++i) {
      StoredList list;
      ok = load(&list);
      view->lists_.push_back(list);
    }
    ok = ok && load(&view->tuple_list_);
    if (ok) {
      catalog->views_.push_back(std::move(view));
      catalog->version_.fetch_add(1, std::memory_order_release);
    }
  }
  std::fclose(in);
  if (!ok) return fail("truncated or unparsable view records");
  // Every stored list must lie inside the (checksummed) pager file; a
  // manifest pointing past the end means one of the two files is stale.
  uint32_t pages = catalog->pager_->page_count();
  for (const auto& view : catalog->views_) {
    auto in_range = [pages](const StoredList& list) {
      if (list.count == 0) return true;
      uint32_t record = list.layout.RecordSize();
      if (record == 0 || record > Pager::kPageSize) return false;
      return list.first_page != kInvalidPage && list.first_page < pages &&
             list.PageSpan() <= pages - list.first_page;
    };
    for (const StoredList& list : view->lists_) {
      if (!in_range(list)) {
        return fail("view " + view->pattern_.ToString() +
                    " references pages beyond the pager file");
      }
    }
    if (!in_range(view->tuple_list_)) {
      return fail("view " + view->pattern_.ToString() +
                  " references pages beyond the pager file");
    }
  }
  return catalog;
}

IoStats ViewCatalog::Stats() const {
  IoStats stats = pager_->stats();
  stats.pool_hits = pool_->hits();
  stats.pool_misses = pool_->misses();
  return stats;
}

ViewCatalog::ViewCatalog(const std::string& path, size_t pool_pages,
                         bool persistent, Pager::Mode mode)
    : pager_(std::make_unique<Pager>(path, mode)),
      pool_(std::make_unique<BufferPool>(pager_.get(), pool_pages)),
      persistent_(persistent) {}

void ViewCatalog::ResetStats() {
  pager_->ResetStats();
  pool_->ResetStats();
}

util::StatusOr<StoredList> ViewCatalog::WriteList(
    const std::vector<uint8_t>& bytes, RecordLayout layout, uint32_t count) {
  StoredList list;
  list.layout = layout;
  list.count = count;
  if (count == 0) {
    list.first_page = kInvalidPage;
    return list;
  }
  uint32_t record_size = layout.RecordSize();
  uint32_t per_page = static_cast<uint32_t>(Pager::kPageSize) / record_size;
  uint32_t pages = (count + per_page - 1) / per_page;
  list.first_page = pager_->page_count();
  std::vector<uint8_t> page(Pager::kPageSize, 0);
  for (uint32_t p = 0; p < pages; ++p) {
    std::fill(page.begin(), page.end(), 0);
    uint32_t first_record = p * per_page;
    uint32_t n_records = std::min(per_page, count - first_record);
    std::memcpy(page.data(), bytes.data() + size_t(first_record) * record_size,
                size_t(n_records) * record_size);
    // Allocate-and-write in one step: extend the file with this page.
    util::StatusOr<PageId> id = pager_->AllocatePage();
    if (!id.ok()) return id.status();
    util::Status written = pager_->WritePage(*id, page.data());
    if (!written.ok()) return written;
  }
  return list;
}

namespace {

void AppendU32(std::vector<uint8_t>* out, uint32_t value) {
  uint8_t buf[4];
  std::memcpy(buf, &value, 4);
  out->insert(out->end(), buf, buf + 4);
}

void AppendLabel(std::vector<uint8_t>* out, const Label& label) {
  AppendU32(out, label.start);
  AppendU32(out, label.end);
  AppendU32(out, label.level);
}

/// Streams tuple-scheme matches straight into the record byte buffer.
class TupleWriterSink : public tpq::MatchSink {
 public:
  TupleWriterSink(const Document& doc, std::vector<uint8_t>* out)
      : doc_(doc), out_(out) {}

  void OnMatch(const tpq::Match& match) override {
    for (NodeId n : match) AppendLabel(out_, doc_.NodeLabel(n));
    ++count_;
  }

  uint64_t count() const { return count_; }

 private:
  const Document& doc_;
  std::vector<uint8_t>* out_;
  uint64_t count_ = 0;
};

/// First index j in `labels` with labels[j].start > bound, starting the
/// binary search at `from`.
size_t FirstStartAfter(const std::vector<Label>& labels, size_t from,
                       uint32_t bound) {
  return static_cast<size_t>(
      std::lower_bound(labels.begin() + static_cast<ptrdiff_t>(from),
                       labels.end(), bound,
                       [](const Label& l, uint32_t b) { return l.start <= b; }) -
      labels.begin());
}

}  // namespace

const MaterializedView* ViewCatalog::Materialize(const Document& doc,
                                                 const TreePattern& pattern,
                                                 Scheme scheme) {
  util::StatusOr<const MaterializedView*> result =
      TryMaterialize(doc, pattern, scheme);
  VJ_CHECK(result.ok()) << "materialization of " << pattern.ToString()
                        << " failed: " << result.status().ToString();
  return *result;
}

util::StatusOr<const MaterializedView*> ViewCatalog::TryMaterialize(
    const Document& doc, const TreePattern& pattern, Scheme scheme) {
  VJ_CHECK(pattern.HasUniqueTags())
      << "view patterns must have unique element types: " << pattern.ToString();
  tpq::NaiveEvaluator evaluator(doc, pattern);

  if (scheme == Scheme::kTuple) {
    auto view = std::make_unique<MaterializedView>();
    view->pattern_ = pattern;
    view->scheme_ = scheme;
    std::vector<uint8_t> bytes;
    TupleWriterSink sink(doc, &bytes);
    evaluator.Evaluate(&sink);
    RecordLayout layout;
    layout.label_count = static_cast<uint32_t>(pattern.size());
    util::StatusOr<StoredList> tuples =
        WriteList(bytes, layout, static_cast<uint32_t>(sink.count()));
    if (!tuples.ok()) return tuples.status();
    view->tuple_list_ = *tuples;
    view->match_count_ = sink.count();
    view->size_bytes_ = sink.count() * 12ull * pattern.size();
    // The per-node solution list lengths still drive the cost model.
    std::vector<std::vector<NodeId>> solutions = evaluator.SolutionNodes();
    for (const auto& list : solutions) {
      view->list_lengths_.push_back(static_cast<uint32_t>(list.size()));
    }
    const MaterializedView* result = view.get();
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      views_.push_back(std::move(view));
      version_.fetch_add(1, std::memory_order_release);
    }
    return result;
  }

  // Element-list based schemes. Gather solution node lists and their labels.
  std::vector<std::vector<NodeId>> solutions = evaluator.SolutionNodes();
  return TryMaterializeFromLists(doc, pattern, solutions, scheme);
}

const MaterializedView* ViewCatalog::MaterializeFromLists(
    const Document& doc, const TreePattern& pattern,
    const std::vector<std::vector<NodeId>>& solutions, Scheme scheme) {
  util::StatusOr<const MaterializedView*> result =
      TryMaterializeFromLists(doc, pattern, solutions, scheme);
  VJ_CHECK(result.ok()) << "materialization of " << pattern.ToString()
                        << " failed: " << result.status().ToString();
  return *result;
}

util::StatusOr<const MaterializedView*> ViewCatalog::TryMaterializeFromLists(
    const Document& doc, const TreePattern& pattern,
    const std::vector<std::vector<NodeId>>& solutions, Scheme scheme) {
  VJ_CHECK(scheme != Scheme::kTuple)
      << "MaterializeFromLists supports the list schemes only";
  VJ_CHECK_EQ(solutions.size(), pattern.size());
  auto view = std::make_unique<MaterializedView>();
  view->pattern_ = pattern;
  view->scheme_ = scheme;
  size_t nq = pattern.size();
  std::vector<std::vector<Label>> labels(nq);
  for (size_t q = 0; q < nq; ++q) {
    labels[q].reserve(solutions[q].size());
    for (NodeId n : solutions[q]) labels[q].push_back(doc.NodeLabel(n));
    view->list_lengths_.push_back(static_cast<uint32_t>(solutions[q].size()));
    view->size_bytes_ += 12ull * solutions[q].size();
  }
  view->match_count_ = 0;  // not tracked for list schemes (cheap to recount)

  bool with_pointers = scheme != Scheme::kElement;
  bool partial = scheme == Scheme::kLinkedElementPartial;

  view->lists_.resize(nq);
  for (size_t q = 0; q < nq; ++q) {
    const std::vector<Label>& lq = labels[q];
    const tpq::PatternNode& pn = pattern.node(static_cast<int>(q));
    RecordLayout layout;
    layout.label_count = 1;
    layout.has_pointers = with_pointers;
    layout.child_count =
        with_pointers ? static_cast<uint32_t>(pn.children.size()) : 0;
    std::vector<uint8_t> bytes;
    bytes.reserve(lq.size() * layout.RecordSize());
    for (size_t i = 0; i < lq.size(); ++i) {
      AppendLabel(&bytes, lq[i]);
      if (!with_pointers) continue;
      // Following pointer: first entry starting after this node ends.
      EntryIndex follow = kNullEntry;
      size_t j = FirstStartAfter(lq, i + 1, lq[i].end);
      if (j < lq.size()) follow = static_cast<EntryIndex>(j);
      if (partial && follow != kNullEntry && follow <= i + 1) {
        follow = kNullEntry;  // adjacent targets are not materialized in LE_p
      }
      if (follow != kNullEntry) ++view->pointer_count_;
      AppendU32(&bytes, follow);
      // Descendant pointer: the next entry iff it is nested in this one.
      EntryIndex desc = kNullEntry;
      if (i + 1 < lq.size() && lq[i + 1].start < lq[i].end) {
        desc = static_cast<EntryIndex>(i + 1);
      }
      if (partial) desc = kNullEntry;  // always one entry away
      if (desc != kNullEntry) ++view->pointer_count_;
      AppendU32(&bytes, desc);
      // Child pointers: first matching child/descendant entry per pc/ad
      // child of q in the view. Never null for a materialized view (every
      // stored node participates in at least one view match).
      for (int c : pn.children) {
        const std::vector<Label>& lc = labels[static_cast<size_t>(c)];
        size_t k = FirstStartAfter(lc, 0, lq[i].start);
        EntryIndex child = kNullEntry;
        if (pattern.node(c).incoming == tpq::Axis::kDescendant) {
          if (k < lc.size() && lc[k].start < lq[i].end) {
            child = static_cast<EntryIndex>(k);
          }
        } else {
          while (k < lc.size() && lc[k].start < lq[i].end) {
            if (lc[k].level == lq[i].level + 1) {
              child = static_cast<EntryIndex>(k);
              break;
            }
            ++k;
          }
        }
        VJ_CHECK(child != kNullEntry)
            << "missing child pointer target in view " << pattern.ToString();
        ++view->pointer_count_;
        AppendU32(&bytes, child);
      }
    }
    util::StatusOr<StoredList> written =
        WriteList(bytes, layout, static_cast<uint32_t>(lq.size()));
    if (!written.ok()) return written.status();
    view->lists_[q] = *written;
  }
  view->size_bytes_ += 4ull * view->pointer_count_;

  const MaterializedView* result = view.get();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    views_.push_back(std::move(view));
    version_.fetch_add(1, std::memory_order_release);
  }
  return result;
}

void ViewCatalog::Quarantine(const MaterializedView* view) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  quarantined_.insert(view);
  version_.fetch_add(1, std::memory_order_release);
}

bool ViewCatalog::IsQuarantined(const MaterializedView* view) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return quarantined_.count(view) != 0;
}

size_t ViewCatalog::quarantined_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return quarantined_.size();
}

const MaterializedView* ViewCatalog::ReplacementFor(
    const MaterializedView* view) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const MaterializedView* current = nullptr;
  auto it = replacement_.find(view);
  // Follow the chain: a replacement may itself have been quarantined and
  // replaced again.
  while (it != replacement_.end()) {
    current = it->second;
    it = replacement_.find(current);
  }
  return current;
}

void ViewCatalog::SetReplacement(const MaterializedView* from,
                                 const MaterializedView* to) {
  VJ_CHECK(from != to);
  std::lock_guard<std::mutex> lock(registry_mu_);
  replacement_[from] = to;
  version_.fetch_add(1, std::memory_order_release);
}

const MaterializedView* ViewCatalog::FindView(
    const std::string& pattern_string, Scheme scheme) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  // Scan newest-first so a re-materialized twin wins over its corrupt
  // predecessor even before the replacement link is consulted.
  for (auto it = views_.rbegin(); it != views_.rend(); ++it) {
    const MaterializedView* v = it->get();
    if (v->scheme() != scheme || v->pattern().ToString() != pattern_string) {
      continue;
    }
    // Follow replacements, then reject anything still quarantined.
    auto r = replacement_.find(v);
    while (r != replacement_.end()) {
      v = r->second;
      r = replacement_.find(v);
    }
    if (quarantined_.count(v) != 0) continue;
    return v;
  }
  return nullptr;
}

const MaterializedView* ViewCatalog::ViewOfPage(PageId page) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto contains = [page](const StoredList& list) {
    return list.count != 0 && list.first_page != kInvalidPage &&
           page >= list.first_page && page - list.first_page < list.PageSpan();
  };
  for (const auto& view : views_) {
    for (const StoredList& list : view->lists_) {
      if (contains(list)) return view.get();
    }
    if (contains(view->tuple_list_)) return view.get();
  }
  return nullptr;
}

util::Status ViewCatalog::VerifyView(const MaterializedView* view) {
  std::vector<uint8_t> page(Pager::kPageSize);
  auto verify_list = [&](const StoredList& list) {
    if (list.count == 0) return util::Status::Ok();
    for (uint32_t p = 0; p < list.PageSpan(); ++p) {
      util::Status status = pager_->VerifyPage(list.first_page + p,
                                               page.data());
      if (!status.ok()) return status;
    }
    return util::Status::Ok();
  };
  for (const StoredList& list : view->lists_) {
    util::Status status = verify_list(list);
    if (!status.ok()) return status;
  }
  return verify_list(view->tuple_list_);
}

}  // namespace viewjoin::storage
