#ifndef VIEWJOIN_STORAGE_SIMD_SCAN_H_
#define VIEWJOIN_STORAGE_SIMD_SCAN_H_

#include <cstdint>

#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define VIEWJOIN_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define VIEWJOIN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace viewjoin::storage::simd {

/// Vectorized scans over uint32 key arrays — the in-block primitives of the
/// block cursor (see stored_list.h). Two shapes:
///
///   FirstGe      : linear scan for the first element >= bound. For keys with
///                  no sort order (region *ends* are not monotone within a
///                  list — a nested region ends before its ancestor).
///   LowerBoundGe : branch-free binary search narrowing to a SIMD tail scan.
///                  For sorted keys (region *starts* are in document order).
///
/// Both return `n` when no element qualifies. SSE2 has no unsigned compare,
/// so bounds and keys are biased by 0x80000000 (flipping the sign bit maps
/// unsigned order onto signed order). The scalar fallback keeps the exact
/// same semantics on any other target.

/// Name of the compiled-in backend, for bench metadata.
inline const char* BackendName() {
#if defined(VIEWJOIN_SIMD_SSE2)
  return "sse2";
#elif defined(VIEWJOIN_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// First index i in [0, n) with v[i] >= bound, else n. No sort assumption.
inline uint32_t FirstGe(const uint32_t* v, uint32_t n, uint32_t bound) {
  uint32_t i = 0;
#if defined(VIEWJOIN_SIMD_SSE2)
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vb =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(bound)), bias);
  for (; i + 4 <= n; i += 4) {
    __m128i keys = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)), bias);
    // keys >= bound  <=>  !(keys < bound); cmplt gives per-lane masks.
    __m128i lt = _mm_cmplt_epi32(keys, vb);
    int mask = _mm_movemask_ps(_mm_castsi128_ps(lt));
    if (mask != 0xF) {
      // Lowest lane whose "less-than" bit is clear.
      for (uint32_t lane = 0; lane < 4; ++lane) {
        if ((mask & (1 << lane)) == 0) return i + lane;
      }
    }
  }
#elif defined(VIEWJOIN_SIMD_NEON)
  const uint32x4_t vb = vdupq_n_u32(bound);
  for (; i + 4 <= n; i += 4) {
    uint32x4_t keys = vld1q_u32(v + i);
    uint32x4_t ge = vcgeq_u32(keys, vb);
    // Any lane >= bound? (max of the mask is 0xFFFFFFFF when so.)
    if (vmaxvq_u32(ge) != 0) {
      for (uint32_t lane = 0; lane < 4; ++lane) {
        if (v[i + lane] >= bound) return i + lane;
      }
    }
  }
#endif
  for (; i < n; ++i) {
    if (v[i] >= bound) return i;
  }
  return n;
}

/// First index i in [0, n) with v[i] > bound, else n. No sort assumption.
inline uint32_t FirstGt(const uint32_t* v, uint32_t n, uint32_t bound) {
  if (bound == 0xFFFFFFFFu) return n;  // nothing exceeds the max key
  return FirstGe(v, n, bound + 1);
}

/// First index i in [0, n) with v[i] >= bound over a *sorted* array, else n.
/// Branch-free binary search down to a 16-element window, then FirstGe.
inline uint32_t LowerBoundGe(const uint32_t* v, uint32_t n, uint32_t bound) {
  uint32_t lo = 0;
  uint32_t len = n;
  while (len > 16) {
    uint32_t half = len / 2;
    // Conditional move, not a branch: the comparison's result arithmetically
    // selects the half to keep.
    lo += (v[lo + half - 1] < bound) ? half : 0;
    len -= half;
  }
  return lo + FirstGe(v + lo, len, bound);
}

/// First index i in [0, n) with v[i] > bound over a *sorted* array, else n.
inline uint32_t LowerBoundGt(const uint32_t* v, uint32_t n, uint32_t bound) {
  if (bound == 0xFFFFFFFFu) return n;
  return LowerBoundGe(v, n, bound + 1);
}

}  // namespace viewjoin::storage::simd

#endif  // VIEWJOIN_STORAGE_SIMD_SCAN_H_
