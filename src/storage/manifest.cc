#include "storage/manifest.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

#include "util/crc32.h"
#include "util/fault_injection.h"

namespace viewjoin::storage {

namespace {

using util::Status;
using util::StatusOr;

constexpr char kMagic[8] = {'V', 'J', 'M', 'A', 'N', 'I', 'F', 'J'};
constexpr char kLegacyMagic[] = "VIEWJOINCAT";
constexpr size_t kJournalHeaderSize = 16;

// ---- Little-endian append/read helpers -------------------------------------

void PutU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutBytes(std::vector<uint8_t>& out, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out.insert(out.end(), p, p + size);
}

/// Bounds-checked sequential reader over one record payload. Any overrun
/// sets failed() instead of reading garbage — a payload that does not parse
/// is corruption even when its CRC matched (impossible unless the encoder
/// and decoder disagree, but fail closed).
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() { return Take(1) ? data_[pos_++] : 0; }

  uint16_t U16() {
    if (!Take(2)) return 0;
    uint16_t v = static_cast<uint16_t>(data_[pos_]) |
                 static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }

  uint32_t U32() {
    if (!Take(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Take(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::string Bytes(size_t n) {
    if (!Take(n)) return std::string();
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool failed() const { return failed_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  bool Take(size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

void EncodeStoredList(std::vector<uint8_t>& out, const StoredList& list) {
  PutU32(out, list.first_page);
  PutU32(out, list.count);
  PutU32(out, list.layout.label_count);
  PutU8(out, list.layout.has_pointers ? 1 : 0);
  PutU32(out, list.layout.child_count);
  // v2 extensions: physical format plus the page directory (delta lists)
  // and fence keys (both formats) that make page-level galloping possible.
  PutU8(out, static_cast<uint8_t>(list.format));
  PutU32(out, static_cast<uint32_t>(list.page_first_entry.size()));
  for (uint32_t e : list.page_first_entry) PutU32(out, e);
  PutU32(out, static_cast<uint32_t>(list.page_first_start.size()));
  for (uint32_t s : list.page_first_start) PutU32(out, s);
}

StoredList DecodeStoredList(PayloadReader& in, uint32_t version) {
  StoredList list;
  list.first_page = in.U32();
  list.count = in.U32();
  list.layout.label_count = in.U32();
  list.layout.has_pointers = in.U8() != 0;
  list.layout.child_count = in.U32();
  if (version >= 2) {
    uint8_t format = in.U8();
    // An unknown format byte cannot pass the record CRC unless a newer
    // writer produced it; degrade to fixed so ListInRange rejects cleanly.
    list.format =
        format <= 1 ? static_cast<ListFormat>(format) : ListFormat::kFixed;
    uint32_t dir_count = in.U32();
    if (dir_count > ManifestJournal::kMaxPayload / 4) dir_count = 0;
    list.page_first_entry.reserve(dir_count);
    for (uint32_t i = 0; i < dir_count && !in.failed(); ++i) {
      list.page_first_entry.push_back(in.U32());
    }
    uint32_t fence_count = in.U32();
    if (fence_count > ManifestJournal::kMaxPayload / 4) fence_count = 0;
    list.page_first_start.reserve(fence_count);
    for (uint32_t i = 0; i < fence_count && !in.failed(); ++i) {
      list.page_first_start.push_back(in.U32());
    }
  }
  // v1 lists decode as fixed format with no fences; cursors fall back to
  // entry-level galloping until the catalog's upgrade checkpoint rewrites
  // the journal at v2.
  return list;
}

std::vector<uint8_t> EncodeBegin(uint64_t epoch, uint8_t scheme,
                                 const std::string& pattern) {
  std::vector<uint8_t> payload;
  PutU64(payload, epoch);
  PutU8(payload, scheme);
  PutU16(payload, static_cast<uint16_t>(pattern.size()));
  PutBytes(payload, pattern.data(), pattern.size());
  return payload;
}

std::vector<uint8_t> EncodeInstall(const ManifestViewRecord& r) {
  std::vector<uint8_t> payload;
  PutU64(payload, r.epoch);
  PutU8(payload, r.scheme);
  PutU16(payload, static_cast<uint16_t>(r.pattern.size()));
  PutBytes(payload, r.pattern.data(), r.pattern.size());
  PutU64(payload, r.match_count);
  PutU64(payload, r.size_bytes);
  PutU64(payload, r.pointer_count);
  PutU32(payload, r.page_count_after);
  EncodeStoredList(payload, r.tuple_list);
  PutU32(payload, static_cast<uint32_t>(r.lists.size()));
  for (const StoredList& list : r.lists) EncodeStoredList(payload, list);
  PutU32(payload, static_cast<uint32_t>(r.list_lengths.size()));
  for (uint32_t len : r.list_lengths) PutU32(payload, len);
  return payload;
}

std::vector<uint8_t> EncodeUpdateBegin(uint64_t epoch, uint32_t view_count) {
  std::vector<uint8_t> payload;
  PutU64(payload, epoch);
  PutU32(payload, view_count);
  return payload;
}

std::vector<uint8_t> EncodeEpoch(uint64_t epoch) {
  std::vector<uint8_t> payload;
  PutU64(payload, epoch);
  return payload;
}

std::vector<uint8_t> EncodePair(uint64_t epoch, uint64_t target) {
  std::vector<uint8_t> payload;
  PutU64(payload, epoch);
  PutU64(payload, target);
  return payload;
}

std::vector<uint8_t> EncodeTriple(uint64_t epoch, uint64_t a, uint64_t b) {
  std::vector<uint8_t> payload;
  PutU64(payload, epoch);
  PutU64(payload, a);
  PutU64(payload, b);
  return payload;
}

/// Serializes one framed record: length | type | payload | crc.
std::vector<uint8_t> FrameRecord(ManifestRecordType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(payload.size() + 9);
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU8(frame, static_cast<uint8_t>(type));
  PutBytes(frame, payload.data(), payload.size());
  // CRC covers type || payload — the length field is implied by what the CRC
  // validates, and a torn length prefix shows up as an incomplete record.
  uint32_t crc = util::Crc32(frame.data() + 4, payload.size() + 1);
  PutU32(frame, crc);
  return frame;
}

std::vector<uint8_t> EncodeJournalHeader() {
  std::vector<uint8_t> header;
  header.reserve(kJournalHeaderSize);
  PutBytes(header, kMagic, sizeof(kMagic));
  PutU32(header, ManifestJournal::kFormatVersion);
  PutU32(header, util::Crc32(header.data(), header.size()));
  return header;
}

Status IoError(const std::string& message) {
  return Status::IoError(message + ": " + std::strerror(errno));
}

/// Typed verdict for a failed journal write: real ENOSPC from the OS becomes
/// kResourceExhausted (the engine treats a full disk as an operational
/// condition, not rot), everything else stays kIoError. Callers clear errno
/// before the write so a stale value cannot retype an unrelated failure.
Status WriteError(const std::string& message) {
  int err = errno;
  std::string detail =
      message + ": " + (err != 0 ? std::strerror(err) : "short write");
  if (err == ENOSPC) return Status::ResourceExhausted(detail);
  return Status::IoError(detail);
}

/// The injected flavor of a full disk, typed identically to the real one.
Status NoSpace(const std::string& message) {
  return Status::ResourceExhausted(message +
                                   ": no space left on device (injected)");
}

/// Writes the journal header, honoring header-write fault injection (the
/// manifest header and the pager header share the injector channel).
Status WriteJournalHeader(std::FILE* file, const std::string& path) {
  std::vector<uint8_t> header = EncodeJournalHeader();
  util::WriteFault fault = util::FaultInjector::Global().OnHeaderWriteAttempt();
  if (fault == util::WriteFault::kShortWrite) {
    std::fwrite(header.data(), 1, header.size() / 2, file);
    std::fflush(file);
    return Status::IoError("injected short write on manifest header of " +
                           path);
  }
  if (fault == util::WriteFault::kNoSpace ||
      util::FaultInjector::Global().OnDiskCharge(header.size())) {
    // A full disk rejects the header before any byte lands; the (fresh or
    // tmp) file stays empty for the caller to remove.
    return NoSpace("cannot write manifest header of " + path);
  }
  if (fault == util::WriteFault::kTornPage) {
    std::memset(header.data() + header.size() / 2, 0xAA, header.size() / 2);
  } else if (fault == util::WriteFault::kBitFlip) {
    header[sizeof(kMagic)] ^= 0x01;  // corrupt the version field
  }
  errno = 0;
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
    return WriteError("cannot write manifest header of " + path);
  }
  return Status::Ok();
}

Status SyncFile(std::FILE* file, const std::string& path) {
  errno = 0;
  if (std::fflush(file) != 0) return WriteError("cannot flush " + path);
  if (::fsync(fileno(file)) != 0) return WriteError("cannot fsync " + path);
  return Status::Ok();
}

/// Applies one parsed record to the accumulating replay state. Returns
/// kCorruption when the payload does not decode.
Status ApplyRecord(ManifestRecordType type, const uint8_t* payload,
                   size_t payload_size, uint32_t version,
                   const std::string& path, long offset,
                   ManifestReplayResult& result,
                   std::unordered_map<uint64_t, std::pair<std::string, uint8_t>>&
                       pending_begins) {
  PayloadReader in(payload, payload_size);
  uint64_t epoch = in.U64();
  switch (type) {
    case ManifestRecordType::kBegin: {
      uint8_t scheme = in.U8();
      std::string pattern = in.Bytes(in.U16());
      if (in.failed()) break;
      pending_begins[epoch] = {std::move(pattern), scheme};
      break;
    }
    case ManifestRecordType::kInstall: {
      ManifestViewRecord r;
      r.epoch = epoch;
      r.scheme = in.U8();
      r.pattern = in.Bytes(in.U16());
      r.match_count = in.U64();
      r.size_bytes = in.U64();
      r.pointer_count = in.U64();
      r.page_count_after = in.U32();
      r.tuple_list = DecodeStoredList(in, version);
      uint32_t list_count = in.U32();
      if (list_count > ManifestJournal::kMaxPayload / 17) break;
      r.lists.reserve(list_count);
      for (uint32_t i = 0; i < list_count && !in.failed(); ++i) {
        r.lists.push_back(DecodeStoredList(in, version));
      }
      uint32_t length_count = in.U32();
      if (length_count > ManifestJournal::kMaxPayload / 4) break;
      r.list_lengths.reserve(length_count);
      for (uint32_t i = 0; i < length_count && !in.failed(); ++i) {
        r.list_lengths.push_back(in.U32());
      }
      if (in.failed()) break;
      if (r.page_count_after > result.durable_page_count) {
        result.durable_page_count = r.page_count_after;
      }
      pending_begins.erase(epoch);
      result.installed.push_back(std::move(r));
      break;
    }
    case ManifestRecordType::kQuarantine: {
      uint64_t target = in.U64();
      if (in.failed()) break;
      result.quarantined.insert(target);
      break;
    }
    case ManifestRecordType::kReplace: {
      uint64_t old_epoch = in.U64();
      uint64_t new_epoch = in.U64();
      if (in.failed()) break;
      result.replaced[old_epoch] = new_epoch;
      break;
    }
    case ManifestRecordType::kDrop: {
      uint64_t target = in.U64();
      if (in.failed()) break;
      result.quarantined.erase(target);
      result.replaced.erase(target);
      for (auto it = result.installed.begin(); it != result.installed.end();
           ++it) {
        if (it->epoch == target) {
          result.installed.erase(it);
          break;
        }
      }
      break;
    }
    case ManifestRecordType::kUpdateBegin:
    case ManifestRecordType::kUpdateCommit:
    case ManifestRecordType::kEpochMark:
      // Transaction bracketing and the epoch mark are handled by the replay
      // loop itself (they need the whole-file state, not per-record state).
      break;
  }
  if (in.failed()) {
    return Status::Corruption("manifest record at offset " +
                              std::to_string(offset) + " of " + path +
                              " does not decode");
  }
  if (epoch > result.last_epoch) result.last_epoch = epoch;
  return Status::Ok();
}

}  // namespace

ManifestJournal::ManifestJournal(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

ManifestJournal::~ManifestJournal() { Close(); }

void ManifestJournal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

StatusOr<std::unique_ptr<ManifestJournal>> ManifestJournal::Create(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return IoError("cannot create manifest journal " + path);
  }
  Status status = WriteJournalHeader(file, path);
  if (status.ok()) status = SyncFile(file, path);
  if (!status.ok()) {
    // Nothing durable was promised yet, so a failed create must not leave an
    // empty/truncated journal for the next open to mistake for corruption.
    std::fclose(file);
    std::remove(path.c_str());
    return status;
  }
  return std::unique_ptr<ManifestJournal>(new ManifestJournal(path, file));
}

StatusOr<std::unique_ptr<ManifestJournal>> ManifestJournal::OpenForAppend(
    const std::string& path, long valid_bytes) {
  // Truncate away any torn tail first so appends resume at a record
  // boundary; truncating to the replay-validated prefix is exactly the
  // recovery action for a crash mid-append.
  if (valid_bytes >= 0 && ::truncate(path.c_str(), valid_bytes) != 0) {
    return IoError("cannot truncate manifest journal " + path);
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return IoError("cannot open manifest journal " + path);
  }
  return std::unique_ptr<ManifestJournal>(new ManifestJournal(path, file));
}

StatusOr<ManifestReplayResult> ManifestJournal::Replay(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("manifest journal " + path + " does not exist");
  }
  std::fseek(file, 0, SEEK_END);
  long file_size = std::ftell(file);
  std::rewind(file);

  ManifestReplayResult result;

  uint8_t header[kJournalHeaderSize];
  size_t got = std::fread(header, 1, sizeof(header), file);
  if (got >= sizeof(kLegacyMagic) - 1 &&
      std::memcmp(header, kLegacyMagic, sizeof(kLegacyMagic) - 1) == 0) {
    std::fclose(file);
    result.legacy_text = true;
    result.valid_bytes = file_size;
    return result;
  }
  if (got != sizeof(header) ||
      std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(file);
    return Status::Corruption("manifest journal " + path +
                              " has a bad or truncated header");
  }
  // Validate the header manually rather than against the current writer's
  // bytes: replay accepts any version we know how to decode (1 or 2), while
  // the CRC over magic+version still catches a flipped version byte.
  uint32_t header_version = 0;
  uint32_t header_crc = 0;
  for (int i = 0; i < 4; ++i) {
    header_version |= static_cast<uint32_t>(header[8 + i]) << (8 * i);
    header_crc |= static_cast<uint32_t>(header[12 + i]) << (8 * i);
  }
  if (header_crc != util::Crc32(header, 12) || header_version < 1 ||
      header_version > kFormatVersion) {
    std::fclose(file);
    return Status::Corruption("manifest journal " + path +
                              " header fails validation (version/CRC)");
  }
  result.header_version = header_version;

  std::unordered_map<uint64_t, std::pair<std::string, uint8_t>> pending;
  long offset = static_cast<long>(kJournalHeaderSize);
  std::vector<uint8_t> buf;
  // Epoch bookkeeping across the *whole* file, including records an update
  // rollback later undoes: the epoch counter must resume above everything
  // ever written, or a restart would mint colliding epochs.
  uint64_t max_epoch_seen = 0;
  uint64_t prev_epoch = 0;
  uint64_t regressions = 0;
  // Open update transaction, if any: result/pending as of its kUpdateBegin,
  // restored wholesale when the commit record never arrives.
  bool txn_open = false;
  long txn_begin_offset = 0;
  ManifestReplayResult txn_snapshot;
  std::unordered_map<uint64_t, std::pair<std::string, uint8_t>>
      txn_pending_snapshot;
  while (offset < file_size) {
    long remaining = file_size - offset;
    uint8_t len_bytes[4];
    if (remaining < 4 ||
        std::fread(len_bytes, 1, 4, file) != 4) {
      result.tail_torn = true;  // crash tore the length prefix itself
      break;
    }
    uint32_t payload_len = 0;
    for (int i = 0; i < 4; ++i) {
      payload_len |= static_cast<uint32_t>(len_bytes[i]) << (8 * i);
    }
    long record_size = 4 + 1 + static_cast<long>(payload_len) + 4;
    if (payload_len > kMaxPayload || remaining < record_size) {
      // Either the record's bytes end before its declared size (classic torn
      // append) or the length prefix itself is torn garbage; both are the
      // signature of a crash at EOF, not of rot inside the valid prefix.
      result.tail_torn = true;
      break;
    }
    buf.resize(1 + payload_len + 4);
    if (std::fread(buf.data(), 1, buf.size(), file) != buf.size()) {
      result.tail_torn = true;
      break;
    }
    uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i) {
      stored_crc |= static_cast<uint32_t>(buf[1 + payload_len + i]) << (8 * i);
    }
    if (stored_crc != util::Crc32(buf.data(), 1 + payload_len)) {
      // The record is fully present yet fails its checksum: bit rot, not a
      // torn append — a crash cannot fabricate the trailing bytes.
      std::fclose(file);
      return Status::Corruption("manifest record at offset " +
                                std::to_string(offset) + " of " + path +
                                " fails its checksum");
    }
    uint8_t type = buf[0];
    if (type < static_cast<uint8_t>(ManifestRecordType::kBegin) ||
        type > static_cast<uint8_t>(ManifestRecordType::kEpochMark)) {
      std::fclose(file);
      return Status::Corruption("manifest record at offset " +
                                std::to_string(offset) + " of " + path +
                                " has unknown type " + std::to_string(type));
    }
    // Every record type leads its payload with a u64 epoch; decode it here
    // for the file-wide monotonicity and high-water-mark tracking.
    uint64_t lead_epoch = 0;
    if (payload_len >= 8) {
      for (int i = 0; i < 8; ++i) {
        lead_epoch |= static_cast<uint64_t>(buf[1 + i]) << (8 * i);
      }
    }
    if (lead_epoch < prev_epoch) ++regressions;
    prev_epoch = lead_epoch;
    if (lead_epoch > max_epoch_seen) max_epoch_seen = lead_epoch;

    const ManifestRecordType rtype = static_cast<ManifestRecordType>(type);
    if (rtype == ManifestRecordType::kUpdateBegin) {
      if (txn_open) {
        std::fclose(file);
        return Status::Corruption("manifest record at offset " +
                                  std::to_string(offset) + " of " + path +
                                  " opens a nested update transaction");
      }
      txn_open = true;
      txn_begin_offset = offset;
      txn_snapshot = result;
      txn_pending_snapshot = pending;
    } else if (rtype == ManifestRecordType::kUpdateCommit) {
      if (!txn_open) {
        std::fclose(file);
        return Status::Corruption("manifest record at offset " +
                                  std::to_string(offset) + " of " + path +
                                  " commits an update transaction that was "
                                  "never opened");
      }
      txn_open = false;
      txn_snapshot = ManifestReplayResult();
      txn_pending_snapshot.clear();
    } else if (rtype != ManifestRecordType::kEpochMark) {
      Status applied =
          ApplyRecord(rtype, buf.data() + 1, payload_len, header_version, path,
                      offset, result, pending);
      if (!applied.ok()) {
        std::fclose(file);
        return applied;
      }
    }
    offset += record_size;
  }
  std::fclose(file);
  if (txn_open) {
    // Crash mid-batch: the commit record never landed, so none of the
    // batch's installs/replaces happened. Restore the pre-batch state and
    // point valid_bytes at the kUpdateBegin record so recovery truncates
    // the half-applied suffix — otherwise records appended after recovery
    // would sit behind a dangling open transaction and be rolled back by
    // every future replay.
    const uint32_t hv = result.header_version;
    result = std::move(txn_snapshot);
    pending = std::move(txn_pending_snapshot);
    result.header_version = hv;
    result.valid_bytes = txn_begin_offset;
    result.rolled_back_update_batches = 1;
  } else {
    result.valid_bytes = offset;
  }
  if (max_epoch_seen > result.last_epoch) result.last_epoch = max_epoch_seen;
  result.epoch_regressions = regressions;
  for (auto& [epoch, begin] : pending) {
    (void)epoch;
    result.rolled_back.emplace_back(std::move(begin.first), begin.second);
  }
  return result;
}

Status ManifestJournal::WriteCheckpoint(
    const std::string& path, const std::vector<ManifestViewRecord>& records,
    const std::vector<uint64_t>& quarantined_epochs, uint64_t last_epoch) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return IoError("cannot create manifest checkpoint " + tmp);
  }
  Status status = WriteJournalHeader(file, tmp);
  bool crashed = false;
  auto append = [&](ManifestRecordType type,
                    const std::vector<uint8_t>& payload) {
    if (!status.ok()) return;
    std::vector<uint8_t> frame = FrameRecord(type, payload);
    if (util::FaultInjector::Global().AtCrashPoint(
            util::CrashPoint::kCrashMidCompaction)) {
      // Simulated crash mid-compaction: half a frame reaches the tmp file
      // and the process "dies" — the torn tmp stays on disk and the rename
      // never happens, so the original journal must win on reopen.
      std::fwrite(frame.data(), 1, frame.size() / 2, file);
      std::fflush(file);
      crashed = true;
      status = Status::IoError("injected crash mid-compaction writing " + tmp);
      return;
    }
    if (util::FaultInjector::Global().OnDiskCharge(frame.size())) {
      // Full disk mid-compaction: the record never starts, the tmp file is
      // removed below, and the rename never happens — the old journal stays
      // the authoritative (and still replayable) manifest.
      status = NoSpace("cannot write manifest checkpoint " + tmp);
      return;
    }
    errno = 0;
    if (std::fwrite(frame.data(), 1, frame.size(), file) != frame.size()) {
      status = WriteError("cannot write manifest checkpoint " + tmp);
    }
  };
  for (const ManifestViewRecord& r : records) {
    append(ManifestRecordType::kInstall, EncodeInstall(r));
  }
  for (uint64_t epoch : quarantined_epochs) {
    append(ManifestRecordType::kQuarantine, EncodePair(last_epoch, epoch));
  }
  // The epoch mark last (keeping leading epochs non-decreasing): a compact
  // journal holds only surviving installs, whose epochs can all be far below
  // the allocator's high-water mark (e.g. after quarantines or drops).
  // Without the mark, reopening after a checkpoint would resume the epoch
  // counter too low and mint epochs the old journal already used.
  append(ManifestRecordType::kEpochMark, EncodeEpoch(last_epoch));
  if (status.ok()) status = SyncFile(file, tmp);
  std::fclose(file);
  if (!status.ok()) {
    // A genuine write error cleans up its tmp; an injected crash leaves it
    // exactly as a kill -9 would, for recovery to sweep.
    if (!crashed) std::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status renamed = IoError("cannot install manifest checkpoint " + path);
    std::remove(tmp.c_str());
    return renamed;
  }
  return Status::Ok();
}

Status ManifestJournal::AppendRecord(ManifestRecordType type,
                                     const std::vector<uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::IoError("manifest journal " + path_ + " is closed");
  }
  std::vector<uint8_t> frame = FrameRecord(type, payload);
  if (util::FaultInjector::Global().AtCrashPoint(
          util::CrashPoint::kCrashMidJournal)) {
    // Simulated crash mid-append: half the record reaches the file and the
    // process "dies" — no CRC, no sync, no cleanup. Replay must treat the
    // half-record as a torn tail and recovery must truncate it.
    std::fwrite(frame.data(), 1, frame.size() / 2, file_);
    std::fflush(file_);
    return Status::IoError("injected crash mid-journal appending to " + path_);
  }
  if (util::FaultInjector::Global().OnDiskCharge(frame.size())) {
    // Full disk: the record never starts, so the journal keeps its clean
    // record boundary — no torn tail for recovery to truncate.
    return NoSpace("cannot append to manifest journal " + path_);
  }
  errno = 0;
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return WriteError("cannot append to manifest journal " + path_);
  }
  return SyncFile(file_, path_);
}

long ManifestJournal::AppendOffset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return -1;
  std::fflush(file_);
  return std::ftell(file_);
}

Status ManifestJournal::TruncateTo(long offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::IoError("manifest journal " + path_ + " is closed");
  }
  if (offset < static_cast<long>(kJournalHeaderSize)) {
    return Status::InvalidArgument(
        "refusing to truncate manifest journal " + path_ +
        " into its header (offset " + std::to_string(offset) + ")");
  }
  // A failed append may have latched the stream's error flag; clear it so
  // the flush below does not refuse, then cut the file at the record
  // boundary the caller captured before its transaction.
  std::clearerr(file_);
  (void)std::fflush(file_);
  if (::ftruncate(::fileno(file_), offset) != 0) {
    return Status::IoError("cannot truncate manifest journal " + path_ +
                           " to " + std::to_string(offset) + " bytes: " +
                           std::strerror(errno));
  }
  if (std::fseek(file_, offset, SEEK_SET) != 0) {
    return Status::IoError("seek after truncate failed in manifest journal " +
                           path_);
  }
  return SyncFile(file_, path_);
}

Status ManifestJournal::AppendBegin(uint64_t epoch, uint8_t scheme,
                                    const std::string& pattern) {
  return AppendRecord(ManifestRecordType::kBegin,
                      EncodeBegin(epoch, scheme, pattern));
}

Status ManifestJournal::AppendInstall(const ManifestViewRecord& record) {
  return AppendRecord(ManifestRecordType::kInstall, EncodeInstall(record));
}

Status ManifestJournal::AppendQuarantine(uint64_t epoch,
                                         uint64_t target_epoch) {
  return AppendRecord(ManifestRecordType::kQuarantine,
                      EncodePair(epoch, target_epoch));
}

Status ManifestJournal::AppendReplace(uint64_t epoch, uint64_t old_epoch,
                                      uint64_t new_epoch) {
  return AppendRecord(ManifestRecordType::kReplace,
                      EncodeTriple(epoch, old_epoch, new_epoch));
}

Status ManifestJournal::AppendDrop(uint64_t epoch, uint64_t target_epoch) {
  return AppendRecord(ManifestRecordType::kDrop,
                      EncodePair(epoch, target_epoch));
}

Status ManifestJournal::AppendUpdateBegin(uint64_t epoch,
                                          uint32_t view_count) {
  return AppendRecord(ManifestRecordType::kUpdateBegin,
                      EncodeUpdateBegin(epoch, view_count));
}

Status ManifestJournal::AppendUpdateCommit(uint64_t epoch,
                                           uint64_t txn_epoch) {
  return AppendRecord(ManifestRecordType::kUpdateCommit,
                      EncodePair(epoch, txn_epoch));
}

}  // namespace viewjoin::storage
