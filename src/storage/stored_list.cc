#include "storage/stored_list.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "storage/list_codec.h"

namespace viewjoin::storage {
namespace {

// -1 = not yet resolved from the environment.
std::atomic<int> g_cursor_mode{-1};

}  // namespace

CursorMode DefaultCursorMode() {
  int mode = g_cursor_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    const char* env = std::getenv("VIEWJOIN_CURSOR");
    CursorMode resolved = CursorMode::kBlock;
    if (env != nullptr && *env != '\0') {
      if (std::strcmp(env, "scalar") == 0) {
        resolved = CursorMode::kScalar;
      } else if (std::strcmp(env, "block") == 0) {
        resolved = CursorMode::kBlock;
      } else {
        VJ_CHECK(false) << "VIEWJOIN_CURSOR must be \"scalar\" or \"block\", "
                           "got \""
                        << env << "\"";
      }
    }
    mode = static_cast<int>(resolved);
    g_cursor_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<CursorMode>(mode);
}

void SetDefaultCursorMode(CursorMode mode) {
  g_cursor_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void ListCursor::EnsureBlock(EntryIndex i, uint32_t wanted) const {
  VJ_DCHECK(list_ != nullptr && i < list_->count);
  const RecordLayout& layout = list_->layout;
  const uint32_t slots = layout.PointerSlots();
  if (!(block_.valid && i >= block_.first && i < block_.first + block_.count)) {
    // Land on the page holding `i`. Fixed pages decode nothing yet; delta
    // pages decode everything (varints have no random access).
    const uint32_t page = list_->PageIndexOf(i);
    block_.first = list_->FirstEntryOfPage(page);
    block_.count = list_->RecordsOnPage(page);
    block_.fields = 0;
    block_.point_reads = 0;
    block_.valid = true;
    pin_ = pool_->GetPage(list_->first_page + page);
    MaybeReadAhead(page);
    if (list_->format == ListFormat::kDelta) {
      const uint32_t n = block_.count;
      block_.starts.resize(static_cast<size_t>(n) * layout.label_count);
      block_.ends.resize(static_cast<size_t>(n) * layout.label_count);
      block_.levels.resize(static_cast<size_t>(n) * layout.label_count);
      block_.pointers.resize(static_cast<size_t>(n) * slots);
      bool ok = DecodeDeltaPage(pin_.data(), layout, block_.first, n,
                                block_.starts.data(), block_.ends.data(),
                                block_.levels.data(),
                                slots > 0 ? block_.pointers.data() : nullptr)
                    .ok();
      if (!ok) {
        // Failed delta decode (torn/corrupt page): present sentinel records,
        // mirroring what a poison page yields under the fixed format.
        // Cursors keep working; the sentinel labels join nothing and the
        // catalog's checksum/scrub machinery owns the actual fault handling.
        std::fill(block_.starts.begin(), block_.starts.end(), 0xFFFFFFFFu);
        std::fill(block_.ends.begin(), block_.ends.end(), 0xFFFFFFFFu);
        std::fill(block_.levels.begin(), block_.levels.end(), 0u);
        std::fill(block_.pointers.begin(), block_.pointers.end(), kNullEntry);
      }
      block_.fields = kAllBlockFields;
      return;
    }
  }
  uint32_t missing = wanted & ~block_.fields;
  if (missing == 0) return;
  // De-interleave the requested field classes of the fixed page into their
  // SoA arrays — one strided pass per array, only for arrays actually
  // wanted. A poison page (pool read failure) is 0xFF-filled, which these
  // passes faithfully decode into the same 0xFFFFFFFF sentinels the scalar
  // path reads.
  const uint8_t* payload = pin_.data();
  const uint32_t record_size = layout.RecordSize();
  const uint32_t n = block_.count;
  const size_t label_values = static_cast<size_t>(n) * layout.label_count;
  for (uint32_t field = kStartsField; field <= kLevelsField; field <<= 1) {
    if ((missing & field) == 0) continue;
    std::vector<uint32_t>& out = field == kStartsField ? block_.starts
                                 : field == kEndsField ? block_.ends
                                                       : block_.levels;
    const uint32_t base =
        field == kStartsField ? 0u : field == kEndsField ? 4u : 8u;
    out.resize(label_values);
    for (uint32_t r = 0; r < n; ++r) {
      const uint8_t* rec = payload + static_cast<size_t>(r) * record_size;
      for (uint32_t k = 0; k < layout.label_count; ++k) {
        std::memcpy(&out[r * layout.label_count + k], rec + 12 * k + base, 4);
      }
    }
  }
  if ((missing & kPointersField) != 0 && slots > 0) {
    block_.pointers.resize(static_cast<size_t>(n) * slots);
    for (uint32_t r = 0; r < n; ++r) {
      const uint8_t* rec = payload + static_cast<size_t>(r) * record_size;
      for (uint32_t s = 0; s < slots; ++s) {
        std::memcpy(&block_.pointers[r * slots + s],
                    rec + 12 * layout.label_count + 4 * s, 4);
      }
    }
  }
  block_.fields |= wanted;
}

void ListCursor::MaybeReadAhead(uint32_t page) const {
  const size_t depth = pool_->read_ahead_depth();
  if (depth == 0) return;
  const uint32_t pages = list_->PageSpan();
  uint32_t end = page + 1 + static_cast<uint32_t>(depth);
  if (end > pages) end = pages;
  for (uint32_t p = std::max(page + 1, prefetch_edge_); p < end; ++p) {
    pool_->Prefetch(list_->first_page + p);
  }
  if (end > prefetch_edge_) prefetch_edge_ = end;
}

uint32_t ListCursor::StartAt(EntryIndex i) const {
  if (mem_labels_ != nullptr) return mem_labels_[i].start;
  if (UseBlocks()) {
    EnsureBlock(i, 0);
    if ((block_.fields & kStartsField) != 0) {
      return block_.starts[(i - block_.first) * list_->layout.label_count];
    }
    return FixedFieldAt(i - block_.first, 0);
  }
  PageId page = list_->PageOf(i);
  if (!pin_.valid() || pin_.page() != page) pin_ = pool_->GetPage(page);
  uint32_t start;
  std::memcpy(&start, pin_.data() + list_->OffsetOf(i), 4);
  return start;
}

uint32_t ListCursor::EndAt(EntryIndex i) const {
  if (mem_labels_ != nullptr) return mem_labels_[i].end;
  if (UseBlocks()) {
    EnsureBlock(i, 0);
    if ((block_.fields & kEndsField) != 0) {
      return block_.ends[(i - block_.first) * list_->layout.label_count];
    }
    return FixedFieldAt(i - block_.first, 4);
  }
  PageId page = list_->PageOf(i);
  if (!pin_.valid() || pin_.page() != page) pin_ = pool_->GetPage(page);
  uint32_t end;
  std::memcpy(&end, pin_.data() + list_->OffsetOf(i) + 4, 4);
  return end;
}

}  // namespace viewjoin::storage
