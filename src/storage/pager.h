#ifndef VIEWJOIN_STORAGE_PAGER_H_
#define VIEWJOIN_STORAGE_PAGER_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "storage/io_stats.h"
#include "util/status.h"

namespace viewjoin::storage {

/// Page id within a pager file.
using PageId = uint32_t;

inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// Fixed-size-page file manager. Materialized views are serialized into a
/// pager file and read back page-at-a-time through the BufferPool, so that
/// every algorithm's list accesses are attributable to page I/O — the cost
/// the LE pointer scheme is designed to reduce.
///
/// On-disk layout (format version 2):
///
///   [ file header, kHeaderSize bytes ]
///   [ page 0: kPageSize payload + kFooterSize footer ]
///   [ page 1: ... ]
///
/// The header records magic/version/page geometry plus its own CRC so Reopen
/// rejects pre-checksum, foreign, or truncated files with a typed error. Each
/// page footer holds a magic word, the page's own id, and a CRC32 of the
/// payload; WritePage stamps it and ReadPage verifies it, so torn pages and
/// bit flips surface as StatusCode::kCorruption instead of silent wrong
/// matches. Transient read failures are retried kReadAttempts times (with a
/// deterministic backoff hook between attempts) before kIoError is returned.
///
/// Media faults are recoverable events, not invariant violations: every
/// fallible entry point returns util::Status, and the first failure is also
/// latched in last_error() so layers that cannot thread a Status through
/// (e.g. the spill spool inside a join) can still detect it afterwards.
///
/// Thread-safe: one internal mutex serializes file access, counters and the
/// error latch, so concurrent queries (buffer-pool misses from several
/// ExecuteBatch workers) can read through one pager. Simulated read latency
/// (VIEWJOIN_PAGE_READ_MICROS) is applied *outside* that mutex, so with
/// VIEWJOIN_PAGE_READ_SLEEP=1 concurrent reads overlap their simulated I/O
/// the way parallel requests overlap on real storage.
class Pager {
 public:
  /// Payload bytes per page — the unit every list layout computes with.
  static constexpr size_t kPageSize = 4096;
  /// Per-page footer: magic, page id, payload CRC32, reserved.
  static constexpr size_t kFooterSize = 16;
  /// Bytes one page occupies in the file.
  static constexpr size_t kPhysicalPageSize = kPageSize + kFooterSize;
  /// Bytes of the file header preceding page 0.
  static constexpr size_t kHeaderSize = 64;
  /// Current file format version (1 was the unchecksummed raw-page format).
  static constexpr uint32_t kFormatVersion = 2;
  /// Physical read attempts per page before kIoError is surfaced.
  static constexpr int kReadAttempts = 3;

  /// How the backing file is opened and closed.
  enum class Mode {
    kTruncate,  // create/truncate; file removed on close (scratch store)
    kPersist,   // create/truncate; file kept on close
    kReopen,    // open an existing file read/write; kept on close
    kReadOnly,  // open an existing file read-only (fsck, inspection)
  };

  /// Opens the backing file according to `mode`. Open/validation failures do
  /// not abort: they are recorded in init_status() and every subsequent page
  /// operation returns that status.
  explicit Pager(const std::string& path, Mode mode = Mode::kTruncate);
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Result of opening and validating the backing file (kNotFound/kIoError
  /// when it cannot be opened, kCorruption when the header or size is bad).
  const util::Status& init_status() const { return init_status_; }

  /// Reserves a new page id at the end of the file. The page must be written
  /// before it is first read.
  util::StatusOr<PageId> AllocatePage();

  /// Serializes one page into its on-disk physical form: payload (`kPageSize`
  /// bytes) followed by the stamped footer {magic, id, CRC32(payload)}.
  /// `out_phys` must hold kPhysicalPageSize bytes. Shadow-materialization
  /// builds stage pages with their *final* ids through this, so the bytes
  /// appended at install time are byte-identical to a direct WritePage.
  static void EncodePhysicalPage(PageId id, const void* payload,
                                 uint8_t* out_phys);

  /// Appends `count` already-encoded physical pages in one contiguous write.
  /// The pages must be stamped (EncodePhysicalPage) with ids
  /// `page_count() .. page_count()+count-1`; on success the pager's page
  /// count covers them. This is the install step of shadow materialization —
  /// the staged pages of a complete view land in the file with one
  /// sequential write instead of page-at-a-time seeks.
  util::Status AppendPhysicalPages(const uint8_t* phys, uint32_t count);

  /// Rolls the file back to exactly `count` pages (count <= page_count()),
  /// cutting away any appended-but-uncommitted tail bytes a failed append
  /// left past the committed region. This is the in-process abort path:
  /// when a commit record fails on a full disk the process is still alive
  /// to undo its own append, so the store needs no reopen-time repair.
  /// Crash handling never calls this — Open's recovery truncates there.
  util::Status TruncateToPageCount(uint32_t count);

  /// Writes a full page (`data` must be kPageSize payload bytes) together
  /// with its checksum footer.
  util::Status WritePage(PageId id, const void* data);

  /// Reads a full page into `out` (kPageSize bytes), verifying the footer.
  /// Retries transient failures before returning kIoError; checksum/magic
  /// mismatches return kCorruption.
  util::Status ReadPage(PageId id, void* out);

  /// Single-attempt read + verification of one page (no retries, no stats
  /// side effects on last_error) — the fsck primitive.
  util::Status VerifyPage(PageId id, void* out);

  /// Flushes buffered writes to the OS.
  util::Status Flush();

  /// Flushes and then fsyncs the backing file — the durability barrier of
  /// the shadow-install protocol (data must be on the medium before the
  /// journal commit record that makes it visible).
  util::Status Sync();

  /// Flushes (persistent modes) and closes the backing file, latching the
  /// outcome in LastFlushStatus(). Idempotent; the destructor calls it, so a
  /// caller that needs the verdict (ViewCatalog::Close) invokes it first.
  util::Status Close();

  /// Outcome of the final flush+close (Ok until Close has run). A swallowed
  /// close-time flush failure would hand the next Reopen a truncated file
  /// with no witness; this latch is how catalog close surfaces it.
  util::Status LastFlushStatus() const {
    std::lock_guard<std::mutex> lock(mu_);
    return close_status_;
  }

  /// First non-OK status any operation produced since the last ClearError().
  util::Status last_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_error_;
  }
  void ClearError() {
    std::lock_guard<std::mutex> lock(mu_);
    last_error_ = util::Status::Ok();
  }

  /// Hook invoked between read retry attempts (attempt number, 2-based).
  /// Deterministic by default (no-op); tests install counters, deployments
  /// can install real backoff.
  static void SetRetryBackoffHook(std::function<void(int)> hook);

  uint32_t page_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return page_count_;
  }
  IoStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = IoStats();
  }
  const std::string& path() const { return path_; }

 private:
  util::Status WriteHeader();
  util::Status ValidateExistingFile();
  util::Status ReadPhysicalOnce(PageId id, uint8_t* phys);
  util::Status Latch(util::Status status);  // first error; caller holds mu_

  std::string path_;
  Mode mode_ = Mode::kTruncate;
  std::FILE* file_ = nullptr;
  uint32_t page_count_ = 0;
  util::Status init_status_;
  util::Status last_error_;
  util::Status close_status_;
  IoStats stats_;
  /// Serializes file access, counters and the error latch. init_status_,
  /// path_ and mode_ are immutable after construction and need no lock.
  mutable std::mutex mu_;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_PAGER_H_
