#ifndef VIEWJOIN_STORAGE_PAGER_H_
#define VIEWJOIN_STORAGE_PAGER_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "storage/io_stats.h"

namespace viewjoin::storage {

/// Page id within a pager file.
using PageId = uint32_t;

inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// Fixed-size-page file manager. Materialized views are serialized into a
/// pager file and read back page-at-a-time through the BufferPool, so that
/// every algorithm's list accesses are attributable to page I/O — the cost
/// the LE pointer scheme is designed to reduce.
///
/// Single-threaded by design (as is the whole evaluation pipeline).
class Pager {
 public:
  static constexpr size_t kPageSize = 4096;

  /// How the backing file is opened and closed.
  enum class Mode {
    kTruncate,  // create/truncate; file removed on close (scratch store)
    kPersist,   // create/truncate; file kept on close
    kReopen,    // open an existing file read/write; kept on close
  };

  /// Opens the backing file according to `mode`.
  explicit Pager(const std::string& path, Mode mode = Mode::kTruncate);
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Reserves a new page id at the end of the file. The page must be written
  /// before it is first read.
  PageId AllocatePage();

  /// Writes a full page. `data` must be kPageSize bytes.
  void WritePage(PageId id, const void* data);

  /// Reads a full page into `out` (kPageSize bytes).
  void ReadPage(PageId id, void* out);

  uint32_t page_count() const { return page_count_; }
  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Mode mode_ = Mode::kTruncate;
  std::FILE* file_ = nullptr;
  uint32_t page_count_ = 0;
  IoStats stats_;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_PAGER_H_
