#ifndef VIEWJOIN_STORAGE_IO_STATS_H_
#define VIEWJOIN_STORAGE_IO_STATS_H_

#include <cstdint>

namespace viewjoin::storage {

/// I/O counters maintained by the pager and buffer pool. The paper reports
/// "I/O time" as a share of total processing time and argues about page
/// accesses saved by schemes/algorithms; these counters expose both the page
/// counts and the wall time spent inside page reads/writes.
struct IoStats {
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  int64_t read_micros = 0;
  int64_t write_micros = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  /// Extra physical read attempts spent recovering transient read failures.
  uint64_t read_retries = 0;
  /// Read-ahead speculation: pages queued for background fetch, demand
  /// fetches served by a prefetched frame, and prefetched frames evicted
  /// untouched. issued >= hits + wasted (the remainder is still cached).
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;

  IoStats& operator+=(const IoStats& other) {
    pages_read += other.pages_read;
    pages_written += other.pages_written;
    read_micros += other.read_micros;
    write_micros += other.write_micros;
    pool_hits += other.pool_hits;
    pool_misses += other.pool_misses;
    read_retries += other.read_retries;
    prefetch_issued += other.prefetch_issued;
    prefetch_hits += other.prefetch_hits;
    prefetch_wasted += other.prefetch_wasted;
    return *this;
  }

  IoStats Delta(const IoStats& since) const {
    IoStats d;
    d.pages_read = pages_read - since.pages_read;
    d.pages_written = pages_written - since.pages_written;
    d.read_micros = read_micros - since.read_micros;
    d.write_micros = write_micros - since.write_micros;
    d.pool_hits = pool_hits - since.pool_hits;
    d.pool_misses = pool_misses - since.pool_misses;
    d.read_retries = read_retries - since.read_retries;
    d.prefetch_issued = prefetch_issued - since.prefetch_issued;
    d.prefetch_hits = prefetch_hits - since.prefetch_hits;
    d.prefetch_wasted = prefetch_wasted - since.prefetch_wasted;
    return d;
  }

  double TotalIoMillis() const {
    return static_cast<double>(read_micros + write_micros) / 1000.0;
  }
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_IO_STATS_H_
