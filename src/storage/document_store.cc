#include "storage/document_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>

#include "storage/manifest.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "xml/parser.h"

namespace viewjoin::storage {
namespace {

/// One parsed element, complete once its closing tag was seen. 24 bytes —
/// the unit both the spill runs and the node arena are made of.
struct DocRecord {
  uint32_t tag = 0;
  uint32_t start = 0;
  uint32_t end = 0;
  uint32_t level = 0;
  uint32_t parent = xml::kInvalidNode;
  uint32_t reserved = 0;
};

/// (tag, start) — the merge order that groups records into per-tag sorted
/// lists. Starts are unique, so the order is total.
bool TagOrder(const DocRecord& a, const DocRecord& b) {
  return a.tag != b.tag ? a.tag < b.tag : a.start < b.start;
}

/// Start order. Both the streaming parser and Document assign start
/// positions and node ids from the same monotone counters, so for a fresh
/// parse start order *is* node-id (preorder) order — the arena order.
bool StartOrder(const DocRecord& a, const DocRecord& b) {
  return a.start < b.start;
}

std::string RunPath(const std::string& path, size_t run, char order) {
  return path + ".run" + std::to_string(run) + "." + order;
}

/// Writes one sorted run to disk. Typed failure: a full disk (real ENOSPC or
/// the injected budget) is kResourceExhausted, so the build aborts as
/// resource exhaustion rather than corruption; a failed run never survives
/// on disk.
util::Status WriteRun(const std::string& run_path,
                      const std::vector<DocRecord>& recs) {
  if (util::FaultInjector::Global().OnDiskCharge(recs.size() *
                                                 sizeof(DocRecord))) {
    return util::Status::ResourceExhausted(
        "cannot write spill run " + run_path +
        ": no space left on device (injected)");
  }
  std::FILE* f = std::fopen(run_path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot create spill run " + run_path + ": " +
                                 std::strerror(errno));
  }
  errno = 0;
  size_t wrote = std::fwrite(recs.data(), sizeof(DocRecord), recs.size(), f);
  bool ok = wrote == recs.size() && std::fflush(f) == 0;
  int err = errno;
  std::fclose(f);
  if (!ok) {
    std::remove(run_path.c_str());
    if (err == ENOSPC) {
      return util::Status::ResourceExhausted("cannot write spill run " +
                                             run_path +
                                             ": no space left on device");
    }
    return util::Status::IoError("cannot write spill run " + run_path);
  }
  return util::Status::Ok();
}

/// Buffered sequential reader over one spill run.
class RunReader {
 public:
  static constexpr size_t kBatch = 512;  // records per refill (~12 KiB)

  bool Open(const std::string& run_path) {
    file_ = std::fopen(run_path.c_str(), "rb");
    if (file_ == nullptr) return false;
    Refill();
    return true;
  }
  ~RunReader() {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool exhausted() const { return pos_ >= buf_.size(); }
  const DocRecord& Peek() const { return buf_[pos_]; }
  void Next() {
    ++pos_;
    if (pos_ >= buf_.size() && !eof_) Refill();
  }

 private:
  void Refill() {
    buf_.resize(kBatch);
    size_t got = std::fread(buf_.data(), sizeof(DocRecord), kBatch, file_);
    buf_.resize(got);
    pos_ = 0;
    if (got < kBatch) eof_ = true;
  }

  std::FILE* file_ = nullptr;
  std::vector<DocRecord> buf_;
  size_t pos_ = 0;
  bool eof_ = false;
};

/// Merged, ordered record stream: either a single sorted in-memory vector
/// (no spill happened) or a k-way merge over sorted run files.
class RecordSource {
 public:
  using Less = bool (*)(const DocRecord&, const DocRecord&);

  /// In-memory source; `recs` must already be sorted by `less`.
  RecordSource(const std::vector<DocRecord>* recs, Less less)
      : mem_(recs), less_(less) {}

  /// Run-file source. `ok()` is false when a run failed to open.
  RecordSource(const std::string& path, size_t runs, char order, Less less)
      : less_(less) {
    readers_.resize(runs);
    for (size_t r = 0; r < runs; ++r) {
      if (!readers_[r].Open(RunPath(path, r, order))) {
        ok_ = false;
        return;
      }
    }
  }

  bool ok() const { return ok_; }

  const DocRecord* Next() {
    if (mem_ != nullptr) {
      return mem_pos_ < mem_->size() ? &(*mem_)[mem_pos_++] : nullptr;
    }
    RunReader* best = nullptr;
    for (RunReader& r : readers_) {
      if (r.exhausted()) continue;
      if (best == nullptr || less_(r.Peek(), best->Peek())) best = &r;
    }
    if (best == nullptr) return nullptr;
    current_ = best->Peek();
    best->Next();
    return &current_;
  }

 private:
  const std::vector<DocRecord>* mem_ = nullptr;
  size_t mem_pos_ = 0;
  Less less_;
  std::vector<RunReader> readers_;
  DocRecord current_;
  bool ok_ = true;
};

/// Appends fixed-size records to pager pages, flushing each page as it
/// fills. Pages are zero-padded — a poison read is distinguishable (0xFF).
class PageWriter {
 public:
  explicit PageWriter(Pager* pager) : pager_(pager) {
    page_.resize(Pager::kPageSize);
  }

  util::Status Append(const void* rec, size_t size) {
    if (fill_ + size > Pager::kPageSize) {
      util::Status s = FlushPage();
      if (!s.ok()) return s;
    }
    std::memcpy(page_.data() + fill_, rec, size);
    fill_ += size;
    return util::Status::Ok();
  }

  /// Flushes a partial trailing page (no-op when empty).
  util::Status Finish() {
    if (fill_ == 0) return util::Status::Ok();
    return FlushPage();
  }

  uint32_t pages_written() const { return pages_written_; }

 private:
  util::Status FlushPage() {
    std::memset(page_.data() + fill_, 0, Pager::kPageSize - fill_);
    auto id = pager_->AllocatePage();
    if (!id.ok()) return id.status();
    util::Status s = pager_->WritePage(*id, page_.data());
    if (!s.ok()) return s;
    fill_ = 0;
    ++pages_written_;
    return util::Status::Ok();
  }

  Pager* pager_;
  std::vector<uint8_t> page_;
  size_t fill_ = 0;
  uint32_t pages_written_ = 0;
};

/// ParseHandler that labels elements exactly as xml::Document does (same
/// position counter, same level convention, same first-seen tag interning)
/// and spills complete records into sorted runs under a memory budget.
class StoreBuilder : public xml::ParseHandler {
 public:
  StoreBuilder(const std::string& path, size_t budget_bytes) : path_(path) {
    // At least one page's worth of records per run keeps run counts sane
    // even under adversarially tiny budgets.
    size_t floor_records = Pager::kPageSize / sizeof(DocRecord);
    budget_records_ = std::max(budget_bytes / sizeof(DocRecord), floor_records);
  }

  bool StartElement(std::string_view name) override {
    xml::TagId tag = Intern(name);
    Open open;
    open.record.tag = tag;
    open.record.start = next_pos_++;
    open.record.level = static_cast<uint32_t>(open_.size()) + 1;
    open.record.parent =
        open_.empty() ? xml::kInvalidNode : open_.back().node_id;
    open.node_id = next_node_id_++;
    open_.push_back(open);
    return true;
  }

  bool EndElement() override {
    Open open = open_.back();
    open_.pop_back();
    open.record.end = next_pos_++;
    buffer_.push_back(open.record);
    if (buffer_.size() >= budget_records_) return Spill();
    return true;
  }

  bool Text() override {
    ++next_pos_;
    return true;
  }

  /// True when a spill write failed (the abort reason when the parse stops);
  /// spill_status() carries the typed reason (ENOSPC vs generic I/O).
  bool spill_failed() const { return !spill_status_.ok(); }
  const util::Status& spill_status() const { return spill_status_; }
  size_t run_count() const { return runs_; }
  uint64_t node_count() const { return next_node_id_; }
  std::vector<std::string>& tag_names() { return tag_names_; }
  std::unordered_map<std::string, xml::TagId>& tag_ids() { return tag_ids_; }

  /// Sorted streams over everything parsed. With runs on disk the in-memory
  /// tail is flushed as the final run first.
  util::Status FinishInput() {
    if (runs_ > 0 && !buffer_.empty()) {
      if (!Spill()) return spill_status_;
    }
    return util::Status::Ok();
  }

  std::unique_ptr<RecordSource> TagSource() {
    if (runs_ == 0) {
      std::sort(buffer_.begin(), buffer_.end(), TagOrder);
      return std::make_unique<RecordSource>(&buffer_, TagOrder);
    }
    return std::make_unique<RecordSource>(path_, runs_, 'a', TagOrder);
  }
  std::unique_ptr<RecordSource> ArenaSource() {
    if (runs_ == 0) {
      std::sort(buffer_.begin(), buffer_.end(), StartOrder);
      return std::make_unique<RecordSource>(&buffer_, StartOrder);
    }
    return std::make_unique<RecordSource>(path_, runs_, 'b', StartOrder);
  }

  /// Removes every run file this builder created (idempotent).
  void RemoveRuns() {
    for (size_t r = 0; r < runs_; ++r) {
      std::remove(RunPath(path_, r, 'a').c_str());
      std::remove(RunPath(path_, r, 'b').c_str());
    }
  }

 private:
  struct Open {
    DocRecord record;
    xml::NodeId node_id = 0;
  };

  xml::TagId Intern(std::string_view name) {
    auto it = tag_ids_.find(std::string(name));
    if (it != tag_ids_.end()) return it->second;
    xml::TagId id = static_cast<xml::TagId>(tag_names_.size());
    tag_names_.emplace_back(name);
    tag_ids_.emplace(tag_names_.back(), id);
    return id;
  }

  /// Writes the buffer as one run in both merge orders, then drops it.
  /// Returning false aborts the parse (ParseHandler contract).
  bool Spill() {
    std::sort(buffer_.begin(), buffer_.end(), TagOrder);
    spill_status_ = WriteRun(RunPath(path_, runs_, 'a'), buffer_);
    if (!spill_status_.ok()) return false;
    std::sort(buffer_.begin(), buffer_.end(), StartOrder);
    spill_status_ = WriteRun(RunPath(path_, runs_, 'b'), buffer_);
    if (!spill_status_.ok()) return false;
    ++runs_;
    buffer_.clear();
    return true;
  }

  std::string path_;
  size_t budget_records_;
  std::vector<DocRecord> buffer_;
  size_t runs_ = 0;
  util::Status spill_status_ = util::Status::Ok();

  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, xml::TagId> tag_ids_;
  std::vector<Open> open_;
  uint32_t next_pos_ = 1;
  xml::NodeId next_node_id_ = 0;
};

void EncodeLabelRecord(uint8_t* out, uint32_t start, uint32_t end,
                       uint32_t level) {
  std::memcpy(out, &start, 4);
  std::memcpy(out + 4, &end, 4);
  std::memcpy(out + 8, &level, 4);
}

}  // namespace

DocumentStore::~DocumentStore() {
  // The pool's read-ahead thread (if any) must stop before the pager goes.
  if (pool_ != nullptr) pool_->SetReadAhead(0);
}

util::Status DocumentStore::AttachPool(size_t pool_pages) {
  if (pool_pages == 0) {
    return util::Status::InvalidArgument(
        "document store: pool_pages must be >= 1");
  }
  pool_ = std::make_unique<BufferPool>(pager_.get(), pool_pages);
  return util::Status::Ok();
}

const StoredList* DocumentStore::ListOfTag(xml::TagId tag) const {
  if (tag >= lists_.size()) return &empty_list_;
  return &lists_[tag];
}

xml::TagId DocumentStore::FindTag(std::string_view name) const {
  auto it = tag_ids_.find(std::string(name));
  return it == tag_ids_.end() ? xml::kInvalidTag : it->second;
}

util::StatusOr<StoredNode> DocumentStore::NodeAt(xml::NodeId id) const {
  if (id >= nodes_list_.count) {
    return util::Status::InvalidArgument("node id past the arena: " +
                                         std::to_string(id));
  }
  BufferPool::PinnedPage pin;
  util::Status s = pool_->Fetch(nodes_list_.PageOf(id), &pin);
  if (!s.ok()) return s;
  const uint8_t* rec = pin.data() + nodes_list_.OffsetOf(id);
  StoredNode node;
  std::memcpy(&node.start, rec, 4);
  std::memcpy(&node.end, rec + 4, 4);
  std::memcpy(&node.level, rec + 8, 4);
  std::memcpy(&node.tag, rec + 12, 4);
  std::memcpy(&node.parent, rec + 16, 4);
  return node;
}

IoStats DocumentStore::Stats() const {
  IoStats stats = pager_->stats();
  stats.pool_hits = pool_->hits();
  stats.pool_misses = pool_->misses();
  stats.prefetch_issued = pool_->prefetch_issued();
  stats.prefetch_hits = pool_->prefetch_hits();
  stats.prefetch_wasted = pool_->prefetch_wasted();
  return stats;
}

void DocumentStore::ResetStats() {
  pager_->ResetStats();
  pool_->ResetStats();
}

namespace {

using SourceFactory = std::function<std::unique_ptr<RecordSource>()>;

/// Encodes the merged (tag, start) stream into per-tag list pages and the
/// start-ordered stream into arena pages, then commits the TOC. Shared by
/// the streaming and from-document builds — both reduce to two sorted
/// record streams plus a tag table.
///
/// The streams arrive as factories, not live sources: when no spill
/// happened, both of the streaming builder's sources are views over the
/// SAME in-memory vector (each factory sorts it into its own order), so the
/// arena source must not be created until the tag pass has fully consumed
/// its stream.
util::Status EmitStore(DocumentStore* store, Pager* pager,
                       const std::vector<std::string>& tag_names,
                       const SourceFactory& make_tag_source,
                       const SourceFactory& make_arena_source,
                       uint64_t node_count, std::vector<StoredList>* lists,
                       StoredList* nodes_list) {
  const RecordLayout label_layout{1, false, 0};
  const RecordLayout arena_layout{2, false, 0};
  lists->assign(tag_names.size(), StoredList{});
  for (StoredList& l : *lists) l.layout = label_layout;

  // Per-tag label lists, in one pass over the (tag, start) stream.
  {
    std::unique_ptr<RecordSource> tag_source = make_tag_source();
    if (!tag_source->ok()) {
      return util::Status::IoError("document store: spill run unreadable");
    }
    PageWriter writer(pager);
    xml::TagId current = xml::kInvalidTag;
    uint32_t page_base = pager->page_count();
    uint32_t records_on_page = 0;
    const uint32_t per_page = label_layout.RecordSize() == 0
                                  ? 0
                                  : Pager::kPageSize / label_layout.RecordSize();
    auto close_tag = [&]() -> util::Status {
      if (current == xml::kInvalidTag) return util::Status::Ok();
      util::Status s = writer.Finish();
      if (!s.ok()) return s;
      records_on_page = 0;
      return util::Status::Ok();
    };
    uint8_t rec_bytes[12];
    for (const DocRecord* rec = tag_source->Next(); rec != nullptr;
         rec = tag_source->Next()) {
      if (rec->tag != current) {
        util::Status s = close_tag();
        if (!s.ok()) return s;
        current = rec->tag;
        VJ_CHECK(current < lists->size());
        StoredList& list = (*lists)[current];
        page_base = pager->page_count();
        list.first_page = page_base;
      }
      StoredList& list = (*lists)[current];
      if (records_on_page == 0) list.page_first_start.push_back(rec->start);
      EncodeLabelRecord(rec_bytes, rec->start, rec->end, rec->level);
      util::Status s = writer.Append(rec_bytes, sizeof(rec_bytes));
      if (!s.ok()) return s;
      ++list.count;
      records_on_page = (records_on_page + 1) % per_page;
    }
    util::Status s = close_tag();
    if (!s.ok()) return s;
  }

  // The node arena, in node-id (start) order.
  {
    std::unique_ptr<RecordSource> arena_source = make_arena_source();
    if (!arena_source->ok()) {
      return util::Status::IoError("document store: spill run unreadable");
    }
    PageWriter writer(pager);
    nodes_list->layout = arena_layout;
    nodes_list->first_page = pager->page_count();
    uint8_t rec_bytes[24];
    uint64_t emitted = 0;
    for (const DocRecord* rec = arena_source->Next(); rec != nullptr;
         rec = arena_source->Next()) {
      std::memcpy(rec_bytes, &rec->start, 4);
      std::memcpy(rec_bytes + 4, &rec->end, 4);
      std::memcpy(rec_bytes + 8, &rec->level, 4);
      std::memcpy(rec_bytes + 12, &rec->tag, 4);
      std::memcpy(rec_bytes + 16, &rec->parent, 4);
      std::memcpy(rec_bytes + 20, &rec->reserved, 4);
      util::Status s = writer.Append(rec_bytes, sizeof(rec_bytes));
      if (!s.ok()) return s;
      ++emitted;
    }
    util::Status s = writer.Finish();
    if (!s.ok()) return s;
    nodes_list->count = static_cast<uint32_t>(node_count);
    if (emitted != node_count) {
      return util::Status::Corruption(
          "document store: arena stream lost records (" +
          std::to_string(emitted) + " of " + std::to_string(node_count) + ")");
    }
  }

  // Durability barrier, then the atomic commit point: data before TOC.
  util::Status s = pager->Sync();
  if (!s.ok()) return s;

  std::vector<ManifestViewRecord> records;
  records.reserve(tag_names.size() + 1);
  uint64_t epoch = 0;
  uint32_t pages_so_far = 0;
  for (size_t t = 0; t < tag_names.size(); ++t) {
    const StoredList& list = (*lists)[t];
    ManifestViewRecord rec;
    rec.epoch = ++epoch;
    rec.scheme = 0;  // Scheme::kElement — plain label lists
    rec.pattern = tag_names[t];
    rec.match_count = list.count;
    rec.size_bytes = static_cast<uint64_t>(list.PageSpan()) * Pager::kPageSize;
    pages_so_far = list.first_page == kInvalidPage
                       ? pages_so_far
                       : list.first_page + list.PageSpan();
    rec.page_count_after = pages_so_far;
    rec.list_lengths = {list.count};
    rec.lists = {list};
    records.push_back(std::move(rec));
  }
  {
    ManifestViewRecord rec;
    rec.epoch = ++epoch;
    rec.scheme = 0;
    rec.pattern = DocumentStore::kNodesPattern;
    rec.match_count = nodes_list->count;
    rec.size_bytes =
        static_cast<uint64_t>(nodes_list->PageSpan()) * Pager::kPageSize;
    rec.page_count_after = pager->page_count();
    rec.list_lengths = {nodes_list->count};
    rec.lists = {*nodes_list};
    records.push_back(std::move(rec));
  }
  return ManifestJournal::WriteCheckpoint(ManifestJournal::PathFor(store->path()),
                                          records, {}, epoch);
}

}  // namespace

util::StatusOr<std::unique_ptr<DocumentStore>> DocumentStore::BuildFromText(
    const std::string& path, std::string_view xml, const Options& options) {
  // A stale TOC must never describe the file we are about to truncate.
  std::remove(ManifestJournal::PathFor(path).c_str());

  auto store = std::unique_ptr<DocumentStore>(new DocumentStore());
  store->path_ = path;
  store->pager_ = std::make_unique<Pager>(path, Pager::Mode::kPersist);
  if (!store->pager_->init_status().ok()) return store->pager_->init_status();

  StoreBuilder builder(path, options.parse_budget_bytes);
  xml::StreamResult parsed = xml::ParseStream(xml, &builder);
  auto abort = [&](util::Status status)
      -> util::StatusOr<std::unique_ptr<DocumentStore>> {
    builder.RemoveRuns();
    store->pager_->Close();
    std::remove(path.c_str());
    return status;
  };
  if (!parsed.ok) {
    if (builder.spill_failed()) {
      return abort(builder.spill_status());
    }
    return abort(util::Status::InvalidArgument(
        "parse error at offset " + std::to_string(parsed.error_offset) + ": " +
        parsed.error));
  }
  util::Status s = builder.FinishInput();
  if (!s.ok()) return abort(s);

  store->tag_names_ = std::move(builder.tag_names());
  store->tag_ids_ = std::move(builder.tag_ids());
  s = EmitStore(store.get(), store->pager_.get(), store->tag_names_,
                [&builder] { return builder.TagSource(); },
                [&builder] { return builder.ArenaSource(); },
                builder.node_count(), &store->lists_, &store->nodes_list_);
  builder.RemoveRuns();
  if (!s.ok()) {
    store->pager_->Close();
    std::remove(path.c_str());
    std::remove(ManifestJournal::PathFor(path).c_str());
    return s;
  }
  s = store->AttachPool(options.pool_pages);
  if (!s.ok()) return s;
  return store;
}

util::StatusOr<std::unique_ptr<DocumentStore>> DocumentStore::Build(
    const std::string& path, const std::string& xml_path,
    const Options& options) {
  std::remove(ManifestJournal::PathFor(path).c_str());

  auto store = std::unique_ptr<DocumentStore>(new DocumentStore());
  store->path_ = path;
  store->pager_ = std::make_unique<Pager>(path, Pager::Mode::kPersist);
  if (!store->pager_->init_status().ok()) return store->pager_->init_status();

  StoreBuilder builder(path, options.parse_budget_bytes);
  xml::StreamResult parsed = xml::ParseFileStream(xml_path, &builder);
  auto abort = [&](util::Status status)
      -> util::StatusOr<std::unique_ptr<DocumentStore>> {
    builder.RemoveRuns();
    store->pager_->Close();
    std::remove(path.c_str());
    return status;
  };
  if (!parsed.ok) {
    if (builder.spill_failed()) {
      return abort(builder.spill_status());
    }
    if (parsed.error.rfind("cannot open file", 0) == 0) {
      return abort(util::Status::NotFound(parsed.error));
    }
    return abort(util::Status::InvalidArgument(
        "parse error at offset " + std::to_string(parsed.error_offset) + ": " +
        parsed.error));
  }
  util::Status s = builder.FinishInput();
  if (!s.ok()) return abort(s);

  store->tag_names_ = std::move(builder.tag_names());
  store->tag_ids_ = std::move(builder.tag_ids());
  s = EmitStore(store.get(), store->pager_.get(), store->tag_names_,
                [&builder] { return builder.TagSource(); },
                [&builder] { return builder.ArenaSource(); },
                builder.node_count(), &store->lists_, &store->nodes_list_);
  builder.RemoveRuns();
  if (!s.ok()) {
    store->pager_->Close();
    std::remove(path.c_str());
    std::remove(ManifestJournal::PathFor(path).c_str());
    return s;
  }
  s = store->AttachPool(options.pool_pages);
  if (!s.ok()) return s;
  return store;
}

util::StatusOr<std::unique_ptr<DocumentStore>> DocumentStore::BuildFromDocument(
    const std::string& path, const xml::Document& doc, const Options& options) {
  std::remove(ManifestJournal::PathFor(path).c_str());

  auto store = std::unique_ptr<DocumentStore>(new DocumentStore());
  store->path_ = path;
  store->pager_ = std::make_unique<Pager>(path, Pager::Mode::kPersist);
  if (!store->pager_->init_status().ok()) return store->pager_->init_status();

  store->tag_names_.reserve(doc.TagCount());
  for (xml::TagId t = 0; t < doc.TagCount(); ++t) {
    store->tag_names_.push_back(doc.TagName(t));
    store->tag_ids_.emplace(store->tag_names_.back(), t);
  }

  // The document already holds both orders: per-tag streams are sorted by
  // start, and node ids index the arrays directly. Adapt them to the same
  // two sorted streams the streaming build produces. Tag lists carry only
  // live nodes (tombstones leave the streams); the arena keeps every id so
  // NodeAt(id) answers for exactly the ids the document answers for.
  std::vector<DocRecord> tag_stream;
  tag_stream.reserve(doc.LiveNodeCount());
  for (xml::TagId t = 0; t < doc.TagCount(); ++t) {
    for (xml::NodeId n : doc.NodesOfTag(t)) {
      const xml::Label& l = doc.NodeLabel(n);
      tag_stream.push_back(DocRecord{t, l.start, l.end, l.level,
                                     doc.Parent(n), 0});
    }
  }
  std::vector<DocRecord> arena_stream;
  arena_stream.reserve(doc.NodeCount());
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    const xml::Label& l = doc.NodeLabel(n);
    arena_stream.push_back(DocRecord{doc.NodeTag(n), l.start, l.end, l.level,
                                     doc.Parent(n), 0});
  }
  // Deliberately NOT sorted: arena order is id order here (post-update ids
  // are not start-ordered), and the tag stream is already grouped/sorted.
  // Two distinct vectors, so the factories just wrap them.
  util::Status s = EmitStore(
      store.get(), store->pager_.get(), store->tag_names_,
      [&tag_stream] {
        return std::make_unique<RecordSource>(&tag_stream, TagOrder);
      },
      [&arena_stream] {
        return std::make_unique<RecordSource>(&arena_stream, StartOrder);
      },
      doc.NodeCount(), &store->lists_, &store->nodes_list_);
  if (!s.ok()) {
    store->pager_->Close();
    std::remove(path.c_str());
    std::remove(ManifestJournal::PathFor(path).c_str());
    return s;
  }
  s = store->AttachPool(options.pool_pages);
  if (!s.ok()) return s;
  return store;
}

util::StatusOr<std::unique_ptr<DocumentStore>> DocumentStore::Open(
    const std::string& path, const Options& options) {
  auto replay = ManifestJournal::Replay(ManifestJournal::PathFor(path));
  if (!replay.ok()) return replay.status();
  if (replay->legacy_text) {
    return util::Status::Corruption(
        "document store manifest has the legacy text format");
  }

  auto store = std::unique_ptr<DocumentStore>(new DocumentStore());
  store->path_ = path;
  store->pager_ = std::make_unique<Pager>(path, Pager::Mode::kReopen);
  if (!store->pager_->init_status().ok()) return store->pager_->init_status();
  const uint32_t page_count = store->pager_->page_count();

  bool arena_seen = false;
  for (const ManifestViewRecord& rec : replay->installed) {
    if (rec.lists.size() != 1) {
      return util::Status::Corruption(
          "document store record '" + rec.pattern + "' must hold one list");
    }
    const StoredList& list = rec.lists[0];
    if (list.count > 0 &&
        (list.first_page == kInvalidPage ||
         list.first_page + list.PageSpan() > page_count)) {
      return util::Status::Corruption("document store list '" + rec.pattern +
                                      "' points past the pager file");
    }
    if (rec.pattern == kNodesPattern) {
      if (arena_seen) {
        return util::Status::Corruption("document store has two node arenas");
      }
      arena_seen = true;
      store->nodes_list_ = list;
      continue;
    }
    xml::TagId id = static_cast<xml::TagId>(store->tag_names_.size());
    if (!store->tag_ids_.emplace(rec.pattern, id).second) {
      return util::Status::Corruption("document store repeats tag '" +
                                      rec.pattern + "'");
    }
    store->tag_names_.push_back(rec.pattern);
    store->lists_.push_back(list);
  }
  if (!arena_seen) {
    return util::Status::Corruption("document store is missing its node arena");
  }
  util::Status s = store->AttachPool(options.pool_pages);
  if (!s.ok()) return s;
  return store;
}

}  // namespace viewjoin::storage
