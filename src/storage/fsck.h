#ifndef VIEWJOIN_STORAGE_FSCK_H_
#define VIEWJOIN_STORAGE_FSCK_H_

#include <string>
#include <utility>
#include <vector>

#include "storage/pager.h"
#include "util/status.h"

namespace viewjoin::storage {

/// Result of scanning one pager file page by page.
struct FsckReport {
  /// Header/size validation of the file itself; pages are only scanned when
  /// this is OK.
  util::Status file_status;
  uint32_t page_count = 0;
  /// Per-page verification failures (checksum, footer, short read), in page
  /// order.
  std::vector<std::pair<PageId, util::Status>> bad_pages;

  bool ok() const { return file_status.ok() && bad_pages.empty(); }
};

/// Opens `path` read-only and verifies every page's footer and checksum with
/// single-attempt reads (no retry masking). The scan itself never aborts;
/// unreadable files are reported through file_status.
FsckReport FsckPagerFile(const std::string& path);

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_FSCK_H_
