#ifndef VIEWJOIN_STORAGE_FSCK_H_
#define VIEWJOIN_STORAGE_FSCK_H_

#include <string>
#include <utility>
#include <vector>

#include "storage/materialized_view.h"
#include "storage/pager.h"
#include "util/status.h"

namespace viewjoin::storage {

/// Result of scanning one pager file page by page.
struct FsckReport {
  /// Header/size validation of the file itself; pages are only scanned when
  /// this is OK.
  util::Status file_status;
  uint32_t page_count = 0;
  /// Per-page verification failures (checksum, footer, short read), in page
  /// order.
  std::vector<std::pair<PageId, util::Status>> bad_pages;

  bool ok() const { return file_status.ok() && bad_pages.empty(); }
};

/// Opens `path` read-only and verifies every page's footer and checksum with
/// single-attempt reads (no retry masking). The scan itself never aborts;
/// unreadable files are reported through file_status.
FsckReport FsckPagerFile(const std::string& path);

/// Result of cross-checking a persistent catalog: the pager file, its
/// manifest journal, and the consistency constraints between them. Findings
/// fall in two classes with different verdicts:
///   - *corruption* (bytes that validate as wrong): bad pages, a journal
///     record failing its CRC mid-file, an install record pointing past the
///     journal's durable prefix, or a data file shorter than that prefix;
///   - *crash artifacts* (interrupted-but-rolled-backable state): a torn
///     journal tail, pager pages past the durable prefix, leftover shadow
///     files, a pre-journal text manifest. These are what RepairCatalog
///     (or the next ViewCatalog::Open) cleans up.
struct FsckCatalogReport {
  /// Page-level scan of the pager file (checksums, footers).
  FsckReport pager;
  /// Journal replay verdict: OK, kNotFound (no manifest), or kCorruption.
  util::Status manifest_status;
  /// The journal held a pre-journal "VIEWJOINCAT" text manifest. Journal
  /// cross-checks are skipped (the legacy format carries no epochs); the
  /// next Open converts it.
  bool legacy = false;

  // -- Journal summary (valid when manifest_status is OK and !legacy) -------
  uint64_t last_epoch = 0;
  /// Epoch high-water mark over EVERY journal record, including records a
  /// rolled-back update batch undid — the value the epoch allocator resumes
  /// above. Equals last_epoch (kept as a named field so --json consumers can
  /// assert epoch monotonicity across update batches explicitly).
  uint64_t max_epoch = 0;
  uint32_t durable_page_count = 0;
  size_t view_count = 0;         // live install records
  size_t quarantined_count = 0;  // journaled quarantines without replacement
  size_t pending_rebuild = 0;    // begin records a crash cut down

  // -- Crash artifacts (repairable) -----------------------------------------
  bool journal_tail_torn = false;
  /// Pager pages (whole or partial) beyond the durable prefix — a crash
  /// between the data append and the journal commit.
  uint32_t orphan_pages = 0;
  /// The orphan region ends in a fraction of a page (crash mid-write). The
  /// pager rejects such a file wholesale, so the page scan is skipped; the
  /// journal still proves everything up to the durable prefix.
  bool pager_tail_partial = false;
  /// Leftover "<path>.shadow.*" staging files from interrupted installs.
  std::vector<std::string> orphan_shadows;
  /// Leftover "<path>.updatedelta" spill files (whole or torn) from an
  /// interrupted update batch; pure staging, swept by the next Open.
  std::vector<std::string> orphan_delta_files;
  /// Update batches whose commit record never landed: replay rolls them
  /// back and the next Open truncates the half-applied journal suffix.
  uint64_t rolled_back_update_batches = 0;

  // -- Cross-check corruption -----------------------------------------------
  /// Checksum/footer failures *within* the durable prefix — committed data
  /// that rotted. (pager.bad_pages beyond the prefix are crash artifacts and
  /// excluded; truncating the orphan region discards them.)
  uint32_t corrupt_durable_pages = 0;
  /// The pager file is *shorter* than the journal's durable prefix: committed
  /// data is missing. Not repairable (the affected views must be rebuilt).
  bool data_missing = false;
  /// Install records whose stored lists point outside the durable prefix,
  /// as "epoch <e> (<pattern>): <problem>".
  std::vector<std::string> bad_views;
  /// Delta-format lists whose pages were decoded end to end (directory
  /// validated, every varint page decoded, record counts and fence keys
  /// cross-checked).
  size_t compressed_lists_checked = 0;
  /// Delta-format findings, as "epoch <e> (<pattern>): <list> <problem>".
  /// Pages already counted in corrupt_durable_pages are not re-reported;
  /// these are pages whose checksums pass but whose varint payload lies.
  std::vector<std::string> bad_compressed_lists;
  /// Journal records whose leading epoch ran *backwards*. The journal is
  /// append-only over a monotone allocator, so any regression means epochs
  /// were reused (e.g. by a compaction that lost the high-water mark) —
  /// plan-cache keys and view identities are no longer unique.
  uint64_t epoch_regressions = 0;

  /// Nothing wrong at all.
  bool clean() const {
    return pager.ok() && manifest_status.ok() && !legacy && !corrupt() &&
           !repair_needed();
  }
  /// Something validates as wrong (vs. merely interrupted).
  bool corrupt() const {
    return corrupt_durable_pages > 0 ||
           manifest_status.code() == util::StatusCode::kCorruption ||
           data_missing || !bad_views.empty() ||
           !bad_compressed_lists.empty() || epoch_regressions > 0 ||
           (pager.file_status.code() == util::StatusCode::kCorruption &&
            !pager_tail_partial);
  }
  /// Crash artifacts present that RepairCatalog / Open would clean up.
  bool repair_needed() const {
    return journal_tail_torn || orphan_pages > 0 || pager_tail_partial ||
           !orphan_shadows.empty() || !orphan_delta_files.empty() ||
           rolled_back_update_batches > 0 || legacy;
  }
};

/// Read-only consistency check of the persistent catalog at `path` (pager
/// file + "<path>.manifest" journal + shadow leftovers). Never modifies any
/// file and never aborts; every finding lands in the report.
FsckCatalogReport FsckCatalog(const std::string& path);

/// Repairs the crash artifacts FsckCatalog flags: opens the catalog (which
/// runs startup recovery — truncating the torn journal tail and orphan
/// pages, deleting orphan shadows, converting a legacy manifest), then
/// checkpoints the journal and closes cleanly. Returns the recovery report
/// describing what was done, or the error that prevented opening — genuine
/// corruption (checksum-bad pages, missing committed data) is NOT repaired,
/// because the backing data for those views is simply gone; rebuild them
/// from the source document instead.
util::StatusOr<RecoveryReport> RepairCatalog(const std::string& path,
                                             size_t pool_pages = 256);

/// Result of verifying a paged base-document store (DocumentStore): the
/// pager file, its manifest checkpoint (the store's table of contents), and
/// the doc-specific invariants — one list per record, a single "#nodes"
/// arena, unique tags, page ranges inside the durable prefix, and sorted
/// starts with fence keys that match the pages they describe. Base-document
/// corruption is a *different failure domain* than view corruption: views
/// rebuild from the document, but a rotten document store must be rebuilt
/// from the source XML — vj_fsck reports it with its own exit code.
struct FsckDocStoreReport {
  /// False when neither the pager file nor the manifest exists (no store at
  /// this path — vacuously clean).
  bool present = false;
  /// Page-level scan of the pager file (checksums, footers).
  FsckReport pager;
  /// Manifest replay verdict: OK, kNotFound, or kCorruption.
  util::Status manifest_status;
  /// Pager file exists but the manifest does not: an aborted build's orphan
  /// (the commit point is the manifest write). Rebuild, don't trust.
  bool orphan = false;

  // -- TOC summary (valid when manifest_status is OK) -----------------------
  uint64_t node_count = 0;
  size_t tag_count = 0;
  uint32_t durable_page_count = 0;

  // -- Corruption findings --------------------------------------------------
  /// Checksum/footer failures within the durable prefix.
  uint32_t corrupt_durable_pages = 0;
  /// The manifest carries no "#nodes" arena record.
  bool arena_missing = false;
  /// Structural findings per record, as "<pattern>: <problem>" (bad ranges,
  /// duplicate tags, unsorted label lists, fence-key mismatches).
  std::vector<std::string> bad_lists;
  /// The pager file is shorter than the manifest's durable prefix.
  bool data_missing = false;

  // -- Crash artifacts ------------------------------------------------------
  /// Leftover "<path>.runN.{a,b}" spill files from an interrupted build.
  std::vector<std::string> stray_runs;

  bool clean() const {
    return !present || (pager.ok() && manifest_status.ok() && !corrupt() &&
                        !orphan && stray_runs.empty());
  }
  bool corrupt() const {
    return corrupt_durable_pages > 0 || arena_missing || data_missing ||
           !bad_lists.empty() ||
           manifest_status.code() == util::StatusCode::kCorruption ||
           (present && !orphan && !pager.file_status.ok());
  }
};

/// Read-only consistency check of the document store at `path` (pager file +
/// "<path>.manifest" checkpoint + spill-run leftovers). Never modifies any
/// file and never aborts.
FsckDocStoreReport FsckDocumentStore(const std::string& path);

/// Machine-readable renderings (vj_fsck --json): one JSON object capturing
/// every report field plus the derived verdicts (clean/corrupt/
/// repair_needed), so CI gates parse the verdict instead of scraping text.
std::string ToJson(const FsckReport& report);
std::string ToJson(const FsckCatalogReport& report);
std::string ToJson(const FsckDocStoreReport& report);

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_FSCK_H_
