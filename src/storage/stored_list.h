#ifndef VIEWJOIN_STORAGE_STORED_LIST_H_
#define VIEWJOIN_STORAGE_STORED_LIST_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/list_search.h"
#include "storage/pager.h"
#include "storage/simd_scan.h"
#include "util/check.h"
#include "xml/label.h"

namespace viewjoin::storage {

/// Index of an entry within a stored list; the on-disk encoding of the LE
/// scheme's child/descendant/following pointers. Entry indexes convert
/// to/from the paper's (page number, byte offset) pairs arithmetically since
/// records are fixed-size and never span pages.
using EntryIndex = uint32_t;

inline constexpr EntryIndex kNullEntry = 0xFFFFFFFFu;

/// On-disk record layouts (all little-endian uint32 fields):
///
///  element record  : start, end, level                          (12 bytes)
///  LE record       : start, end, level, following, descendant,
///                    child[0..m)                                (20 + 4m)
///  tuple record    : n consecutive element records              (12n)
///
/// `following`/`descendant`/`child[k]` hold an EntryIndex into the pointed
/// list or kNullEntry.
struct RecordLayout {
  uint32_t label_count = 1;   // 1 for element/LE lists, n for tuple lists
  bool has_pointers = false;  // true for LE / LE_p lists
  uint32_t child_count = 0;   // number of child pointers (LE only)

  uint32_t RecordSize() const {
    return 12 * label_count + (has_pointers ? 8 + 4 * child_count : 0);
  }
  uint32_t PointerSlots() const {
    return has_pointers ? 2 + child_count : 0;
  }
};

/// Physical encoding of a list's pages.
enum class ListFormat : uint8_t {
  kFixed = 0,  // fixed-size records at arithmetic offsets (original format)
  kDelta = 1,  // prefix/delta varint pages (list_codec.h) + page directory
};

/// Metadata of one immutable list stored in a pager file. Created by the
/// materializer; read through ListCursor.
///
/// kFixed lists locate entries arithmetically (PageOf/OffsetOf). kDelta
/// pages hold a variable number of whole records, so they carry a page
/// directory: `page_first_entry[p]` is the entry index of page p's first
/// record. Both formats may carry `page_first_start` fence keys (the first
/// record's start label per page), which let seeks gallop across pages
/// without touching them; lists decoded from v1 manifests have no fences
/// and fall back to entry-level galloping.
struct StoredList {
  PageId first_page = kInvalidPage;
  uint32_t count = 0;
  RecordLayout layout;
  ListFormat format = ListFormat::kFixed;
  std::vector<uint32_t> page_first_entry;  // kDelta only
  std::vector<uint32_t> page_first_start;  // fence keys; may be empty (v1)

  uint32_t RecordsPerPage() const {
    VJ_DCHECK(layout.RecordSize() != 0 &&
              layout.RecordSize() <= Pager::kPageSize);
    return static_cast<uint32_t>(Pager::kPageSize) / layout.RecordSize();
  }
  /// Page/offset of an entry — the paper's pointer representation.
  PageId PageOf(EntryIndex i) const {
    VJ_DCHECK(format == ListFormat::kFixed);
    return first_page + i / RecordsPerPage();
  }
  uint32_t OffsetOf(EntryIndex i) const {
    VJ_DCHECK(format == ListFormat::kFixed);
    return (i % RecordsPerPage()) * layout.RecordSize();
  }
  uint32_t PageSpan() const {
    if (format == ListFormat::kDelta) {
      return static_cast<uint32_t>(page_first_entry.size());
    }
    if (count == 0) return 0;
    return (count + RecordsPerPage() - 1) / RecordsPerPage();
  }
  /// Zero-based page holding entry `i`.
  uint32_t PageIndexOf(EntryIndex i) const {
    if (format == ListFormat::kFixed) return i / RecordsPerPage();
    // Last directory slot with first_entry <= i.
    uint32_t p = simd::LowerBoundGt(
        page_first_entry.data(),
        static_cast<uint32_t>(page_first_entry.size()), i);
    VJ_DCHECK(p > 0);
    return p - 1;
  }
  EntryIndex FirstEntryOfPage(uint32_t p) const {
    if (format == ListFormat::kFixed) return p * RecordsPerPage();
    return page_first_entry[p];
  }
  uint32_t RecordsOnPage(uint32_t p) const {
    EntryIndex first = FirstEntryOfPage(p);
    EntryIndex next = p + 1 < PageSpan() ? FirstEntryOfPage(p + 1) : count;
    return next - first;
  }
};

/// How cursors read list pages. kScalar is the original per-entry path
/// (pin check + memcpy per field read); kBlock decodes a whole page into
/// struct-of-arrays scratch once and serves reads from it, enabling the
/// galloping/SIMD skip primitives below. kDelta lists always decode by
/// block regardless of mode (varints have no random access).
enum class CursorMode { kScalar, kBlock };

/// Process default, from VIEWJOIN_CURSOR ("scalar"/"block"; default block).
CursorMode DefaultCursorMode();
/// Overrides the default (benches/tests); affects cursors created after.
void SetDefaultCursorMode(CursorMode mode);

/// Result of a non-moving skip search (FindFirstStart).
struct SeekOutcome {
  EntryIndex pos = 0;
  bool aborted = false;
};

/// A decoded page of a block-capable cursor, as struct-of-arrays spans.
/// Arrays are record-major, strided by label_count. Valid until the cursor
/// decodes another block or is destroyed.
struct BlockView {
  EntryIndex first = 0;  // entry index of the block's first record
  uint32_t count = 0;    // records in the block
  const uint32_t* starts = nullptr;
  const uint32_t* ends = nullptr;
  const uint32_t* levels = nullptr;
};

/// Cursor over a StoredList. Provides sequential Next() and random Seek()
/// (how pointer jumps land). In scalar mode, field decoders read the current
/// record through the buffer pool; the cursor holds a *pin* on its current
/// page, so consecutive reads within a page cost one pool lookup and the
/// page cannot be evicted (and its pointer never dangles) while the cursor
/// sits on it — even when other queries thrash the shared pool concurrently.
/// In block mode the cursor instead decodes the whole page into per-cursor
/// struct-of-arrays scratch (one pin + one pass per page) and serves
/// LabelAt/pointer reads and the skip primitives from the decoded arrays.
/// A page that fails to read (the pool's poison page) or fails delta decode
/// yields sentinel records — 0xFFFFFFFF labels, null pointers — matching the
/// scalar path's poison-read semantics so governance sees the same values.
///
/// A second, memory-backed mode wraps a plain label array instead of a pager
/// list: the base-document fallback streams the document's own tag lists
/// through the same cursor interface, so TwigStack runs unchanged when the
/// view store is unavailable. Memory mode carries no pointers.
///
/// The skip primitives take a checkpoint hook `ck(n)` — charge `n` entries
/// of governance work, return true to abort (see QueryContext::CheckpointN)
/// — and count their probe/scan work into caller-provided counters so
/// EXPLAIN stats stay exact however a skip is executed.
class ListCursor {
 public:
  ListCursor() : mode_(DefaultCursorMode()) {}
  ListCursor(const StoredList* list, BufferPool* pool)
      : list_(list), pool_(pool), mode_(DefaultCursorMode()) {}
  /// Memory-backed cursor over `count` labels (no storage behind it).
  ListCursor(const xml::Label* labels, uint32_t count)
      : mem_labels_(labels), mem_count_(count), mode_(DefaultCursorMode()) {}

  bool valid() const { return list_ != nullptr || mem_labels_ != nullptr; }
  bool AtEnd() const { return index_ >= size(); }
  EntryIndex index() const { return index_; }
  uint32_t size() const {
    return list_ != nullptr ? list_->count : mem_count_;
  }
  const StoredList& list() const { return *list_; }

  void Reset() {
    index_ = 0;
    pin_.Release();
  }

  void Next() { ++index_; }

  /// Random access (pointer dereference target).
  void Seek(EntryIndex i) { index_ = i; }

  /// Label of the current record's `k`-th label (k = 0 for element/LE lists).
  xml::Label LabelAt(uint32_t k = 0) const {
    if (mem_labels_ != nullptr) {
      VJ_DCHECK(!AtEnd());
      return mem_labels_[index_];
    }
    if (UseBlocks()) {
      EnsureBlock(index_, 0);
      if ((block_.fields & kLabelFields) != kLabelFields) {
        // Undecoded fixed page: read the one record directly until the page
        // has seen enough traffic to be worth de-interleaving.
        if (block_.point_reads < kDecodeAfterPointReads) {
          ++block_.point_reads;
          uint32_t off = index_ - block_.first;
          return {FixedFieldAt(off, 12 * k), FixedFieldAt(off, 12 * k + 4),
                  FixedFieldAt(off, 12 * k + 8)};
        }
        EnsureBlock(index_, kLabelFields);
      }
      uint32_t slot = (index_ - block_.first) * list_->layout.label_count + k;
      return {block_.starts[slot], block_.ends[slot], block_.levels[slot]};
    }
    const uint8_t* rec = Record();
    xml::Label label;
    std::memcpy(&label.start, rec + 12 * k, 4);
    std::memcpy(&label.end, rec + 12 * k + 4, 4);
    std::memcpy(&label.level, rec + 12 * k + 8, 4);
    return label;
  }

  EntryIndex Following() const { return PointerAt(0); }
  EntryIndex Descendant() const { return PointerAt(1); }
  EntryIndex Child(uint32_t k) const { return PointerAt(2 + k); }

  /// True when reads decode whole pages (block mode or delta lists) —
  /// callers may then batch via CurrentBlock() instead of per-entry reads.
  bool block_capable() const { return list_ != nullptr && UseBlocks(); }

  /// Decoded block containing the current entry (block-capable only).
  BlockView CurrentBlock() const {
    VJ_DCHECK(block_capable() && !AtEnd());
    EnsureBlock(index_, kLabelFields);
    return {block_.first, block_.count, block_.starts.data(),
            block_.ends.data(), block_.levels.data()};
  }

  /// First position >= index() whose start is >= `bound` (or > `bound` when
  /// `strict`), or size() when none. Does not move the cursor. Requires a
  /// single-label list (starts are sorted in document order). Probe reads
  /// are added to `*probes`; `ck` runs per probe/decoded block.
  template <typename Ck>
  SeekOutcome FindFirstStart(uint32_t bound, bool strict, uint64_t* probes,
                             Ck&& ck) const {
    VJ_DCHECK(mem_labels_ != nullptr || list_->layout.label_count == 1);
    if (strict) {
      if (bound == 0xFFFFFFFFu) return {size(), false};
      ++bound;  // first start > old bound == first start >= bound+1
    }
    if (index_ >= size()) return {size(), false};
    if (list_ != nullptr && UseBlocks() && !list_->page_first_start.empty()) {
      return FindFirstStartBlocks(bound, probes, ck);
    }
    // Entry-level gallop: memory mode, scalar mode, or fenceless v1 lists.
    auto below = [&](EntryIndex i) { return StartAt(i) < bound; };
    auto on_probe = [&] {
      ++*probes;
      return ck(1);
    };
    GallopResult r = GallopLowerBound(index_, size(), below, on_probe);
    return {r.pos, r.aborted};
  }

  /// Advances until the current entry's end is >= `bound` or the list ends,
  /// skipping entries that can no longer join (their region closed before
  /// `bound`). Ends are not sorted, so this is a forward scan — SIMD within
  /// decoded blocks. Every passed entry is added to `*scanned` and charged
  /// through `ck`. With `one_block`, stops at the first block boundary
  /// (scalar mode: after one entry) so callers that must re-check pruned
  /// LE_p pointers keep their step-and-revalidate behavior. Returns true
  /// if `ck` aborted.
  template <typename Ck>
  bool SkipEndsBelow(uint32_t bound, bool one_block, uint64_t* scanned,
                     Ck&& ck) {
    VJ_DCHECK(mem_labels_ != nullptr || list_->layout.label_count == 1);
    if (list_ != nullptr && UseBlocks()) {
      while (index_ < size()) {
        EnsureBlock(index_, 0);
        uint32_t offset = index_ - block_.first;
        if ((block_.fields & kEndsField) == 0 &&
            block_.point_reads < kDecodeAfterPointReads) {
          // Undecoded fixed page: step directly off the page first. Most
          // pointer-jump landing zones qualify within a few entries, and
          // de-interleaving a whole page for them is the block cursor's one
          // regression against scalar. Sustained traffic trips the decode.
          bool stopped = false;
          uint32_t passed = 0;
          while (offset < block_.count &&
                 block_.point_reads < kDecodeAfterPointReads) {
            ++block_.point_reads;
            if (FixedFieldAt(offset, 4) >= bound) {
              stopped = true;
              break;
            }
            ++offset;
            ++passed;
          }
          *scanned += passed;
          index_ = block_.first + offset;
          if (ck(passed > 0 ? passed : 1)) return true;
          if (stopped) return false;
          if (offset >= block_.count) {
            if (one_block) return false;
            continue;
          }
        }
        EnsureBlock(index_, kEndsField);
        offset = index_ - block_.first;
        uint32_t pos = offset + simd::FirstGe(block_.ends.data() + offset,
                                              block_.count - offset, bound);
        uint32_t passed = pos - offset;
        *scanned += passed;
        index_ = block_.first + pos;
        if (ck(passed > 0 ? passed : 1)) return true;
        if (pos < block_.count || one_block) return false;
      }
      return false;
    }
    // Memory mode / scalar mode: per-entry steps, per-entry checkpoints.
    while (index_ < size() && EndAt(index_) < bound) {
      ++index_;
      ++*scanned;
      if (ck(1)) return true;
      if (one_block) return false;
    }
    return false;
  }

  /// Advances until the current entry's start is >= `bound` (or > when
  /// `strict`) or the list ends. Unlike FindFirstStart this *walks* —
  /// touching every page and counting every passed entry into `*scanned` —
  /// preserving the sequential-I/O cost profile of pointerless (E) scans
  /// while still vectorizing within decoded blocks. Returns true if `ck`
  /// aborted.
  template <typename Ck>
  bool SkipStartsBelow(uint32_t bound, bool strict, uint64_t* scanned,
                       Ck&& ck) {
    VJ_DCHECK(mem_labels_ != nullptr || list_->layout.label_count == 1);
    if (strict) {
      if (bound == 0xFFFFFFFFu) {
        *scanned += size() - index_;
        bool aborted = ck(size() - index_);
        index_ = size();
        return aborted;
      }
      ++bound;
    }
    if (list_ != nullptr && UseBlocks()) {
      while (index_ < size()) {
        EnsureBlock(index_, 0);
        uint32_t offset = index_ - block_.first;
        if ((block_.fields & kStartsField) == 0 &&
            block_.point_reads < kDecodeAfterPointReads) {
          // Same landing-zone fast path as SkipEndsBelow: probe the fixed
          // page directly until the adaptive threshold trips a decode.
          bool stopped = false;
          uint32_t passed = 0;
          while (offset < block_.count &&
                 block_.point_reads < kDecodeAfterPointReads) {
            ++block_.point_reads;
            if (FixedFieldAt(offset, 0) >= bound) {
              stopped = true;
              break;
            }
            ++offset;
            ++passed;
          }
          *scanned += passed;
          index_ = block_.first + offset;
          if (ck(passed > 0 ? passed : 1)) return true;
          if (stopped) return false;
          if (offset >= block_.count) continue;
        }
        EnsureBlock(index_, kStartsField);
        offset = index_ - block_.first;
        uint32_t pos = offset + simd::LowerBoundGe(block_.starts.data() + offset,
                                                   block_.count - offset, bound);
        uint32_t passed = pos - offset;
        *scanned += passed;
        index_ = block_.first + pos;
        if (ck(passed > 0 ? passed : 1)) return true;
        if (pos < block_.count) return false;
      }
      return false;
    }
    while (index_ < size() && StartAt(index_) < bound) {
      ++index_;
      ++*scanned;
      if (ck(1)) return true;
    }
    return false;
  }

 private:
  /// Which SoA arrays of the current block hold decoded data. Delta pages
  /// decode everything in one pass (varints have no random access); fixed
  /// pages decode *lazily per field* — a pointer-jump landing that reads two
  /// labels must not pay for de-interleaving a whole page of records.
  enum BlockField : uint32_t {
    kStartsField = 1,
    kEndsField = 2,
    kLevelsField = 4,
    kPointersField = 8,
    kLabelFields = kStartsField | kEndsField | kLevelsField,
    kAllBlockFields = kLabelFields | kPointersField,
  };

  /// Point reads served straight off an undecoded fixed page before the
  /// cursor decodes it: sparse landings (pointer chasing) stay cheap, while
  /// a page that sees sustained traffic (sequential scans, repeated seeks)
  /// trips the decode and amortizes it over the rest of the page.
  static constexpr uint32_t kDecodeAfterPointReads = 16;

  struct Block {
    bool valid = false;      // first/count/pin describe the current page
    uint32_t fields = 0;     // BlockField bitmask of decoded arrays
    uint32_t point_reads = 0;  // direct reads on this page so far
    EntryIndex first = 0;
    uint32_t count = 0;
    std::vector<uint32_t> starts;    // label_count-strided, record-major
    std::vector<uint32_t> ends;
    std::vector<uint32_t> levels;
    std::vector<uint32_t> pointers;  // PointerSlots()-strided
  };

  bool UseBlocks() const {
    return list_ != nullptr &&
           (list_->format == ListFormat::kDelta || mode_ == CursorMode::kBlock);
  }

  /// Makes block_ describe (and pin_ hold) the page containing entry `i`,
  /// with at least the `wanted` BlockField arrays decoded. Landing on a
  /// delta page decodes everything; landing on a fixed page decodes nothing
  /// until a field is wanted. No-op when already satisfied.
  void EnsureBlock(EntryIndex i, uint32_t wanted) const;

  /// Queues background fetches for the pages after `page` (a page index
  /// within the list), up to the pool's read-ahead depth and clamped to the
  /// list's page span. Tracks the furthest page already queued so a cursor
  /// grinding through one page does not re-enqueue its successors.
  void MaybeReadAhead(uint32_t page) const;

  /// One uint32 field of the record at `offset` within the current *fixed*
  /// block, read straight off the pinned page (`byte_off` is the field's
  /// offset within the record). The undecoded point-read path.
  uint32_t FixedFieldAt(uint32_t offset, uint32_t byte_off) const {
    uint32_t value;
    std::memcpy(&value,
                pin_.data() +
                    static_cast<size_t>(offset) * list_->layout.RecordSize() +
                    byte_off,
                4);
    return value;
  }

  /// Fence-directed seek: gallop page fences, then binary-search one block.
  template <typename Ck>
  SeekOutcome FindFirstStartBlocks(uint32_t bound, uint64_t* probes,
                                   Ck&& ck) const {
    const uint32_t pages = list_->PageSpan();
    const uint32_t* fences = list_->page_first_start.data();
    const uint32_t from_page = list_->PageIndexOf(index_);
    // First page whose fence key is >= bound; the answer is on that page's
    // predecessor (its tail can still reach bound) or is its first entry.
    auto below = [&](uint32_t p) { return fences[p] < bound; };
    auto on_probe = [&] {
      ++*probes;
      return ck(1);
    };
    GallopResult fence = GallopLowerBound(from_page, pages, below, on_probe);
    if (fence.aborted) {
      // Pages before fence.pos-1 are wholly below the bound (their last
      // entry precedes the next fence key), so this seek skips only dead
      // entries even though the search was cut short.
      EntryIndex safe = fence.pos > from_page
                            ? list_->FirstEntryOfPage(fence.pos - 1)
                            : index_;
      return {std::max(index_, safe), true};
    }
    uint32_t page = fence.pos > from_page ? fence.pos - 1 : from_page;
    EnsureBlock(list_->FirstEntryOfPage(page), 0);
    ++*probes;  // the block's binary search touches one page
    if (ck(1)) return {std::max(index_, block_.first), true};
    uint32_t pos;
    if ((block_.fields & kStartsField) != 0) {
      pos = simd::LowerBoundGe(block_.starts.data(), block_.count, bound);
    } else {
      // Undecoded fixed page: a log2(n) strided binary search beats
      // de-interleaving the page for a single seek; repeated seeks against
      // the same page accumulate point reads and trip the decode.
      uint32_t lo = 0;
      uint32_t hi = block_.count;
      while (lo < hi) {
        uint32_t mid = lo + (hi - lo) / 2;
        if (FixedFieldAt(mid, 0) < bound) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      pos = lo;
      block_.point_reads += 8;  // ~the search's probe count
      if (block_.point_reads >= kDecodeAfterPointReads) {
        EnsureBlock(block_.first, kStartsField);
      }
    }
    EntryIndex found = pos < block_.count
                           ? block_.first + pos
                           : (page + 1 < pages
                                  ? list_->FirstEntryOfPage(page + 1)
                                  : size());
    return {std::max(index_, found), false};
  }

  /// Random-access field reads that do not move the cursor (probe reads).
  uint32_t StartAt(EntryIndex i) const;
  uint32_t EndAt(EntryIndex i) const;

  EntryIndex PointerAt(uint32_t slot) const {
    VJ_DCHECK(list_ != nullptr && list_->layout.has_pointers);
    if (UseBlocks()) {
      EnsureBlock(index_, 0);
      if ((block_.fields & kPointersField) == 0) {
        // Fixed pages never SoA-decode pointers: each is read at most a
        // couple of times per record, so the direct read always wins.
        return FixedFieldAt(index_ - block_.first,
                            12 * list_->layout.label_count + 4 * slot);
      }
      uint32_t idx =
          (index_ - block_.first) * list_->layout.PointerSlots() + slot;
      return block_.pointers[idx];
    }
    const uint8_t* rec = Record();
    EntryIndex value;
    std::memcpy(&value, rec + 12 * list_->layout.label_count + 4 * slot, 4);
    return value;
  }

  const uint8_t* Record() const {
    VJ_DCHECK(!AtEnd());
    PageId page = list_->PageOf(index_);
    if (!pin_.valid() || pin_.page() != page) {
      // Acquire the new page before dropping the old pin (GetPage replaces
      // pin_ wholesale); a failed fetch pins the pool's poison page instead.
      pin_ = pool_->GetPage(page);
      MaybeReadAhead(list_->PageIndexOf(index_));
    }
    return pin_.data() + list_->OffsetOf(index_);
  }

  const StoredList* list_ = nullptr;
  BufferPool* pool_ = nullptr;
  const xml::Label* mem_labels_ = nullptr;
  uint32_t mem_count_ = 0;
  EntryIndex index_ = 0;
  CursorMode mode_ = CursorMode::kBlock;
  mutable BufferPool::PinnedPage pin_;
  mutable Block block_;
  mutable uint32_t prefetch_edge_ = 0;  // pages below this were already queued
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_STORED_LIST_H_
