#ifndef VIEWJOIN_STORAGE_STORED_LIST_H_
#define VIEWJOIN_STORAGE_STORED_LIST_H_

#include <cstdint>
#include <cstring>

#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/check.h"
#include "xml/label.h"

namespace viewjoin::storage {

/// Index of an entry within a stored list; the on-disk encoding of the LE
/// scheme's child/descendant/following pointers. Entry indexes convert
/// to/from the paper's (page number, byte offset) pairs arithmetically since
/// records are fixed-size and never span pages.
using EntryIndex = uint32_t;

inline constexpr EntryIndex kNullEntry = 0xFFFFFFFFu;

/// On-disk record layouts (all little-endian uint32 fields):
///
///  element record  : start, end, level                          (12 bytes)
///  LE record       : start, end, level, following, descendant,
///                    child[0..m)                                (20 + 4m)
///  tuple record    : n consecutive element records              (12n)
///
/// `following`/`descendant`/`child[k]` hold an EntryIndex into the pointed
/// list or kNullEntry.
struct RecordLayout {
  uint32_t label_count = 1;   // 1 for element/LE lists, n for tuple lists
  bool has_pointers = false;  // true for LE / LE_p lists
  uint32_t child_count = 0;   // number of child pointers (LE only)

  uint32_t RecordSize() const {
    return 12 * label_count + (has_pointers ? 8 + 4 * child_count : 0);
  }
};

/// Metadata of one immutable list of fixed-size records stored in a pager
/// file. Created by the materializer; read through ListCursor.
struct StoredList {
  PageId first_page = kInvalidPage;
  uint32_t count = 0;
  RecordLayout layout;

  uint32_t RecordsPerPage() const {
    return static_cast<uint32_t>(Pager::kPageSize) / layout.RecordSize();
  }
  /// Page/offset of an entry — the paper's pointer representation.
  PageId PageOf(EntryIndex i) const { return first_page + i / RecordsPerPage(); }
  uint32_t OffsetOf(EntryIndex i) const {
    return (i % RecordsPerPage()) * layout.RecordSize();
  }
  uint32_t PageSpan() const {
    if (count == 0) return 0;
    return (count + RecordsPerPage() - 1) / RecordsPerPage();
  }
};

/// Cursor over a StoredList. Provides sequential Next() and random Seek()
/// (how pointer jumps land). Field decoders read the current record through
/// the buffer pool; the cursor holds a *pin* on its current page, so
/// consecutive reads within a page cost one pool lookup and the page cannot
/// be evicted (and its pointer never dangles) while the cursor sits on it —
/// even when other queries thrash the shared pool concurrently. The pin
/// moves on page crossings and is dropped on Reset()/destruction.
///
/// A second, memory-backed mode wraps a plain label array instead of a pager
/// list: the base-document fallback streams the document's own tag lists
/// through the same cursor interface, so TwigStack runs unchanged when the
/// view store is unavailable. Memory mode carries no pointers.
class ListCursor {
 public:
  ListCursor() = default;
  ListCursor(const StoredList* list, BufferPool* pool)
      : list_(list), pool_(pool) {}
  /// Memory-backed cursor over `count` labels (no storage behind it).
  ListCursor(const xml::Label* labels, uint32_t count)
      : mem_labels_(labels), mem_count_(count) {}

  bool valid() const { return list_ != nullptr || mem_labels_ != nullptr; }
  bool AtEnd() const { return index_ >= size(); }
  EntryIndex index() const { return index_; }
  uint32_t size() const {
    return list_ != nullptr ? list_->count : mem_count_;
  }
  const StoredList& list() const { return *list_; }

  void Reset() {
    index_ = 0;
    pin_.Release();
  }

  void Next() { ++index_; }

  /// Random access (pointer dereference target).
  void Seek(EntryIndex i) { index_ = i; }

  /// Label of the current record's `k`-th label (k = 0 for element/LE lists).
  xml::Label LabelAt(uint32_t k = 0) const {
    if (mem_labels_ != nullptr) {
      VJ_DCHECK(!AtEnd());
      return mem_labels_[index_];
    }
    const uint8_t* rec = Record();
    xml::Label label;
    std::memcpy(&label.start, rec + 12 * k, 4);
    std::memcpy(&label.end, rec + 12 * k + 4, 4);
    std::memcpy(&label.level, rec + 12 * k + 8, 4);
    return label;
  }

  EntryIndex Following() const { return PointerAt(0); }
  EntryIndex Descendant() const { return PointerAt(1); }
  EntryIndex Child(uint32_t k) const { return PointerAt(2 + k); }

 private:
  EntryIndex PointerAt(uint32_t slot) const {
    VJ_DCHECK(list_ != nullptr && list_->layout.has_pointers);
    const uint8_t* rec = Record();
    EntryIndex value;
    std::memcpy(&value, rec + 12 * list_->layout.label_count + 4 * slot, 4);
    return value;
  }

  const uint8_t* Record() const {
    VJ_DCHECK(!AtEnd());
    PageId page = list_->PageOf(index_);
    if (!pin_.valid() || pin_.page() != page) {
      // Acquire the new page before dropping the old pin (GetPage replaces
      // pin_ wholesale); a failed fetch pins the pool's poison page instead.
      pin_ = pool_->GetPage(page);
    }
    return pin_.data() + list_->OffsetOf(index_);
  }

  const StoredList* list_ = nullptr;
  BufferPool* pool_ = nullptr;
  const xml::Label* mem_labels_ = nullptr;
  uint32_t mem_count_ = 0;
  EntryIndex index_ = 0;
  mutable BufferPool::PinnedPage pin_;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_STORED_LIST_H_
