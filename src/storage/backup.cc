#include "storage/backup.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "storage/pager.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace viewjoin::storage {
namespace {

using util::Status;
using util::StatusOr;

constexpr char kMetaMagic[] = "VJBACKUP v1";

Status IoError(const std::string& message) {
  return Status::IoError(message + ": " + std::strerror(errno));
}

/// Typed verdict for a failed backup write: real ENOSPC becomes
/// kResourceExhausted. Callers clear errno before the write.
Status WriteError(const std::string& message) {
  int err = errno;
  std::string detail =
      message + ": " + (err != 0 ? std::strerror(err) : "short write");
  if (err == ENOSPC) return Status::ResourceExhausted(detail);
  return Status::IoError(detail);
}

Status NoSpace(const std::string& message) {
  return Status::ResourceExhausted(message +
                                   ": no space left on device (injected)");
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Paces backup I/O to `bytes_per_sec` (0 = unthrottled): after charging N
/// bytes, sleeps until wall time catches up with N / rate — a token bucket
/// with no burst credit, so a hot backup cannot monopolize the device the
/// live store is serving from.
class RateLimiter {
 public:
  explicit RateLimiter(uint64_t bytes_per_sec) : rate_(bytes_per_sec) {}

  void Charge(uint64_t bytes) {
    if (rate_ == 0) return;
    charged_ += bytes;
    int64_t due_micros =
        static_cast<int64_t>(charged_ * 1000000 / rate_);
    int64_t ahead = due_micros - timer_.ElapsedMicros();
    if (ahead > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(ahead));
    }
  }

 private:
  uint64_t rate_;
  uint64_t charged_ = 0;
  util::Timer timer_;
};

/// Streams `path` computing its size and CRC32 — the end-to-end check that
/// what actually landed on disk is what the meta file promises.
Status FileSizeAndCrc(const std::string& path, uint64_t* size,
                      uint32_t* crc32) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoError("cannot open " + path);
  uint8_t buf[1 << 16];
  uint64_t total = 0;
  uint32_t crc = 0;
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    crc = util::Crc32(buf, got, crc);
    total += got;
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return IoError("cannot read " + path);
  *size = total;
  *crc32 = crc;
  return Status::Ok();
}

/// Byte-for-byte copy with rate limiting, disk-budget charging, and the
/// mid-backup-copy crash point. On an injected crash the half-copied
/// destination is left behind (as a dying process would) and *crashed is
/// set so the caller skips cleanup; genuine failures are reported for the
/// caller to clean up. The source is only ever read.
Status CopyFileRaw(const std::string& src, const std::string& dst,
                   RateLimiter& limiter, uint64_t* copied, bool* crashed) {
  std::FILE* in = std::fopen(src.c_str(), "rb");
  if (in == nullptr) return IoError("cannot open " + src);
  std::FILE* out = std::fopen(dst.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    return IoError("cannot create " + dst);
  }
  Status status;
  uint8_t buf[1 << 16];
  size_t got;
  while (status.ok() && (got = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    if (util::FaultInjector::Global().AtCrashPoint(
            util::CrashPoint::kCrashMidBackupCopy)) {
      std::fwrite(buf, 1, got / 2, out);
      std::fflush(out);
      *crashed = true;
      status = Status::IoError("injected crash mid-backup-copy writing " + dst);
      break;
    }
    if (util::FaultInjector::Global().OnDiskCharge(got)) {
      status = NoSpace("cannot copy " + src + " to " + dst);
      break;
    }
    errno = 0;
    if (std::fwrite(buf, 1, got, out) != got) {
      status = WriteError("cannot copy " + src + " to " + dst);
      break;
    }
    limiter.Charge(got);
    if (copied != nullptr) *copied += got;
  }
  if (status.ok() && std::ferror(in) != 0) {
    status = IoError("cannot read " + src);
  }
  if (status.ok()) {
    errno = 0;
    if (std::fflush(out) != 0 || ::fsync(fileno(out)) != 0) {
      status = WriteError("cannot sync " + dst);
    }
  }
  std::fclose(in);
  std::fclose(out);
  return status;
}

/// Copies the first `limit` pages of the pager file at `src_path` into a
/// fresh pager at `dst_path`, verifying every page's footer and checksum as
/// it goes (kInvalidPage = all pages). The source is opened read-only and
/// never written; writes to the destination go through the normal pager
/// write path, so injected faults and the disk budget apply to them too.
Status CopyPagerPages(const std::string& src_path, const std::string& dst_path,
                      uint32_t limit, RateLimiter& limiter, uint64_t* copied,
                      bool* crashed) {
  Pager src(src_path, Pager::Mode::kReadOnly);
  if (!src.init_status().ok()) return src.init_status();
  uint32_t count = limit == kInvalidPage ? src.page_count() : limit;
  if (count > src.page_count()) {
    return Status::Corruption(
        "backup snapshot pins " + std::to_string(count) + " pages but " +
        src_path + " holds only " + std::to_string(src.page_count()));
  }
  Pager dst(dst_path, Pager::Mode::kPersist);
  if (!dst.init_status().ok()) return dst.init_status();

  constexpr uint32_t kBatchPages = 32;
  uint8_t payload[Pager::kPageSize];
  std::vector<uint8_t> phys(static_cast<size_t>(kBatchPages) *
                            Pager::kPhysicalPageSize);
  uint32_t staged = 0;
  auto flush_batch = [&]() -> Status {
    if (staged == 0) return Status::Ok();
    Status appended = dst.AppendPhysicalPages(phys.data(), staged);
    if (!appended.ok()) return appended;
    uint64_t bytes =
        static_cast<uint64_t>(staged) * Pager::kPhysicalPageSize;
    limiter.Charge(bytes);
    if (copied != nullptr) *copied += bytes;
    staged = 0;
    return Status::Ok();
  };
  for (PageId id = 0; id < count; ++id) {
    if (util::FaultInjector::Global().AtCrashPoint(
            util::CrashPoint::kCrashMidBackupCopy)) {
      // Die with whatever the batch already flushed — a partial destination
      // pager and no backup.meta. The source saw only reads.
      *crashed = true;
      return Status::IoError("injected crash mid-backup-copy at page " +
                             std::to_string(id) + " of " + src_path);
    }
    Status read = src.VerifyPage(id, payload);
    if (!read.ok()) return read;  // the LIVE store is sick; abort the backup
    Pager::EncodePhysicalPage(
        id, payload,
        phys.data() + static_cast<size_t>(staged) * Pager::kPhysicalPageSize);
    if (++staged == kBatchPages) {
      Status flushed = flush_batch();
      if (!flushed.ok()) return flushed;
    }
  }
  Status flushed = flush_batch();
  if (!flushed.ok()) return flushed;
  Status synced = dst.Sync();
  if (!synced.ok()) return synced;
  return dst.Close();
}

std::string JsonQuote(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders backup.meta. Text format, one fact per line, self-checksummed:
///
///   VJBACKUP v1
///   epoch <n>
///   view_pages <n>
///   doc_store <0|1>
///   file <size> <crc32-hex> <name>     (one per image file)
///   crc <crc32-hex of every preceding byte>
std::string RenderMeta(const BackupReport& report) {
  std::string out = std::string(kMetaMagic) + "\n";
  out += "epoch " + std::to_string(report.epoch) + "\n";
  out += "view_pages " + std::to_string(report.view_page_count) + "\n";
  out += "doc_store " + std::string(report.has_doc_store ? "1" : "0") + "\n";
  char hex[16];
  for (const BackupFileInfo& f : report.files) {
    std::snprintf(hex, sizeof(hex), "%08x", f.crc32);
    out += "file " + std::to_string(f.size) + " " + hex + " " + f.name + "\n";
  }
  std::snprintf(hex, sizeof(hex), "%08x",
                util::Crc32(out.data(), out.size()));
  out += "crc " + std::string(hex) + "\n";
  return out;
}

/// Writes backup.meta atomically (tmp + fsync + rename) — the commit point
/// of the whole backup: an image without a valid meta is torn by definition.
Status WriteMeta(const std::string& meta_path, const BackupReport& report) {
  const std::string content = RenderMeta(report);
  if (util::FaultInjector::Global().OnDiskCharge(content.size())) {
    return NoSpace("cannot write " + meta_path);
  }
  const std::string tmp = meta_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return IoError("cannot create " + tmp);
  errno = 0;
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
  ok = ok && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  Status status = ok ? Status::Ok() : WriteError("cannot write " + tmp);
  std::fclose(f);
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), meta_path.c_str()) != 0) {
    Status renamed = IoError("cannot install " + meta_path);
    std::remove(tmp.c_str());
    return renamed;
  }
  return Status::Ok();
}

/// Parses backup.meta into a report skeleton (files carry the *recorded*
/// size/CRC). kCorruption when the format or the self-checksum is off.
StatusOr<BackupReport> ParseMeta(const std::string& dir) {
  const std::string meta_path = dir + "/" + kBackupMetaName;
  std::FILE* f = std::fopen(meta_path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no backup image: " + meta_path + " is missing");
  }
  std::string content;
  uint8_t buf[1 << 12];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(reinterpret_cast<const char*>(buf), got);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return IoError("cannot read " + meta_path);

  // The final line must be "crc <hex>" over every byte before it.
  size_t crc_line = content.rfind("crc ");
  if (crc_line == std::string::npos ||
      (crc_line != 0 && content[crc_line - 1] != '\n')) {
    return Status::Corruption(meta_path + " has no trailing checksum line");
  }
  uint32_t stored_crc = 0;
  if (std::sscanf(content.c_str() + crc_line, "crc %x", &stored_crc) != 1) {
    return Status::Corruption(meta_path + " checksum line does not parse");
  }
  if (stored_crc != util::Crc32(content.data(), crc_line)) {
    return Status::Corruption(meta_path + " fails its checksum");
  }

  BackupReport report;
  report.directory = dir;
  size_t pos = 0;
  bool saw_magic = false, saw_epoch = false, saw_pages = false;
  while (pos < crc_line) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos || eol > crc_line) eol = crc_line;
    std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line == kMetaMagic) {
      saw_magic = true;
    } else if (line.rfind("epoch ", 0) == 0) {
      report.epoch = std::strtoull(line.c_str() + 6, nullptr, 10);
      saw_epoch = true;
    } else if (line.rfind("view_pages ", 0) == 0) {
      report.view_page_count = static_cast<uint32_t>(
          std::strtoul(line.c_str() + 11, nullptr, 10));
      saw_pages = true;
    } else if (line.rfind("doc_store ", 0) == 0) {
      report.has_doc_store = line.substr(10) == "1";
    } else if (line.rfind("file ", 0) == 0) {
      BackupFileInfo info;
      char name[256] = {0};
      unsigned long long size = 0;
      unsigned crc = 0;
      if (std::sscanf(line.c_str(), "file %llu %x %255s", &size, &crc,
                      name) != 3) {
        return Status::Corruption(meta_path + " has a malformed file line: " +
                                  line);
      }
      info.size = size;
      info.crc32 = crc;
      info.name = name;
      report.files.push_back(std::move(info));
    } else {
      return Status::Corruption(meta_path + " has an unknown line: " + line);
    }
  }
  if (!saw_magic || !saw_epoch || !saw_pages) {
    return Status::Corruption(meta_path + " is missing required fields");
  }
  return report;
}

/// Footer + checksum verification of every page of a copied pager file.
Status VerifyPagerFile(const std::string& path, uint32_t expect_pages) {
  Pager pager(path, Pager::Mode::kReadOnly);
  if (!pager.init_status().ok()) return pager.init_status();
  if (expect_pages != kInvalidPage && pager.page_count() != expect_pages) {
    return Status::Corruption(path + " holds " +
                              std::to_string(pager.page_count()) +
                              " pages, backup.meta records " +
                              std::to_string(expect_pages));
  }
  uint8_t payload[Pager::kPageSize];
  for (PageId id = 0; id < pager.page_count(); ++id) {
    Status verified = pager.VerifyPage(id, payload);
    if (!verified.ok()) return verified;
  }
  return Status::Ok();
}

}  // namespace

std::string BackupReport::ToJson() const {
  std::string out = "{\"directory\": \"" + JsonQuote(directory) + "\"";
  out += ", \"epoch\": " + std::to_string(epoch);
  out += ", \"view_page_count\": " + std::to_string(view_page_count);
  out += ", \"bytes_copied\": " + std::to_string(bytes_copied);
  out += std::string(", \"doc_store\": ") + (has_doc_store ? "true" : "false");
  out += ", \"files\": [";
  for (size_t i = 0; i < files.size(); ++i) {
    if (i != 0) out += ", ";
    char hex[16];
    std::snprintf(hex, sizeof(hex), "%08x", files[i].crc32);
    out += "{\"name\": \"" + JsonQuote(files[i].name) +
           "\", \"size\": " + std::to_string(files[i].size) +
           ", \"crc32\": \"" + hex + "\"}";
  }
  out += "]}";
  return out;
}

bool IsBackupImageDir(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) return false;
  return FileExists(path + "/" + kBackupMetaName);
}

StatusOr<BackupReport> CreateBackup(ViewCatalog& catalog,
                                    const std::string& dest_dir,
                                    const BackupOptions& options) {
  if (::mkdir(dest_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return IoError("cannot create backup directory " + dest_dir);
  }
  const std::string meta_path = dest_dir + "/" + kBackupMetaName;
  if (FileExists(meta_path)) {
    return Status::InvalidArgument(
        "refusing to overwrite the existing backup image in " + dest_dir);
  }

  // Pin the transactionally consistent state; everything after this line
  // runs without any catalog lock (see BackupSnapshot).
  ViewCatalog::BackupSnapshot snap = catalog.SnapshotForBackup();

  BackupReport report;
  report.directory = dest_dir;
  report.epoch = snap.epoch;
  report.view_page_count = snap.page_count;

  const std::string store_dst = dest_dir + "/" + kBackupStoreName;
  const std::string manifest_dst = ManifestJournal::PathFor(store_dst);
  const std::string doc_dst = store_dst + ".doc";
  const std::string doc_manifest_dst = ManifestJournal::PathFor(doc_dst);

  RateLimiter limiter(options.rate_bytes_per_sec);
  bool crashed = false;
  std::vector<std::string> created;
  auto fail = [&](Status status) -> StatusOr<BackupReport> {
    // An injected crash leaves the torn image exactly as a dying process
    // would (recognizable: no backup.meta); genuine failures clean up.
    if (!crashed) {
      for (const std::string& path : created) std::remove(path.c_str());
    }
    return status;
  };

  created.push_back(store_dst);
  Status copied = CopyPagerPages(catalog.pager()->path(), store_dst,
                                 snap.page_count, limiter,
                                 &report.bytes_copied, &crashed);
  if (!copied.ok()) return fail(copied);

  // The image manifest is a fresh checkpoint rendered from the pinned
  // snapshot — never a copy of the live journal, which a concurrent
  // Checkpoint() may be replacing while we run.
  created.push_back(manifest_dst);
  Status checkpointed = ManifestJournal::WriteCheckpoint(
      manifest_dst, snap.records, snap.quarantined_epochs, snap.epoch);
  if (!checkpointed.ok()) return fail(checkpointed);

  if (!options.doc_store_path.empty() && FileExists(options.doc_store_path)) {
    report.has_doc_store = true;
    if (options.doc_copy_begin) options.doc_copy_begin();
    created.push_back(doc_dst);
    copied = CopyPagerPages(options.doc_store_path, doc_dst, kInvalidPage,
                            limiter, &report.bytes_copied, &crashed);
    if (copied.ok()) {
      created.push_back(doc_manifest_dst);
      copied = CopyFileRaw(ManifestJournal::PathFor(options.doc_store_path),
                           doc_manifest_dst, limiter, &report.bytes_copied,
                           &crashed);
    }
    if (options.doc_copy_end) options.doc_copy_end();
    if (!copied.ok()) return fail(copied);
  }

  // Record what actually landed: re-read every produced file from disk for
  // its size + CRC32, then commit the image by installing backup.meta.
  for (const std::string& path : created) {
    BackupFileInfo info;
    info.name = path.substr(dest_dir.size() + 1);
    Status summed = FileSizeAndCrc(path, &info.size, &info.crc32);
    if (!summed.ok()) return fail(summed);
    report.files.push_back(std::move(info));
  }
  Status meta = WriteMeta(meta_path, report);
  if (!meta.ok()) return fail(meta);
  return report;
}

StatusOr<BackupReport> VerifyBackupImage(const std::string& dir) {
  StatusOr<BackupReport> parsed = ParseMeta(dir);
  if (!parsed.ok()) return parsed.status();
  BackupReport report = std::move(*parsed);

  // Whole-file sums against the meta records.
  for (const BackupFileInfo& f : report.files) {
    uint64_t size = 0;
    uint32_t crc = 0;
    Status summed = FileSizeAndCrc(dir + "/" + f.name, &size, &crc);
    if (!summed.ok()) return summed;
    if (size != f.size || crc != f.crc32) {
      return Status::Corruption("backup file " + f.name + " in " + dir +
                                " does not match its recorded size/checksum");
    }
  }

  // Page-level verification of the copied pager files.
  const std::string store = dir + "/" + kBackupStoreName;
  Status verified = VerifyPagerFile(store, report.view_page_count);
  if (!verified.ok()) return verified;

  // The image manifest must replay cleanly to exactly the pinned state.
  StatusOr<ManifestReplayResult> replay =
      ManifestJournal::Replay(ManifestJournal::PathFor(store));
  if (!replay.ok()) return replay.status();
  if (replay->tail_torn) {
    return Status::Corruption("backup image manifest in " + dir +
                              " has a torn tail");
  }
  if (replay->durable_page_count > report.view_page_count) {
    return Status::Corruption(
        "backup image manifest in " + dir + " references page count " +
        std::to_string(replay->durable_page_count) + " beyond the image's " +
        std::to_string(report.view_page_count));
  }
  if (replay->last_epoch != report.epoch) {
    return Status::Corruption(
        "backup image manifest in " + dir + " replays to epoch " +
        std::to_string(replay->last_epoch) + ", backup.meta records " +
        std::to_string(report.epoch));
  }

  if (report.has_doc_store) {
    const std::string doc = store + ".doc";
    verified = VerifyPagerFile(doc, kInvalidPage);
    if (!verified.ok()) return verified;
    StatusOr<ManifestReplayResult> doc_replay =
        ManifestJournal::Replay(ManifestJournal::PathFor(doc));
    if (!doc_replay.ok()) return doc_replay.status();
    if (doc_replay->tail_torn) {
      return Status::Corruption("backup image document manifest in " + dir +
                                " has a torn tail");
    }
  }
  return report;
}

StatusOr<BackupReport> RestoreBackup(const std::string& dir,
                                     const std::string& dest_path,
                                     uint64_t rate_bytes_per_sec) {
  StatusOr<BackupReport> verified = VerifyBackupImage(dir);
  if (!verified.ok()) return verified.status();
  BackupReport report = std::move(*verified);

  struct Target {
    std::string src;
    std::string dst;
  };
  const std::string store_src = dir + "/" + kBackupStoreName;
  std::vector<Target> targets = {
      {store_src, dest_path},
      {ManifestJournal::PathFor(store_src), ManifestJournal::PathFor(dest_path)},
  };
  if (report.has_doc_store) {
    targets.push_back({store_src + ".doc", dest_path + ".doc"});
    targets.push_back({ManifestJournal::PathFor(store_src + ".doc"),
                       ManifestJournal::PathFor(dest_path + ".doc")});
  }
  for (const Target& t : targets) {
    if (FileExists(t.dst)) {
      return Status::InvalidArgument("restore target " + t.dst +
                                     " already exists; restore requires a "
                                     "fresh destination");
    }
  }

  RateLimiter limiter(rate_bytes_per_sec);
  bool crashed = false;
  report.bytes_copied = 0;
  std::vector<std::string> created;
  auto fail = [&](Status status) -> StatusOr<BackupReport> {
    if (!crashed) {
      for (const std::string& path : created) std::remove(path.c_str());
    }
    return status;
  };
  for (const Target& t : targets) {
    created.push_back(t.dst);
    Status copied =
        CopyFileRaw(t.src, t.dst, limiter, &report.bytes_copied, &crashed);
    if (!copied.ok()) return fail(copied);
  }

  // The restore is only done once the result proves it recovers cleanly.
  StatusOr<std::unique_ptr<ViewCatalog>> opened =
      ViewCatalog::Open(dest_path, /*pool_pages=*/64);
  if (!opened.ok()) return fail(opened.status());
  Status closed = (*opened)->Close();
  if (!closed.ok()) return fail(closed);
  return report;
}

}  // namespace viewjoin::storage
