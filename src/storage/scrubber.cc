#include "storage/scrubber.h"

#include <vector>

namespace viewjoin::storage {

namespace {

/// The non-empty stored lists of `view`, in scan order.
std::vector<const StoredList*> SegmentsOf(const MaterializedView* view) {
  std::vector<const StoredList*> segments;
  for (const StoredList& list : view->lists()) {
    if (list.count != 0) segments.push_back(&list);
  }
  if (view->tuple_list().count != 0) segments.push_back(&view->tuple_list());
  return segments;
}

uint32_t TotalPages(const std::vector<const StoredList*>& segments) {
  uint32_t total = 0;
  for (const StoredList* list : segments) total += list->PageSpan();
  return total;
}

/// Physical page id of the `index`-th page in scan order.
PageId PageAt(const std::vector<const StoredList*>& segments, uint32_t index) {
  for (const StoredList* list : segments) {
    uint32_t span = list->PageSpan();
    if (index < span) return list->first_page + index;
    index -= span;
  }
  return kInvalidPage;
}

}  // namespace

Scrubber::Scrubber(ViewCatalog* catalog, Healer healer)
    : catalog_(catalog), healer_(std::move(healer)) {}

Scrubber::~Scrubber() { Stop(); }

uint32_t Scrubber::Step(uint32_t page_budget) {
  // Healing runs *after* the scan, outside mu_: the healer re-reads the
  // document under the engine's document lock, and query threads read
  // stats() while holding that same lock — invoking the healer under mu_
  // would invert the two orders into a potential deadlock.
  std::vector<const MaterializedView*> to_heal;
  uint32_t scanned = ScanLocked(page_budget, &to_heal);
  for (const MaterializedView* view : to_heal) {
    util::Status healed = healer_(view);
    std::lock_guard<std::mutex> lock(mu_);
    if (healed.ok()) {
      ++stats_.views_healed;
    } else {
      ++stats_.heal_failures;
    }
  }
  return scanned;
}

uint32_t Scrubber::ScanLocked(uint32_t page_budget,
                              std::vector<const MaterializedView*>* to_heal) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const MaterializedView*> views = catalog_->ViewsSnapshot();
  std::vector<uint8_t> buffer(Pager::kPageSize);
  uint32_t scanned = 0;
  while (scanned < page_budget) {
    // The next live view at or after the cursor. Epoch order == install
    // order, so this resumes exactly where the previous step stopped.
    const MaterializedView* view = nullptr;
    for (const MaterializedView* v : views) {
      if (v->epoch() >= cursor_epoch_ && !catalog_->IsQuarantined(v)) {
        view = v;
        break;
      }
    }
    if (view == nullptr) {
      // Pass complete (or nothing to scan). End the step at the boundary —
      // wrapping inside one call could spin forever on an empty catalog.
      if (cursor_epoch_ != 0) ++stats_.full_passes;
      cursor_epoch_ = 0;
      cursor_page_ = 0;
      break;
    }
    if (view->epoch() > cursor_epoch_) cursor_page_ = 0;  // skipped ahead
    cursor_epoch_ = view->epoch();

    std::vector<const StoredList*> segments = SegmentsOf(view);
    const uint32_t total = TotalPages(segments);
    bool corrupt = false;
    while (cursor_page_ < total && scanned < page_budget && !corrupt) {
      PageId id = PageAt(segments, cursor_page_);
      util::Status status = catalog_->pager()->VerifyPage(id, buffer.data());
      ++scanned;
      ++stats_.pages_scanned;
      if (status.code() == util::StatusCode::kCorruption) {
        ++stats_.corrupt_pages;
        corrupt = true;
      }
      // A transient IoError is not evidence of rot: skip the page this pass,
      // the next lap re-checks it.
      ++cursor_page_;
    }
    if (corrupt) {
      catalog_->Quarantine(view);
      ++stats_.views_quarantined;
      if (healer_ != nullptr) to_heal->push_back(view);
    }
    if (corrupt || cursor_page_ >= total) {
      // Done with this view (healthy or handed off): move to the next one.
      cursor_epoch_ = view->epoch() + 1;
      cursor_page_ = 0;
    }
  }
  return scanned;
}

void Scrubber::Start(std::chrono::milliseconds interval,
                     uint32_t page_budget) {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread(&Scrubber::Loop, this, interval, page_budget);
}

void Scrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Scrubber::running() const {
  std::lock_guard<std::mutex> lock(thread_mu_);
  return thread_.joinable() && !stop_;
}

ScrubStats Scrubber::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Scrubber::Loop(std::chrono::milliseconds interval, uint32_t page_budget) {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    Step(page_budget);
    lock.lock();
  }
}

}  // namespace viewjoin::storage
