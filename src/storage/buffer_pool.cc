#include "storage/buffer_pool.h"

#include "util/check.h"

namespace viewjoin::storage {

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity) {}

util::Status BufferPool::Fetch(PageId page, const uint8_t** out) {
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = lru_.front().data.data();
    return util::Status::Ok();
  }
  ++misses_;
  Frame frame;
  frame.page = page;
  frame.data.resize(Pager::kPageSize);
  util::Status status = pager_->ReadPage(page, frame.data.data());
  if (!status.ok()) return status;
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().page);
    lru_.pop_back();
    ++eviction_version_;
  }
  lru_.push_front(std::move(frame));
  index_[page] = lru_.begin();
  *out = lru_.front().data.data();
  return util::Status::Ok();
}

const uint8_t* BufferPool::GetPage(PageId page) {
  const uint8_t* data = nullptr;
  util::Status status = Fetch(page, &data);
  if (status.ok()) return data;
  if (error_.ok()) {
    error_ = status;
    error_page_ = page;
  }
  // 0xFF poison: labels read as the exhausted-stream sentinel and pointers as
  // kNullEntry, so cursors terminate instead of chasing garbage.
  if (poison_.empty()) poison_.assign(Pager::kPageSize, 0xFF);
  return poison_.data();
}

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
  ++eviction_version_;
}

}  // namespace viewjoin::storage
