#include "storage/buffer_pool.h"

#include "util/check.h"

namespace viewjoin::storage {

namespace {

/// Innermost ErrorScope installed on this thread (scopes form a per-thread
/// chain through prev_; LatchError walks it looking for a matching pool).
thread_local BufferPool::ErrorScope* g_error_scope = nullptr;

/// Innermost StatsScope on this thread. Unlike the error chain, *every*
/// matching scope in the chain is credited on each access, so nested scopes
/// partition and total simultaneously.
thread_local BufferPool::StatsScope* g_stats_scope = nullptr;

size_t FloorPow2(size_t n) {
  size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

// ---- PinnedPage ------------------------------------------------------------

BufferPool::PinnedPage::PinnedPage(BufferPool* pool, Shard* shard, Frame* frame)
    : pool_(pool),
      shard_(shard),
      frame_(frame),
      page_(frame->page),
      data_(frame->data.data()) {}

BufferPool::PinnedPage::PinnedPage(PageId page, const uint8_t* poison)
    : page_(page), data_(poison) {}

BufferPool::PinnedPage::PinnedPage(const PinnedPage& other)
    : pool_(other.pool_),
      shard_(other.shard_),
      frame_(other.frame_),
      page_(other.page_),
      data_(other.data_) {
  if (frame_ != nullptr) {
    std::lock_guard<std::mutex> lock(shard_->mu);
    ++frame_->pins;
  }
}

BufferPool::PinnedPage& BufferPool::PinnedPage::operator=(
    const PinnedPage& other) {
  if (this == &other) return *this;
  PinnedPage copy(other);  // pin first so self-interference is impossible
  *this = std::move(copy);
  return *this;
}

BufferPool::PinnedPage::PinnedPage(PinnedPage&& other) noexcept
    : pool_(other.pool_),
      shard_(other.shard_),
      frame_(other.frame_),
      page_(other.page_),
      data_(other.data_) {
  other.pool_ = nullptr;
  other.shard_ = nullptr;
  other.frame_ = nullptr;
  other.page_ = kInvalidPage;
  other.data_ = nullptr;
}

BufferPool::PinnedPage& BufferPool::PinnedPage::operator=(
    PinnedPage&& other) noexcept {
  if (this == &other) return *this;
  Release();
  pool_ = other.pool_;
  shard_ = other.shard_;
  frame_ = other.frame_;
  page_ = other.page_;
  data_ = other.data_;
  other.pool_ = nullptr;
  other.shard_ = nullptr;
  other.frame_ = nullptr;
  other.page_ = kInvalidPage;
  other.data_ = nullptr;
  return *this;
}

void BufferPool::PinnedPage::Release() {
  if (frame_ != nullptr) pool_->Unpin(shard_, frame_);
  pool_ = nullptr;
  shard_ = nullptr;
  frame_ = nullptr;
  page_ = kInvalidPage;
  data_ = nullptr;
}

// ---- ErrorScope ------------------------------------------------------------

BufferPool::ErrorScope::ErrorScope(BufferPool* pool)
    : pool_(pool), prev_(g_error_scope) {
  g_error_scope = this;
}

BufferPool::ErrorScope::~ErrorScope() {
  VJ_DCHECK(g_error_scope == this) << "ErrorScopes must unwind in LIFO order";
  g_error_scope = prev_;
}

// ---- StatsScope ------------------------------------------------------------

BufferPool::StatsScope::StatsScope(BufferPool* pool)
    : pool_(pool), prev_(g_stats_scope) {
  g_stats_scope = this;
}

BufferPool::StatsScope::~StatsScope() {
  VJ_DCHECK(g_stats_scope == this) << "StatsScopes must unwind in LIFO order";
  g_stats_scope = prev_;
}

// ---- BufferPool ------------------------------------------------------------

BufferPool::BufferPool(Pager* pager, size_t capacity, size_t shards)
    : pager_(pager), capacity_(capacity) {
  size_t want = shards == 0 ? 1 : shards;
  if (capacity_ > 0 && want > capacity_) want = capacity_;
  size_t count = FloorPow2(want);
  shard_mask_ = static_cast<uint32_t>(count - 1);
  per_shard_capacity_ = capacity_ == 0 ? 1 : (capacity_ + count - 1) / count;
  shards_ = std::vector<Shard>(count);
  poison_.assign(Pager::kPageSize, 0xFF);
}

BufferPool::~BufferPool() {
  StopReadAhead();
  // Every cursor must have released its pins before the pool dies.
  for (Shard& shard : shards_) {
    for (const Frame& frame : shard.lru) {
      VJ_DCHECK(frame.pins == 0) << "page " << frame.page
                                 << " still pinned at pool destruction";
    }
  }
}

BufferPool::Shard& BufferPool::ShardFor(PageId page) {
  // Multiplicative hash so consecutive pages (one list) spread over shards.
  uint32_t h = page * 2654435761u;
  return shards_[(h >> 16) & shard_mask_];
}

void BufferPool::EvictForSpace(Shard* shard) {
  while (shard->lru.size() >= per_shard_capacity_) {
    // Take the least-recently-used unpinned frame; a fully pinned shard
    // overflows rather than invalidating a page someone still holds.
    auto victim = shard->lru.end();
    for (auto it = std::prev(shard->lru.end());; --it) {
      if (it->pins == 0) {
        victim = it;
        break;
      }
      if (it == shard->lru.begin()) break;
    }
    if (victim == shard->lru.end()) break;
    if (victim->prefetched) {
      prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    }
    shard->index.erase(victim->page);
    shard->lru.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BufferPool::Unpin(Shard* shard, Frame* frame) {
  std::lock_guard<std::mutex> lock(shard->mu);
  VJ_DCHECK(frame->pins > 0);
  --frame->pins;
}

util::Status BufferPool::Fetch(PageId page, PinnedPage* out) {
  if (capacity_ == 0) {
    return util::Status::InvalidArgument(
        "buffer pool has capacity 0; a pool needs at least one frame");
  }
  Shard& shard = ShardFor(page);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(page);
    if (it != shard.index.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      CreditScopes(/*hit=*/true);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      Frame& frame = *it->second;
      if (frame.prefetched) {
        frame.prefetched = false;
        prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      ++frame.pins;
      *out = PinnedPage(this, &shard, &frame);
      return util::Status::Ok();
    }
  }
  // Miss: read outside the shard lock so hits on other pages of this shard
  // are not blocked behind the physical read.
  std::vector<uint8_t> data(Pager::kPageSize);
  util::Status status = pager_->ReadPage(page, data.data());
  misses_.fetch_add(1, std::memory_order_relaxed);
  CreditScopes(/*hit=*/false);
  if (!status.ok()) return status;
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(page);
  if (it == shard.index.end()) {
    EvictForSpace(&shard);
    shard.lru.push_front(Frame{page, 0, false, std::move(data)});
    it = shard.index.emplace(page, shard.lru.begin()).first;
  }
  // (If another thread cached the page while we read, ours is dropped and
  // the already-cached copy is pinned — pages are immutable, both are equal.)
  Frame& frame = *it->second;
  if (frame.prefetched) {
    // The read-ahead thread landed it while our demand read was in flight:
    // the prefetch arrived too late to save this miss, but the frame is now
    // demanded, not speculative.
    frame.prefetched = false;
  }
  ++frame.pins;
  *out = PinnedPage(this, &shard, &frame);
  return util::Status::Ok();
}

BufferPool::PinnedPage BufferPool::GetPage(PageId page) {
  PinnedPage pin;
  util::Status status = Fetch(page, &pin);
  if (status.ok()) return pin;
  LatchError(status, page);
  // 0xFF poison: labels read as the exhausted-stream sentinel and pointers as
  // kNullEntry, so cursors terminate instead of chasing garbage.
  return PinnedPage(page, poison_.data());
}

void BufferPool::CreditScopes(bool hit) {
  for (StatsScope* scope = g_stats_scope; scope != nullptr;
       scope = scope->prev_) {
    if (scope->pool_ != this) continue;
    if (hit) {
      ++scope->hits_;
    } else {
      ++scope->misses_;
    }
  }
}

void BufferPool::LatchError(const util::Status& status, PageId page) {
  for (ErrorScope* scope = g_error_scope; scope != nullptr;
       scope = scope->prev_) {
    if (scope->pool_ != this) continue;
    if (scope->error_.ok()) {
      scope->error_ = status;
      scope->error_page_ = page;
    }
    return;
  }
  std::lock_guard<std::mutex> lock(error_mu_);
  if (error_.ok()) {
    error_ = status;
    error_page_ = page;
  }
}

util::Status BufferPool::error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return error_;
}

PageId BufferPool::error_page() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return error_page_;
}

void BufferPool::ResetError() {
  std::lock_guard<std::mutex> lock(error_mu_);
  error_ = util::Status::Ok();
  error_page_ = kInvalidPage;
}

size_t BufferPool::pinned_frames() {
  size_t pinned = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const Frame& frame : shard.lru) {
      if (frame.pins > 0) ++pinned;
    }
  }
  return pinned;
}

void BufferPool::Clear() {
  {
    // Pending speculation must not resurrect pages a cold-cache run just
    // dropped.
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    prefetch_queue_.clear();
    prefetch_queued_.clear();
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->pins == 0) {
        if (it->prefetched) {
          prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
        }
        shard.index.erase(it->page);
        it = shard.lru.erase(it);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
  ResetError();
}

// ---- Read-ahead ------------------------------------------------------------

void BufferPool::SetReadAhead(size_t depth) {
  if (depth > 0 && capacity_ == 0) depth = 0;  // nowhere to put a page
  bool start = false;
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    size_t old = read_ahead_depth_.exchange(depth, std::memory_order_relaxed);
    start = depth > 0 && old == 0 && !prefetch_thread_.joinable();
  }
  if (depth == 0) {
    StopReadAhead();
    return;
  }
  if (start) {
    prefetch_stop_ = false;
    prefetch_thread_ = std::thread([this] { ReadAheadLoop(); });
  }
}

bool BufferPool::Contains(PageId page) {
  if (page == kInvalidPage || capacity_ == 0) return false;
  Shard& shard = ShardFor(page);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.index.find(page) != shard.index.end();
}

void BufferPool::Prefetch(PageId page) {
  if (read_ahead_depth_.load(std::memory_order_relaxed) == 0) return;
  if (page == kInvalidPage || capacity_ == 0) return;
  {
    // Already resident? Pure index probe — no LRU touch, no counters, so a
    // speculative inquiry never perturbs what the demand path measures.
    Shard& shard = ShardFor(page);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.find(page) != shard.index.end()) return;
  }
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    if (prefetch_queue_.size() >= kMaxPrefetchQueue) return;
    if (!prefetch_queued_.insert(page).second) return;
    prefetch_queue_.push_back(page);
    prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
  }
  prefetch_cv_.notify_one();
}

void BufferPool::DrainPrefetches() {
  std::unique_lock<std::mutex> lock(prefetch_mu_);
  prefetch_idle_cv_.wait(
      lock, [this] { return prefetch_queue_.empty() && !prefetch_busy_; });
}

void BufferPool::ReadAheadLoop() {
  for (;;) {
    PageId page;
    {
      std::unique_lock<std::mutex> lock(prefetch_mu_);
      prefetch_cv_.wait(
          lock, [this] { return prefetch_stop_ || !prefetch_queue_.empty(); });
      if (prefetch_stop_) return;
      page = prefetch_queue_.front();
      prefetch_queue_.pop_front();
      prefetch_queued_.erase(page);
      prefetch_busy_ = true;
    }
    FulfillPrefetch(page);
    {
      std::lock_guard<std::mutex> lock(prefetch_mu_);
      prefetch_busy_ = false;
    }
    prefetch_idle_cv_.notify_all();
  }
}

void BufferPool::FulfillPrefetch(PageId page) {
  {
    Shard& shard = ShardFor(page);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.find(page) != shard.index.end()) return;
  }
  // Physical read outside every lock. A failure is dropped on the floor by
  // design: the demand fetch will re-read with retry semantics and report
  // through the proper (scoped) latch — a speculative thread latching errors
  // would attribute faults to whichever query ran next.
  std::vector<uint8_t> data(Pager::kPageSize);
  util::Status status = pager_->ReadPage(page, data.data());
  if (!status.ok()) return;
  Shard& shard = ShardFor(page);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.index.find(page) != shard.index.end()) return;
  EvictForSpace(&shard);
  if (shard.lru.size() >= per_shard_capacity_) return;  // all pinned: drop
  shard.lru.push_front(Frame{page, 0, true, std::move(data)});
  shard.index.emplace(page, shard.lru.begin());
}

void BufferPool::StopReadAhead() {
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    if (!prefetch_thread_.joinable()) return;
    prefetch_stop_ = true;
    prefetch_queue_.clear();
    prefetch_queued_.clear();
  }
  prefetch_cv_.notify_all();
  prefetch_thread_.join();
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    prefetch_stop_ = false;
    prefetch_thread_ = std::thread();
  }
}

}  // namespace viewjoin::storage
