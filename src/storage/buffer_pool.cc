#include "storage/buffer_pool.h"

#include "util/check.h"

namespace viewjoin::storage {

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity) {}

const uint8_t* BufferPool::GetPage(PageId page) {
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front().data.data();
  }
  ++misses_;
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().page);
    lru_.pop_back();
    ++eviction_version_;
  }
  Frame frame;
  frame.page = page;
  frame.data.resize(Pager::kPageSize);
  pager_->ReadPage(page, frame.data.data());
  lru_.push_front(std::move(frame));
  index_[page] = lru_.begin();
  return lru_.front().data.data();
}

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
  ++eviction_version_;
}

}  // namespace viewjoin::storage
