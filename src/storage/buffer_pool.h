#ifndef VIEWJOIN_STORAGE_BUFFER_POOL_H_
#define VIEWJOIN_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/pager.h"

namespace viewjoin::storage {

/// LRU page cache in front of a Pager. All list cursors read through a pool;
/// hit/miss counters let benches report logical vs. physical page accesses.
///
/// Pages are immutable once written (views are write-once, read-many), so the
/// pool never writes back. Returned pointers stay valid until the page is
/// evicted; cursors therefore re-fetch on every page crossing and never hold
/// a page across other pool calls.
class BufferPool {
 public:
  /// `capacity` is the number of cached frames (>= 1).
  BufferPool(Pager* pager, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pointer to the kPageSize-byte content of `page`.
  const uint8_t* GetPage(PageId page);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetStats() { hits_ = misses_ = 0; }

  /// Bumped whenever a frame is evicted; cursors cache page pointers and
  /// revalidate against this so cached pointers never dangle.
  uint64_t eviction_version() const { return eviction_version_; }

  /// Drops every cached frame (cold-cache experiments).
  void Clear();

 private:
  struct Frame {
    PageId page;
    std::vector<uint8_t> data;
  };

  Pager* pager_;
  size_t capacity_;
  std::list<Frame> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<Frame>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t eviction_version_ = 0;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_BUFFER_POOL_H_
