#ifndef VIEWJOIN_STORAGE_BUFFER_POOL_H_
#define VIEWJOIN_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/pager.h"
#include "util/status.h"

namespace viewjoin::storage {

/// LRU page cache in front of a Pager. All list cursors read through a pool;
/// hit/miss counters let benches report logical vs. physical page accesses.
///
/// Pages are immutable once written (views are write-once, read-many), so the
/// pool never writes back. Returned pointers stay valid until the page is
/// evicted; cursors therefore re-fetch on every page crossing and never hold
/// a page across other pool calls.
///
/// Failure model: Fetch is the Status-returning primitive. GetPage keeps the
/// infallible pointer signature the join inner loops rely on — on a failed
/// fetch it latches the error (error()/error_page()) and hands back a poison
/// page of 0xFF bytes, which every algorithm reads as an exhausted stream
/// with null pointers. The engine checks error() after a run and discards the
/// result, so a corrupt page can stop a run early but never fabricate a
/// match.
class BufferPool {
 public:
  /// `capacity` is the number of cached frames (>= 1).
  BufferPool(Pager* pager, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches `page` through the cache; on success `*out` points at its
  /// kPageSize-byte content. Failed reads are not cached.
  util::Status Fetch(PageId page, const uint8_t** out);

  /// Returns a pointer to the kPageSize-byte content of `page`, or the
  /// poison page (all 0xFF) after latching the error when the read fails.
  const uint8_t* GetPage(PageId page);

  /// First fetch failure since the last ClearError() (OK when none).
  const util::Status& error() const { return error_; }
  /// Page id of that first failure (kInvalidPage when none).
  PageId error_page() const { return error_page_; }
  void ClearError() {
    error_ = util::Status::Ok();
    error_page_ = kInvalidPage;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetStats() { hits_ = misses_ = 0; }

  /// Bumped whenever a frame is evicted; cursors cache page pointers and
  /// revalidate against this so cached pointers never dangle.
  uint64_t eviction_version() const { return eviction_version_; }

  /// Drops every cached frame (cold-cache experiments).
  void Clear();

 private:
  struct Frame {
    PageId page;
    std::vector<uint8_t> data;
  };

  Pager* pager_;
  size_t capacity_;
  std::list<Frame> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<Frame>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t eviction_version_ = 0;
  util::Status error_;
  PageId error_page_ = kInvalidPage;
  std::vector<uint8_t> poison_;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_BUFFER_POOL_H_
