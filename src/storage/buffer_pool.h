#ifndef VIEWJOIN_STORAGE_BUFFER_POOL_H_
#define VIEWJOIN_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/pager.h"
#include "util/status.h"

namespace viewjoin::storage {

/// Sharded LRU page cache in front of a Pager. All list cursors read through
/// a pool; hit/miss counters let benches report logical vs. physical page
/// accesses.
///
/// Pages are immutable once written (views are write-once, read-many), so the
/// pool never writes back. The pool is safe for concurrent readers: frames
/// are distributed over N shards keyed by a PageId hash, each shard with its
/// own mutex and LRU list, so queries running on different worker threads
/// only contend when they touch the same shard at the same instant.
///
/// Returned pages are *pinned*: Fetch/GetPage hand back a PinnedPage handle
/// that holds a per-frame pin count, and a pinned frame is never evicted —
/// the data pointer stays valid for as long as the handle lives, no matter
/// what other threads fetch in the meantime. (The previous design returned
/// raw pointers valid only "until the next eviction", a latent dangling-
/// pointer hazard once two cursors shared one pool.) Eviction takes the
/// least-recently-used *unpinned* frame; when every frame of a shard is
/// pinned the shard temporarily overflows its capacity share rather than
/// invalidating a held page.
///
/// Failure model: Fetch is the Status-returning primitive. GetPage keeps the
/// infallible signature the join inner loops rely on — on a failed fetch it
/// latches the error (error()/error_page()) and hands back a poison page of
/// 0xFF bytes, which every algorithm reads as an exhausted stream with null
/// pointers. The engine checks the latch after a run and discards the
/// result, so a corrupt page can stop a run early but never fabricate a
/// match. Under ExecuteBatch each query installs a thread-local ErrorScope,
/// so one query's poison latch never contaminates a sibling query running
/// against the same pool.
///
/// `capacity` is the total number of cached frames and must be >= 1; a pool
/// constructed with capacity 0 is rejected at use: every Fetch returns
/// Status::InvalidArgument (and GetPage latches it and returns poison).
/// Capacity is split evenly across shards (at least one frame per shard), so
/// tiny pools may cache slightly more than `capacity` frames in total.
class BufferPool {
 private:
  struct Frame;
  struct Shard;

 public:
  /// Default shard count (rounded down to the pool capacity when smaller, so
  /// a capacity-1 pool degenerates to one shard with exact LRU behaviour).
  static constexpr size_t kDefaultShards = 8;

  BufferPool(Pager* pager, size_t capacity, size_t shards = kDefaultShards);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII pin on one cached page. While any PinnedPage for a frame lives,
  /// the frame cannot be evicted and data() stays valid. Copying re-pins;
  /// destruction (or Release) unpins. A default-constructed handle is
  /// invalid; a poison handle (from a failed GetPage) is valid but unpinned
  /// (the poison page is owned by the pool and immortal).
  class PinnedPage {
   public:
    PinnedPage() = default;
    PinnedPage(const PinnedPage& other);
    PinnedPage& operator=(const PinnedPage& other);
    PinnedPage(PinnedPage&& other) noexcept;
    PinnedPage& operator=(PinnedPage&& other) noexcept;
    ~PinnedPage() { Release(); }

    bool valid() const { return data_ != nullptr; }
    /// Page id this handle was fetched for (kInvalidPage when invalid).
    PageId page() const { return page_; }
    /// The kPageSize-byte page content (nullptr when invalid).
    const uint8_t* data() const { return data_; }

    /// Drops the pin (idempotent); the handle becomes invalid.
    void Release();

   private:
    friend class BufferPool;
    PinnedPage(BufferPool* pool, Shard* shard, Frame* frame);
    PinnedPage(PageId page, const uint8_t* poison);  // unpinned poison handle

    BufferPool* pool_ = nullptr;  // null for empty and poison handles
    Shard* shard_ = nullptr;
    Frame* frame_ = nullptr;
    PageId page_ = kInvalidPage;
    const uint8_t* data_ = nullptr;
  };

  /// Redirects the calling thread's error latching on `pool` into a private
  /// latch for the scope's lifetime: page faults observed while the scope is
  /// active are recorded here instead of in the pool-global latch. This is
  /// how ExecuteBatch keeps degraded/quarantine state per query — each worker
  /// wraps each query in a scope, so a sibling's fault is invisible to it.
  /// Scopes nest (per thread, innermost matching pool wins) and must be
  /// destroyed on the thread that created them.
  class ErrorScope {
   public:
    explicit ErrorScope(BufferPool* pool);
    ~ErrorScope();

    ErrorScope(const ErrorScope&) = delete;
    ErrorScope& operator=(const ErrorScope&) = delete;

    /// First fetch failure observed in this scope since the last Clear().
    const util::Status& error() const { return error_; }
    /// Page id of that first failure (kInvalidPage when none).
    PageId error_page() const { return error_page_; }
    void Clear() {
      error_ = util::Status::Ok();
      error_page_ = kInvalidPage;
    }

   private:
    friend class BufferPool;
    BufferPool* pool_;
    ErrorScope* prev_;
    util::Status error_;
    PageId error_page_ = kInvalidPage;
  };

  /// Counts this thread's page accesses on `pool` for the scope's lifetime,
  /// in addition to the pool-global hit/miss counters. Unlike ErrorScope
  /// (where the innermost matching scope *captures* the fault), every active
  /// StatsScope for the pool is credited, so a plan-step scope nested inside
  /// a whole-query scope sees its own slice while the outer scope still sees
  /// the total. Scopes nest per thread and must be destroyed on the thread
  /// that created them.
  class StatsScope {
   public:
    explicit StatsScope(BufferPool* pool);
    ~StatsScope();

    StatsScope(const StatsScope&) = delete;
    StatsScope& operator=(const StatsScope&) = delete;

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t reads() const { return hits_ + misses_; }

   private:
    friend class BufferPool;
    BufferPool* pool_;
    StatsScope* prev_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
  };

  /// Fetches `page` through the cache and pins it into `*out` (replacing
  /// whatever `*out` held). Failed reads are not cached and do not touch the
  /// error latch.
  util::Status Fetch(PageId page, PinnedPage* out);

  /// Returns a pinned handle on `page`, or an unpinned poison handle (all
  /// 0xFF) after latching the error when the read fails.
  PinnedPage GetPage(PageId page);

  /// First fetch failure since the last ResetError() (OK when none). Errors
  /// captured by an active ErrorScope bypass this pool-global latch.
  util::Status error() const;
  /// Page id of that first failure (kInvalidPage when none).
  PageId error_page() const;
  /// Clears the pool-global error latch. Clear() also does this, and the
  /// engine's quarantine path calls it after re-materializing a view so a
  /// stale poison latch cannot outlive the fault it recorded.
  void ResetError();
  void ClearError() { ResetError(); }  // legacy spelling

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    prefetch_issued_.store(0, std::memory_order_relaxed);
    prefetch_hits_.store(0, std::memory_order_relaxed);
    prefetch_wasted_.store(0, std::memory_order_relaxed);
  }

  // ---- Asynchronous read-ahead ---------------------------------------------
  //
  // An optional background I/O thread fetches pages a cursor is about to
  // land on so the demand fetch finds them resident. Prefetch is pure
  // speculation and therefore side-effect free on every observable failure
  // surface: a failed prefetch read never latches the error (the demand
  // fetch will re-read and report it with full retry/scope semantics), a
  // full shard drops the speculative page instead of overflowing capacity,
  // and prefetch reads are not counted as pool misses (those mean "a demand
  // read had to wait"). The counters tell the speculation's worth: a hit is
  // a demand fetch served by a prefetched frame, a wasted prefetch is a
  // prefetched frame evicted (or cleared) untouched.

  /// Sets the read-ahead depth cursors should use and starts (depth > 0) or
  /// stops and joins (depth == 0) the background thread. Thread-safe.
  void SetReadAhead(size_t depth);

  /// Depth set by SetReadAhead; cursors prefetch this many pages ahead of a
  /// block landing (0 = read-ahead off, the default).
  size_t read_ahead_depth() const {
    return read_ahead_depth_.load(std::memory_order_relaxed);
  }

  /// Enqueues `page` for background fetch. No-op when read-ahead is off,
  /// the page is already cached or queued, or the queue is full (speculation
  /// never blocks the caller).
  void Prefetch(PageId page);

  /// True when `page` is currently cached (pinned or not). A one-shard probe
  /// with no LRU movement and no counter side effects — the planner uses it
  /// to price resident vs cold lists.
  bool Contains(PageId page);

  /// Blocks until the prefetch queue is empty and the worker is idle (tests
  /// and benches use this to measure with a settled cache). No-op when
  /// read-ahead is off.
  void DrainPrefetches();

  uint64_t prefetch_issued() const {
    return prefetch_issued_.load(std::memory_order_relaxed);
  }
  uint64_t prefetch_hits() const {
    return prefetch_hits_.load(std::memory_order_relaxed);
  }
  uint64_t prefetch_wasted() const {
    return prefetch_wasted_.load(std::memory_order_relaxed);
  }

  /// Total frames evicted so far. Cursors no longer need to revalidate
  /// against this (pins make their pointers stable); it remains as an
  /// observability counter for tests and benches.
  uint64_t eviction_version() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

  /// Number of frames currently pinned by live PinnedPage handles. Quiescent
  /// engines must report 0 — governance tests assert an aborted (timed-out,
  /// cancelled) query leaks no pins.
  size_t pinned_frames();

  /// Drops every cached frame that is not currently pinned (cold-cache
  /// experiments) and resets the pool-global error latch — a cleared pool
  /// must not keep reporting a fault from a previous run.
  void Clear();

 private:
  struct Frame {
    PageId page = kInvalidPage;
    uint32_t pins = 0;  // guarded by the owning shard's mutex
    /// Landed via the read-ahead thread and not yet demanded (guarded by the
    /// owning shard's mutex, like pins).
    bool prefetched = false;
    std::vector<uint8_t> data;
  };

  struct Shard {
    std::mutex mu;
    std::list<Frame> lru;  // front = most recent; node addresses are stable
    std::unordered_map<PageId, std::list<Frame>::iterator> index;
  };

  Shard& ShardFor(PageId page);
  /// Evicts LRU unpinned frames until the shard is under its capacity share.
  /// Caller holds the shard mutex.
  void EvictForSpace(Shard* shard);
  void Unpin(Shard* shard, Frame* frame);
  void LatchError(const util::Status& status, PageId page);
  void CreditScopes(bool hit);
  /// The background read-ahead thread's main loop.
  void ReadAheadLoop();
  /// Fetches one prefetch request (outside all shard locks) and inserts it.
  void FulfillPrefetch(PageId page);
  /// Stops and joins the read-ahead thread; pending requests are dropped.
  void StopReadAhead();

  Pager* pager_;
  size_t capacity_;
  size_t per_shard_capacity_ = 1;
  uint32_t shard_mask_ = 0;  // shard count is a power of two
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  mutable std::mutex error_mu_;
  util::Status error_;
  PageId error_page_ = kInvalidPage;
  std::vector<uint8_t> poison_;

  // Read-ahead state. The queue and its membership set are guarded by
  // prefetch_mu_; the worker thread exists iff read_ahead_depth_ > 0 (both
  // transitions under prefetch_mu_ via SetReadAhead).
  static constexpr size_t kMaxPrefetchQueue = 256;
  std::atomic<size_t> read_ahead_depth_{0};
  std::atomic<uint64_t> prefetch_issued_{0};
  std::atomic<uint64_t> prefetch_hits_{0};
  std::atomic<uint64_t> prefetch_wasted_{0};
  std::mutex prefetch_mu_;
  std::condition_variable prefetch_cv_;
  std::condition_variable prefetch_idle_cv_;
  std::deque<PageId> prefetch_queue_;
  std::unordered_set<PageId> prefetch_queued_;
  bool prefetch_stop_ = false;
  bool prefetch_busy_ = false;
  std::thread prefetch_thread_;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_BUFFER_POOL_H_
