#include "storage/fsck.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "storage/document_store.h"
#include "storage/list_codec.h"
#include "storage/manifest.h"

namespace viewjoin::storage {

FsckReport FsckPagerFile(const std::string& path) {
  FsckReport report;
  Pager pager(path, Pager::Mode::kReadOnly);
  report.file_status = pager.init_status();
  if (!report.file_status.ok()) return report;
  report.page_count = pager.page_count();
  std::vector<uint8_t> page(Pager::kPageSize);
  for (PageId id = 0; id < report.page_count; ++id) {
    util::Status status = pager.VerifyPage(id, page.data());
    if (!status.ok()) report.bad_pages.emplace_back(id, status);
  }
  return report;
}

namespace {

/// Leftover shadow staging files ("<base>.shadow.*", "<base>.manifest.tmp")
/// in the pager file's directory, sorted for deterministic output.
std::vector<std::string> FindOrphanShadows(
    const std::string& path, std::vector<std::string>* delta_files) {
  std::string dir = ".";
  std::string base = path;
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    dir = path.substr(0, slash);
    base = path.substr(slash + 1);
  }
  std::vector<std::string> found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return found;
  const std::string shadow_prefix = base + ".shadow.";
  const std::string manifest_tmp = base + ".manifest.tmp";
  const std::string delta_sidecar = base + ".updatedelta";
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind(shadow_prefix, 0) == 0 || name == manifest_tmp) {
      found.push_back(dir + "/" + name);
    } else if (name == delta_sidecar || name == delta_sidecar + ".tmp") {
      delta_files->push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());
  std::sort(delta_files->begin(), delta_files->end());
  return found;
}

/// "list q spans [first, first+span) past durable prefix <n>" or empty.
void CheckViewRanges(const ManifestViewRecord& record, uint32_t durable,
                     std::vector<std::string>* bad) {
  auto check = [&](const StoredList& list, const char* what) {
    if (list.count == 0) return;
    if (list.first_page >= durable ||
        list.PageSpan() > durable - list.first_page) {
      bad->push_back("epoch " + std::to_string(record.epoch) + " (" +
                     record.pattern + "): " + what + " spans pages [" +
                     std::to_string(list.first_page) + ", " +
                     std::to_string(list.first_page + list.PageSpan()) +
                     ") past durable prefix " + std::to_string(durable));
    }
  };
  for (size_t q = 0; q < record.lists.size(); ++q) {
    check(record.lists[q], ("list " + std::to_string(q)).c_str());
  }
  check(record.tuple_list, "tuple list");
}

/// Verifies one delta-format list end to end: directory invariants, then a
/// full decode of every page with record counts and fence keys cross-checked
/// against the directory. `pager` is the read-only page source; pages that
/// fail their checksum are skipped here (the page scan already reported
/// them). Findings are appended as "epoch <e> (<pattern>): <what> <problem>".
void CheckDeltaList(Pager& pager, const ManifestViewRecord& record,
                    const StoredList& list, const std::string& what,
                    std::vector<std::string>* bad) {
  auto report = [&](const std::string& problem) {
    bad->push_back("epoch " + std::to_string(record.epoch) + " (" +
                   record.pattern + "): " + what + " " + problem);
  };
  const size_t pages = list.page_first_entry.size();
  if (pages == 0 || list.page_first_entry.front() != 0 ||
      list.page_first_entry.back() >= list.count ||
      list.page_first_start.size() != pages) {
    report("has an inconsistent page directory");
    return;
  }
  for (size_t p = 1; p < pages; ++p) {
    if (list.page_first_entry[p] <= list.page_first_entry[p - 1] ||
        list.page_first_start[p] < list.page_first_start[p - 1]) {
      report("has a non-monotone page directory at slot " + std::to_string(p));
      return;
    }
  }
  const RecordLayout& layout = list.layout;
  std::vector<uint8_t> page(Pager::kPageSize);
  std::vector<uint32_t> starts, ends, levels, pointers;
  for (uint32_t p = 0; p < pages; ++p) {
    if (!pager.VerifyPage(list.first_page + p, page.data()).ok()) continue;
    const uint32_t first = list.page_first_entry[p];
    const uint32_t expected = list.RecordsOnPage(p);
    starts.assign(static_cast<size_t>(expected) * layout.label_count, 0);
    ends.assign(starts.size(), 0);
    levels.assign(starts.size(), 0);
    pointers.assign(static_cast<size_t>(expected) * layout.PointerSlots(), 0);
    util::Status decoded = DecodeDeltaPage(
        page.data(), layout, first, expected, starts.data(), ends.data(),
        levels.data(), layout.has_pointers ? pointers.data() : nullptr);
    if (!decoded.ok()) {
      report("page " + std::to_string(p) + " fails delta decode: " +
             decoded.ToString());
      return;
    }
    if (starts[0] != list.page_first_start[p]) {
      report("page " + std::to_string(p) + " first start " +
             std::to_string(starts[0]) + " disagrees with fence key " +
             std::to_string(list.page_first_start[p]));
      return;
    }
  }
}

}  // namespace

FsckCatalogReport FsckCatalog(const std::string& path) {
  FsckCatalogReport report;
  report.orphan_shadows = FindOrphanShadows(path, &report.orphan_delta_files);

  util::StatusOr<ManifestReplayResult> replayed =
      ManifestJournal::Replay(ManifestJournal::PathFor(path));
  report.manifest_status = replayed.status();
  report.pager = FsckPagerFile(path);

  if (!replayed.ok() || replayed->legacy_text) {
    // No journal to establish a durable prefix (bare pager file or legacy
    // text manifest): the whole file is claimed, so every bad page counts.
    report.legacy = replayed.ok() && replayed->legacy_text;
    report.corrupt_durable_pages =
        static_cast<uint32_t>(report.pager.bad_pages.size());
    return report;
  }

  const ManifestReplayResult& journal = *replayed;
  report.last_epoch = journal.last_epoch;
  report.max_epoch = journal.last_epoch;
  report.epoch_regressions = journal.epoch_regressions;
  report.rolled_back_update_batches = journal.rolled_back_update_batches;
  report.durable_page_count = journal.durable_page_count;
  report.journal_tail_torn = journal.tail_torn;
  report.pending_rebuild = journal.rolled_back.size();
  report.view_count = journal.installed.size();
  for (uint64_t epoch : journal.quarantined) {
    if (journal.replaced.find(epoch) == journal.replaced.end()) {
      ++report.quarantined_count;
    }
  }
  for (const ManifestViewRecord& record : journal.installed) {
    CheckViewRanges(record, journal.durable_page_count, &report.bad_views);
  }
  // Delta-format lists: a checksum-clean page can still carry a lying varint
  // payload (truncated stream, impossible deltas), which the page scan above
  // cannot see. Decode every compressed page and cross-check the directory.
  if (report.pager.file_status.ok()) {
    Pager pager(path, Pager::Mode::kReadOnly);
    if (pager.init_status().ok()) {
      auto check = [&](const ManifestViewRecord& record,
                       const StoredList& list, const std::string& what) {
        if (list.format != ListFormat::kDelta || list.count == 0) return;
        ++report.compressed_lists_checked;
        CheckDeltaList(pager, record, list, what,
                       &report.bad_compressed_lists);
      };
      for (const ManifestViewRecord& record : journal.installed) {
        for (size_t q = 0; q < record.lists.size(); ++q) {
          check(record, record.lists[q], "list " + std::to_string(q));
        }
        check(record, record.tuple_list, "tuple list");
      }
    }
  }

  // Data file vs. durable prefix, from raw size — the pager rejects a file
  // with a partial page tail, but the journal still vouches for the prefix.
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    report.data_missing = journal.durable_page_count > 0;
    return report;
  }
  const int64_t expected =
      static_cast<int64_t>(Pager::kHeaderSize) +
      static_cast<int64_t>(journal.durable_page_count) *
          static_cast<int64_t>(Pager::kPhysicalPageSize);
  if (st.st_size < expected) {
    report.data_missing = true;
  } else if (st.st_size > expected) {
    const int64_t extra = st.st_size - expected;
    report.orphan_pages = static_cast<uint32_t>(
        extra / static_cast<int64_t>(Pager::kPhysicalPageSize));
    if (extra % static_cast<int64_t>(Pager::kPhysicalPageSize) != 0) {
      ++report.orphan_pages;
      report.pager_tail_partial = true;
    }
  }
  for (const auto& [page, status] : report.pager.bad_pages) {
    if (page < journal.durable_page_count) ++report.corrupt_durable_pages;
  }
  return report;
}

namespace {

/// Leftover "<base>.runN.{a,b}" spill files next to a document store —
/// artifacts of an interrupted streaming build.
std::vector<std::string> FindStrayRuns(const std::string& path) {
  std::string dir = ".";
  std::string base = path;
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    dir = path.substr(0, slash);
    base = path.substr(slash + 1);
  }
  std::vector<std::string> found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return found;
  const std::string run_prefix = base + ".run";
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind(run_prefix, 0) == 0) found.push_back(dir + "/" + name);
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());
  return found;
}

/// Verifies one fixed-format tag list of a document store: page ranges
/// inside the durable prefix, strictly increasing starts (one element has
/// one start; duplicates mean the merge emitted a record twice), and fence
/// keys agreeing with the first record of each page. Checksum-bad pages are
/// skipped (the page scan already reported them).
void CheckDocList(Pager& pager, const ManifestViewRecord& record,
                  uint32_t durable, std::vector<std::string>* bad) {
  auto report = [&](const std::string& problem) {
    bad->push_back(record.pattern + ": " + problem);
  };
  const StoredList& list = record.lists[0];
  if (list.count == 0) return;
  if (list.first_page >= durable ||
      list.PageSpan() > durable - list.first_page) {
    report("spans pages [" + std::to_string(list.first_page) + ", " +
           std::to_string(list.first_page + list.PageSpan()) +
           ") past durable prefix " + std::to_string(durable));
    return;
  }
  const bool is_arena =
      record.pattern == DocumentStore::kNodesPattern;
  const uint32_t record_size = list.layout.RecordSize();
  std::vector<uint8_t> page(Pager::kPageSize);
  uint32_t prev_start = 0;
  bool have_prev = false;
  for (uint32_t p = 0; p < list.PageSpan(); ++p) {
    if (!pager.VerifyPage(list.first_page + p, page.data()).ok()) {
      have_prev = false;  // cannot order-check across a hole
      continue;
    }
    const uint32_t n = list.RecordsOnPage(p);
    for (uint32_t r = 0; r < n; ++r) {
      uint32_t start;
      std::memcpy(&start, page.data() + static_cast<size_t>(r) * record_size,
                  4);
      // The arena is NodeId-ordered, which after live updates is not start
      // order — only the tag lists promise sorted starts.
      if (!is_arena) {
        if (r == 0 && p < list.page_first_start.size() &&
            list.page_first_start[p] != start) {
          report("page " + std::to_string(p) + " first start " +
                 std::to_string(start) + " disagrees with fence key " +
                 std::to_string(list.page_first_start[p]));
          return;
        }
        if (have_prev && start <= prev_start) {
          report("starts not strictly increasing at page " +
                 std::to_string(p) + " record " + std::to_string(r));
          return;
        }
        prev_start = start;
        have_prev = true;
      }
    }
  }
}

}  // namespace

FsckDocStoreReport FsckDocumentStore(const std::string& path) {
  FsckDocStoreReport report;
  report.stray_runs = FindStrayRuns(path);

  struct stat st;
  const bool pager_exists = ::stat(path.c_str(), &st) == 0;
  util::StatusOr<ManifestReplayResult> replayed =
      ManifestJournal::Replay(ManifestJournal::PathFor(path));
  report.manifest_status = replayed.status();
  const bool manifest_exists =
      replayed.ok() ||
      replayed.status().code() != util::StatusCode::kNotFound;
  report.present = pager_exists || manifest_exists;
  if (!report.present) return report;
  report.pager = FsckPagerFile(path);

  if (!replayed.ok()) {
    // A pager file with no manifest is an aborted build: the manifest write
    // IS the commit point, so nothing vouches for these pages. Rebuild.
    report.orphan =
        replayed.status().code() == util::StatusCode::kNotFound && pager_exists;
    return report;
  }
  if (replayed->legacy_text) {
    report.manifest_status =
        util::Status::Corruption("document store manifest is a legacy text "
                                 "manifest (never written by the builder)");
    return report;
  }

  const ManifestReplayResult& journal = *replayed;
  report.durable_page_count = journal.durable_page_count;
  bool arena_seen = false;
  std::vector<std::string> tags;
  for (const ManifestViewRecord& record : journal.installed) {
    if (record.lists.size() != 1) {
      report.bad_lists.push_back(record.pattern + ": holds " +
                                 std::to_string(record.lists.size()) +
                                 " lists (document records hold exactly 1)");
      continue;
    }
    if (record.pattern == DocumentStore::kNodesPattern) {
      if (arena_seen) {
        report.bad_lists.push_back(std::string(DocumentStore::kNodesPattern) +
                                   ": duplicate node arena record");
      }
      arena_seen = true;
      report.node_count = record.lists[0].count;
    } else {
      tags.push_back(record.pattern);
    }
  }
  report.tag_count = tags.size();
  std::sort(tags.begin(), tags.end());
  for (size_t i = 1; i < tags.size(); ++i) {
    if (tags[i] == tags[i - 1]) {
      report.bad_lists.push_back(tags[i] + ": duplicate tag record");
    }
  }
  if (!arena_seen) report.arena_missing = true;

  if (report.pager.file_status.ok()) {
    Pager pager(path, Pager::Mode::kReadOnly);
    if (pager.init_status().ok()) {
      for (const ManifestViewRecord& record : journal.installed) {
        if (record.lists.size() != 1) continue;
        CheckDocList(pager, record, journal.durable_page_count,
                     &report.bad_lists);
      }
    }
  }

  if (!pager_exists) {
    report.data_missing = journal.durable_page_count > 0;
    return report;
  }
  const int64_t expected =
      static_cast<int64_t>(Pager::kHeaderSize) +
      static_cast<int64_t>(journal.durable_page_count) *
          static_cast<int64_t>(Pager::kPhysicalPageSize);
  if (st.st_size < expected) report.data_missing = true;
  for (const auto& [page, status] : report.pager.bad_pages) {
    if (page < journal.durable_page_count) ++report.corrupt_durable_pages;
  }
  return report;
}

util::StatusOr<RecoveryReport> RepairCatalog(const std::string& path,
                                             size_t pool_pages) {
  util::StatusOr<std::unique_ptr<ViewCatalog>> opened =
      ViewCatalog::Open(path, pool_pages);
  if (!opened.ok()) return opened.status();
  ViewCatalog* catalog = opened->get();
  RecoveryReport recovery = catalog->recovery_report();
  // Checkpointing compacts the repaired journal to one record per live view,
  // so the next replay starts from a clean slate instead of re-walking the
  // crash's Begin/Install interleavings.
  util::Status checkpointed = catalog->Checkpoint();
  if (!checkpointed.ok()) return checkpointed;
  util::Status closed = catalog->Close();
  if (!closed.ok()) return closed;
  return recovery;
}

namespace {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string JsonBool(bool b) { return b ? "true" : "false"; }

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonQuote(items[i]);
  }
  out += "]";
  return out;
}

std::string BadPagesJson(
    const std::vector<std::pair<PageId, util::Status>>& bad_pages) {
  std::string out = "[";
  for (size_t i = 0; i < bad_pages.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"page\": " + std::to_string(bad_pages[i].first) +
           ", \"error\": " + JsonQuote(bad_pages[i].second.ToString()) + "}";
  }
  out += "]";
  return out;
}

}  // namespace

std::string ToJson(const FsckReport& report) {
  std::string out = "{\n";
  out += "  \"clean\": " + JsonBool(report.ok()) + ",\n";
  out += "  \"file_status\": " + JsonQuote(report.file_status.ToString()) +
         ",\n";
  out += "  \"page_count\": " + std::to_string(report.page_count) + ",\n";
  out += "  \"bad_pages\": " + BadPagesJson(report.bad_pages) + "\n";
  out += "}\n";
  return out;
}

std::string ToJson(const FsckCatalogReport& report) {
  std::string out = "{\n";
  out += "  \"clean\": " + JsonBool(report.clean()) + ",\n";
  out += "  \"corrupt\": " + JsonBool(report.corrupt()) + ",\n";
  out += "  \"repair_needed\": " + JsonBool(report.repair_needed()) + ",\n";
  out += "  \"pager\": {\n";
  out += "    \"file_status\": " +
         JsonQuote(report.pager.file_status.ToString()) + ",\n";
  out += "    \"page_count\": " + std::to_string(report.pager.page_count) +
         ",\n";
  out += "    \"bad_pages\": " + BadPagesJson(report.pager.bad_pages) + "\n";
  out += "  },\n";
  out += "  \"manifest_status\": " +
         JsonQuote(report.manifest_status.ToString()) + ",\n";
  out += "  \"legacy\": " + JsonBool(report.legacy) + ",\n";
  out += "  \"last_epoch\": " + std::to_string(report.last_epoch) + ",\n";
  out += "  \"max_epoch\": " + std::to_string(report.max_epoch) + ",\n";
  out += "  \"epoch_regressions\": " +
         std::to_string(report.epoch_regressions) + ",\n";
  out += "  \"rolled_back_update_batches\": " +
         std::to_string(report.rolled_back_update_batches) + ",\n";
  out += "  \"durable_page_count\": " +
         std::to_string(report.durable_page_count) + ",\n";
  out += "  \"view_count\": " + std::to_string(report.view_count) + ",\n";
  out += "  \"quarantined_count\": " +
         std::to_string(report.quarantined_count) + ",\n";
  out += "  \"pending_rebuild\": " + std::to_string(report.pending_rebuild) +
         ",\n";
  out += "  \"journal_tail_torn\": " + JsonBool(report.journal_tail_torn) +
         ",\n";
  out += "  \"orphan_pages\": " + std::to_string(report.orphan_pages) + ",\n";
  out += "  \"pager_tail_partial\": " + JsonBool(report.pager_tail_partial) +
         ",\n";
  out += "  \"orphan_shadows\": " + JsonStringArray(report.orphan_shadows) +
         ",\n";
  out += "  \"orphan_delta_files\": " +
         JsonStringArray(report.orphan_delta_files) + ",\n";
  out += "  \"corrupt_durable_pages\": " +
         std::to_string(report.corrupt_durable_pages) + ",\n";
  out += "  \"data_missing\": " + JsonBool(report.data_missing) + ",\n";
  out += "  \"bad_views\": " + JsonStringArray(report.bad_views) + ",\n";
  out += "  \"compressed_lists_checked\": " +
         std::to_string(report.compressed_lists_checked) + ",\n";
  out += "  \"bad_compressed_lists\": " +
         JsonStringArray(report.bad_compressed_lists) + "\n";
  out += "}\n";
  return out;
}

std::string ToJson(const FsckDocStoreReport& report) {
  std::string out = "{\n";
  out += "  \"present\": " + JsonBool(report.present) + ",\n";
  out += "  \"clean\": " + JsonBool(report.clean()) + ",\n";
  out += "  \"corrupt\": " + JsonBool(report.corrupt()) + ",\n";
  out += "  \"orphan\": " + JsonBool(report.orphan) + ",\n";
  out += "  \"pager\": {\n";
  out += "    \"file_status\": " +
         JsonQuote(report.pager.file_status.ToString()) + ",\n";
  out += "    \"page_count\": " + std::to_string(report.pager.page_count) +
         ",\n";
  out += "    \"bad_pages\": " + BadPagesJson(report.pager.bad_pages) + "\n";
  out += "  },\n";
  out += "  \"manifest_status\": " +
         JsonQuote(report.manifest_status.ToString()) + ",\n";
  out += "  \"node_count\": " + std::to_string(report.node_count) + ",\n";
  out += "  \"tag_count\": " + std::to_string(report.tag_count) + ",\n";
  out += "  \"durable_page_count\": " +
         std::to_string(report.durable_page_count) + ",\n";
  out += "  \"corrupt_durable_pages\": " +
         std::to_string(report.corrupt_durable_pages) + ",\n";
  out += "  \"arena_missing\": " + JsonBool(report.arena_missing) + ",\n";
  out += "  \"data_missing\": " + JsonBool(report.data_missing) + ",\n";
  out += "  \"bad_lists\": " + JsonStringArray(report.bad_lists) + ",\n";
  out += "  \"stray_runs\": " + JsonStringArray(report.stray_runs) + "\n";
  out += "}\n";
  return out;
}

}  // namespace viewjoin::storage
