#include "storage/fsck.h"

#include <vector>

namespace viewjoin::storage {

FsckReport FsckPagerFile(const std::string& path) {
  FsckReport report;
  Pager pager(path, Pager::Mode::kReadOnly);
  report.file_status = pager.init_status();
  if (!report.file_status.ok()) return report;
  report.page_count = pager.page_count();
  std::vector<uint8_t> page(Pager::kPageSize);
  for (PageId id = 0; id < report.page_count; ++id) {
    util::Status status = pager.VerifyPage(id, page.data());
    if (!status.ok()) report.bad_pages.emplace_back(id, status);
  }
  return report;
}

}  // namespace viewjoin::storage
