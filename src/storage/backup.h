#ifndef VIEWJOIN_STORAGE_BACKUP_H_
#define VIEWJOIN_STORAGE_BACKUP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/materialized_view.h"
#include "util/status.h"

namespace viewjoin::storage {

// ---- Online hot backup ------------------------------------------------------
//
// A backup image is a self-describing directory:
//
//   <dir>/store               copied view pager file (verified page by page)
//   <dir>/store.manifest      checkpoint-format manifest journal written from
//                             the pinned catalog snapshot (never a raw copy
//                             of the live journal, which may be compacting)
//   <dir>/store.doc           copied document-store pager (when present)
//   <dir>/store.doc.manifest  copied document-store manifest (when present)
//   <dir>/backup.meta         epoch, page count, per-file size + CRC32, and
//                             the meta file's own CRC — written last, so a
//                             directory without it is a torn backup
//
// The file names follow the live store's sibling conventions
// ("<pager>.manifest", "<pager>.doc"), so a verified image is itself a store
// that ViewCatalog::Open recovers cleanly — restore is a verified copy back
// out plus an Open to prove it.
//
// Consistency: CreateBackup pins the catalog's state with
// ViewCatalog::SnapshotForBackup() — a microsecond hold of the install mutex
// that fixes {install records, quarantined epochs, epoch, page count}. The
// catalog pager is append-only for committed pages, so every page below the
// pinned count is immutable and is copied afterwards with no lock held;
// queries and update batches keep serving, and updates committed past the
// pinned epoch are simply absent from the image. The document store is
// copied by the caller under its own read lock (Engine holds the document
// mutex shared, so queries proceed and updates briefly wait).

struct BackupOptions {
  /// Copy pacing in bytes per second (0 = unthrottled). Servers wire
  /// VIEWJOIN_BACKUP_RATE_BYTES through here so a backup cannot starve
  /// serving I/O.
  uint64_t rate_bytes_per_sec = 0;
  /// Pager path of the live document store ("<storage>.doc"); empty or
  /// missing on disk means the backup holds views only.
  std::string doc_store_path;
  /// Invoked around the document-store copy only (not the much longer view
  /// copy). The engine installs lambdas that take/release its document
  /// mutex in shared mode, so update batches — which rewrite the doc store
  /// in place — wait just for this window while queries keep running.
  /// Either may be empty. doc_copy_end is always called if begin was.
  std::function<void()> doc_copy_begin;
  std::function<void()> doc_copy_end;
};

/// One file of a backup image, as recorded in backup.meta.
struct BackupFileInfo {
  std::string name;  // relative to the image directory
  uint64_t size = 0;
  uint32_t crc32 = 0;
};

struct BackupReport {
  std::string directory;
  /// Catalog epoch the image is transactionally consistent at.
  uint64_t epoch = 0;
  /// Committed view pages the image holds.
  uint32_t view_page_count = 0;
  /// Total bytes copied (what the rate limiter paced).
  uint64_t bytes_copied = 0;
  bool has_doc_store = false;
  std::vector<BackupFileInfo> files;

  std::string ToJson() const;
};

/// Name of the image descriptor inside a backup directory; its presence is
/// what IsBackupImageDir (and vj_fsck's auto-detection) keys on.
inline constexpr char kBackupMetaName[] = "backup.meta";
/// Base name of the copied pager file inside a backup directory.
inline constexpr char kBackupStoreName[] = "store";

/// Takes an online hot backup of a live catalog (plus the document store
/// named in `options`, if any) into `dest_dir`, which is created if missing
/// and must not already contain a backup image. Every page is checksum-
/// verified as it is copied; a page that fails verification aborts the
/// backup with kCorruption (the live store needs fsck, the partial image is
/// removed). kResourceExhausted when the destination disk fills — never a
/// torn image with a valid backup.meta. Crash-injectable at
/// CrashPoint::kCrashMidBackupCopy; the source store is never written to.
util::StatusOr<BackupReport> CreateBackup(ViewCatalog& catalog,
                                          const std::string& dest_dir,
                                          const BackupOptions& options = {});

/// Fully verifies a backup image: backup.meta parses and matches its own
/// CRC, every listed file has the recorded size and CRC32, every page of the
/// copied pager files passes footer + checksum verification, and the image
/// manifest replays cleanly to exactly the recorded epoch and page count.
util::StatusOr<BackupReport> VerifyBackupImage(const std::string& dir);

/// Restores a verified image to a fresh store at `dest_path` (the pager
/// path; "<dest_path>.manifest" and the ".doc" siblings are derived). The
/// destination files must not exist. Runs the full VerifyBackupImage pass
/// first, then copies, then proves the result by a clean ViewCatalog::Open.
/// On any failure every file already copied is removed — no orphans.
util::StatusOr<BackupReport> RestoreBackup(const std::string& dir,
                                           const std::string& dest_path,
                                           uint64_t rate_bytes_per_sec = 0);

/// True when `path` is a directory holding a backup.meta file.
bool IsBackupImageDir(const std::string& path);

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_BACKUP_H_
