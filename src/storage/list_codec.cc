#include "storage/list_codec.h"

#include <cstring>

#include "storage/pager.h"
#include "storage/stored_list.h"
#include "util/check.h"

namespace viewjoin::storage {
namespace {

constexpr uint32_t kPageHeaderSize = 4;  // u16 record_count + u16 flags

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Bounds-checked LEB128 decode; false on truncation or a >10-byte varint.
bool GetVarint(const uint8_t* payload, uint32_t limit, uint32_t* pos,
               uint64_t* out) {
  uint64_t value = 0;
  for (uint32_t shift = 0; shift < 64; shift += 7) {
    if (*pos >= limit) return false;
    uint8_t byte = payload[(*pos)++];
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
  }
  return false;
}

/// Encodes one record's labels + pointers with `prev_start` threading
/// through; appends to `out` and advances the delta state.
void EncodeRecord(const uint8_t* rec, uint32_t index,
                  const RecordLayout& layout, uint32_t* prev_start,
                  std::vector<uint8_t>* out) {
  for (uint32_t k = 0; k < layout.label_count; ++k) {
    uint32_t start, end, level;
    std::memcpy(&start, rec + 12 * k, 4);
    std::memcpy(&end, rec + 12 * k + 4, 4);
    std::memcpy(&level, rec + 12 * k + 8, 4);
    VJ_DCHECK(end >= start);
    PutVarint(out, ZigZag(static_cast<int64_t>(start) -
                          static_cast<int64_t>(*prev_start)));
    PutVarint(out, end - start);
    PutVarint(out, level);
    *prev_start = start;
  }
  if (layout.has_pointers) {
    const uint8_t* ptrs = rec + 12 * layout.label_count;
    for (uint32_t slot = 0; slot < 2 + layout.child_count; ++slot) {
      uint32_t ptr;
      std::memcpy(&ptr, ptrs + 4 * slot, 4);
      if (ptr == kNullEntry) {
        PutVarint(out, 0);
      } else {
        PutVarint(out, ZigZag(static_cast<int64_t>(ptr) -
                              static_cast<int64_t>(index)) +
                           1);
      }
    }
  }
}

}  // namespace

uint32_t MaxEncodedRecordSize(const RecordLayout& layout) {
  // Every field is a varint of a value that fits 34 bits (zigzagged 33-bit
  // deltas, +1), i.e. at most 5 bytes.
  uint32_t slots = layout.has_pointers ? 2 + layout.child_count : 0;
  return 5 * (3 * layout.label_count + slots);
}

util::StatusOr<DeltaEncoded> EncodeDeltaList(const uint8_t* records, uint32_t count,
                                       const RecordLayout& layout) {
  const uint32_t record_size = layout.RecordSize();
  if (record_size == 0 ||
      kPageHeaderSize + MaxEncodedRecordSize(layout) > Pager::kPageSize) {
    return util::Status::InvalidArgument(
        "list record too wide for delta page encoding");
  }
  DeltaEncoded out;
  std::vector<uint8_t> body;      // encoded records of the open page
  std::vector<uint8_t> scratch;   // one speculatively encoded record
  uint32_t page_records = 0;
  uint32_t prev_start = 0;
  uint32_t page_first = 0;
  auto close_page = [&] {
    std::vector<uint8_t> page(Pager::kPageSize, 0);
    uint16_t n = static_cast<uint16_t>(page_records);
    std::memcpy(page.data(), &n, 2);  // flags at [2,4) stay 0
    std::memcpy(page.data() + kPageHeaderSize, body.data(), body.size());
    out.pages.push_back(std::move(page));
    body.clear();
    page_records = 0;
    prev_start = 0;
  };
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t* rec = records + static_cast<size_t>(i) * record_size;
    scratch.clear();
    EncodeRecord(rec, i, layout, &prev_start, &scratch);
    if (kPageHeaderSize + body.size() + scratch.size() > Pager::kPageSize) {
      close_page();
      // Re-encode with the fresh page's reset delta state.
      scratch.clear();
      EncodeRecord(rec, i, layout, &prev_start, &scratch);
    }
    if (page_records == 0) {
      page_first = i;
      uint32_t start;
      std::memcpy(&start, rec, 4);
      out.page_first_entry.push_back(page_first);
      out.page_first_start.push_back(start);
    }
    body.insert(body.end(), scratch.begin(), scratch.end());
    ++page_records;
  }
  if (page_records > 0) close_page();
  return out;
}

util::Status DecodeDeltaPage(const uint8_t* payload, const RecordLayout& layout,
                       uint32_t first_entry, uint32_t expected_records,
                       uint32_t* starts, uint32_t* ends, uint32_t* levels,
                       uint32_t* pointers) {
  uint16_t n = 0;
  std::memcpy(&n, payload, 2);
  if (n != expected_records) {
    return util::Status::Corruption("delta page record count mismatch");
  }
  const uint32_t limit = static_cast<uint32_t>(Pager::kPageSize);
  uint32_t pos = kPageHeaderSize;
  uint64_t prev_start = 0;
  const uint32_t slots = layout.has_pointers ? 2 + layout.child_count : 0;
  for (uint32_t i = 0; i < expected_records; ++i) {
    for (uint32_t k = 0; k < layout.label_count; ++k) {
      uint64_t ds, de, lv;
      if (!GetVarint(payload, limit, &pos, &ds) ||
          !GetVarint(payload, limit, &pos, &de) ||
          !GetVarint(payload, limit, &pos, &lv)) {
        return util::Status::Corruption("delta page label varint truncated");
      }
      int64_t start = static_cast<int64_t>(prev_start) + UnZigZag(ds);
      int64_t end = start + static_cast<int64_t>(de);
      if (start < 0 || end > 0xFFFFFFFF || lv > 0xFFFFFFFF) {
        return util::Status::Corruption("delta page label out of range");
      }
      uint32_t idx = i * layout.label_count + k;
      starts[idx] = static_cast<uint32_t>(start);
      ends[idx] = static_cast<uint32_t>(end);
      levels[idx] = static_cast<uint32_t>(lv);
      prev_start = static_cast<uint64_t>(start);
    }
    for (uint32_t slot = 0; slot < slots; ++slot) {
      uint64_t v;
      if (!GetVarint(payload, limit, &pos, &v)) {
        return util::Status::Corruption("delta page pointer varint truncated");
      }
      uint32_t idx = i * slots + slot;
      if (v == 0) {
        pointers[idx] = kNullEntry;
      } else {
        int64_t ptr = static_cast<int64_t>(first_entry + i) + UnZigZag(v - 1);
        if (ptr < 0 || ptr >= static_cast<int64_t>(kNullEntry)) {
          return util::Status::Corruption("delta page pointer out of range");
        }
        pointers[idx] = static_cast<uint32_t>(ptr);
      }
    }
  }
  return util::Status::Ok();
}

}  // namespace viewjoin::storage
