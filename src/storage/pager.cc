#include "storage/pager.h"

#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/check.h"
#include "util/timer.h"

namespace viewjoin::storage {
namespace {

/// Optional simulated per-page read latency in microseconds (environment
/// variable VIEWJOIN_PAGE_READ_MICROS, default 0). Benchmarks can enable it
/// to approximate the paper's 2005-era disk, where the page accesses saved
/// by the LE scheme translate into wall-clock time; with the default the
/// timings are honest in-memory numbers and the saved pages show up only in
/// the read counters.
int64_t SimulatedReadMicros() {
  static const int64_t value = [] {
    const char* env = std::getenv("VIEWJOIN_PAGE_READ_MICROS");
    if (env == nullptr || *env == '\0') return static_cast<long>(0);
    return std::strtol(env, nullptr, 10);
  }();
  return value;
}

}  // namespace

Pager::Pager(const std::string& path, Mode mode) : path_(path), mode_(mode) {
  file_ = std::fopen(path.c_str(), mode == Mode::kReopen ? "r+b" : "w+b");
  VJ_CHECK(file_ != nullptr) << "cannot open pager file " << path;
  if (mode == Mode::kReopen) {
    VJ_CHECK_EQ(std::fseek(file_, 0, SEEK_END), 0);
    long size = std::ftell(file_);
    VJ_CHECK_GE(size, 0);
    VJ_CHECK_EQ(static_cast<size_t>(size) % kPageSize, 0u);
    page_count_ = static_cast<uint32_t>(static_cast<size_t>(size) / kPageSize);
  }
}

Pager::~Pager() {
  if (file_ != nullptr) {
    std::fclose(file_);
    if (mode_ == Mode::kTruncate) std::remove(path_.c_str());
  }
}

PageId Pager::AllocatePage() {
  // The file grows lazily: a page becomes readable once first written.
  return page_count_++;
}

void Pager::WritePage(PageId id, const void* data) {
  VJ_CHECK(id < page_count_ || id == page_count_);
  util::Timer timer;
  VJ_CHECK_EQ(std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET), 0);
  VJ_CHECK_EQ(std::fwrite(data, kPageSize, 1, file_), 1u);
  stats_.write_micros += timer.ElapsedMicros();
  ++stats_.pages_written;
}

void Pager::ReadPage(PageId id, void* out) {
  VJ_CHECK(id < page_count_) << "read of unallocated page";
  util::Timer timer;
  VJ_CHECK_EQ(std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET), 0);
  VJ_CHECK_EQ(std::fread(out, kPageSize, 1, file_), 1u);
  int64_t simulated = SimulatedReadMicros();
  if (simulated > 0) {
    while (timer.ElapsedMicros() < simulated) {
      // Busy-wait: simulated seek+transfer time for one page.
    }
  }
  stats_.read_micros += timer.ElapsedMicros();
  ++stats_.pages_read;
}

}  // namespace viewjoin::storage
