#include "storage/pager.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/crc32.h"
#include "util/env.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace viewjoin::storage {
namespace {

/// Optional simulated per-page read latency in microseconds (environment
/// variable VIEWJOIN_PAGE_READ_MICROS, default 0). Benchmarks can enable it
/// to approximate the paper's 2005-era disk, where the page accesses saved
/// by the LE scheme translate into wall-clock time; with the default the
/// timings are honest in-memory numbers and the saved pages show up only in
/// the read counters. Parsing is strict: a malformed value dies with the
/// typed error at the first page read instead of silently measuring with the
/// latency off.
int64_t SimulatedReadMicros() {
  static const int64_t value = [] {
    util::StatusOr<int64_t> parsed =
        util::ParseNonNegativeIntEnv("VIEWJOIN_PAGE_READ_MICROS", 0);
    VJ_CHECK(parsed.ok()) << parsed.status().ToString();
    return *parsed;
  }();
  return value;
}

/// With VIEWJOIN_PAGE_READ_SLEEP=1 the simulated latency sleeps instead of
/// spinning. A sleeping reader releases the CPU, so concurrent queries
/// overlap their simulated I/O exactly as parallel requests overlap on a
/// real disk — the mode bench_concurrency uses. The default (0) spin keeps
/// single-threaded timings deterministic on loaded hosts. Strict like
/// VIEWJOIN_PAGE_READ_MICROS: anything but 0/1/true/false dies with the
/// typed error rather than being coerced to a mode the operator didn't ask
/// for.
bool SimulatedReadSleeps() {
  static const bool value = [] {
    util::StatusOr<bool> parsed =
        util::ParseBoolEnv("VIEWJOIN_PAGE_READ_SLEEP", false);
    VJ_CHECK(parsed.ok()) << parsed.status().ToString();
    return *parsed;
  }();
  return value;
}

/// Burns or sleeps whatever remains of the configured per-page latency,
/// given a timer started when the read began. Called WITHOUT the pager
/// mutex held, so concurrent readers pay the latency in parallel.
void ApplySimulatedReadLatency(const util::Timer& timer) {
  int64_t simulated = SimulatedReadMicros();
  if (simulated <= 0) return;
  if (SimulatedReadSleeps()) {
    int64_t remaining = simulated - timer.ElapsedMicros();
    if (remaining > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(remaining));
    }
    return;
  }
  while (timer.ElapsedMicros() < simulated) {
    // Busy-wait: simulated seek+transfer time for one page.
  }
}

constexpr char kFileMagic[8] = {'V', 'J', 'P', 'A', 'G', 'E', 'R', 'F'};
constexpr uint32_t kPageMagic = 0x47504A56u;  // "VJPG" little-endian

// Header field offsets (all little-endian u32 unless noted).
constexpr size_t kHdrMagicOff = 0;    // 8 bytes
constexpr size_t kHdrVersionOff = 8;
constexpr size_t kHdrPageSizeOff = 12;
constexpr size_t kHdrFooterSizeOff = 16;
constexpr size_t kHdrHeaderSizeOff = 20;
constexpr size_t kHdrCrcOff = Pager::kHeaderSize - 4;

// Footer field offsets within the physical page.
constexpr size_t kFtrMagicOff = Pager::kPageSize;
constexpr size_t kFtrPageIdOff = Pager::kPageSize + 4;
constexpr size_t kFtrCrcOff = Pager::kPageSize + 8;

// Deterministic payload position the bit-flip fault perturbs.
constexpr size_t kBitFlipByte = 64;
constexpr uint8_t kBitFlipMask = 0x08;

void PutU32(uint8_t* base, size_t off, uint32_t value) {
  std::memcpy(base + off, &value, 4);
}

uint32_t GetU32(const uint8_t* base, size_t off) {
  uint32_t value;
  std::memcpy(&value, base + off, 4);
  return value;
}

std::function<void(int)>& BackoffHook() {
  static std::function<void(int)> hook;
  return hook;
}

long PageOffset(PageId id) {
  return static_cast<long>(Pager::kHeaderSize) +
         static_cast<long>(id) * static_cast<long>(Pager::kPhysicalPageSize);
}

/// Typed verdict for a failed write: a full device (real ENOSPC from the OS)
/// is kResourceExhausted — an operational condition the engine degrades
/// around, not a broken medium — while everything else stays kIoError.
/// Callers clear errno before the write so a stale ENOSPC from an earlier
/// syscall cannot retype an unrelated failure.
util::Status WriteFailure(const std::string& what) {
  int err = errno;
  std::string detail =
      what + ": " + (err != 0 ? std::strerror(err) : "short write");
  if (err == ENOSPC) return util::Status::ResourceExhausted(detail);
  return util::Status::IoError(detail);
}

/// The injected flavor of a full disk, phrased like the real one so callers
/// and tests match on the code, not the message.
util::Status InjectedNoSpace(const std::string& what) {
  return util::Status::ResourceExhausted(what +
                                         ": no space left on device (injected)");
}

}  // namespace

void Pager::SetRetryBackoffHook(std::function<void(int)> hook) {
  BackoffHook() = std::move(hook);
}

Pager::Pager(const std::string& path, Mode mode) : path_(path), mode_(mode) {
  const char* fmode = "w+b";
  if (mode == Mode::kReopen) fmode = "r+b";
  if (mode == Mode::kReadOnly) fmode = "rb";
  file_ = std::fopen(path.c_str(), fmode);
  if (file_ == nullptr) {
    init_status_ = (mode == Mode::kReopen || mode == Mode::kReadOnly)
                       ? util::Status::NotFound("cannot open pager file " +
                                                path + ": " +
                                                std::strerror(errno))
                       : util::Status::IoError("cannot create pager file " +
                                               path + ": " +
                                               std::strerror(errno));
    return;
  }
  init_status_ = (mode == Mode::kReopen || mode == Mode::kReadOnly)
                     ? ValidateExistingFile()
                     : WriteHeader();
  if (!init_status_.ok()) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Pager::~Pager() {
  util::Status closed = Close();
  if (!closed.ok() && mode_ != Mode::kTruncate) {
    std::fprintf(stderr, "viewjoin: %s\n", closed.ToString().c_str());
  }
}

util::Status Pager::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return close_status_;  // already closed (idempotent)
  // Persistent stores must reach the OS before close; a swallowed flush
  // error here would silently hand the next Reopen a truncated file, so the
  // verdict is latched in close_status_ for ViewCatalog::Close to surface.
  if (mode_ == Mode::kPersist || mode_ == Mode::kReopen) {
    bool injected = util::FaultInjector::Global().OnFlushAttempt();
    errno = 0;
    if (injected) {
      close_status_ =
          util::Status::IoError("pager close-time flush failed for " + path_ +
                                ": injected flush fault");
    } else if (std::fflush(file_) != 0) {
      close_status_ = WriteFailure("pager close-time flush failed for " + path_);
    }
  }
  if (std::fclose(file_) != 0 && close_status_.ok() &&
      mode_ != Mode::kTruncate) {
    close_status_ = util::Status::IoError("pager close failed for " + path_ +
                                          ": " + std::strerror(errno));
  }
  file_ = nullptr;
  if (mode_ == Mode::kTruncate) std::remove(path_.c_str());
  if (!close_status_.ok() && last_error_.ok()) last_error_ = close_status_;
  return close_status_;
}

util::Status Pager::WriteHeader() {
  uint8_t header[kHeaderSize] = {0};
  std::memcpy(header + kHdrMagicOff, kFileMagic, sizeof(kFileMagic));
  PutU32(header, kHdrVersionOff, kFormatVersion);
  PutU32(header, kHdrPageSizeOff, static_cast<uint32_t>(kPageSize));
  PutU32(header, kHdrFooterSizeOff, static_cast<uint32_t>(kFooterSize));
  PutU32(header, kHdrHeaderSizeOff, static_cast<uint32_t>(kHeaderSize));
  PutU32(header, kHdrCrcOff, util::Crc32(header, kHdrCrcOff));

  // Header writes are injectable on their own channel (they happen at open
  // time, before any page traffic, so sharing the page-write counter would
  // shift every armed "nth write"). A short write leaves a truncated header
  // on disk and MUST fail the open: the next Reopen's header CRC would
  // otherwise read garbage geometry.
  if (util::FaultInjector::Global().OnDiskCharge(kHeaderSize)) {
    return InjectedNoSpace("cannot write pager header to " + path_);
  }
  size_t write_bytes = kHeaderSize;
  bool report_failure = false;
  switch (util::FaultInjector::Global().OnHeaderWriteAttempt()) {
    case util::WriteFault::kNone:
      break;
    case util::WriteFault::kShortWrite:
      write_bytes = kHeaderSize / 2;
      report_failure = true;
      break;
    case util::WriteFault::kTornPage:
      std::memset(header + kHeaderSize / 2, 0xAA, kHeaderSize / 2);
      break;
    case util::WriteFault::kBitFlip:
      header[kHdrVersionOff] ^= 0x01;
      break;
    case util::WriteFault::kNoSpace:
      // A full disk rejects the write before any byte lands: the file stays
      // untouched (here: empty), so the failed open leaves nothing torn.
      return InjectedNoSpace("cannot write pager header to " + path_);
  }
  errno = 0;
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, write_bytes, 1, file_) != 1) {
    report_failure = true;
  }
  if (report_failure) {
    return WriteFailure("cannot write pager header to " + path_);
  }
  return util::Status::Ok();
}

util::Status Pager::ValidateExistingFile() {
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return util::Status::IoError("cannot seek in pager file " + path_);
  }
  long size = std::ftell(file_);
  if (size < 0) {
    return util::Status::IoError("cannot size pager file " + path_);
  }
  if (static_cast<size_t>(size) < kHeaderSize) {
    return util::Status::Corruption("pager file " + path_ +
                                    " is truncated (no file header)");
  }
  uint8_t header[kHeaderSize];
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fread(header, kHeaderSize, 1, file_) != 1) {
    return util::Status::IoError("cannot read pager header of " + path_);
  }
  if (std::memcmp(header + kHdrMagicOff, kFileMagic, sizeof(kFileMagic)) != 0) {
    return util::Status::Corruption(
        "pager file " + path_ +
        " has no valid header magic (pre-checksum format or foreign file)");
  }
  if (GetU32(header, kHdrCrcOff) != util::Crc32(header, kHdrCrcOff)) {
    return util::Status::Corruption("pager header checksum mismatch in " +
                                    path_);
  }
  if (GetU32(header, kHdrVersionOff) != kFormatVersion) {
    return util::Status::Corruption(
        "unsupported pager format version " +
        std::to_string(GetU32(header, kHdrVersionOff)) + " in " + path_);
  }
  if (GetU32(header, kHdrPageSizeOff) != kPageSize ||
      GetU32(header, kHdrFooterSizeOff) != kFooterSize ||
      GetU32(header, kHdrHeaderSizeOff) != kHeaderSize) {
    return util::Status::Corruption("pager page geometry mismatch in " + path_);
  }
  size_t body = static_cast<size_t>(size) - kHeaderSize;
  if (body % kPhysicalPageSize != 0) {
    return util::Status::Corruption(
        "pager file " + path_ + " is truncated: " + std::to_string(size) +
        " bytes is not a whole number of pages");
  }
  page_count_ = static_cast<uint32_t>(body / kPhysicalPageSize);
  return util::Status::Ok();
}

util::Status Pager::Latch(util::Status status) {
  if (!status.ok() && last_error_.ok()) last_error_ = status;
  return status;
}

util::StatusOr<PageId> Pager::AllocatePage() {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(mu_);
  if (mode_ == Mode::kReadOnly) {
    return Latch(util::Status::InvalidArgument(
        "cannot allocate pages in read-only pager " + path_));
  }
  // The file grows lazily: a page becomes readable once first written.
  return page_count_++;
}

void Pager::EncodePhysicalPage(PageId id, const void* payload,
                               uint8_t* out_phys) {
  std::memcpy(out_phys, payload, kPageSize);
  PutU32(out_phys, kFtrMagicOff, kPageMagic);
  PutU32(out_phys, kFtrPageIdOff, id);
  PutU32(out_phys, kFtrCrcOff, util::Crc32(out_phys, kPageSize));
  PutU32(out_phys, kFtrCrcOff + 4, 0);
}

util::Status Pager::WritePage(PageId id, const void* data) {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(mu_);
  if (mode_ == Mode::kReadOnly) {
    return Latch(util::Status::InvalidArgument(
        "cannot write pages in read-only pager " + path_));
  }
  if (file_ == nullptr) {
    return Latch(util::Status::IoError("pager " + path_ + " is closed"));
  }
  if (id >= page_count_) {
    return Latch(util::Status::InvalidArgument(
        "write of unallocated page " + std::to_string(id) + " in " + path_));
  }
  if (util::FaultInjector::Global().OnDiskCharge(kPhysicalPageSize)) {
    return Latch(InjectedNoSpace("page write failed for page " +
                                 std::to_string(id) + " in " + path_));
  }
  util::Timer timer;
  uint8_t phys[kPhysicalPageSize];
  EncodePhysicalPage(id, data, phys);

  size_t write_bytes = kPhysicalPageSize;
  bool report_failure = false;
  switch (util::FaultInjector::Global().OnWriteAttempt()) {
    case util::WriteFault::kNone:
      break;
    case util::WriteFault::kShortWrite:
      write_bytes = kPhysicalPageSize / 2;
      report_failure = true;
      break;
    case util::WriteFault::kTornPage:
      // Simulates power loss mid-write: the tail (footer included) never
      // makes it, but the caller is told the write succeeded.
      std::memset(phys + kPhysicalPageSize / 2, 0xAA, kPhysicalPageSize / 2);
      break;
    case util::WriteFault::kBitFlip:
      phys[kBitFlipByte] ^= kBitFlipMask;
      break;
    case util::WriteFault::kNoSpace:
      // The device refuses the page outright: nothing reaches the file, so
      // the old page contents stay byte-identical (no torn overwrite).
      return Latch(InjectedNoSpace("page write failed for page " +
                                   std::to_string(id) + " in " + path_));
  }

  errno = 0;
  if (std::fseek(file_, PageOffset(id), SEEK_SET) != 0 ||
      std::fwrite(phys, write_bytes, 1, file_) != 1) {
    report_failure = true;
  }
  stats_.write_micros += timer.ElapsedMicros();
  ++stats_.pages_written;
  if (report_failure) {
    return Latch(WriteFailure("page write failed for page " +
                              std::to_string(id) + " in " + path_));
  }
  return util::Status::Ok();
}

util::Status Pager::AppendPhysicalPages(const uint8_t* phys, uint32_t count) {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(mu_);
  if (mode_ == Mode::kReadOnly) {
    return Latch(util::Status::InvalidArgument(
        "cannot append pages to read-only pager " + path_));
  }
  if (file_ == nullptr) {
    return Latch(util::Status::IoError("pager " + path_ + " is closed"));
  }
  if (count == 0) return util::Status::Ok();
  util::Timer timer;
  if (std::fseek(file_, PageOffset(page_count_), SEEK_SET) != 0) {
    return Latch(util::Status::IoError(
        "seek for append of " + std::to_string(count) + " pages failed in " +
        path_));
  }
  // The injector is consulted once per page — identical counting to the old
  // page-at-a-time write loop, so tests arming "the nth write" keep hitting
  // the same page whether it lands via WritePage or a staged append.
  bool failed = false;
  bool no_space = false;
  uint32_t written = 0;
  errno = 0;
  for (uint32_t p = 0; p < count && !failed; ++p) {
    const uint8_t* src = phys + static_cast<size_t>(p) * kPhysicalPageSize;
    if (util::FaultInjector::Global().OnDiskCharge(kPhysicalPageSize)) {
      failed = true;
      no_space = true;
      break;
    }
    util::WriteFault fault = util::FaultInjector::Global().OnWriteAttempt();
    if (fault == util::WriteFault::kNoSpace) {
      // A full disk stops the append before this page's first byte: the tail
      // written so far is still dead bytes past page_count_, never a torn
      // page.
      failed = true;
      no_space = true;
      break;
    }
    if (fault == util::WriteFault::kNone) {
      failed = std::fwrite(src, kPhysicalPageSize, 1, file_) != 1;
    } else {
      uint8_t page[kPhysicalPageSize];
      std::memcpy(page, src, kPhysicalPageSize);
      size_t write_bytes = kPhysicalPageSize;
      switch (fault) {
        case util::WriteFault::kShortWrite:
          write_bytes = kPhysicalPageSize / 2;
          failed = true;
          break;
        case util::WriteFault::kTornPage:
          std::memset(page + kPhysicalPageSize / 2, 0xAA,
                      kPhysicalPageSize / 2);
          break;
        case util::WriteFault::kBitFlip:
          page[kBitFlipByte] ^= kBitFlipMask;
          break;
        case util::WriteFault::kNone:
        case util::WriteFault::kNoSpace:  // handled before the write above
          break;
      }
      if (std::fwrite(page, write_bytes, 1, file_) != 1) failed = true;
    }
    if (!failed) ++written;
  }
  stats_.write_micros += timer.ElapsedMicros();
  stats_.pages_written += written;
  if (failed) {
    // The append fails as a unit: page_count_ stays put, so the partial tail
    // is unaddressable dead bytes (recovery truncates it on a persistent
    // store). Torn pages and bit flips "succeed" here exactly as they do on
    // real hardware; the page checksum catches them at read time.
    if (no_space) {
      return Latch(InjectedNoSpace("append of " + std::to_string(count) +
                                   " pages stopped after " +
                                   std::to_string(written) + " in " + path_));
    }
    return Latch(WriteFailure("append of " + std::to_string(count) +
                              " pages failed in " + path_));
  }
  page_count_ += count;
  return util::Status::Ok();
}

util::Status Pager::TruncateToPageCount(uint32_t count) {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(mu_);
  if (mode_ == Mode::kReadOnly) {
    return Latch(util::Status::InvalidArgument(
        "cannot truncate read-only pager " + path_));
  }
  if (file_ == nullptr) {
    return Latch(util::Status::IoError("pager " + path_ + " is closed"));
  }
  if (count > page_count_) {
    return Latch(util::Status::InvalidArgument(
        "cannot truncate " + path_ + " to " + std::to_string(count) +
        " pages: only " + std::to_string(page_count_) + " committed"));
  }
  // A failed append can leave the stream's error flag raised and dead bytes
  // buffered; clear both before cutting the file, or the flush would refuse.
  std::clearerr(file_);
  (void)std::fflush(file_);
  if (::ftruncate(::fileno(file_), PageOffset(count)) != 0) {
    return Latch(util::Status::IoError("cannot truncate " + path_ + " to " +
                                       std::to_string(count) + " pages: " +
                                       std::strerror(errno)));
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Latch(
        util::Status::IoError("seek after truncate failed in " + path_));
  }
  page_count_ = count;
  return util::Status::Ok();
}

util::Status Pager::ReadPhysicalOnce(PageId id, uint8_t* phys) {
  if (file_ == nullptr) {
    return util::Status::IoError("pager " + path_ + " is closed");
  }
  if (util::FaultInjector::Global().OnReadAttempt()) {
    return util::Status::IoError("injected read fault on page " +
                                 std::to_string(id) + " in " + path_);
  }
  if (std::fseek(file_, PageOffset(id), SEEK_SET) != 0) {
    return util::Status::IoError("seek failed for page " + std::to_string(id) +
                                 " in " + path_);
  }
  if (std::fread(phys, kPhysicalPageSize, 1, file_) != 1) {
    return util::Status::IoError("short read of page " + std::to_string(id) +
                                 " in " + path_);
  }
  if (GetU32(phys, kFtrMagicOff) != kPageMagic) {
    return util::Status::Corruption("page " + std::to_string(id) + " in " +
                                    path_ + " has a torn or foreign footer");
  }
  if (GetU32(phys, kFtrPageIdOff) != id) {
    return util::Status::Corruption(
        "page " + std::to_string(id) + " in " + path_ +
        " carries footer id " + std::to_string(GetU32(phys, kFtrPageIdOff)) +
        " (misdirected write)");
  }
  if (GetU32(phys, kFtrCrcOff) != util::Crc32(phys, kPageSize)) {
    return util::Status::Corruption("payload checksum mismatch on page " +
                                    std::to_string(id) + " in " + path_);
  }
  return util::Status::Ok();
}

util::Status Pager::ReadPage(PageId id, void* out) {
  if (!init_status_.ok()) return init_status_;
  util::Timer timer;
  util::Status status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= page_count_) {
      return Latch(util::Status::InvalidArgument(
          "read of unallocated page " + std::to_string(id) + " in " + path_));
    }
    uint8_t phys[kPhysicalPageSize];
    for (int attempt = 1; attempt <= kReadAttempts; ++attempt) {
      if (attempt > 1) {
        ++stats_.read_retries;
        if (BackoffHook()) BackoffHook()(attempt);
      }
      status = ReadPhysicalOnce(id, phys);
      if (status.ok()) break;
    }
    if (status.ok()) std::memcpy(out, phys, kPageSize);
  }
  // Simulated latency runs unlocked so concurrent readers overlap it.
  ApplySimulatedReadLatency(timer);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.read_micros += timer.ElapsedMicros();
  ++stats_.pages_read;
  if (!status.ok()) return Latch(status);
  return util::Status::Ok();
}

util::Status Pager::VerifyPage(PageId id, void* out) {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= page_count_) {
    return util::Status::InvalidArgument("page " + std::to_string(id) +
                                         " is beyond the end of " + path_);
  }
  uint8_t phys[kPhysicalPageSize];
  util::Status status = ReadPhysicalOnce(id, phys);
  if (status.ok() && out != nullptr) std::memcpy(out, phys, kPageSize);
  return status;
}

util::Status Pager::Flush() {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Latch(util::Status::IoError("pager " + path_ + " is closed"));
  }
  if (util::FaultInjector::Global().OnFlushAttempt()) {
    return Latch(util::Status::IoError("flush failed for " + path_ +
                                       ": injected flush fault"));
  }
  errno = 0;
  if (std::fflush(file_) != 0) {
    return Latch(WriteFailure("flush failed for " + path_));
  }
  return util::Status::Ok();
}

util::Status Pager::Sync() {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Latch(util::Status::IoError("pager " + path_ + " is closed"));
  }
  if (util::FaultInjector::Global().OnFlushAttempt()) {
    return Latch(util::Status::IoError("sync failed for " + path_ +
                                       ": injected flush fault"));
  }
  errno = 0;
  if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    return Latch(WriteFailure("sync failed for " + path_));
  }
  return util::Status::Ok();
}

}  // namespace viewjoin::storage
