#ifndef VIEWJOIN_STORAGE_DAG_WALKER_H_
#define VIEWJOIN_STORAGE_DAG_WALKER_H_

#include <functional>
#include <vector>

#include "storage/materialized_view.h"
#include "storage/stored_list.h"
#include "xml/label.h"

namespace viewjoin::storage {

/// Traverses the conceptual DAG structure of a linked-element view (paper
/// Section III-A): starting from each root-list entry, child pointers locate
/// the first matching child/descendant and the list order covers the rest of
/// the region, reconstructing every view match without touching the base
/// document. This is the sense in which the LE scheme preserves the tuple
/// scheme's precomputed joins while storing each node once — the walker
/// regenerates exactly the tuple-scheme content of the view.
///
/// Works on LE and LE_p views (LE_p's dropped pointers are never needed:
/// child pointers are always materialized, and region ends come from the
/// entry labels).
class DagWalker {
 public:
  /// One view match as the labels of its nodes, indexed by view node.
  using MatchCallback =
      std::function<void(const std::vector<xml::Label>& match)>;

  /// `view` must be in an LE scheme; reads go through `pool`.
  DagWalker(const MaterializedView* view, BufferPool* pool);

  /// Enumerates every match of the view pattern in document order of the
  /// root (then recursively of each child), invoking `callback` per match.
  void Walk(const MatchCallback& callback);

  /// Convenience: counts matches (must equal the tuple scheme's MatchCount).
  uint64_t CountMatches();

 private:
  /// Assigns view nodes in pattern preorder: each node iterates its entries
  /// within the assigned parent's region (child pointer → list order).
  void Assign(size_t vnode, const MatchCallback& callback);

  const MaterializedView* view_;
  BufferPool* pool_;
  std::vector<ListCursor> cursors_;
  std::vector<xml::Label> match_;
  std::vector<EntryIndex> entries_;
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_DAG_WALKER_H_
