#ifndef VIEWJOIN_STORAGE_LIST_CODEC_H_
#define VIEWJOIN_STORAGE_LIST_CODEC_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace viewjoin::storage {

struct RecordLayout;

/// Prefix/delta varint codec for list pages (list format kDelta).
///
/// Page payload layout (within the pager's 4096-byte logical page):
///
///   u16 record_count | u16 flags (reserved, 0)
///   then per record, per label k in [0, label_count):
///     varint zigzag(start - prev_start)   prev_start resets to 0 per page
///     varint (end - start)                region labels have end >= start
///     varint level
///   then, if the layout has pointers, per slot (follow, desc, child[0..m)):
///     varint 0                            for kNullEntry
///     varint zigzag(ptr - record_index)+1 otherwise (pointers land near
///                                         their origin, so deltas are small)
///
/// `prev_start` threads through *all* labels on the page in stream order
/// (across records and across a tuple's intra-record labels), resetting at
/// each page boundary so any page decodes independently. Starts are
/// document-ordered across records but a tuple's later labels can precede
/// the next record's first label, hence zigzag rather than unsigned deltas.
///
/// Records never span pages; a page holds a variable number of whole
/// records, so delta lists carry a page directory (first entry index + first
/// start per page) in the StoredList metadata for random access.

/// One encoded list: page payloads (each exactly Pager::kPageSize bytes)
/// plus the per-page directory.
struct DeltaEncoded {
  std::vector<std::vector<uint8_t>> pages;
  std::vector<uint32_t> page_first_entry;  // entry index of each page's first record
  std::vector<uint32_t> page_first_start;  // label 0 start of that record (fence key)
};

/// Encodes `count` fixed-layout records (the materializer's flat blob) into
/// delta pages. InvalidArgument when a single worst-case record could not
/// fit a page (the delta analogue of the fixed-format fan-out guard).
util::StatusOr<DeltaEncoded> EncodeDeltaList(const uint8_t* records, uint32_t count,
                                       const RecordLayout& layout);

/// Decodes one delta page into struct-of-arrays scratch. `starts`/`ends`/
/// `levels` receive label_count * expected_records values (record-major);
/// `pointers` receives (2 + child_count) * expected_records entry indexes
/// when the layout has pointers (pass nullptr otherwise). `first_entry` is
/// the page's first record index (pointer deltas are relative to absolute
/// record indexes). Corruption when the payload disagrees with
/// `expected_records` or a varint runs past the page.
util::Status DecodeDeltaPage(const uint8_t* payload, const RecordLayout& layout,
                       uint32_t first_entry, uint32_t expected_records,
                       uint32_t* starts, uint32_t* ends, uint32_t* levels,
                       uint32_t* pointers);

/// Worst-case encoded size of one record — the page-fit guard bound.
uint32_t MaxEncodedRecordSize(const RecordLayout& layout);

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_LIST_CODEC_H_
