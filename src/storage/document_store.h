#ifndef VIEWJOIN_STORAGE_DOCUMENT_STORE_H_
#define VIEWJOIN_STORAGE_DOCUMENT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/stored_list.h"
#include "util/status.h"
#include "xml/document.h"
#include "xml/label.h"

namespace viewjoin::storage {

/// One record of the node arena (see DocumentStore). The disk image packs
/// the six uint32 fields as two 12-byte pseudo-labels so the arena reuses
/// the fixed-record page math of StoredList (RecordLayout{label_count=2}).
struct StoredNode {
  uint32_t start = 0;
  uint32_t end = 0;
  uint32_t level = 0;
  xml::TagId tag = xml::kInvalidTag;
  xml::NodeId parent = xml::kInvalidNode;

  xml::Label label() const { return xml::Label{start, end, level}; }
};

/// Paged, persistent image of a base document — the out-of-core counterpart
/// of xml::Document, built on the same Pager/BufferPool/StoredList stack the
/// view catalog uses.
///
/// Contents, all immutable once built:
///   - one sorted label list per element type (the "element streams" every
///     join algorithm scans), stored as fixed 12-byte records with per-page
///     fence keys so ListCursor's block decode, galloping seeks and
///     read-ahead all apply unchanged;
///   - a node arena of 24-byte StoredNode records indexed by NodeId
///     (preorder), which witness probes and structural checks read
///     point-wise through pinned pages.
///
/// The table of contents is a ManifestJournal checkpoint ("<path>.manifest")
/// holding one install record per tag list — pattern is the tag name — plus
/// one for the arena under the reserved pattern "#nodes" ('#' cannot start
/// an XML name, so no tag collides). The checkpoint is written *after* the
/// pager file is fsynced, making it the single atomic commit point: a store
/// whose manifest exists is complete, a pager file without one is an
/// aborted-build orphan. vj_fsck verifies both with the catalog machinery,
/// since manifest patterns are opaque strings.
///
/// Builds stream: the XML parser emits element events into the builder,
/// which keeps at most `parse_budget_bytes` of label records in memory and
/// spills sorted runs ("<path>.runN") beyond that, k-way merging them into
/// list pages at Finish — peak memory is the budget plus one page per run,
/// independent of document size. A failed or aborted build removes the
/// pager file and every run file and writes no manifest (no orphans).
class DocumentStore {
 public:
  struct Options {
    /// Buffer-pool frames for reading the store back.
    size_t pool_pages = 1024;
    /// In-memory bytes of parsed label records before the builder spills a
    /// sorted run (floor: one page's worth of records).
    size_t parse_budget_bytes = size_t{64} << 20;
  };

  /// Streams the XML file at `xml_path` into a fresh store at `path`
  /// (truncating any previous one; a stale manifest is removed up front so
  /// no TOC ever points at truncated pages). Parse errors carry the same
  /// message/offset as xml::ParseDocumentFile.
  static util::StatusOr<std::unique_ptr<DocumentStore>> Build(
      const std::string& path, const std::string& xml_path,
      const Options& options);

  /// Build() over in-memory XML text (tests, generated documents).
  static util::StatusOr<std::unique_ptr<DocumentStore>> BuildFromText(
      const std::string& path, std::string_view xml, const Options& options);

  /// Snapshots an in-memory document into a fresh store at `path`. Labels
  /// are copied verbatim — including gap labels and post-update id order —
  /// so cursors over the store see byte-for-byte the labels the in-memory
  /// streams hold, and NodeAt(id) agrees with doc.NodeLabel(id) for every
  /// id (tombstoned nodes keep their record but leave the tag lists).
  static util::StatusOr<std::unique_ptr<DocumentStore>> BuildFromDocument(
      const std::string& path, const xml::Document& doc,
      const Options& options);

  /// Opens an existing store: replays the manifest checkpoint (kNotFound
  /// when missing — the caller rebuilds) and validates the page ranges
  /// against the pager file (kCorruption on mismatch).
  static util::StatusOr<std::unique_ptr<DocumentStore>> Open(
      const std::string& path, const Options& options);

  ~DocumentStore();

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  /// The reserved manifest pattern of the node arena.
  static constexpr const char* kNodesPattern = "#nodes";

  // ---- Tag table (same first-seen interning order as the parse) -----------

  xml::TagId FindTag(std::string_view name) const;
  const std::string& TagName(xml::TagId tag) const { return tag_names_[tag]; }
  size_t TagCount() const { return tag_names_.size(); }

  // ---- Lists and nodes ----------------------------------------------------

  /// The sorted label list of `tag`. Stable pointer (the store outlives any
  /// cursor over it); an unknown/absent tag yields a shared empty list.
  const StoredList* ListOfTag(xml::TagId tag) const;

  /// Number of element records in the arena (== document NodeCount()).
  uint64_t node_count() const { return nodes_list_.count; }

  /// Point-reads one arena record through the buffer pool. Returns
  /// kInvalidArgument past the arena, kCorruption/kIoError when the page
  /// fails its read (poison pages are never decoded into a node).
  util::StatusOr<StoredNode> NodeAt(xml::NodeId id) const;

  // ---- Plumbing -----------------------------------------------------------

  BufferPool* pool() const { return pool_.get(); }
  Pager* pager() const { return pager_.get(); }
  const std::string& path() const { return path_; }

  /// Pager I/O counters merged with the pool's hit/miss/prefetch counters —
  /// one IoStats snapshot for --explain and bench deltas.
  IoStats Stats() const;
  void ResetStats();

  /// Drops unpinned cached frames (cold-scan experiments).
  void DropCaches() { pool_->Clear(); }

 private:
  DocumentStore() = default;

  /// Shared tail of every Build flavour and Open.
  util::Status AttachPool(size_t pool_pages);

  std::string path_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;

  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, xml::TagId> tag_ids_;
  std::vector<StoredList> lists_;  // indexed by TagId; stable after build
  StoredList nodes_list_;          // the "#nodes" arena
  StoredList empty_list_;          // returned for unknown tags
};

}  // namespace viewjoin::storage

#endif  // VIEWJOIN_STORAGE_DOCUMENT_STORE_H_
