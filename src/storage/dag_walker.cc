#include "storage/dag_walker.h"

#include "tpq/pattern.h"
#include "util/check.h"

namespace viewjoin::storage {

using tpq::Axis;
using xml::Label;

DagWalker::DagWalker(const MaterializedView* view, BufferPool* pool)
    : view_(view), pool_(pool) {
  VJ_CHECK(view->scheme() == Scheme::kLinkedElement ||
           view->scheme() == Scheme::kLinkedElementPartial)
      << "DagWalker requires a linked-element view";
  size_t nq = view->pattern().size();
  cursors_.reserve(nq);
  for (size_t q = 0; q < nq; ++q) {
    cursors_.emplace_back(&view->list(static_cast<int>(q)), pool);
  }
  match_.resize(nq);
  entries_.resize(nq);
}

void DagWalker::Walk(const MatchCallback& callback) {
  ListCursor& root = cursors_[0];
  for (root.Reset(); !root.AtEnd(); root.Next()) {
    match_[0] = root.LabelAt();
    entries_[0] = root.index();
    Assign(1, callback);
  }
}

uint64_t DagWalker::CountMatches() {
  uint64_t count = 0;
  Walk([&count](const std::vector<Label>&) { ++count; });
  return count;
}

void DagWalker::Assign(size_t vnode, const MatchCallback& callback) {
  const tpq::TreePattern& pattern = view_->pattern();
  if (vnode == pattern.size()) {
    callback(match_);
    return;
  }
  // View patterns are stored in preorder, so the parent is assigned.
  const tpq::PatternNode& pn = pattern.node(static_cast<int>(vnode));
  int parent = pn.parent;
  VJ_DCHECK(parent >= 0);
  const Label& parent_label = match_[static_cast<size_t>(parent)];
  // The parent entry's child pointer for this slot opens the region.
  int slot = -1;
  const std::vector<int>& siblings = pattern.node(parent).children;
  for (size_t k = 0; k < siblings.size(); ++k) {
    if (siblings[k] == static_cast<int>(vnode)) slot = static_cast<int>(k);
  }
  VJ_DCHECK(slot >= 0);
  ListCursor anchor(&view_->list(parent), pool_);
  anchor.Seek(entries_[static_cast<size_t>(parent)]);
  EntryIndex first = anchor.Child(static_cast<uint32_t>(slot));
  VJ_DCHECK(first != kNullEntry);
  ListCursor& cursor = cursors_[vnode];
  // The region's entries are contiguous in list order from the pointer
  // target until the first entry starting past the parent's end.
  for (cursor.Seek(first); !cursor.AtEnd(); cursor.Next()) {
    Label label = cursor.LabelAt();
    if (label.start > parent_label.end) break;
    if (pn.incoming == Axis::kChild && label.level != parent_label.level + 1) {
      continue;
    }
    match_[vnode] = label;
    entries_[vnode] = cursor.index();
    Assign(vnode + 1, callback);
  }
}

}  // namespace viewjoin::storage
