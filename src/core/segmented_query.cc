#include "core/segmented_query.h"

#include <sstream>

#include "util/check.h"

namespace viewjoin::core {

using algo::QueryBinding;
using tpq::TreePattern;

SegmentedQuery BuildSegmentedQuery(const QueryBinding& binding) {
  const TreePattern& query = binding.query();
  size_t nq = query.size();
  SegmentedQuery sq;
  sq.kept.assign(nq, 0);
  sq.parent.assign(nq, -1);
  sq.children.resize(nq);
  sq.segment_of.assign(nq, -1);

  // Inter-view incidence per node; count inter-view edges (#Cond).
  std::vector<uint8_t> has_inter(nq, 0);
  for (size_t q = 1; q < nq; ++q) {
    if (!binding.IsIntraViewEdge(static_cast<int>(q))) {
      ++sq.inter_view_edges;
      has_inter[q] = 1;
      has_inter[static_cast<size_t>(query.node(static_cast<int>(q)).parent)] = 1;
    }
  }

  // Step 1: keep the root and every node incident to an inter-view edge.
  for (size_t q = 0; q < nq; ++q) {
    sq.kept[q] = (q == 0) || has_inter[q];
  }

  // Q' structure: parent = nearest kept ancestor (removed nodes on the way
  // collapse into an ad-edge, which stays intra-view because a removed node
  // shares its view with all its neighbours).
  for (size_t q = 1; q < nq; ++q) {
    if (!sq.kept[q]) continue;
    int p = query.node(static_cast<int>(q)).parent;
    while (p >= 0 && !sq.kept[static_cast<size_t>(p)]) {
      p = query.node(p).parent;
    }
    VJ_CHECK(p >= 0);
    sq.parent[q] = p;
    sq.children[static_cast<size_t>(p)].push_back(static_cast<int>(q));
  }

  // Step 2: group kept nodes connected by intra-view Q'-edges into segments.
  // Preorder guarantees parents are assigned before children.
  for (size_t q = 0; q < nq; ++q) {
    if (!sq.kept[q]) continue;
    int p = sq.parent[q];
    bool intra = p >= 0 && binding.binding(static_cast<int>(q)).view ==
                               binding.binding(p).view;
    if (intra) {
      int seg = sq.segment_of[static_cast<size_t>(p)];
      sq.segment_of[q] = seg;
      sq.segments[static_cast<size_t>(seg)].nodes.push_back(
          static_cast<int>(q));
    } else {
      SegmentedQuery::Segment segment;
      segment.root = static_cast<int>(q);
      segment.nodes.push_back(static_cast<int>(q));
      segment.view = binding.binding(static_cast<int>(q)).view;
      sq.segment_of[q] = static_cast<int>(sq.segments.size());
      sq.segments.push_back(std::move(segment));
    }
  }
  for (size_t q = 0; q < nq; ++q) {
    if (!sq.kept[q]) continue;
    int p = sq.parent[q];
    if (p < 0) continue;
    int seg = sq.segment_of[q];
    int pseg = sq.segment_of[static_cast<size_t>(p)];
    if (seg != pseg) {
      sq.segments[static_cast<size_t>(seg)].parent_segment = pseg;
      sq.segments[static_cast<size_t>(pseg)].child_segments.push_back(seg);
    }
  }
  sq.root_segment = sq.segment_of[0];

  // Removed nodes in query preorder; anchor = parent within the view (a
  // proper query ancestor, so preorder visits anchors first).
  for (size_t q = 1; q < nq; ++q) {
    if (sq.kept[q]) continue;
    const algo::NodeBinding& nb = binding.binding(static_cast<int>(q));
    const TreePattern& vp = binding.views()[static_cast<size_t>(nb.view)]
                                ->pattern();
    int view_parent = vp.node(nb.view_node).parent;
    VJ_CHECK(view_parent >= 0)
        << "a removed node cannot be a view root (view roots carry the "
           "view's covering evidence)";
    int anchor = query.FindByTag(vp.node(view_parent).tag);
    VJ_CHECK(anchor >= 0);
    sq.removed.push_back(static_cast<int>(q));
    sq.removed_anchor.push_back(anchor);
  }
  return sq;
}

std::string SegmentedQuery::ToString(const TreePattern& query) const {
  std::ostringstream out;
  for (size_t s = 0; s < segments.size(); ++s) {
    if (s > 0) out << ' ';
    out << '{';
    for (size_t i = 0; i < segments[s].nodes.size(); ++i) {
      if (i > 0) out << ' ';
      out << query.node(segments[s].nodes[i]).tag;
    }
    out << '}';
  }
  return out.str();
}

}  // namespace viewjoin::core
