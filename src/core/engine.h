#ifndef VIEWJOIN_CORE_ENGINE_H_
#define VIEWJOIN_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "algo/holistic_stats.h"
#include "algo/query_context.h"
#include "plan/algorithm.h"
#include "plan/physical_plan.h"
#include "plan/plan_cache.h"
#include "storage/backup.h"
#include "storage/document_store.h"
#include "storage/materialized_view.h"
#include "storage/pager.h"
#include "storage/scrubber.h"
#include "tpq/pattern.h"
#include "util/status.h"
#include "view/selection.h"
#include "xml/document.h"
#include "xml/statistics.h"

namespace viewjoin::core {

/// Evaluation algorithm (paper Table I's columns, plus kAuto, which hands
/// the choice to the cost-based planner). Lives in plan/algorithm.h; aliased
/// here so the engine's historical spelling (core::Algorithm) keeps working.
using Algorithm = plan::Algorithm;
using plan::AlgorithmName;
using plan::ParseAlgorithm;

/// The public facade: owns a document's materialized-view store and runs
/// queries against covering view sets with any algorithm × scheme combo.
///
///   Engine engine(&doc, "/tmp/views.db");
///   auto* v1 = engine.AddView("//item//text//keyword", Scheme::kLinkedElement);
///   auto* v2 = engine.AddView("//bold", Scheme::kLinkedElement);
///   RunResult r = engine.Execute(*query, {v1, v2},
///                                     {.algorithm = Algorithm::kViewJoin});
/// Where the base document's element streams live during evaluation.
enum class DocMode {
  /// The in-memory document's tag-list vectors serve base scans (seed
  /// behavior, bit-identical results by construction).
  kMemory,
  /// A paged DocumentStore ("<storage_path>.doc") serves base scans through
  /// pinned buffer-pool pages — the out-of-core path for documents bigger
  /// than RAM. The in-memory document remains the update/NodeId-resolution
  /// authority; only the label streams move to disk.
  kDisk,
};

struct EngineOptions {
  /// Buffer-pool capacity in 4 KiB pages.
  size_t pool_pages = 1024;
  /// Base-document stream placement (see DocMode).
  DocMode doc_mode = DocMode::kMemory;
  /// Buffer-pool frames of the document store (disk doc-mode only).
  size_t doc_pool_pages = 1024;
  /// In-memory budget of streaming document-store builds; beyond it the
  /// builder spills sorted runs (disk doc-mode only).
  size_t doc_parse_budget_bytes = size_t{64} << 20;
  /// Background read-ahead depth in pages (0 = off), applied to both the
  /// view catalog's and the document store's buffer pools.
  size_t readahead_pages = 0;
  /// Run the background integrity scrubber: every `scrub_interval_ms` it
  /// checksum-verifies up to `scrub_pages_per_step` view pages and
  /// quarantines + re-materializes any view with a corrupt page, so latent
  /// bit rot is healed before a query trips over it. Off by default; tests
  /// and tools can also drive engine.scrubber()->Step() synchronously.
  bool scrub = false;
  double scrub_interval_ms = 50;
  uint32_t scrub_pages_per_step = storage::Scrubber::kDefaultStepPages;
  /// Open the view store in persistent mode: installs are journaled through
  /// the crash-safe manifest, and reopening the same path recovers the
  /// catalog. Long-lived servers run persistent so a drain's catalog Close()
  /// leaves a store vj_fsck can vouch for.
  bool persistent = false;
};

/// Applies the strict environment knobs to `options` (util/env.h parsing):
///   VIEWJOIN_DOC_MODE         = "memory" | "disk"
///   VIEWJOIN_DOC_POOL_PAGES   = document-store buffer-pool frames
///   VIEWJOIN_PARSE_BUDGET     = doc-store build spill budget in bytes
///   VIEWJOIN_READAHEAD_PAGES  = background read-ahead depth (0 = off)
/// Unset variables leave their field untouched; malformed values are
/// rejected with a typed InvalidArgument naming the variable and value.
util::Status ApplyEnvOptions(EngineOptions* options);

struct RunOptions {
  Algorithm algorithm = Algorithm::kViewJoin;
  algo::OutputMode output_mode = algo::OutputMode::kMemory;
  /// Drop cached pages and reset I/O counters before running, so the
  /// reported I/O reflects a cold start (as the paper measures).
  bool cold_cache = true;
  /// Wall-clock deadline in milliseconds (0 = none). Enforced cooperatively
  /// at amortized checkpoints; an expired query stops within one checkpoint
  /// interval and returns RunResult::timed_out.
  double deadline_ms = 0;
  /// Cooperative cancellation token (may be flipped from any thread; nullptr
  /// = not cancellable). A cancelled query returns RunResult::cancelled.
  const std::atomic<bool>* cancel = nullptr;
  /// Budget for buffered intermediate solutions, in bytes (0 = unlimited).
  /// Exceeding it in memory output mode degrades the query to disk-mode
  /// spilling; exceeding it again aborts with RESOURCE_EXHAUSTED.
  uint64_t memory_budget_bytes = 0;
  /// Budget for spilled intermediate solutions, in bytes of live spill file
  /// (0 = unlimited). Exceeding it aborts with RESOURCE_EXHAUSTED.
  uint64_t disk_budget_bytes = 0;
  /// When false, a view-store fault that outlasts quarantine + rebuild fails
  /// the query with a retryable error instead of silently answering from the
  /// base document — batch serving prefers bounded retry over the fallback's
  /// unbounded full-document scan.
  bool allow_base_fallback = true;
};

/// One query of an ExecuteBatch call: the pattern plus its covering views.
/// The pointed-to pattern must outlive the batch call.
struct BatchQuery {
  const tpq::TreePattern* query = nullptr;
  std::vector<const storage::MaterializedView*> views;
  /// Per-query deadline override in ms; < 0 inherits BatchOptions::deadline_ms.
  double deadline_ms = -1;
  /// Per-query cancellation token; overrides BatchOptions::run.cancel.
  const std::atomic<bool>* cancel = nullptr;
};

struct BatchOptions {
  /// Worker threads serving the batch (clamped to [1, queries.size()]).
  size_t threads = 4;
  /// Admission control: at most `threads + max_queued` queries are admitted;
  /// the overflow is returned immediately with BatchAdmission::kRejected and
  /// never executed (backpressure instead of unbounded queueing). The
  /// default admits everything.
  size_t max_queued = SIZE_MAX;
  /// Per-query deadline in ms applied to every admitted query (0 = none).
  /// The clock starts when a worker picks the query up; enforced both
  /// cooperatively and by a watchdog thread that fires deadlines on workers
  /// stuck inside long page reads.
  double deadline_ms = 0;
  /// Per-query memory/disk budgets in bytes (0 = unlimited); same
  /// degradation ladder as RunOptions::memory_budget_bytes.
  uint64_t per_query_memory_budget = 0;
  uint64_t per_query_disk_budget = 0;
  /// Bounded retry for queries that failed on a transient storage fault
  /// (RunResult::retryable): up to `max_retries` re-executions with
  /// decorrelated-jitter backoff — each delay is uniform in
  /// [retry_backoff_ms, min(retry_backoff_cap_ms, 3 x previous delay)], so
  /// workers that faulted together retry spread out instead of in lockstep
  /// (the thundering-herd hazard of deterministic doubling). Deterministic
  /// failures (bad bindings, budget exhaustion, deadline, cancel) are never
  /// retried.
  int max_retries = 0;
  double retry_backoff_ms = 1.0;
  double retry_backoff_cap_ms = 100.0;
  /// Per-query options. `cold_cache` applies once to the whole batch (the
  /// pool is shared; dropping it per query would evict siblings' pages).
  /// deadline_ms / budget fields here act as defaults; the dedicated batch
  /// fields above override them when non-zero.
  RunOptions run;
};

/// Admission verdict of a batch query (see BatchOptions::max_queued).
enum class BatchAdmission {
  kAdmitted,
  kRejected,  // bounced by admission control; never executed
};

struct RunResult {
  bool ok = false;
  std::string error;
  /// Governance verdicts — they distinguish "stopped" from "failed": the
  /// query was healthy but ran into its deadline / cancellation token.
  /// Both imply ok == false with no matches reported.
  bool timed_out = false;
  bool cancelled = false;
  /// False for deterministic failures; true when the failure was a storage
  /// fault that a retry might not hit (the batch retry ladder keys on this).
  bool retryable = false;
  /// Admission verdict (always kAdmitted outside ExecuteBatch). Rejected
  /// queries carry no other information: they were never executed.
  BatchAdmission admission = BatchAdmission::kAdmitted;
  /// Execution attempts the batch retry ladder spent (1 = no retry).
  int attempts = 1;
  /// Peak bytes of buffered intermediate solutions charged against the
  /// memory budget (0 when the run was ungoverned and unbudgeted — the
  /// counter itself is always maintained, so this is also populated for
  /// deadline-only runs).
  uint64_t peak_memory_bytes = 0;
  /// Slow governance checkpoints performed (clock + token inspections; one
  /// per kCheckInterval advances).
  uint64_t checkpoints = 0;
  /// True when the answer was produced only after recovering from a storage
  /// fault: a corrupt view was quarantined and re-materialized, the spill
  /// spool was abandoned for in-memory buffering, or evaluation fell back to
  /// TwigStack over the base document. The match set is still exact.
  bool degraded = false;
  /// Patterns of the views quarantined during this call (empty when clean).
  std::vector<std::string> quarantined_views;
  /// Physical read retries absorbed by the pagers during this call.
  uint64_t retries = 0;
  uint64_t match_count = 0;
  /// Order-independent fingerprint of the match set (for differential
  /// testing across algorithms).
  uint64_t result_hash = 0;
  /// Total processing time (paper's "I/O time + CPU time").
  double total_ms = 0;
  /// Wall time spent inside page reads/writes (view store + spill).
  double io_ms = 0;
  storage::IoStats io;
  /// Evaluation counters, accumulated over every attempt this call made
  /// (recovery retries and the base fallback included), so they agree with
  /// the per-step plan stats below.
  algo::HolisticStats stats;
  /// The executed physical plan: resolved algorithm, rendered tree, and
  /// per-step stats whose columns sum exactly to this result's totals
  /// (total_ms, io.pages_read, stats.entries_scanned, stats.pointer_jumps).
  plan::ExplainResult plan;
  /// Lifetime counters of the engine's integrity scrubber as of this call's
  /// end (all zero when scrubbing is off). Cumulative across calls, not a
  /// per-call delta — surfaced so --explain can report scrub health.
  storage::ScrubStats scrub;
};

/// Bounded-retry policy for Engine::Session::Run — the same
/// decorrelated-jitter ladder ExecuteBatch uses (see
/// BatchOptions::max_retries).
struct RetryPolicy {
  int max_retries = 0;
  double backoff_ms = 1.0;
  double backoff_cap_ms = 100.0;
};

/// One live-document mutation of an Engine::ApplyUpdates batch. Nodes are
/// addressed by (tag, start label) — the document-independent coordinates a
/// client can learn from query results — as they were *before* the batch:
/// if the batch triggers a relabel mid-way, earlier coordinates still
/// resolve (labels scale uniformly).
struct UpdateOp {
  enum class Kind {
    kInsertSubtree,  // graft `subtree` under the target node
    kDeleteSubtree,  // remove the target node and everything below it
  };
  Kind kind = Kind::kInsertSubtree;

  /// Insert: the parent to graft under. Delete: the subtree root to remove.
  std::string target_tag;
  uint32_t target_start = 0;

  /// Insert position among the target's existing children: after the child
  /// with these coordinates, or as the first child when after_start == 0.
  std::string after_tag;
  uint32_t after_start = 0;

  /// The subtree to insert (ignored for deletes). Parse a fragment with
  /// xml::ParseDocument and convert via xml::SpecFromDocument.
  xml::SubtreeSpec subtree;
};

/// What Engine::ApplyUpdates did. Per-op failures (unknown coordinates, a
/// malformed spec) are recorded and *skipped* — the rest of the batch still
/// applies; callers check `failed` for partial rejection.
struct UpdateResult {
  /// Ops applied to the document (ops.size() - failed.size()).
  size_t applied = 0;
  /// "op <index>: <reason>" for every skipped op, in op order.
  std::vector<std::string> failed;
  /// A gap filled up and the whole document was relabelled (every view was
  /// then rebuilt rather than delta-maintained).
  bool relabeled = false;
  /// Document revision after the batch (see xml::Document::revision()).
  uint64_t doc_revision = 0;
  /// Manifest epoch of the update transaction (0 when no view needed
  /// maintenance — e.g. every op failed, or no view was affected).
  uint64_t txn_epoch = 0;
  /// Views patched by sorted delta merge vs rebuilt from scratch.
  size_t delta_maintained = 0;
  size_t fully_rebuilt = 0;
  /// Views that failed post-commit verification and were quarantined (their
  /// reasons are also appended to `failed`).
  size_t quarantined = 0;
};

class Engine {
 public:
  using RetryPolicy = core::RetryPolicy;

  /// A long-lived, non-exclusive execution handle: what a query server's
  /// worker thread holds. Each session owns a private spill pager (like a
  /// batch worker's scratch file) and one reusable governance context, and
  /// runs queries through the same fault-recovery + bounded-retry ladder as
  /// ExecuteBatch — but one query at a time, indefinitely, concurrently with
  /// sibling sessions on the same engine.
  ///
  /// Rules: Run() is serial per session (one query at a time); sessions on
  /// one engine may Run() concurrently with each other and with the
  /// scrubber, but not with Execute/ExecuteBatch (those assume exclusivity
  /// for cold-cache drops). governance() is safe to poll from a watchdog
  /// thread while Run() executes — RequestAbort/DeadlineExpired only.
  class Session {
   public:
    Session(Engine* engine, size_t id);

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Runs one query. cold_cache is forced off (the store is shared with
    /// sibling sessions); everything else in `run` applies as in Execute.
    /// RunResult::attempts counts the retry ladder's executions.
    RunResult Run(const tpq::TreePattern& query,
                  const std::vector<const storage::MaterializedView*>& views,
                  const RunOptions& run, const RetryPolicy& retry = {});

    /// The session's governance context, for an external watchdog:
    /// DeadlineExpired()/RequestAbort() only (those are thread-safe).
    algo::QueryContext* governance() { return &gov_; }

   private:
    Engine* engine_;
    storage::Pager spill_;
    algo::QueryContext gov_;
    /// Deterministic reseed counter for the per-query jitter ladder.
    uint64_t seed_;
  };

  /// Replaces the retry ladder's backoff sleeps (ExecuteBatch and
  /// Session::Run) with `hook` — tests observe the jittered delays instead
  /// of waiting them out. Pass nullptr to restore real sleeping. Not
  /// thread-safe against in-flight batches; set it before running.
  static void SetRetrySleepHookForTest(std::function<void(double)> hook);

  /// `storage_path` is the backing file for materialized views; a sibling
  /// file with suffix ".spill" backs disk-mode intermediate solutions.
  Engine(const xml::Document* doc, const std::string& storage_path,
         const EngineOptions& options = {});

  /// Mutable-document overload: everything the const overload does, plus
  /// ApplyUpdates() becomes available. The engine never mutates the document
  /// outside ApplyUpdates.
  Engine(xml::Document* doc, const std::string& storage_path,
         const EngineOptions& options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const xml::Document& doc() const { return *doc_; }

  /// Parses and materializes a view. Dies on a malformed pattern (views are
  /// programmer-supplied); returns the materialized view.
  const storage::MaterializedView* AddView(const std::string& xpath,
                                           storage::Scheme scheme);
  const storage::MaterializedView* AddView(const tpq::TreePattern& pattern,
                                           storage::Scheme scheme);

  /// Non-dying variant for user-supplied patterns (the CLI's --views):
  /// returns InvalidArgument on a malformed pattern and forwards
  /// materialization failures instead of aborting the process.
  util::StatusOr<const storage::MaterializedView*> TryAddView(
      const std::string& xpath, storage::Scheme scheme);

  /// Runs `query` over the covering `views`, streaming matches into an
  /// internal hashing sink (see Result) — or into `sink` when provided.
  RunResult Execute(const tpq::TreePattern& query,
                 const std::vector<const storage::MaterializedView*>& views,
                 const RunOptions& run = {}, tpq::MatchSink* sink = nullptr);

  /// Serves `queries` concurrently on a fixed pool of `options.threads`
  /// workers sharing this engine's view store and buffer pool. Results are
  /// positional: results[i] answers queries[i], with the same fault-recovery
  /// ladder as Execute. Per-query isolation guarantees:
  ///   - a storage fault in one query degrades *that* RunResult only (error
  ///     latching is per-query via BufferPool::ErrorScope);
  ///   - quarantine + re-materialization is serialized engine-wide, and a
  ///     worker reuses a replacement a sibling already rebuilt;
  ///   - each worker spools disk-mode intermediates into its own spill file
  ///     ("<storage_path>.spill.<worker>").
  /// Governance (see BatchOptions): queries beyond threads + max_queued are
  /// rejected up front (kRejected) without perturbing admitted queries; a
  /// watchdog thread fires per-query deadlines on stuck workers; queries
  /// failing on transient storage faults are retried with exponential
  /// backoff up to max_retries times.
  /// io counters in batch results come from the shared pool/pager and so
  /// attribute sibling I/O to whichever query observed it; use the aggregate
  /// across the batch, not per-query splits. Not reentrant: one batch (or
  /// Execute) at a time per engine.
  std::vector<RunResult> ExecuteBatch(const std::vector<BatchQuery>& queries,
                                      const BatchOptions& options = {});

  /// Runs the query and stores its answer back as a new materialized view:
  /// the distinct solution nodes per query node become the view's lists
  /// (with pointers under LE/LE_p). This is the paper's "result as a
  /// materialized view" capability (Section IV-B, feature 2); the stored
  /// view can immediately serve later queries through this same engine.
  /// `*result_view` receives the stored view (left untouched on error).
  RunResult ExecuteToView(
      const tpq::TreePattern& query,
      const std::vector<const storage::MaterializedView*>& views,
      storage::Scheme result_scheme,
      const storage::MaterializedView** result_view, const RunOptions& run = {});

  /// Convenience: greedy view selection (paper Section V) over candidate
  /// patterns, materialization in `scheme`, then Execute. The selection
  /// details are returned through *selection when non-null.
  RunResult SelectAndExecute(const tpq::TreePattern& query,
                          const std::vector<tpq::TreePattern>& candidates,
                          storage::Scheme scheme, const RunOptions& run = {},
                          view::SelectionResult* selection = nullptr);

  /// Applies a batch of live-document updates and delta-maintains every
  /// affected materialized view, atomically (one manifest update
  /// transaction; see storage::ViewCatalog::ApplyUpdateBatch):
  ///   - the document mutates under an exclusive lock, so concurrent
  ///     queries (sessions, batches) never observe a half-applied batch;
  ///     queries running while the new views install keep answering from
  ///     the still-registered previous-epoch views;
  ///   - list-scheme views get sorted label deltas merged into their stored
  ///     lists; T-scheme views and every view after a relabel are rebuilt;
  ///   - each op failing validation is skipped and reported, the rest of
  ///     the batch proceeds; a gap too small for an insert triggers
  ///     RelabelWithGap(16) + full rebuild of all views;
  ///   - freshly installed views are checksum-verified post-commit and
  ///     quarantined on failure;
  ///   - plans invalidate via the catalog epoch, document statistics via
  ///     revision().
  /// Env knobs (strict parsing, util/env.h): VIEWJOIN_UPDATE_BATCH_SIZE
  /// rejects oversized batches up front (0/unset = unlimited);
  /// VIEWJOIN_UPDATE_DELTA_SPILL_BYTES sets the delta spill threshold.
  /// Fails with InvalidArgument when constructed over a const document.
  /// Update batches are serialized engine-wide.
  util::StatusOr<UpdateResult> ApplyUpdates(const std::vector<UpdateOp>& ops);

  /// Takes an online hot backup of the view store (and the document store in
  /// disk doc-mode) into `dest_dir` — see storage::CreateBackup for the
  /// image layout and consistency guarantees. Queries keep serving
  /// throughout; update batches wait only while the (small) document store
  /// is copied, not for the view-page copy. `rate_bytes_per_sec` paces the
  /// copy (0 = unthrottled; servers wire VIEWJOIN_BACKUP_RATE_BYTES here).
  /// Backups are serialized engine-wide; a second concurrent call waits.
  util::StatusOr<storage::BackupReport> CreateBackup(
      const std::string& dest_dir, uint64_t rate_bytes_per_sec = 0);

  storage::ViewCatalog* catalog() { return catalog_.get(); }

  /// The paged base-document store (null in memory doc-mode, or when a
  /// disk-mode build failed — see doc_store_status()).
  const storage::DocumentStore* doc_store() const { return doc_store_.get(); }

  /// Why disk doc-mode is not serving (Ok when it is, or when memory mode
  /// was requested). A failed store build degrades the engine to in-memory
  /// streams instead of failing construction — results stay correct, the
  /// out-of-core property is lost; this status says so.
  const util::Status& doc_store_status() const { return doc_store_status_; }

  /// The engine's plan cache (hit/miss counters for tests and benches).
  /// Entries key on the catalog's manifest epoch, so materialization,
  /// quarantine and replacement invalidate implicitly — including across a
  /// close/reopen of a persistent store, where the epoch counter resumes
  /// from the journal; Clear() exists for tests only.
  plan::PlanCache* plan_cache() { return &plan_cache_; }

  /// The engine's integrity scrubber (always constructed; its background
  /// thread runs only when EngineOptions::scrub is set). Tests drive
  /// scrubber()->Step() directly for determinism. The scrubber's healer
  /// re-materializes a corrupt view from the document under the same
  /// recovery lock the query path uses, so a scrub heal and a query-path
  /// rebuild of the same view never race.
  storage::Scrubber* scrubber() { return scrubber_.get(); }

 private:
  /// Per-call execution environment: which spill pager to spool into,
  /// whether this call owns the engine exclusively, and the query's
  /// governance context. Exclusive calls (plain Execute) may drop caches and
  /// use the pool-global error latch; batch workers run non-exclusive with a
  /// thread-local ErrorScope instead.
  struct ExecContext {
    storage::Pager* spill = nullptr;
    bool exclusive = true;
    algo::QueryContext* governance = nullptr;
  };

  RunResult ExecuteInternal(
      const tpq::TreePattern& query,
      const std::vector<const storage::MaterializedView*>& views,
      const RunOptions& run, tpq::MatchSink* sink, const ExecContext& ctx);

  /// (Re)snapshots the document into the paged store (disk doc-mode only;
  /// no-op otherwise). Must not race queries — callers run it from the
  /// constructor or under an exclusive doc_mu_. On failure the engine keeps
  /// answering from in-memory streams and records doc_store_status_.
  void RebuildDocStore();

  /// Re-materializes pattern × scheme for the fault ladder and the
  /// scrubber's healer: from the document store's page lists in disk mode
  /// (tuple scheme and store faults fall back to the in-memory document).
  util::StatusOr<const storage::MaterializedView*> Rematerialize(
      const tpq::TreePattern& pattern, storage::Scheme scheme);

  const xml::Document* doc_;
  /// Non-null only via the mutable-document constructor; ApplyUpdates'
  /// write handle.
  xml::Document* mutable_doc_ = nullptr;
  /// Readers-writer lock over the document: every query path holds it
  /// shared for the duration of execution, ApplyUpdates holds it exclusive
  /// while mutating — queries see either the pre- or the post-batch
  /// document, never a torn one.
  std::shared_mutex doc_mu_;
  /// Serializes whole update batches (mutation + view maintenance) so two
  /// ApplyUpdates calls cannot interleave their catalog transactions.
  std::mutex update_mu_;
  /// Serializes hot backups engine-wide (two concurrent CreateBackup calls
  /// would race on the destination directory for no benefit).
  std::mutex backup_mu_;
  /// Document statistics for the planner's cardinality estimates, collected
  /// lazily on the first kAuto query and re-collected when the document
  /// revision moves (live updates invalidate them).
  std::mutex doc_stats_mu_;
  uint64_t doc_stats_revision_ = UINT64_MAX;
  std::optional<xml::DocumentStatistics> doc_stats_;
  std::string storage_path_;
  EngineOptions options_;
  std::unique_ptr<storage::ViewCatalog> catalog_;
  /// Paged base document (disk doc-mode; see doc_store()). Rebuilt by
  /// ApplyUpdates under the exclusive document lock, so no cursor is ever
  /// live over a store being torn down.
  std::unique_ptr<storage::DocumentStore> doc_store_;
  util::Status doc_store_status_;
  std::unique_ptr<storage::Pager> spill_;
  /// Declared after catalog_ so it is destroyed (and its thread joined)
  /// first; ~Engine also stops it explicitly before members tear down.
  std::unique_ptr<storage::Scrubber> scrubber_;
  plan::PlanCache plan_cache_;
  /// Serializes quarantine + re-materialization across batch workers so two
  /// workers hitting the same corrupt view rebuild it once.
  std::mutex recovery_mu_;
};

}  // namespace viewjoin::core

#endif  // VIEWJOIN_CORE_ENGINE_H_
