#include "core/engine.h"

#include <algorithm>

#include "algo/inter_join.h"
#include "algo/query_binding.h"
#include "algo/twig_stack.h"
#include "core/segmented_query.h"
#include "core/view_join.h"
#include "util/check.h"
#include "util/timer.h"

namespace viewjoin::core {

using storage::MaterializedView;
using storage::Scheme;
using tpq::TreePattern;

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTwigStack:
      return "TS";
    case Algorithm::kViewJoin:
      return "VJ";
    case Algorithm::kInterJoin:
      return "IJ";
  }
  return "?";
}

namespace {

/// Forwards matches while fingerprinting them, optionally teeing to a user
/// sink.
class TeeSink : public tpq::MatchSink {
 public:
  explicit TeeSink(tpq::MatchSink* user) : user_(user) {}

  void OnMatch(const tpq::Match& match) override {
    hasher_.OnMatch(match);
    if (user_ != nullptr) user_->OnMatch(match);
  }

  uint64_t count() const { return hasher_.count(); }
  uint64_t hash() const { return hasher_.hash(); }

 private:
  tpq::HashingSink hasher_;
  tpq::MatchSink* user_;
};

/// Buffers matches so a user-supplied sink only ever sees the matches of a
/// run that finished without a storage fault. A faulted attempt's matches
/// (possibly truncated by a poison page) are dropped with Reset().
class ReplaySink : public tpq::MatchSink {
 public:
  void OnMatch(const tpq::Match& match) override { matches_.push_back(match); }

  void Reset() { matches_.clear(); }

  void ReplayInto(tpq::MatchSink* sink) {
    for (const tpq::Match& match : matches_) sink->OnMatch(match);
  }

 private:
  std::vector<tpq::Match> matches_;
};

}  // namespace

Engine::Engine(const xml::Document* doc, const std::string& storage_path,
               const EngineOptions& options)
    : doc_(doc),
      catalog_(std::make_unique<storage::ViewCatalog>(storage_path,
                                                      options.pool_pages)),
      spill_(std::make_unique<storage::Pager>(storage_path + ".spill")) {}

Engine::~Engine() = default;

const MaterializedView* Engine::AddView(const std::string& xpath,
                                        Scheme scheme) {
  std::string error;
  std::optional<TreePattern> pattern = TreePattern::Parse(xpath, &error);
  VJ_CHECK(pattern.has_value()) << "bad view pattern '" << xpath << "': "
                                << error;
  return AddView(*pattern, scheme);
}

const MaterializedView* Engine::AddView(const TreePattern& pattern,
                                        Scheme scheme) {
  return catalog_->Materialize(*doc_, pattern, scheme);
}

RunResult Engine::Execute(
    const TreePattern& query,
    const std::vector<const MaterializedView*>& views, const RunOptions& run,
    tpq::MatchSink* sink) {
  RunResult result;
  // When a user sink is supplied, attempts stream into a replay buffer so
  // the user only ever observes the matches of a fault-free run.
  ReplaySink replay;

  if (run.cold_cache) {
    catalog_->DropCaches();
    catalog_->ResetStats();
    spill_->ResetStats();
  }
  storage::IoStats before = catalog_->Stats();
  storage::IoStats spill_before = spill_->stats();

  // Redirect views that were quarantined and replaced in an earlier call, so
  // stale caller pointers keep working.
  std::vector<const MaterializedView*> active = views;
  for (const MaterializedView*& v : active) {
    if (const MaterializedView* r = catalog_->ReplacementFor(v)) v = r;
  }

  util::Timer timer;

  // Runs one attempt; returns false on a bind/argument error (recorded in
  // result.error) — those are caller mistakes, not storage faults, and are
  // never retried.
  auto run_once = [&](const std::vector<const MaterializedView*>& vs,
                      algo::OutputMode mode, tpq::MatchSink* out) -> bool {
    switch (run.algorithm) {
      case Algorithm::kInterJoin: {
        std::optional<algo::InterJoin> join = algo::InterJoin::Bind(
            *doc_, query, vs, catalog_->pool(), &result.error);
        if (!join.has_value()) return false;
        join->Evaluate(out);
        result.stats = join->stats();
        break;
      }
      case Algorithm::kTwigStack: {
        std::optional<algo::QueryBinding> binding =
            algo::QueryBinding::Bind(*doc_, query, vs, &result.error);
        if (!binding.has_value()) return false;
        algo::TwigStack twig(&*binding, catalog_->pool());
        twig.Evaluate(out, mode, spill_.get());
        result.stats = twig.stats();
        break;
      }
      case Algorithm::kViewJoin: {
        std::optional<algo::QueryBinding> binding =
            algo::QueryBinding::Bind(*doc_, query, vs, &result.error);
        if (!binding.has_value()) return false;
        SegmentedQuery segmented = BuildSegmentedQuery(*binding);
        ViewJoin join(&*binding, &segmented, catalog_->pool());
        join.Evaluate(out, mode, spill_.get());
        result.stats = join.stats();
        break;
      }
    }
    return true;
  };

  auto finish = [&](const TeeSink& tee) -> RunResult& {
    result.total_ms = timer.ElapsedMillis();
    result.io = catalog_->Stats().Delta(before);
    storage::IoStats spill_io = spill_->stats().Delta(spill_before);
    result.io.pages_read += spill_io.pages_read;
    result.io.pages_written += spill_io.pages_written;
    result.io.read_micros += spill_io.read_micros;
    result.io.write_micros += spill_io.write_micros;
    result.io.read_retries += spill_io.read_retries;
    result.io_ms = result.io.TotalIoMillis();
    result.retries = result.io.read_retries;
    result.ok = true;
    result.match_count = tee.count();
    result.result_hash = tee.hash();
    if (sink != nullptr) replay.ReplayInto(sink);
    return result;
  };

  // Attempt loop: a clean run returns directly; a storage fault quarantines
  // the corrupt view, re-materializes it from the in-memory document, and
  // retries. Bounded so a persistently failing medium cannot loop forever.
  constexpr int kMaxViewAttempts = 3;
  algo::OutputMode mode = run.output_mode;
  for (int attempt = 0; attempt < kMaxViewAttempts; ++attempt) {
    catalog_->pool()->ClearError();
    catalog_->pager()->ClearError();
    spill_->ClearError();
    replay.Reset();
    TeeSink tee(sink != nullptr ? static_cast<tpq::MatchSink*>(&replay)
                                : nullptr);
    if (!run_once(active, mode, &tee)) return result;

    util::Status view_err = catalog_->pool()->error();
    const util::Status& spill_err = spill_->last_error();
    if (view_err.ok() && spill_err.ok()) return finish(tee);

    // The spill spool is scratch space: nothing to re-materialize. Fall back
    // to in-memory intermediate buffering and keep going.
    if (!spill_err.ok()) mode = algo::OutputMode::kMemory;
    result.degraded = true;

    if (!view_err.ok()) {
      // Quarantine the view owning the failed page — or, if the page cannot
      // be attributed, every active view — and rebuild from the document.
      std::vector<const MaterializedView*> suspects;
      const MaterializedView* culprit =
          catalog_->ViewOfPage(catalog_->pool()->error_page());
      if (culprit != nullptr) {
        suspects.push_back(culprit);
      } else {
        suspects = active;
      }
      bool rebuilt = true;
      for (const MaterializedView* v : suspects) {
        if (!catalog_->IsQuarantined(v)) {
          catalog_->Quarantine(v);
          result.quarantined_views.push_back(v->pattern().ToString());
        }
        util::StatusOr<const MaterializedView*> repl =
            catalog_->TryMaterialize(*doc_, v->pattern(), v->scheme());
        if (!repl.ok()) {
          rebuilt = false;
          break;
        }
        catalog_->SetReplacement(v, *repl);
        std::replace(active.begin(), active.end(), v, *repl);
      }
      if (!rebuilt) break;  // medium too sick to rebuild on — fall back
    }
  }

  // Last resort: answer from the base document alone. TwigStack over the
  // document's own tag lists touches no stored page, so it cannot be harmed
  // by view-store or spill faults; the match set is identical by definition.
  catalog_->pool()->ClearError();
  spill_->ClearError();
  replay.Reset();
  result.error.clear();
  std::optional<algo::QueryBinding> base =
      algo::QueryBinding::BindBase(*doc_, query, &result.error);
  if (!base.has_value()) return result;
  TeeSink tee(sink != nullptr ? static_cast<tpq::MatchSink*>(&replay)
                              : nullptr);
  algo::TwigStack twig(&*base, catalog_->pool());
  twig.Evaluate(&tee, algo::OutputMode::kMemory, nullptr);
  result.stats = twig.stats();
  result.degraded = true;
  return finish(tee);
}

namespace {

/// Accumulates the distinct solution nodes per query node.
class SolutionListSink : public tpq::MatchSink {
 public:
  explicit SolutionListSink(size_t nq) : lists_(nq) {}

  void OnMatch(const tpq::Match& match) override {
    for (size_t q = 0; q < match.size(); ++q) lists_[q].push_back(match[q]);
  }

  std::vector<std::vector<xml::NodeId>> TakeSorted() {
    for (auto& list : lists_) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    return std::move(lists_);
  }

 private:
  std::vector<std::vector<xml::NodeId>> lists_;
};

}  // namespace

RunResult Engine::ExecuteToView(
    const TreePattern& query,
    const std::vector<const MaterializedView*>& views, Scheme result_scheme,
    const MaterializedView** result_view, const RunOptions& run) {
  VJ_CHECK(result_view != nullptr);
  SolutionListSink sink(query.size());
  RunResult result = Execute(query, views, run, &sink);
  if (!result.ok) return result;
  *result_view =
      catalog_->MaterializeFromLists(*doc_, query, sink.TakeSorted(),
                                     result_scheme);
  return result;
}

RunResult Engine::SelectAndExecute(
    const TreePattern& query, const std::vector<TreePattern>& candidates,
    Scheme scheme, const RunOptions& run, view::SelectionResult* selection) {
  view::SelectionOptions options;
  view::SelectionResult picked = view::SelectViews(*doc_, query, candidates,
                                                   options);
  if (selection != nullptr) *selection = picked;
  RunResult result;
  if (!picked.covers) {
    result.error = "candidate views cannot cover the query";
    return result;
  }
  std::vector<const MaterializedView*> views;
  views.reserve(picked.selected.size());
  for (size_t index : picked.selected) {
    views.push_back(AddView(candidates[index], scheme));
  }
  return Execute(query, views, run);
}

}  // namespace viewjoin::core
