#include "core/engine.h"

#include <algorithm>

#include "algo/inter_join.h"
#include "algo/query_binding.h"
#include "algo/twig_stack.h"
#include "core/segmented_query.h"
#include "core/view_join.h"
#include "util/check.h"
#include "util/timer.h"

namespace viewjoin::core {

using storage::MaterializedView;
using storage::Scheme;
using tpq::TreePattern;

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTwigStack:
      return "TS";
    case Algorithm::kViewJoin:
      return "VJ";
    case Algorithm::kInterJoin:
      return "IJ";
  }
  return "?";
}

namespace {

/// Forwards matches while fingerprinting them, optionally teeing to a user
/// sink.
class TeeSink : public tpq::MatchSink {
 public:
  explicit TeeSink(tpq::MatchSink* user) : user_(user) {}

  void OnMatch(const tpq::Match& match) override {
    hasher_.OnMatch(match);
    if (user_ != nullptr) user_->OnMatch(match);
  }

  uint64_t count() const { return hasher_.count(); }
  uint64_t hash() const { return hasher_.hash(); }

 private:
  tpq::HashingSink hasher_;
  tpq::MatchSink* user_;
};

}  // namespace

Engine::Engine(const xml::Document* doc, const std::string& storage_path,
               const EngineOptions& options)
    : doc_(doc),
      catalog_(std::make_unique<storage::ViewCatalog>(storage_path,
                                                      options.pool_pages)),
      spill_(std::make_unique<storage::Pager>(storage_path + ".spill")) {}

Engine::~Engine() = default;

const MaterializedView* Engine::AddView(const std::string& xpath,
                                        Scheme scheme) {
  std::string error;
  std::optional<TreePattern> pattern = TreePattern::Parse(xpath, &error);
  VJ_CHECK(pattern.has_value()) << "bad view pattern '" << xpath << "': "
                                << error;
  return AddView(*pattern, scheme);
}

const MaterializedView* Engine::AddView(const TreePattern& pattern,
                                        Scheme scheme) {
  return catalog_->Materialize(*doc_, pattern, scheme);
}

RunResult Engine::Execute(
    const TreePattern& query,
    const std::vector<const MaterializedView*>& views, const RunOptions& run,
    tpq::MatchSink* sink) {
  RunResult result;
  TeeSink tee(sink);

  if (run.cold_cache) {
    catalog_->DropCaches();
    catalog_->ResetStats();
    spill_->ResetStats();
  }
  storage::IoStats before = catalog_->Stats();
  storage::IoStats spill_before = spill_->stats();

  util::Timer timer;
  switch (run.algorithm) {
    case Algorithm::kInterJoin: {
      std::optional<algo::InterJoin> join = algo::InterJoin::Bind(
          *doc_, query, views, catalog_->pool(), &result.error);
      if (!join.has_value()) return result;
      join->Evaluate(&tee);
      result.stats = join->stats();
      break;
    }
    case Algorithm::kTwigStack: {
      std::optional<algo::QueryBinding> binding =
          algo::QueryBinding::Bind(*doc_, query, views, &result.error);
      if (!binding.has_value()) return result;
      algo::TwigStack twig(&*binding, catalog_->pool());
      twig.Evaluate(&tee, run.output_mode, spill_.get());
      result.stats = twig.stats();
      break;
    }
    case Algorithm::kViewJoin: {
      std::optional<algo::QueryBinding> binding =
          algo::QueryBinding::Bind(*doc_, query, views, &result.error);
      if (!binding.has_value()) return result;
      SegmentedQuery segmented = BuildSegmentedQuery(*binding);
      ViewJoin join(&*binding, &segmented, catalog_->pool());
      join.Evaluate(&tee, run.output_mode, spill_.get());
      result.stats = join.stats();
      break;
    }
  }
  result.total_ms = timer.ElapsedMillis();

  result.io = catalog_->Stats().Delta(before);
  storage::IoStats spill_io = spill_->stats().Delta(spill_before);
  result.io.pages_read += spill_io.pages_read;
  result.io.pages_written += spill_io.pages_written;
  result.io.read_micros += spill_io.read_micros;
  result.io.write_micros += spill_io.write_micros;
  result.io_ms = result.io.TotalIoMillis();

  result.ok = true;
  result.match_count = tee.count();
  result.result_hash = tee.hash();
  return result;
}

namespace {

/// Accumulates the distinct solution nodes per query node.
class SolutionListSink : public tpq::MatchSink {
 public:
  explicit SolutionListSink(size_t nq) : lists_(nq) {}

  void OnMatch(const tpq::Match& match) override {
    for (size_t q = 0; q < match.size(); ++q) lists_[q].push_back(match[q]);
  }

  std::vector<std::vector<xml::NodeId>> TakeSorted() {
    for (auto& list : lists_) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    return std::move(lists_);
  }

 private:
  std::vector<std::vector<xml::NodeId>> lists_;
};

}  // namespace

RunResult Engine::ExecuteToView(
    const TreePattern& query,
    const std::vector<const MaterializedView*>& views, Scheme result_scheme,
    const MaterializedView** result_view, const RunOptions& run) {
  VJ_CHECK(result_view != nullptr);
  SolutionListSink sink(query.size());
  RunResult result = Execute(query, views, run, &sink);
  if (!result.ok) return result;
  *result_view =
      catalog_->MaterializeFromLists(*doc_, query, sink.TakeSorted(),
                                     result_scheme);
  return result;
}

RunResult Engine::SelectAndExecute(
    const TreePattern& query, const std::vector<TreePattern>& candidates,
    Scheme scheme, const RunOptions& run, view::SelectionResult* selection) {
  view::SelectionOptions options;
  view::SelectionResult picked = view::SelectViews(*doc_, query, candidates,
                                                   options);
  if (selection != nullptr) *selection = picked;
  RunResult result;
  if (!picked.covers) {
    result.error = "candidate views cannot cover the query";
    return result;
  }
  std::vector<const MaterializedView*> views;
  views.reserve(picked.selected.size());
  for (size_t index : picked.selected) {
    views.push_back(AddView(candidates[index], scheme));
  }
  return Execute(query, views, run);
}

}  // namespace viewjoin::core
