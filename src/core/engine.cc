#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>
#include <thread>

#include "plan/operator.h"
#include "plan/planner.h"
#include "tpq/evaluator.h"
#include "util/backoff.h"
#include "util/check.h"
#include "util/env.h"
#include "util/fault_injection.h"
#include "util/timer.h"
#include "view/delta.h"

namespace viewjoin::core {

using storage::MaterializedView;
using storage::Scheme;
using tpq::TreePattern;

namespace {

/// Forwards matches while fingerprinting them, optionally teeing to a user
/// sink.
class TeeSink : public tpq::MatchSink {
 public:
  explicit TeeSink(tpq::MatchSink* user) : user_(user) {}

  void OnMatch(const tpq::Match& match) override {
    hasher_.OnMatch(match);
    if (user_ != nullptr) user_->OnMatch(match);
  }

  uint64_t count() const { return hasher_.count(); }
  uint64_t hash() const { return hasher_.hash(); }

 private:
  tpq::HashingSink hasher_;
  tpq::MatchSink* user_;
};

/// Buffers matches so a user-supplied sink only ever sees the matches of a
/// run that finished without a storage fault. A faulted attempt's matches
/// (possibly truncated by a poison page) are dropped with Reset().
class ReplaySink : public tpq::MatchSink {
 public:
  void OnMatch(const tpq::Match& match) override { matches_.push_back(match); }

  void Reset() { matches_.clear(); }

  void ReplayInto(tpq::MatchSink* sink) {
    for (const tpq::Match& match : matches_) sink->OnMatch(match);
  }

 private:
  std::vector<tpq::Match> matches_;
};

/// Arms a query's governance context from its run options.
void ConfigureGovernance(algo::QueryContext* gov, const RunOptions& run) {
  if (run.deadline_ms > 0) gov->set_deadline_after_ms(run.deadline_ms);
  gov->set_cancel_token(run.cancel);
  gov->set_memory_budget(run.memory_budget_bytes);
  gov->set_disk_budget(run.disk_budget_bytes);
}

std::function<void(double)>& RetrySleepHook() {
  static std::function<void(double)> hook;
  return hook;
}

/// One backoff delay of the retry ladder: real sleep, or the test hook.
void RetrySleep(double delay_ms) {
  const std::function<void(double)>& hook = RetrySleepHook();
  if (hook) {
    hook(delay_ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
}

}  // namespace

util::Status ApplyEnvOptions(EngineOptions* options) {
  util::StatusOr<std::string> mode = util::ParseEnumEnv(
      "VIEWJOIN_DOC_MODE", {"memory", "disk"},
      options->doc_mode == DocMode::kDisk ? "disk" : "memory");
  if (!mode.ok()) return mode.status();
  options->doc_mode = *mode == "disk" ? DocMode::kDisk : DocMode::kMemory;
  util::StatusOr<int64_t> pool_pages = util::ParseNonNegativeIntEnv(
      "VIEWJOIN_DOC_POOL_PAGES",
      static_cast<int64_t>(options->doc_pool_pages));
  if (!pool_pages.ok()) return pool_pages.status();
  options->doc_pool_pages = static_cast<size_t>(*pool_pages);
  util::StatusOr<int64_t> budget = util::ParseNonNegativeIntEnv(
      "VIEWJOIN_PARSE_BUDGET",
      static_cast<int64_t>(options->doc_parse_budget_bytes));
  if (!budget.ok()) return budget.status();
  options->doc_parse_budget_bytes = static_cast<size_t>(*budget);
  util::StatusOr<int64_t> readahead = util::ParseNonNegativeIntEnv(
      "VIEWJOIN_READAHEAD_PAGES",
      static_cast<int64_t>(options->readahead_pages));
  if (!readahead.ok()) return readahead.status();
  options->readahead_pages = static_cast<size_t>(*readahead);
  return util::Status::Ok();
}

void Engine::SetRetrySleepHookForTest(std::function<void(double)> hook) {
  RetrySleepHook() = std::move(hook);
}

Engine::Engine(const xml::Document* doc, const std::string& storage_path,
               const EngineOptions& options)
    : doc_(doc),
      storage_path_(storage_path),
      options_(options),
      catalog_(std::make_unique<storage::ViewCatalog>(
          storage_path, options.pool_pages, options.persistent)),
      spill_(std::make_unique<storage::Pager>(storage_path + ".spill")) {
  if (options_.readahead_pages > 0) {
    catalog_->pool()->SetReadAhead(options_.readahead_pages);
  }
  RebuildDocStore();
  // The scrubber's healer mirrors the query path's recovery step: rebuild
  // the quarantined view from the in-memory document and register the
  // replacement. recovery_mu_ serializes it against query-path rebuilds, so
  // a scrub heal and a batch worker tripping over the same view build one
  // replacement between them.
  scrubber_ = std::make_unique<storage::Scrubber>(
      catalog_.get(),
      [this](const MaterializedView* view) -> util::Status {
        // Rebuilding reads the document; hold it shared so a live-update
        // batch cannot mutate it mid-materialization.
        std::shared_lock<std::shared_mutex> doc_lock(doc_mu_);
        std::lock_guard<std::mutex> recovery_lock(recovery_mu_);
        if (catalog_->ReplacementFor(view) != nullptr) {
          return util::Status::Ok();  // a sibling already healed it
        }
        util::StatusOr<const MaterializedView*> repl =
            Rematerialize(view->pattern(), view->scheme());
        if (!repl.ok()) return repl.status();
        catalog_->SetReplacement(view, *repl);
        return util::Status::Ok();
      });
  if (options.scrub) {
    scrubber_->Start(std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::duration<double, std::milli>(
                             options.scrub_interval_ms)),
                     options.scrub_pages_per_step);
  }
}

Engine::Engine(xml::Document* doc, const std::string& storage_path,
               const EngineOptions& options)
    : Engine(static_cast<const xml::Document*>(doc), storage_path, options) {
  mutable_doc_ = doc;
}

Engine::~Engine() { scrubber_->Stop(); }

const MaterializedView* Engine::AddView(const std::string& xpath,
                                        Scheme scheme) {
  std::string error;
  std::optional<TreePattern> pattern = TreePattern::Parse(xpath, &error);
  VJ_CHECK(pattern.has_value()) << "bad view pattern '" << xpath << "': "
                                << error;
  return AddView(*pattern, scheme);
}

const MaterializedView* Engine::AddView(const TreePattern& pattern,
                                        Scheme scheme) {
  std::shared_lock<std::shared_mutex> doc_lock(doc_mu_);
  return catalog_->Materialize(*doc_, pattern, scheme);
}

util::StatusOr<const MaterializedView*> Engine::TryAddView(
    const std::string& xpath, Scheme scheme) {
  std::string error;
  std::optional<TreePattern> pattern = TreePattern::Parse(xpath, &error);
  if (!pattern.has_value()) {
    return util::Status::InvalidArgument("bad view pattern '" + xpath +
                                         "': " + error);
  }
  std::shared_lock<std::shared_mutex> doc_lock(doc_mu_);
  return catalog_->TryMaterialize(*doc_, *pattern, scheme);
}

RunResult Engine::Execute(
    const TreePattern& query,
    const std::vector<const MaterializedView*>& views, const RunOptions& run,
    tpq::MatchSink* sink) {
  algo::QueryContext gov;
  ConfigureGovernance(&gov, run);
  return ExecuteInternal(query, views, run, sink,
                         ExecContext{spill_.get(), /*exclusive=*/true, &gov});
}

RunResult Engine::ExecuteInternal(
    const TreePattern& query,
    const std::vector<const MaterializedView*>& views, const RunOptions& run,
    tpq::MatchSink* sink, const ExecContext& ctx) {
  RunResult result;
  // The whole run holds the document shared: a live-update batch
  // (ApplyUpdates) waits for in-flight queries before mutating, and this
  // query keeps answering from the views it resolved — the previous epoch —
  // even while a batch's replacement views install concurrently.
  std::shared_lock<std::shared_mutex> doc_lock(doc_mu_);
  algo::QueryContext ungoverned;
  algo::QueryContext* gov =
      ctx.governance != nullptr ? ctx.governance : &ungoverned;
  // When a user sink is supplied, attempts stream into a replay buffer so
  // the user only ever observes the matches of a fault-free run.
  ReplaySink replay;

  // Batch workers capture this query's page faults in a thread-local scope so
  // a sibling's poison latch cannot leak into this result (and vice versa).
  std::optional<storage::BufferPool::ErrorScope> scope;
  if (!ctx.exclusive) scope.emplace(catalog_->pool());

  if (run.cold_cache && ctx.exclusive) {
    catalog_->DropCaches();
    catalog_->ResetStats();
    ctx.spill->ResetStats();
    if (doc_store_ != nullptr) {
      doc_store_->DropCaches();
      doc_store_->ResetStats();
    }
  }
  storage::IoStats before = catalog_->Stats();
  storage::IoStats spill_before = ctx.spill->stats();
  storage::IoStats doc_before =
      doc_store_ != nullptr ? doc_store_->Stats() : storage::IoStats{};

  // Document statistics feed the planner's cardinality estimates. Collecting
  // them is document preprocessing (one DFS per document revision, like view
  // materialization), so it happens before the query timer starts. Keyed on
  // revision(): live updates invalidate them, and since the revision only
  // moves under the exclusive document lock, a refill can never race a
  // sibling query still reading the previous statistics.
  if (run.algorithm == Algorithm::kAuto) {
    std::lock_guard<std::mutex> stats_lock(doc_stats_mu_);
    if (!doc_stats_.has_value() || doc_stats_revision_ != doc_->revision()) {
      doc_stats_.emplace(xml::DocumentStatistics::Collect(*doc_));
      doc_stats_revision_ = doc_->revision();
    }
  }

  util::Timer timer;

  // ---- Plan ----------------------------------------------------------------
  // The planner resolves algorithm (kAuto -> cost-based choice), applies
  // quarantine redirects, and under kAuto picks the covering view subset and
  // per-view schemes. Plans are memoized keyed on (query fingerprint,
  // environment, catalog version).
  plan::Planner planner(&plan_cache_);
  plan::PlannerInput pin;
  pin.doc = doc_;
  pin.query = &query;
  pin.views = views;
  pin.catalog = catalog_.get();
  if (doc_stats_.has_value()) pin.statistics = &*doc_stats_;
  pin.algorithm = run.algorithm;
  pin.mode = run.output_mode;
  pin.disk_doc_mode = doc_store_ != nullptr;
  pin.readahead_pages = options_.readahead_pages;
  bool plan_cached = false;
  std::shared_ptr<const plan::PhysicalPlan> planned =
      planner.Plan(pin, &plan_cached);
  const Algorithm algorithm = planned->algorithm;  // resolved, never kAuto
  result.plan.algorithm = algorithm;
  result.plan.from_cache = plan_cached;
  result.plan.estimated_cost = planned->estimated_cost;
  result.plan.text = planned->ToString();
  result.plan.steps = planned->steps;  // stats columns start at zero

  auto step = [&](plan::StepKind kind) -> plan::PlanStep* {
    for (plan::PlanStep& s : result.plan.steps) {
      if (s.kind == kind) return &s;
    }
    return nullptr;
  };
  if (plan::PlanStep* resolve = step(plan::StepKind::kResolveCover)) {
    resolve->stats.elapsed_ms = timer.ElapsedMillis();
  }

  std::vector<const MaterializedView*> active = planned->views;

  // Runs one attempt through the uniform Operator interface — the engine
  // holds no per-algorithm knowledge; plan::MakeOperator is the single
  // dispatch point. Returns false on a bind/argument error (recorded in
  // result.error with the binder's message) — those are caller mistakes, not
  // storage faults, and are never retried.
  auto run_once = [&](const std::vector<const MaterializedView*>& vs,
                      algo::OutputMode mode, tpq::MatchSink* out) -> bool {
    plan::Operator::Config config;
    config.doc = doc_;
    config.query = &query;
    config.views = vs;
    config.pool = catalog_->pool();
    config.mode = mode;
    config.spill = ctx.spill;
    config.doc_store = doc_store_.get();
    std::unique_ptr<plan::Operator> op = plan::MakeOperator(algorithm, config);
    util::Status open = op->Open();
    if (!open.ok()) {
      result.error = open.message();
      return false;
    }
    util::Timer attempt_timer;
    op->Evaluate(out, gov);
    double attempt_ms = attempt_timer.ElapsedMillis();
    const algo::HolisticStats& s = op->stats();
    result.stats += s;
    // Attribute the attempt to the plan steps: the output pass (ViewJoin
    // instruments it; zero for the others) belongs to extend-output, the
    // remainder to eval-segments. Page reads all land on eval-segments —
    // spill traffic is credited to the spill step at finish time.
    if (plan::PlanStep* eval = step(plan::StepKind::kEvalSegments)) {
      eval->stats.elapsed_ms += attempt_ms - s.output_pass_ms;
      eval->stats.pages_read += op->io().pages_read;
      eval->stats.entries_advanced +=
          s.entries_scanned - s.output_entries_scanned;
      eval->stats.pointer_jumps += s.pointer_jumps - s.output_pointer_jumps;
    }
    if (plan::PlanStep* extend = step(plan::StepKind::kExtendOutput)) {
      extend->stats.elapsed_ms += s.output_pass_ms;
      extend->stats.entries_advanced += s.output_entries_scanned;
      extend->stats.pointer_jumps += s.output_pointer_jumps;
    }
    op->Close();
    return true;
  };

  // Shared tail of every exit path: timing, I/O deltas, governance counters.
  auto fill_common = [&]() {
    result.total_ms = timer.ElapsedMillis();
    result.io = catalog_->Stats().Delta(before);
    if (doc_store_ != nullptr) {
      result.io += doc_store_->Stats().Delta(doc_before);
    }
    storage::IoStats spill_io = ctx.spill->stats().Delta(spill_before);
    result.io.pages_read += spill_io.pages_read;
    result.io.pages_written += spill_io.pages_written;
    result.io.read_micros += spill_io.read_micros;
    result.io.write_micros += spill_io.write_micros;
    result.io.read_retries += spill_io.read_retries;
    result.io_ms = result.io.TotalIoMillis();
    result.retries = result.io.read_retries;
    result.peak_memory_bytes = gov->peak_memory_bytes();
    result.checkpoints = gov->checkpoints();
    result.scrub = scrubber_->stats();
    // Close the per-step ledger: spill traffic goes to the spill step, and
    // verify-fallback absorbs every residual (planning already accounted,
    // recovery, rebuilds, the base fallback), so the step columns sum
    // exactly to this result's totals.
    if (plan::PlanStep* spill_step = step(plan::StepKind::kSpill)) {
      spill_step->stats.pages_read = spill_io.pages_read;
    }
    plan::StepStats accounted;
    for (const plan::PlanStep& s : result.plan.steps) {
      if (s.kind != plan::StepKind::kVerifyFallback) accounted += s.stats;
    }
    if (plan::PlanStep* verify = step(plan::StepKind::kVerifyFallback)) {
      verify->stats.elapsed_ms =
          std::max(0.0, result.total_ms - accounted.elapsed_ms);
      verify->stats.pages_read =
          result.io.pages_read > accounted.pages_read
              ? result.io.pages_read - accounted.pages_read
              : 0;
      verify->stats.entries_advanced =
          result.stats.entries_scanned > accounted.entries_advanced
              ? result.stats.entries_scanned - accounted.entries_advanced
              : 0;
      verify->stats.pointer_jumps =
          result.stats.pointer_jumps > accounted.pointer_jumps
              ? result.stats.pointer_jumps - accounted.pointer_jumps
              : 0;
    }
  };

  auto finish = [&](const TeeSink& tee) -> RunResult& {
    fill_common();
    result.ok = true;
    result.match_count = tee.count();
    result.result_hash = tee.hash();
    if (sink != nullptr) replay.ReplayInto(sink);
    return result;
  };

  // Terminal abort: the query stopped on a governance verdict. Partial
  // matches are never replayed to the user sink.
  auto finish_aborted = [&]() -> RunResult& {
    fill_common();
    result.ok = false;
    switch (gov->reason()) {
      case algo::AbortReason::kDeadline:
        result.timed_out = true;
        result.error = "deadline exceeded";
        break;
      case algo::AbortReason::kCancelled:
        result.cancelled = true;
        result.error = "cancelled";
        break;
      case algo::AbortReason::kMemoryBudget:
        result.error = util::Status::ResourceExhausted(
                           "intermediate solutions exceed the memory budget "
                           "(and disk-mode degradation is unavailable)")
                           .ToString();
        break;
      case algo::AbortReason::kDiskBudget:
        result.error = util::Status::ResourceExhausted(
                           "spilled intermediate solutions exceed the disk "
                           "budget")
                           .ToString();
        break;
      case algo::AbortReason::kNone:
        result.error = "aborted";
        break;
    }
    return result;
  };

  // This query's view-store fault latch: the thread-local scope in batch
  // mode, the pool-global latch when running exclusively.
  auto view_error = [&]() -> util::Status {
    return scope.has_value() ? scope->error() : catalog_->pool()->error();
  };
  auto view_error_page = [&]() -> storage::PageId {
    return scope.has_value() ? scope->error_page()
                             : catalog_->pool()->error_page();
  };
  auto clear_view_error = [&]() {
    if (scope.has_value()) {
      scope->Clear();
    } else {
      catalog_->pool()->ResetError();
      catalog_->pager()->ClearError();
    }
  };

  // Attempt loop: a clean run returns directly; a storage fault quarantines
  // the corrupt view, re-materializes it from the in-memory document, and
  // retries. Bounded so a persistently failing medium cannot loop forever.
  constexpr int kMaxViewAttempts = 3;
  algo::OutputMode mode = run.output_mode;
  bool memory_downgraded = false;
  util::Status last_storage_error;
  for (int attempt = 0; attempt < kMaxViewAttempts; ++attempt) {
    clear_view_error();
    ctx.spill->ClearError();
    replay.Reset();
    TeeSink tee(sink != nullptr ? static_cast<tpq::MatchSink*>(&replay)
                                : nullptr);
    if (!run_once(active, mode, &tee)) return result;

    if (gov->aborted()) {
      // Degradation ladder, rung 1: a memory-budget overrun in memory output
      // mode reruns the query with disk-mode spilling — intermediates go to
      // the spill spool and only anchors stay resident. Only when disk
      // spilling is unavailable or also over budget does the abort become
      // terminal (RESOURCE_EXHAUSTED, the ladder's last rung).
      if (gov->reason() == algo::AbortReason::kMemoryBudget &&
          mode == algo::OutputMode::kMemory && !memory_downgraded &&
          ctx.spill != nullptr) {
        memory_downgraded = true;
        mode = algo::OutputMode::kDisk;
        result.degraded = true;
        gov->ResetForRetry();
        --attempt;  // a budget downgrade does not consume a fault attempt
        continue;
      }
      return finish_aborted();
    }

    util::Status view_err = view_error();
    util::Status spill_err = ctx.spill->last_error();
    if (view_err.ok() && spill_err.ok()) return finish(tee);
    last_storage_error = view_err.ok() ? spill_err : view_err;

    // The spill spool is scratch space: nothing to re-materialize. Fall back
    // to in-memory intermediate buffering and keep going.
    if (!spill_err.ok()) mode = algo::OutputMode::kMemory;
    result.degraded = true;

    if (!view_err.ok()) {
      // Quarantine the view owning the failed page — or, if the page cannot
      // be attributed, every active view — and rebuild from the document.
      // Serialized engine-wide so concurrent batch workers tripping over the
      // same corrupt view rebuild it once and share the replacement.
      std::lock_guard<std::mutex> recovery_lock(recovery_mu_);
      std::vector<const MaterializedView*> suspects;
      const MaterializedView* culprit =
          catalog_->ViewOfPage(view_error_page());
      if (culprit != nullptr) {
        suspects.push_back(culprit);
      } else {
        suspects = active;
      }
      bool rebuilt = true;
      for (const MaterializedView* v : suspects) {
        // A sibling may have quarantined and replaced this view while we were
        // waiting on the lock — reuse its replacement instead of rebuilding.
        if (const MaterializedView* existing = catalog_->ReplacementFor(v)) {
          std::replace(active.begin(), active.end(), v, existing);
          continue;
        }
        if (!catalog_->IsQuarantined(v)) {
          catalog_->Quarantine(v);
          result.quarantined_views.push_back(v->pattern().ToString());
        }
        util::StatusOr<const MaterializedView*> repl =
            Rematerialize(v->pattern(), v->scheme());
        if (!repl.ok()) {
          rebuilt = false;
          break;
        }
        catalog_->SetReplacement(v, *repl);
        std::replace(active.begin(), active.end(), v, *repl);
      }
      // The fault is handled (or about to be escalated): drop the latch so a
      // stale poison record cannot outlive the view it referred to.
      clear_view_error();
      if (!rebuilt) break;  // medium too sick to rebuild on — fall back
    }
    // Test hook: an armed recovery barrier holds the worker here — between
    // the rebuild and the retry run — so tests can land an event (e.g. a
    // cancellation) in this window deterministically.
    util::FaultInjector::Global().OnRecoveryPoint();
  }

  // The view store is persistently failing. Callers that disabled the
  // base-document fallback get a typed, retryable error instead — the batch
  // retry ladder (bounded, with backoff) is their recovery path.
  if (!run.allow_base_fallback) {
    clear_view_error();
    ctx.spill->ClearError();
    fill_common();
    result.ok = false;
    result.retryable = true;
    result.error = last_storage_error.ok()
                       ? "view store unavailable"
                       : last_storage_error.ToString();
    return result;
  }

  // Last resort: answer from the base document alone. The fallback operator
  // runs TwigStack over the document's own tag lists (or, in disk doc-mode,
  // the document store's page lists through the store's own pool) and
  // touches no view-store page, so it cannot be harmed by view-store or
  // spill faults; the match set is identical by definition. Its work is
  // charged to the plan's verify-fallback step (via residual absorption in
  // fill_common).
  clear_view_error();
  ctx.spill->ClearError();
  replay.Reset();
  result.error.clear();
  std::unique_ptr<plan::Operator> base = plan::MakeBaseFallbackOperator(
      *doc_, query, catalog_->pool(), doc_store_.get());
  util::Status base_open = base->Open();
  if (!base_open.ok()) {
    result.error = base_open.message();
    return result;
  }
  TeeSink tee(sink != nullptr ? static_cast<tpq::MatchSink*>(&replay)
                              : nullptr);
  base->Evaluate(&tee, gov);
  result.stats += base->stats();
  base->Close();
  result.degraded = true;
  if (gov->aborted()) return finish_aborted();
  return finish(tee);
}

std::vector<RunResult> Engine::ExecuteBatch(
    const std::vector<BatchQuery>& queries, const BatchOptions& options) {
  std::vector<RunResult> results(queries.size());
  if (queries.empty()) return results;

  // Cold cache applies to the batch as a whole: the pool is shared, so a
  // per-query drop would evict pages siblings are still cursoring over.
  if (options.run.cold_cache) {
    catalog_->DropCaches();
    catalog_->ResetStats();
  }
  RunOptions per_query = options.run;
  per_query.cold_cache = false;
  if (options.deadline_ms > 0) per_query.deadline_ms = options.deadline_ms;
  if (options.per_query_memory_budget > 0) {
    per_query.memory_budget_bytes = options.per_query_memory_budget;
  }
  if (options.per_query_disk_budget > 0) {
    per_query.disk_budget_bytes = options.per_query_disk_budget;
  }

  size_t workers = std::min(std::max<size_t>(options.threads, 1),
                            queries.size());

  // Admission control: workers serve at most `threads + max_queued` queries;
  // the positional overflow is bounced immediately with kRejected and never
  // executed, so an oversized batch cannot queue unboundedly behind slow
  // siblings. Rejection happens before execution starts and cannot perturb
  // admitted queries' results.
  size_t admitted = queries.size();
  if (options.max_queued < queries.size()) {
    admitted = std::min(queries.size(), workers + options.max_queued);
  }
  for (size_t i = admitted; i < queries.size(); ++i) {
    results[i].admission = BatchAdmission::kRejected;
    results[i].error = "rejected: admission queue full";
  }
  if (admitted == 0) return results;

  // One governance context per admitted query. They live in a deque that
  // outlives both workers and watchdog, so the watchdog can never touch a
  // freed context; finished queries just keep an expired (ignored) deadline.
  std::deque<algo::QueryContext> govs(admitted);
  std::atomic<size_t> next{0};

  auto serve = [&](size_t worker_id) {
    // Each worker spools disk-mode intermediates into a private scratch file;
    // kTruncate removes it on close.
    storage::Pager spill(storage_path_ + ".spill." + std::to_string(worker_id),
                         storage::Pager::Mode::kTruncate);
    for (size_t i = next.fetch_add(1); i < admitted; i = next.fetch_add(1)) {
      const BatchQuery& q = queries[i];
      VJ_CHECK(q.query != nullptr) << "batch query " << i << " has no pattern";
      RunOptions mine = per_query;
      if (q.deadline_ms >= 0) mine.deadline_ms = q.deadline_ms;
      if (q.cancel != nullptr) mine.cancel = q.cancel;
      algo::QueryContext& gov = govs[i];
      ExecContext ctx{&spill, /*exclusive=*/false, &gov};
      // Decorrelated jitter, seeded per (worker, query): deterministic for a
      // given schedule, but workers that trip over the same fault back off on
      // spread-out delays instead of retrying in lockstep.
      util::DecorrelatedJitterBackoff backoff(
          options.retry_backoff_ms, options.retry_backoff_cap_ms,
          (static_cast<uint64_t>(worker_id) << 32) ^ i);
      int attempt = 0;
      while (true) {
        ++attempt;
        gov.ResetForRetry();
        // Re-arms the deadline: each service attempt gets the full budget.
        ConfigureGovernance(&gov, mine);
        results[i] = ExecuteInternal(*q.query, q.views, mine,
                                     /*sink=*/nullptr, ctx);
        results[i].attempts = attempt;
        if (results[i].ok || !results[i].retryable ||
            attempt > options.max_retries) {
          break;
        }
        // Transient storage fault: back off with jitter, then retry.
        RetrySleep(backoff.NextDelayMs());
      }
    }
  };

  // Watchdog: cooperative checkpoints cannot run while a worker sits inside
  // a long page read, so deadlines are also fired from outside. The worker
  // observes the abort flag at its next loop iteration.
  bool need_watchdog = per_query.deadline_ms > 0;
  for (const BatchQuery& q : queries) need_watchdog |= q.deadline_ms > 0;
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool wd_stop = false;
  std::thread watchdog;
  if (need_watchdog) {
    watchdog = std::thread([&] {
      std::unique_lock<std::mutex> lock(wd_mu);
      while (!wd_stop) {
        wd_cv.wait_for(lock, std::chrono::milliseconds(5));
        for (algo::QueryContext& gov : govs) {
          if (gov.DeadlineExpired()) {
            gov.RequestAbort(algo::AbortReason::kDeadline);
          }
        }
      }
    });
  }

  if (workers == 1) {
    serve(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) pool.emplace_back(serve, w);
    for (std::thread& t : pool) t.join();
  }

  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wd_mu);
      wd_stop = true;
    }
    wd_cv.notify_all();
    watchdog.join();
  }
  return results;
}

Engine::Session::Session(Engine* engine, size_t id)
    : engine_(engine),
      // Like a batch worker's scratch file, but named per session and living
      // as long as the session does; kTruncate removes it on close.
      spill_(engine->storage_path_ + ".session." + std::to_string(id),
             storage::Pager::Mode::kTruncate),
      seed_(0x5E5510ULL ^ (static_cast<uint64_t>(id) << 20)) {}

RunResult Engine::Session::Run(
    const TreePattern& query, const std::vector<const MaterializedView*>& views,
    const RunOptions& run, const RetryPolicy& retry) {
  RunOptions mine = run;
  // The store and pool are shared with sibling sessions: dropping caches or
  // resetting pool-global counters here would sabotage them.
  mine.cold_cache = false;
  ExecContext ctx{&spill_, /*exclusive=*/false, &gov_};
  // Fresh jitter ladder per query, deterministically reseeded so two queries
  // on one session (and the same query on two sessions) spread differently.
  util::DecorrelatedJitterBackoff backoff(retry.backoff_ms,
                                          retry.backoff_cap_ms, seed_++);
  RunResult result;
  int attempt = 0;
  while (true) {
    ++attempt;
    // A reused context must not inherit the previous query's deadline
    // (ResetForRetry deliberately keeps it for same-query retries).
    gov_.clear_deadline();
    gov_.ResetForRetry();
    ConfigureGovernance(&gov_, mine);
    result = engine_->ExecuteInternal(query, views, mine, /*sink=*/nullptr,
                                      ctx);
    result.attempts = attempt;
    if (result.ok || !result.retryable || attempt > retry.max_retries) break;
    RetrySleep(backoff.NextDelayMs());
  }
  // Disarm so a watchdog polling between queries never sees a stale expired
  // deadline from a query that already answered.
  gov_.clear_deadline();
  return result;
}

namespace {

/// Accumulates the distinct solution nodes per query node.
class SolutionListSink : public tpq::MatchSink {
 public:
  explicit SolutionListSink(size_t nq) : lists_(nq) {}

  void OnMatch(const tpq::Match& match) override {
    for (size_t q = 0; q < match.size(); ++q) lists_[q].push_back(match[q]);
  }

  std::vector<std::vector<xml::NodeId>> TakeSorted() {
    for (auto& list : lists_) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    return std::move(lists_);
  }

 private:
  std::vector<std::vector<xml::NodeId>> lists_;
};

}  // namespace

void Engine::RebuildDocStore() {
  if (options_.doc_mode != DocMode::kDisk) return;
  // Callers guarantee no cursor is live over the old store (constructor, or
  // the exclusive phase of an update batch), so tearing it down is safe.
  doc_store_.reset();
  storage::DocumentStore::Options opts;
  opts.pool_pages = options_.doc_pool_pages;
  opts.parse_budget_bytes = options_.doc_parse_budget_bytes;
  util::StatusOr<std::unique_ptr<storage::DocumentStore>> store =
      storage::DocumentStore::BuildFromDocument(storage_path_ + ".doc", *doc_,
                                                opts);
  if (!store.ok()) {
    // Degrade to in-memory streams: queries stay correct, the out-of-core
    // property is lost, and doc_store_status() says why.
    doc_store_status_ = store.status();
    return;
  }
  doc_store_ = std::move(*store);
  doc_store_status_ = util::Status::Ok();
  if (options_.readahead_pages > 0) {
    doc_store_->pool()->SetReadAhead(options_.readahead_pages);
  }
}

util::StatusOr<const MaterializedView*> Engine::Rematerialize(
    const TreePattern& pattern, Scheme scheme) {
  // Tuple views and memory doc-mode rebuild straight from the in-memory
  // document. In disk doc-mode, list-scheme views rebuild by evaluating the
  // pattern over the store's page lists, so re-materialization scans pinned
  // pages instead of materializing whole label vectors.
  if (doc_store_ == nullptr || scheme == Scheme::kTuple) {
    return catalog_->TryMaterialize(*doc_, pattern, scheme);
  }
  std::unique_ptr<plan::Operator> op = plan::MakeBaseFallbackOperator(
      *doc_, pattern, catalog_->pool(), doc_store_.get());
  util::Status open = op->Open();
  if (!open.ok()) {
    // A pattern the base binder rejects (duplicate tags) still materializes
    // through the document-path evaluator.
    return catalog_->TryMaterialize(*doc_, pattern, scheme);
  }
  storage::BufferPool::ErrorScope guard(doc_store_->pool());
  SolutionListSink sink(pattern.size());
  op->Evaluate(&sink, nullptr);
  op->Close();
  if (!guard.error().ok()) {
    // A doc-store page fault would install a truncated view; the in-memory
    // document is authoritative, so heal from it instead.
    return catalog_->TryMaterialize(*doc_, pattern, scheme);
  }
  return catalog_->TryMaterializeFromLists(*doc_, pattern, sink.TakeSorted(),
                                           scheme);
}

RunResult Engine::ExecuteToView(
    const TreePattern& query,
    const std::vector<const MaterializedView*>& views, Scheme result_scheme,
    const MaterializedView** result_view, const RunOptions& run) {
  VJ_CHECK(result_view != nullptr);
  util::Timer timer;
  SolutionListSink sink(query.size());
  RunResult result = Execute(query, views, run, &sink);
  if (!result.ok) return result;
  // The run's governance knobs cover the whole call, not just the query:
  // re-check deadline and cancellation before the (possibly large)
  // store-back, which used to run ungoverned.
  if (run.deadline_ms > 0 && timer.ElapsedMillis() >= run.deadline_ms) {
    result.ok = false;
    result.timed_out = true;
    result.error = "deadline exceeded";
    return result;
  }
  if (run.cancel != nullptr &&
      run.cancel->load(std::memory_order_relaxed)) {
    result.ok = false;
    result.cancelled = true;
    result.error = "cancelled";
    return result;
  }
  std::shared_lock<std::shared_mutex> doc_lock(doc_mu_);
  util::StatusOr<const MaterializedView*> stored =
      catalog_->TryMaterializeFromLists(*doc_, query, sink.TakeSorted(),
                                        result_scheme);
  if (!stored.ok()) {
    // Storing the answer failed but the answer itself is sound; surface the
    // storage fault as a retryable error instead of dying mid-call.
    result.ok = false;
    result.retryable = true;
    result.error = stored.status().ToString();
    return result;
  }
  *result_view = *stored;
  return result;
}

RunResult Engine::SelectAndExecute(
    const TreePattern& query, const std::vector<TreePattern>& candidates,
    Scheme scheme, const RunOptions& run, view::SelectionResult* selection) {
  util::Timer timer;
  view::SelectionOptions options;
  std::shared_lock<std::shared_mutex> doc_lock(doc_mu_);
  view::SelectionResult picked = view::SelectViews(*doc_, query, candidates,
                                                   options);
  if (selection != nullptr) *selection = picked;
  RunResult result;
  if (!picked.covers) {
    result.error = "candidate views cannot cover the query";
    return result;
  }
  std::vector<const MaterializedView*> views;
  views.reserve(picked.selected.size());
  for (size_t index : picked.selected) {
    // Selection + materialization count against the caller's deadline and
    // cancellation token too — a query with a 50 ms deadline must not spend
    // seconds materializing views first.
    if (run.deadline_ms > 0 && timer.ElapsedMillis() >= run.deadline_ms) {
      result.timed_out = true;
      result.error = "deadline exceeded";
      return result;
    }
    if (run.cancel != nullptr &&
        run.cancel->load(std::memory_order_relaxed)) {
      result.cancelled = true;
      result.error = "cancelled";
      return result;
    }
    util::StatusOr<const MaterializedView*> made =
        catalog_->TryMaterialize(*doc_, candidates[index], scheme);
    if (!made.ok()) {
      result.retryable = true;
      result.error = made.status().ToString();
      return result;
    }
    views.push_back(*made);
  }
  // The remaining deadline budget (not a fresh full one) governs the query.
  RunOptions remaining = run;
  if (run.deadline_ms > 0) {
    remaining.deadline_ms =
        std::max(1.0, run.deadline_ms - timer.ElapsedMillis());
  }
  doc_lock.unlock();  // Execute re-acquires shared; the lock is not recursive
  return Execute(query, views, remaining);
}

util::StatusOr<UpdateResult> Engine::ApplyUpdates(
    const std::vector<UpdateOp>& ops) {
  if (mutable_doc_ == nullptr) {
    return util::Status::InvalidArgument(
        "engine was constructed over a const document; live updates need "
        "the mutable-document constructor");
  }
  util::StatusOr<int64_t> batch_cap =
      util::ParseNonNegativeIntEnv("VIEWJOIN_UPDATE_BATCH_SIZE", 0);
  if (!batch_cap.ok()) return batch_cap.status();
  if (*batch_cap > 0 && ops.size() > static_cast<size_t>(*batch_cap)) {
    return util::Status::InvalidArgument(
        "update batch of " + std::to_string(ops.size()) +
        " ops exceeds VIEWJOIN_UPDATE_BATCH_SIZE=" +
        std::to_string(*batch_cap));
  }
  util::StatusOr<int64_t> spill_bytes = util::ParseNonNegativeIntEnv(
      "VIEWJOIN_UPDATE_DELTA_SPILL_BYTES", 1 << 20);
  if (!spill_bytes.ok()) return spill_bytes.status();

  // One batch at a time engine-wide: the document mutation below and the
  // catalog's update transaction must not interleave with a sibling batch.
  std::lock_guard<std::mutex> update_lock(update_mu_);

  UpdateResult out;

  // Maintain the healthy tip of every replacement chain; quarantined views
  // without a replacement are already unusable and stay behind.
  std::vector<const MaterializedView*> maintain;
  std::vector<tpq::TreePattern> patterns;
  for (const MaterializedView* v : catalog_->ViewsSnapshot()) {
    if (catalog_->IsQuarantined(v) || catalog_->ReplacementFor(v) != nullptr) {
      continue;
    }
    maintain.push_back(v);
    patterns.push_back(v->pattern());
  }
  view::DeltaCollector collector(mutable_doc_, std::move(patterns));

  bool rebuild_all = false;
  {
    // Exclusive document phase: waits out in-flight queries, mutates, and
    // collects per-op deltas. Queries admitted after this block see the new
    // document; view maintenance below runs without the lock (the document
    // is read-only again), so queries overlap the install.
    std::unique_lock<std::shared_mutex> doc_lock(doc_mu_);
    // Ops address nodes by their pre-batch labels; a mid-batch relabel
    // multiplies every position by the gap, so scale later ops' coordinates.
    uint32_t label_scale = 1;
    for (size_t i = 0; i < ops.size(); ++i) {
      const UpdateOp& op = ops[i];
      auto fail = [&](const std::string& reason) {
        out.failed.push_back("op " + std::to_string(i) + ": " + reason);
      };
      const xml::TagId target_tag = mutable_doc_->FindTag(op.target_tag);
      const xml::NodeId target =
          target_tag == xml::kInvalidTag
              ? xml::kInvalidNode
              : mutable_doc_->FindByStart(target_tag,
                                          op.target_start * label_scale);
      if (target == xml::kInvalidNode) {
        fail("no live node <" + op.target_tag + "> with start " +
             std::to_string(op.target_start));
        continue;
      }
      if (op.kind == UpdateOp::Kind::kDeleteSubtree) {
        if (!rebuild_all) collector.WillDelete(target);
        util::Status deleted = mutable_doc_->DeleteSubtree(target);
        if (!deleted.ok()) {
          fail(deleted.ToString());
          continue;
        }
        if (!rebuild_all) collector.DidDelete();
        ++out.applied;
        continue;
      }
      xml::NodeId after = xml::kInvalidNode;
      if (op.after_start != 0) {
        const xml::TagId after_tag = mutable_doc_->FindTag(op.after_tag);
        after = after_tag == xml::kInvalidTag
                    ? xml::kInvalidNode
                    : mutable_doc_->FindByStart(after_tag,
                                                op.after_start * label_scale);
        if (after == xml::kInvalidNode) {
          fail("no live node <" + op.after_tag + "> with start " +
               std::to_string(op.after_start));
          continue;
        }
      }
      if (!rebuild_all) collector.WillInsert(target);
      util::StatusOr<xml::NodeId> inserted =
          mutable_doc_->InsertSubtree(op.subtree, target, after);
      int relabels = 0;
      while (!inserted.ok() &&
             inserted.status().code() == util::StatusCode::kResourceExhausted &&
             relabels < 3) {
        // The gap at the insertion point filled up: widen every gap and
        // retry. Stored labels are now all stale — every view rebuilds and
        // the deltas collected so far are moot.
        util::Status relabel = mutable_doc_->RelabelWithGap(16);
        if (!relabel.ok()) {
          inserted = relabel;
          break;
        }
        ++relabels;
        label_scale *= 16;
        rebuild_all = true;
        out.relabeled = true;
        inserted = mutable_doc_->InsertSubtree(op.subtree, target, after);
      }
      if (!inserted.ok()) {
        fail(inserted.status().ToString());
        continue;  // the Will* scope stays open; the next op overwrites it
      }
      if (!rebuild_all) collector.DidInsert(*inserted);
      ++out.applied;
    }
    // Disk doc-mode: re-snapshot the paged store while the exclusive lock
    // still guarantees no cursor is live over the old pages. Queries
    // admitted after this block scan the post-batch streams.
    if (out.applied > 0 || out.relabeled) RebuildDocStore();
  }
  out.doc_revision = mutable_doc_->revision();
  if (out.applied == 0 && !out.relabeled) return out;  // document unchanged

  // Turn the collected deltas into per-view maintenance specs. Views whose
  // deltas are empty were untouched by the batch (an unchanged solution set
  // implies an unchanged match set) and are skipped outright.
  std::vector<view::PatternDeltas> deltas;
  if (!rebuild_all) deltas = collector.TakeDeltas();
  std::vector<storage::ViewCatalog::ViewUpdateSpec> specs;
  for (size_t vi = 0; vi < maintain.size(); ++vi) {
    const MaterializedView* v = maintain[vi];
    if (!rebuild_all && deltas[vi].empty()) continue;
    storage::ViewCatalog::ViewUpdateSpec spec;
    spec.view = v;
    if (rebuild_all || v->scheme() == Scheme::kTuple) {
      spec.full_rebuild = true;
      if (v->scheme() != Scheme::kTuple) {
        spec.solutions =
            tpq::NaiveEvaluator(*mutable_doc_, v->pattern()).SolutionNodes();
      }
    } else {
      spec.deltas.added = std::move(deltas[vi].added);
      spec.deltas.removed = std::move(deltas[vi].removed);
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) return out;  // no view touched: no transaction needed

  // Maintenance phase: no lock on the document — it is read-only again, so
  // concurrent queries proceed (answering from the still-registered old
  // views) while the new epoch stages and installs. ApplyUpdateBatch
  // registers the whole batch atomically after its commit record lands.
  storage::ViewCatalog::UpdateBatchOptions batch_options;
  batch_options.delta_spill_bytes = static_cast<size_t>(*spill_bytes);
  util::StatusOr<storage::ViewCatalog::UpdateBatchResult> applied =
      catalog_->ApplyUpdateBatch(*mutable_doc_, specs, batch_options);
  if (!applied.ok()) return applied.status();
  out.txn_epoch = applied->txn_epoch;
  out.delta_maintained = applied->delta_maintained;
  out.fully_rebuilt = applied->fully_rebuilt;

  // Post-commit verification: read back every freshly patched view through
  // the checksummed page path; a view that fails is quarantined (queries
  // fall back to rebuilding it) rather than served.
  for (const MaterializedView* fresh : applied->new_views) {
    util::Status verified = catalog_->VerifyView(fresh);
    if (!verified.ok()) {
      catalog_->Quarantine(fresh);
      ++out.quarantined;
      out.failed.push_back("verify " + fresh->pattern().ToString() + ": " +
                           verified.ToString());
    }
  }
  // Plan-cache invalidation is implicit: entries key on the catalog epoch,
  // which the transaction just bumped; document statistics re-key on
  // revision() at the next kAuto query.
  return out;
}

util::StatusOr<storage::BackupReport> Engine::CreateBackup(
    const std::string& dest_dir, uint64_t rate_bytes_per_sec) {
  std::lock_guard<std::mutex> backup_lock(backup_mu_);
  storage::BackupOptions opts;
  opts.rate_bytes_per_sec = rate_bytes_per_sec;
  if (doc_store_ != nullptr) {
    opts.doc_store_path = storage_path_ + ".doc";
    // The doc store is rewritten in place by ApplyUpdates under the
    // exclusive document lock; holding it shared for just the doc-store
    // copy keeps the image's doc files internally consistent while queries
    // (also shared holders) continue.
    opts.doc_copy_begin = [this] { doc_mu_.lock_shared(); };
    opts.doc_copy_end = [this] { doc_mu_.unlock_shared(); };
  }
  return storage::CreateBackup(*catalog_, dest_dir, opts);
}

}  // namespace viewjoin::core
