#include "core/view_join.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "algo/candidate_enumerator.h"
#include "algo/monotone_resolver.h"
#include "algo/spill_buffer.h"
#include "storage/materialized_view.h"
#include "storage/stored_list.h"
#include "util/check.h"
#include "util/timer.h"

namespace viewjoin::core {

using algo::HolisticStats;
using algo::OutputMode;
using algo::QueryBinding;
using algo::SpillBuffer;
using storage::EntryIndex;
using storage::kNullEntry;
using storage::ListCursor;
using storage::Scheme;
using tpq::Axis;
using tpq::TreePattern;
using xml::Label;
using xml::NodeId;

namespace {

constexpr Label kEndLabel{0xFFFFFFFFu, 0xFFFFFFFFu, 0};

/// A buffered F entry: the label plus its index in the source list (indexes
/// let the extension step dereference child pointers).
struct FEntry {
  Label label;
  EntryIndex index;
};

}  // namespace

class ViewJoin::Impl {
 public:
  Impl(const QueryBinding& binding, const SegmentedQuery& sq,
       storage::BufferPool* pool, tpq::MatchSink* sink, OutputMode mode,
       storage::Pager* spill, HolisticStats* stats, algo::QueryContext* ctx)
      : binding_(binding),
        sq_(sq),
        query_(binding.query()),
        pool_(pool),
        sink_(sink),
        mode_(mode),
        stats_(stats),
        ctx_(ctx != nullptr ? ctx : &default_ctx_),
        enumerator_(binding.doc(), binding.query()),
        resolver_(&binding.doc(), [&binding] {
          std::vector<xml::TagId> tags;
          for (size_t q = 0; q < binding.query().size(); ++q) {
            tags.push_back(binding.binding(static_cast<int>(q)).tag);
          }
          return tags;
        }()) {
    size_t nq = query_.size();
    cursors_.resize(nq);
    stacks_.resize(nq);
    buffer_.resize(nq);
    max_buffered_end_.assign(nq, 0);
    has_pointers_.assign(nq, 0);
    full_pointers_.assign(nq, 0);
    is_anchor_.assign(nq, 0);
    heads_.resize(nq);
    for (size_t q = 0; q < nq; ++q) {
      const algo::NodeBinding& nb = binding.binding(static_cast<int>(q));
      cursors_[q] = ListCursor(nb.list, pool);
      Scheme scheme =
          binding.views()[static_cast<size_t>(nb.view)]->scheme();
      has_pointers_[q] = scheme != Scheme::kElement;
      full_pointers_[q] = scheme == Scheme::kLinkedElement;
      RefreshHead(static_cast<int>(q));
    }
    for (int anchor : sq_.removed_anchor) {
      is_anchor_[static_cast<size_t>(anchor)] = 1;
    }
    // Child-pointer slots for extension anchors, precomputed. A pc view
    // edge's child pointer targets the first *level-matched* child, which
    // can overshoot descendants that deeper (nested) anchors still need, so
    // only ad-edge pointers are followed; pc edges locate the range start by
    // search.
    removed_slot_.resize(sq_.removed.size(), -1);
    removed_edge_ad_.resize(sq_.removed.size(), 0);
    for (size_t i = 0; i < sq_.removed.size(); ++i) {
      int r = sq_.removed[i];
      const algo::NodeBinding& rb = binding.binding(r);
      const TreePattern& vp =
          binding.views()[static_cast<size_t>(rb.view)]->pattern();
      removed_edge_ad_[i] =
          vp.node(rb.view_node).incoming == Axis::kDescendant;
      if (has_pointers_[static_cast<size_t>(r)]) {
        removed_slot_[i] =
            binding.ChildSlot(sq_.removed_anchor[i], sq_.removed[i]);
        VJ_CHECK(removed_slot_[i] >= 0);
      }
    }
    if (mode_ == OutputMode::kDisk) {
      VJ_CHECK(spill != nullptr) << "disk output mode requires a spill pager";
      spill_ = std::make_unique<SpillBuffer>(spill, nq, ctx_);
    }
  }

  void Run() {
    while (!ctx_->aborted()) {
      int q = GetNext(0);
      if (ctx_->aborted()) break;
      Label nq = Head(q);
      if (nq.start == kEndLabel.start) break;
      int parent = sq_.parent[static_cast<size_t>(q)];
      if (parent >= 0) CleanStack(parent, nq);
      if (parent < 0 || !stacks_[static_cast<size_t>(parent)].empty()) {
        CleanStack(q, nq);
        // Memory mode buffers the entire solution (the paper's memory-based
        // approach); disk mode flushes closed groups once enough labels have
        // been spilled, bounding resident memory.
        if (q == 0 && stacks_[0].empty() && mode_ == OutputMode::kDisk &&
            group_candidates_ >= kFlushThreshold && CanFlush()) {
          Flush();
        }
        Push(q, nq);
      }
      Advance(q);
    }
    Drain();
    Flush();
  }

  /// A group flush is safe only once every buffered candidate's region is
  /// closed relative to every pending Q' stream head (candidates from a
  /// blocked branch can lag behind document order).
  bool CanFlush() {
    uint32_t max_end = 0;
    for (uint32_t end : max_buffered_end_) {
      if (end > max_end) max_end = end;
    }
    for (size_t q = 0; q < query_.size(); ++q) {
      if (!sq_.kept[q]) continue;
      Label head = Head(static_cast<int>(q));
      if (head.start != kEndLabel.start && head.start < max_end) return false;
    }
    return true;
  }

  /// Termination drain (see TwigStack::Impl::Drain): buffers remaining Q'
  /// entries that start inside a buffered region of their Q' parent, so that
  /// late branches still meet their already-buffered partners. Removed query
  /// nodes need no draining — the extension step walks them from anchors.
  void Drain() {
    for (size_t q = 0; q < query_.size(); ++q) {
      if (!sq_.kept[q]) continue;
      int parent = sq_.parent[q];
      uint32_t bound = 0;
      if (parent < 0) {
        for (uint32_t end : max_buffered_end_) {
          if (end > bound) bound = end;
        }
      } else {
        bound = max_buffered_end_[static_cast<size_t>(parent)];
      }
      ListCursor& cursor = cursors_[q];
      while (!cursor.AtEnd() && cursor.LabelAt().start < bound) {
        if (ctx_->Checkpoint()) return;
        ++stats_->entries_scanned;
        Buffer(static_cast<int>(q), cursor.LabelAt(), cursor.index());
        cursor.Next();
      }
    }
  }

 private:
  const Label& Head(int q) const { return heads_[static_cast<size_t>(q)]; }

  void RefreshHead(int q) {
    ListCursor& cursor = cursors_[static_cast<size_t>(q)];
    heads_[static_cast<size_t>(q)] = cursor.AtEnd() ? kEndLabel
                                                    : cursor.LabelAt();
  }

  void Advance(int q) {
    ++stats_->entries_scanned;
    ctx_->Checkpoint();
    cursors_[static_cast<size_t>(q)].Next();
    RefreshHead(q);
  }

  /// Advances C_q until Head(q).end >= bound, jumping via following
  /// pointers where materialized. A jump from entry e skips exactly e's
  /// same-type descendants, all of which end before e does — safe under any
  /// bound. A null pointer means "no following node at all" in the full LE
  /// scheme (jump to the end) but may mean "target was adjacent" in LE_p
  /// (step one entry and re-check).
  void AdvancePast(int q, uint32_t bound) {
    ListCursor& cursor = cursors_[static_cast<size_t>(q)];
    auto ck = [&](uint32_t n) { return ctx_->CheckpointN(n); };
    if (!has_pointers_[static_cast<size_t>(q)]) {
      // E scheme: pure forward scan — vectorized over decoded blocks.
      uint64_t scanned = 0;
      cursor.SkipEndsBelow(bound, /*one_block=*/false, &scanned, ck);
      stats_->entries_scanned += scanned;
      RefreshHead(q);
      return;
    }
    while (!cursor.AtEnd() && cursor.LabelAt().end < bound) {
      if (ctx_->Checkpoint()) break;
      EntryIndex follow = cursor.Following();
      if (follow != kNullEntry) {
        ++stats_->pointer_jumps;
        stats_->entries_skipped += follow - cursor.index() - 1;
        ++stats_->entries_scanned;
        cursor.Seek(follow);
        continue;
      }
      if (full_pointers_[static_cast<size_t>(q)]) {
        // Full LE: null means nothing follows; the rest are descendants.
        stats_->entries_skipped += cursor.size() - cursor.index() - 1;
        cursor.Seek(cursor.size());
        continue;
      }
      // LE_p: a null follow pointer may mean "target was adjacent" — advance
      // within the current decoded block (scalar cursor: one entry) and
      // re-check the landing entry's pointer on the next loop turn.
      uint64_t scanned = 0;
      bool aborted =
          cursor.SkipEndsBelow(bound, /*one_block=*/true, &scanned, ck);
      stats_->entries_scanned += scanned;
      if (aborted) break;
    }
    RefreshHead(q);
  }

  /// Skips the provably dead prefix of child c's list.
  ///
  /// Parent stacks are cleaned only with labels that arrive in ascending
  /// start order (getNext returns the minimal extendable head for direct
  /// children), so the parent stack is never over-popped: a pending c-entry
  /// e can belong to a match only if some *stacked* parent region contains
  /// it, the parent cursor's current head region will, or a future parent
  /// candidate (start >= Head(q).start) will. Hence every entry below
  ///   skip_to = min(Head(q).start, lowest stacked parent start)
  /// is dead once the stack bottom's region lies entirely before it.
  ///
  /// LE/LE_p views jump over the dead range (their materialized pointers
  /// make lists random-access; charged as one pointer jump); E-scheme views
  /// advance sequentially, as the paper's advancePointers does for segment
  /// roots (lines 9-11).
  void SkipDead(int q, int c) {
    ListCursor& cursor = cursors_[static_cast<size_t>(c)];
    if (cursor.AtEnd()) return;
    const Label& hc = Head(c);
    uint32_t skip_to = Head(q).start;
    const auto& stack = stacks_[static_cast<size_t>(q)];
    if (!stack.empty()) {
      const Label& bottom = stack.front();
      if (bottom.start < hc.start) {
        if (bottom.end > hc.start) return;  // hc sits in an open parent
        // The whole chain ended before hc; it constrains nothing ahead.
      } else if (bottom.start < skip_to) {
        skip_to = bottom.start;  // do not skip into a stacked parent region
      }
    }
    if (hc.start >= skip_to) return;
    auto ck = [&](uint32_t n) { return ctx_->CheckpointN(n); };
    if (has_pointers_[static_cast<size_t>(c)]) {
      // Galloping search (overflow-safe, checkpointed — see list_search.h):
      // dead gaps are often a handful of entries, so the cursor probes
      // exponentially before binary-searching the last span; with fence keys
      // the gallop runs over pages and touches a single block.
      EntryIndex from = cursor.index();
      uint64_t probes = 0;
      storage::SeekOutcome out =
          cursor.FindFirstStart(skip_to, /*strict=*/false, &probes, ck);
      stats_->entries_scanned += probes;  // probe reads are real skip work
      stats_->entries_skipped += out.pos - from;
      ++stats_->pointer_jumps;
      cursor.Seek(out.pos);
      RefreshHead(c);
    } else {
      uint64_t scanned = 0;
      cursor.SkipStartsBelow(skip_to, /*strict=*/false, &scanned, ck);
      stats_->entries_scanned += scanned;
      RefreshHead(c);
    }
  }

  /// Holistic getNext over the view-segmented query Q' (children per Q'
  /// structure). Identical contract to TwigStack's getNext, but iterating
  /// only over Q' nodes and skipping via pointers in the advance loop.
  int GetNext(int q) {
    const std::vector<int>& children = sq_.children[static_cast<size_t>(q)];
    if (children.empty()) return q;
    int qmin = -1;
    int qmax = -1;
    for (int c : children) {
      SkipDead(q, c);
      int n = GetNext(c);
      if (n != c) return n;
      Label head = Head(c);
      if (qmin < 0 || head.start < Head(qmin).start) qmin = c;
      if (qmax < 0 || head.start > Head(qmax).start) qmax = c;
    }
    AdvancePast(q, Head(qmax).start);
    if (Head(q).start < Head(qmin).start) return q;
    return qmin;
  }

  void CleanStack(int q, const Label& next) {
    auto& stack = stacks_[static_cast<size_t>(q)];
    while (!stack.empty() && stack.back().end < next.start) stack.pop_back();
  }

  void Push(int q, const Label& label) {
    stacks_[static_cast<size_t>(q)].push_back(label);
    Buffer(q, label, cursors_[static_cast<size_t>(q)].index());
  }

  /// Buffers a kept-node candidate into the group (spilling in disk mode).
  void Buffer(int q, const Label& label, EntryIndex index) {
    ++stats_->candidates;
    ++group_candidates_;
    if (label.end > max_buffered_end_[static_cast<size_t>(q)]) {
      max_buffered_end_[static_cast<size_t>(q)] = label.end;
    }
    if (mode_ == OutputMode::kDisk) {
      spill_->Append(static_cast<size_t>(q), label);
      // Anchors stay resident: the extension step needs their entry indexes.
      if (is_anchor_[static_cast<size_t>(q)]) {
        BufferEntry(q, label, index);
      }
    } else {
      BufferEntry(q, label, index);
    }
  }

  void BufferEntry(int q, const Label& label, EntryIndex index) {
    buffer_[static_cast<size_t>(q)].push_back(FEntry{label, index});
    ++buffered_;
    if (buffered_ > stats_->peak_buffered) stats_->peak_buffered = buffered_;
    charged_memory_ += sizeof(FEntry);
    ctx_->ChargeMemory(sizeof(FEntry));
  }

  /// Output pass for the closed root group: extend F to the removed query
  /// nodes, then enumerate all matches embedded in the buffered candidates.
  void Flush() {
    // An aborted run's candidates are never extended or enumerated (their
    // partial output would be discarded anyway); the buffers die with Impl.
    if (ctx_->aborted()) return;
    // Attribute the pass's time and scan/jump work to the output-pass
    // counters (deltas, since ExtendRemoved shares the segment counters) so
    // the plan layer can report the extension walk as its own step.
    util::Timer output_timer;
    const uint64_t scanned_before = stats_->entries_scanned;
    const uint64_t jumps_before = stats_->pointer_jumps;
    FlushImpl();
    stats_->output_pass_ms += output_timer.ElapsedMillis();
    stats_->output_entries_scanned += stats_->entries_scanned - scanned_before;
    stats_->output_pointer_jumps += stats_->pointer_jumps - jumps_before;
  }

  void FlushImpl() {
    // Step 1: extension. Removed nodes are visited anchors-first.
    for (size_t i = 0; i < sq_.removed.size(); ++i) {
      int r = sq_.removed[i];
      int anchor = sq_.removed_anchor[i];
      ExtendRemoved(r, anchor, removed_slot_[i], removed_edge_ad_[i] != 0);
      if (ctx_->aborted()) return;
    }
    // Step 2: gather per-node candidate NodeIds and enumerate.
    size_t nq = query_.size();
    std::vector<std::vector<NodeId>> resolved(nq);
    bool any = false;
    for (size_t q = 0; q < nq; ++q) {
      std::vector<Label> labels;
      if (mode_ == OutputMode::kDisk) {
        labels = spill_->Drain(q);
      } else {
        labels.reserve(buffer_[q].size());
        for (const FEntry& e : buffer_[q]) labels.push_back(e.label);
      }
      buffer_[q].clear();
      resolved[q].reserve(labels.size());
      for (const Label& label : labels) {
        if (ctx_->Checkpoint()) return;
        NodeId n = resolver_.Resolve(static_cast<int>(q), label.start);
        VJ_DCHECK(n != xml::kInvalidNode);
        // Corrupt/poisoned pages can surface labels that resolve to no
        // document node; skip them — the engine discards the run via the
        // latched storage error.
        if (n == xml::kInvalidNode) continue;
        resolved[q].push_back(n);
      }
      if (!resolved[q].empty()) any = true;
    }
    if (mode_ == OutputMode::kDisk) {
      stats_->spill_pages_written = spill_->pages_written();
      stats_->spill_pages_read = spill_->pages_read();
    }
    buffered_ = 0;
    group_candidates_ = 0;
    std::fill(max_buffered_end_.begin(), max_buffered_end_.end(), 0);
    // The flushed F entries are freed; return their budget charge.
    ctx_->ReleaseMemory(charged_memory_);
    charged_memory_ = 0;
    if (!any) return;
    ++stats_->flushes;
    enumerator_.Enumerate(resolved, sink_, ctx_);
  }

  /// Collects the F entries of removed node `r` under the buffered entries
  /// of its in-view anchor. Only outermost anchor entries are used (nested
  /// anchors cover subsets), so collected entries are unique and sorted.
  void ExtendRemoved(int r, int anchor, int slot, bool edge_is_ad) {
    const std::vector<FEntry>& anchors = buffer_[static_cast<size_t>(anchor)];
    ListCursor anchor_cursor(binding_.binding(anchor).list, pool_);
    ListCursor& rcursor = cursors_[static_cast<size_t>(r)];
    uint32_t prev_end = 0;
    for (const FEntry& a : anchors) {
      if (ctx_->Checkpoint()) return;
      if (a.label.start < prev_end) continue;  // nested in previous anchor
      prev_end = a.label.end;
      if (has_pointers_[static_cast<size_t>(r)]) {
        EntryIndex target;
        if (edge_is_ad) {
          // The ad child pointer targets exactly the first r-entry inside
          // the anchor's region.
          anchor_cursor.Seek(a.index);
          target = anchor_cursor.Child(static_cast<uint32_t>(slot));
          VJ_DCHECK(target != kNullEntry);
        } else {
          // pc edge: find the region start by galloping search instead (the
          // pc pointer may overshoot entries that nested anchors need).
          uint64_t probes = 0;
          storage::SeekOutcome out = rcursor.FindFirstStart(
              a.label.start, /*strict=*/true, &probes,
              [&](uint32_t n) { return ctx_->CheckpointN(n); });
          stats_->entries_scanned += probes;
          target = out.pos;
        }
        if (target > rcursor.index()) {
          stats_->entries_skipped += target - rcursor.index();
          ++stats_->pointer_jumps;
          rcursor.Seek(target);
        }
      } else {
        // E scheme: shared monotone scan of L_r.
        uint64_t scanned = 0;
        rcursor.SkipStartsBelow(a.label.start, /*strict=*/true, &scanned,
                                [&](uint32_t n) { return ctx_->CheckpointN(n); });
        stats_->entries_scanned += scanned;
        RefreshHead(r);
      }
      while (!rcursor.AtEnd()) {
        if (ctx_->Checkpoint()) return;
        Label label = rcursor.LabelAt();
        if (label.start > a.label.end) break;
        ++stats_->entries_scanned;
        if (mode_ == OutputMode::kDisk) {
          spill_->Append(static_cast<size_t>(r), label);
          // Stay resident only when this node anchors a deeper removed node.
          if (is_anchor_[static_cast<size_t>(r)]) {
            BufferEntry(r, label, rcursor.index());
          }
        } else {
          BufferEntry(r, label, rcursor.index());
        }
        rcursor.Next();
      }
    }
  }

  static constexpr uint64_t kFlushThreshold = 8192;

  const QueryBinding& binding_;
  const SegmentedQuery& sq_;
  const TreePattern& query_;
  storage::BufferPool* pool_;
  tpq::MatchSink* sink_;
  OutputMode mode_;
  HolisticStats* stats_;
  algo::QueryContext default_ctx_;  // ungoverned stand-in when none supplied
  algo::QueryContext* ctx_;
  algo::CandidateEnumerator enumerator_;
  algo::MonotoneResolver resolver_;

  std::vector<ListCursor> cursors_;
  std::vector<Label> heads_;
  std::vector<std::vector<Label>> stacks_;
  std::vector<std::vector<FEntry>> buffer_;
  std::vector<uint8_t> has_pointers_;
  std::vector<uint8_t> full_pointers_;
  std::vector<uint8_t> is_anchor_;
  std::vector<uint32_t> max_buffered_end_;
  std::vector<int> removed_slot_;
  std::vector<uint8_t> removed_edge_ad_;
  std::unique_ptr<SpillBuffer> spill_;
  uint64_t buffered_ = 0;
  uint64_t group_candidates_ = 0;
  uint64_t charged_memory_ = 0;
};

ViewJoin::ViewJoin(const QueryBinding* binding, const SegmentedQuery* segmented,
                   storage::BufferPool* pool)
    : binding_(binding), segmented_(segmented), pool_(pool) {}

void ViewJoin::Evaluate(tpq::MatchSink* sink, OutputMode mode,
                        storage::Pager* spill, algo::QueryContext* ctx) {
  stats_ = HolisticStats();
  Impl impl(*binding_, *segmented_, pool_, sink, mode, spill, &stats_, ctx);
  impl.Run();
}

}  // namespace viewjoin::core
