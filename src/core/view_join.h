#ifndef VIEWJOIN_CORE_VIEW_JOIN_H_
#define VIEWJOIN_CORE_VIEW_JOIN_H_

#include <memory>

#include "algo/holistic_stats.h"
#include "algo/query_binding.h"
#include "algo/query_context.h"
#include "core/segmented_query.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "tpq/pattern.h"

namespace viewjoin::core {

/// ViewJoin (paper Section IV): holistic evaluation of a TPQ over a minimal
/// covering view set stored in the element or linked-element schemes.
///
/// Structure, following the paper's two-step design:
///
///  1. Evaluate the view-segmented query Q' (only nodes incident to
///     inter-view edges survive; usually a small fraction of Q). This runs
///     the holistic getNext/stack machinery over the view lists of the Q'
///     nodes, collecting solution candidates into the result buffer F,
///     grouped per root match. With LE/LE_p views the advance steps *skip*
///     non-solution entries: a failed node's following pointer jumps over
///     all its same-type descendants in one dereference.
///  2. At each root-group boundary, extend F to the query nodes dropped
///     from Q' by walking child pointers from their in-view anchor's
///     buffered entries (LE/LE_p) or by a single shared sequential scan of
///     their lists (E), then enumerate and emit all matches embedded in F —
///     pc-edge level checks happen here, as in the paper.
///
/// Safety deviations from the paper's pseudocode are documented in
/// DESIGN.md: every skip used here is provably complete (the unconstrained
/// following pointer only ever jumps a failed node's own descendants; the
/// paper's cursor realignment of descendant query nodes is omitted because
/// it can lose matches whose ancestors are still open), and the output pass
/// re-verifies all structural relations.
///
/// Works with all three list schemes; with E-scheme views all jumps
/// degenerate to sequential advances (the paper's VJ+E).
class ViewJoin {
 public:
  /// `binding` and `segmented` must outlive the ViewJoin and belong to the
  /// same query. `pool` serves list page reads.
  ViewJoin(const algo::QueryBinding* binding, const SegmentedQuery* segmented,
           storage::BufferPool* pool);

  /// Runs the join, streaming every match to `sink`. Disk output mode
  /// spills intermediate solutions through `spill` and re-reads them at
  /// group boundaries (paper Section VI-E). A non-null `ctx` governs the
  /// run: the segment getNext recursion, drains, extension walks and the
  /// output enumeration all checkpoint it and stop early once it aborts — a
  /// stopped run's partial matches must be discarded by the caller.
  void Evaluate(tpq::MatchSink* sink,
                algo::OutputMode mode = algo::OutputMode::kMemory,
                storage::Pager* spill = nullptr,
                algo::QueryContext* ctx = nullptr);

  const algo::HolisticStats& stats() const { return stats_; }
  const SegmentedQuery& segmented() const { return *segmented_; }

 private:
  class Impl;

  const algo::QueryBinding* binding_;
  const SegmentedQuery* segmented_;
  storage::BufferPool* pool_;
  algo::HolisticStats stats_;
};

}  // namespace viewjoin::core

#endif  // VIEWJOIN_CORE_VIEW_JOIN_H_
