#ifndef VIEWJOIN_CORE_SEGMENTED_QUERY_H_
#define VIEWJOIN_CORE_SEGMENTED_QUERY_H_

#include <string>
#include <vector>

#include "algo/query_binding.h"

namespace viewjoin::core {

/// The view-segmented query Q' (paper Section IV-A).
///
/// Built from a query Q and a covering view assignment: Q-edges whose
/// endpoints live in different views are *inter-view* edges; non-root nodes
/// with no incident inter-view edge are removed from Q' (their matches are
/// recovered at output time through materialized pointers); the remaining
/// nodes are grouped into *segments* — maximal sets connected by intra-view
/// edges. Each segment is a connected subpattern of one view, so its joins
/// are precomputed in that view.
struct SegmentedQuery {
  struct Segment {
    /// Root query node of the segment (shallowest member).
    int root = -1;
    /// Member query nodes in top-down (query preorder) order.
    std::vector<int> nodes;
    /// Covering view index (all members share it).
    int view = -1;
    int parent_segment = -1;
    std::vector<int> child_segments;
  };

  /// kept[q]: q survives into Q'.
  std::vector<uint8_t> kept;
  /// Parent of q in Q' = nearest kept proper ancestor (-1 for the Q'-root or
  /// for removed nodes).
  std::vector<int> parent;
  /// Kept children of q in Q' (q's attachment points for child segments and
  /// intra-view Q' edges).
  std::vector<std::vector<int>> children;
  /// segment_of[q]: segment id, or -1 for removed nodes.
  std::vector<int> segment_of;
  std::vector<Segment> segments;
  /// Always segment of query node 0.
  int root_segment = 0;
  /// Removed query nodes in *view preorder* (each node's view-parent comes
  /// earlier or is kept) — the order the output extension walks them.
  std::vector<int> removed;
  /// For each removed node: the query node of its parent *within its view*
  /// (the anchor whose child pointers reach its entries).
  std::vector<int> removed_anchor;
  /// Number of inter-view edges of Q w.r.t. the views (#Cond, Table III).
  int inter_view_edges = 0;

  /// Q' rendered as "{a} {b//d} {f} {e}" for logs and tests.
  std::string ToString(const tpq::TreePattern& query) const;
};

/// Computes the view-segmented query for a bound query (linear in |Q|).
SegmentedQuery BuildSegmentedQuery(const algo::QueryBinding& binding);

}  // namespace viewjoin::core

#endif  // VIEWJOIN_CORE_SEGMENTED_QUERY_H_
