#include "server/wire.h"

#include <cstring>

namespace viewjoin::server {

namespace {

// ---- Append-style encoder --------------------------------------------------

void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutU32(std::string* out, uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, 4);
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  out->append(bytes, 8);
}

void PutF64(std::string* out, double value) {
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  out->append(bytes, 8);
}

void PutString(std::string* out, const std::string& value) {
  PutU32(out, static_cast<uint32_t>(value.size()));
  out->append(value);
}

// ---- Bounds-checked cursor decoder -----------------------------------------

class Reader {
 public:
  explicit Reader(const std::string& payload) : data_(payload) {}

  bool U8(uint8_t* value) {
    if (pos_ + 1 > data_.size()) return false;
    *value = static_cast<uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }
  bool U32(uint32_t* value) {
    if (pos_ + 4 > data_.size()) return false;
    std::memcpy(value, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* value) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(value, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool F64(double* value) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(value, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool String(std::string* value) {
    uint32_t len;
    if (!U32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    value->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool Bool(bool* value) {
    uint8_t raw;
    if (!U8(&raw)) return false;
    if (raw > 1) return false;
    *value = raw != 0;
    return true;
  }

  /// A well-formed payload is consumed exactly; trailing bytes mean the peer
  /// encoded something we don't understand.
  bool Done() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

util::Status Malformed(const char* what) {
  return util::Status::InvalidArgument(std::string("malformed frame: ") + what);
}

util::Status ExpectType(Reader* reader, MsgType want, const char* name) {
  uint8_t type;
  if (!reader->U8(&type)) return Malformed("empty payload");
  if (type != static_cast<uint8_t>(want)) {
    return Malformed(name);
  }
  return util::Status::Ok();
}

}  // namespace

void EncodeFrameHeader(uint32_t payload_len, uint8_t out[kFrameHeaderBytes]) {
  std::memcpy(out, &kFrameMagic, 4);
  std::memcpy(out + 4, &payload_len, 4);
}

util::StatusOr<uint32_t> DecodeFrameHeader(const uint8_t in[kFrameHeaderBytes],
                                           uint32_t max_frame_bytes) {
  uint32_t magic;
  uint32_t length;
  std::memcpy(&magic, in, 4);
  std::memcpy(&length, in + 4, 4);
  if (magic != kFrameMagic) {
    return util::Status::Corruption("bad frame magic (not a ViewJoin peer?)");
  }
  if (length > max_frame_bytes) {
    return util::Status::ResourceExhausted(
        "frame of " + std::to_string(length) + " bytes exceeds the " +
        std::to_string(max_frame_bytes) + "-byte cap");
  }
  return length;
}

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kError:
      return "error";
    case Verdict::kRejected:
      return "rejected";
    case Verdict::kTimeout:
      return "timeout";
    case Verdict::kCancelled:
      return "cancelled";
    case Verdict::kShuttingDown:
      return "shutting-down";
  }
  return "?";
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kQueryRequest));
  PutString(&out, request.tenant);
  PutString(&out, request.query);
  PutU32(&out, static_cast<uint32_t>(request.views.size()));
  for (const std::string& view : request.views) PutString(&out, view);
  PutString(&out, request.scheme);
  PutString(&out, request.algorithm);
  PutF64(&out, request.deadline_ms);
  PutU8(&out, request.count_only ? 1 : 0);
  return out;
}

std::string EncodeQueryResponse(const QueryResponse& response) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kQueryResponse));
  PutU8(&out, static_cast<uint8_t>(response.verdict));
  PutString(&out, response.error);
  PutF64(&out, response.retry_after_ms);
  PutU64(&out, response.match_count);
  PutU64(&out, response.result_hash);
  PutF64(&out, response.server_ms);
  PutU8(&out, response.degraded ? 1 : 0);
  PutU64(&out, response.pages_read);
  PutU32(&out, response.attempts);
  return out;
}

std::string EncodeStatusRequest() {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kStatusRequest));
  return out;
}

std::string EncodeStatusResponse(const StatusResponse& status) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kStatusResponse));
  PutU8(&out, status.healthy ? 1 : 0);
  PutU8(&out, status.ready ? 1 : 0);
  PutU8(&out, status.draining ? 1 : 0);
  PutU64(&out, status.in_flight);
  PutU64(&out, status.queued_connections);
  PutU64(&out, status.connections_accepted);
  PutU64(&out, status.queries_served);
  PutU64(&out, status.rejected_quota);
  PutU64(&out, status.rejected_shed);
  PutU64(&out, status.rejected_draining);
  PutU64(&out, status.read_timeouts);
  PutU64(&out, status.frame_errors);
  PutU64(&out, status.views_cached);
  PutU64(&out, status.backups_completed);
  PutU64(&out, status.backups_failed);
  PutU64(&out, status.update_dedup_hits);
  PutU64(&out, status.resource_exhausted);
  PutString(&out, status.last_backup_error);
  return out;
}

std::string EncodeBackupRequest(const BackupRequest& request) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kBackupRequest));
  PutString(&out, request.dest_dir);
  return out;
}

std::string EncodeBackupResponse(const BackupResponse& response) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kBackupResponse));
  PutU8(&out, static_cast<uint8_t>(response.verdict));
  PutString(&out, response.error);
  PutString(&out, response.directory);
  PutU64(&out, response.epoch);
  PutU64(&out, response.view_pages);
  PutU64(&out, response.bytes_copied);
  PutF64(&out, response.server_ms);
  return out;
}

std::string EncodeUpdateRequest(const UpdateRequest& request) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kUpdateRequest));
  PutString(&out, request.tenant);
  PutString(&out, request.token);
  PutU32(&out, static_cast<uint32_t>(request.ops.size()));
  for (const UpdateRequest::Op& op : request.ops) {
    PutU8(&out, op.kind);
    PutString(&out, op.target_tag);
    PutU32(&out, op.target_start);
    PutString(&out, op.after_tag);
    PutU32(&out, op.after_start);
    PutString(&out, op.fragment);
  }
  return out;
}

std::string EncodeUpdateResponse(const UpdateResponse& response) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgType::kUpdateResponse));
  PutU8(&out, static_cast<uint8_t>(response.verdict));
  PutString(&out, response.error);
  PutF64(&out, response.retry_after_ms);
  PutU64(&out, response.applied);
  PutU32(&out, static_cast<uint32_t>(response.failed.size()));
  for (const std::string& reason : response.failed) PutString(&out, reason);
  PutU8(&out, response.relabeled ? 1 : 0);
  PutU64(&out, response.txn_epoch);
  PutU64(&out, response.delta_maintained);
  PutU64(&out, response.fully_rebuilt);
  PutF64(&out, response.server_ms);
  return out;
}

util::StatusOr<MsgType> PeekType(const std::string& payload) {
  if (payload.empty()) return Malformed("empty payload");
  uint8_t type = static_cast<uint8_t>(payload[0]);
  switch (static_cast<MsgType>(type)) {
    case MsgType::kQueryRequest:
    case MsgType::kQueryResponse:
    case MsgType::kStatusRequest:
    case MsgType::kStatusResponse:
    case MsgType::kUpdateRequest:
    case MsgType::kUpdateResponse:
    case MsgType::kBackupRequest:
    case MsgType::kBackupResponse:
      return static_cast<MsgType>(type);
  }
  return Malformed("unknown message type");
}

util::Status DecodeQueryRequest(const std::string& payload,
                                QueryRequest* request) {
  Reader reader(payload);
  util::Status type_ok =
      ExpectType(&reader, MsgType::kQueryRequest, "not a query request");
  if (!type_ok.ok()) return type_ok;
  uint32_t nviews = 0;
  if (!reader.String(&request->tenant) || !reader.String(&request->query) ||
      !reader.U32(&nviews)) {
    return Malformed("truncated query request");
  }
  // Cap before allocating: nviews is attacker-controlled.
  if (nviews > 1024) return Malformed("too many views");
  request->views.clear();
  request->views.reserve(nviews);
  for (uint32_t i = 0; i < nviews; ++i) {
    std::string view;
    if (!reader.String(&view)) return Malformed("truncated view list");
    request->views.push_back(std::move(view));
  }
  if (!reader.String(&request->scheme) ||
      !reader.String(&request->algorithm) ||
      !reader.F64(&request->deadline_ms) ||
      !reader.Bool(&request->count_only) || !reader.Done()) {
    return Malformed("truncated query request");
  }
  return util::Status::Ok();
}

util::Status DecodeQueryResponse(const std::string& payload,
                                 QueryResponse* response) {
  Reader reader(payload);
  util::Status type_ok =
      ExpectType(&reader, MsgType::kQueryResponse, "not a query response");
  if (!type_ok.ok()) return type_ok;
  uint8_t verdict = 0;
  if (!reader.U8(&verdict) ||
      verdict > static_cast<uint8_t>(Verdict::kShuttingDown)) {
    return Malformed("bad verdict");
  }
  response->verdict = static_cast<Verdict>(verdict);
  if (!reader.String(&response->error) ||
      !reader.F64(&response->retry_after_ms) ||
      !reader.U64(&response->match_count) ||
      !reader.U64(&response->result_hash) ||
      !reader.F64(&response->server_ms) || !reader.Bool(&response->degraded) ||
      !reader.U64(&response->pages_read) || !reader.U32(&response->attempts) ||
      !reader.Done()) {
    return Malformed("truncated query response");
  }
  return util::Status::Ok();
}

util::Status DecodeUpdateRequest(const std::string& payload,
                                 UpdateRequest* request) {
  Reader reader(payload);
  util::Status type_ok =
      ExpectType(&reader, MsgType::kUpdateRequest, "not an update request");
  if (!type_ok.ok()) return type_ok;
  uint32_t nops = 0;
  if (!reader.String(&request->tenant) || !reader.String(&request->token) ||
      !reader.U32(&nops)) {
    return Malformed("truncated update request");
  }
  // Tokens key a server-side map; cap them so a hostile client cannot turn
  // the dedup window into an allocation sink.
  if (request->token.size() > 128) return Malformed("oversized update token");
  // Cap before allocating: nops is attacker-controlled.
  if (nops > 4096) return Malformed("too many update ops");
  request->ops.clear();
  request->ops.reserve(nops);
  for (uint32_t i = 0; i < nops; ++i) {
    UpdateRequest::Op op;
    if (!reader.U8(&op.kind) || !reader.String(&op.target_tag) ||
        !reader.U32(&op.target_start) || !reader.String(&op.after_tag) ||
        !reader.U32(&op.after_start) || !reader.String(&op.fragment)) {
      return Malformed("truncated update op");
    }
    if (op.kind > 1) return Malformed("bad update op kind");
    request->ops.push_back(std::move(op));
  }
  if (!reader.Done()) return Malformed("trailing bytes in update request");
  return util::Status::Ok();
}

util::Status DecodeUpdateResponse(const std::string& payload,
                                  UpdateResponse* response) {
  Reader reader(payload);
  util::Status type_ok =
      ExpectType(&reader, MsgType::kUpdateResponse, "not an update response");
  if (!type_ok.ok()) return type_ok;
  uint8_t verdict = 0;
  if (!reader.U8(&verdict) ||
      verdict > static_cast<uint8_t>(Verdict::kShuttingDown)) {
    return Malformed("bad verdict");
  }
  response->verdict = static_cast<Verdict>(verdict);
  uint32_t nfailed = 0;
  if (!reader.String(&response->error) ||
      !reader.F64(&response->retry_after_ms) ||
      !reader.U64(&response->applied) || !reader.U32(&nfailed)) {
    return Malformed("truncated update response");
  }
  // Same cap as the request's op count: one reason per op at most.
  if (nfailed > 4096) return Malformed("too many failure reasons");
  response->failed.clear();
  response->failed.reserve(nfailed);
  for (uint32_t i = 0; i < nfailed; ++i) {
    std::string reason;
    if (!reader.String(&reason)) return Malformed("truncated failure list");
    response->failed.push_back(std::move(reason));
  }
  if (!reader.Bool(&response->relabeled) ||
      !reader.U64(&response->txn_epoch) ||
      !reader.U64(&response->delta_maintained) ||
      !reader.U64(&response->fully_rebuilt) ||
      !reader.F64(&response->server_ms) || !reader.Done()) {
    return Malformed("truncated update response");
  }
  return util::Status::Ok();
}

util::Status DecodeStatusResponse(const std::string& payload,
                                  StatusResponse* status) {
  Reader reader(payload);
  util::Status type_ok =
      ExpectType(&reader, MsgType::kStatusResponse, "not a status response");
  if (!type_ok.ok()) return type_ok;
  if (!reader.Bool(&status->healthy) || !reader.Bool(&status->ready) ||
      !reader.Bool(&status->draining) || !reader.U64(&status->in_flight) ||
      !reader.U64(&status->queued_connections) ||
      !reader.U64(&status->connections_accepted) ||
      !reader.U64(&status->queries_served) ||
      !reader.U64(&status->rejected_quota) ||
      !reader.U64(&status->rejected_shed) ||
      !reader.U64(&status->rejected_draining) ||
      !reader.U64(&status->read_timeouts) ||
      !reader.U64(&status->frame_errors) ||
      !reader.U64(&status->views_cached) ||
      !reader.U64(&status->backups_completed) ||
      !reader.U64(&status->backups_failed) ||
      !reader.U64(&status->update_dedup_hits) ||
      !reader.U64(&status->resource_exhausted) ||
      !reader.String(&status->last_backup_error) || !reader.Done()) {
    return Malformed("truncated status response");
  }
  return util::Status::Ok();
}

util::Status DecodeBackupRequest(const std::string& payload,
                                 BackupRequest* request) {
  Reader reader(payload);
  util::Status type_ok =
      ExpectType(&reader, MsgType::kBackupRequest, "not a backup request");
  if (!type_ok.ok()) return type_ok;
  if (!reader.String(&request->dest_dir) || !reader.Done()) {
    return Malformed("truncated backup request");
  }
  return util::Status::Ok();
}

util::Status DecodeBackupResponse(const std::string& payload,
                                  BackupResponse* response) {
  Reader reader(payload);
  util::Status type_ok =
      ExpectType(&reader, MsgType::kBackupResponse, "not a backup response");
  if (!type_ok.ok()) return type_ok;
  uint8_t verdict = 0;
  if (!reader.U8(&verdict) ||
      verdict > static_cast<uint8_t>(Verdict::kShuttingDown)) {
    return Malformed("bad verdict");
  }
  response->verdict = static_cast<Verdict>(verdict);
  if (!reader.String(&response->error) ||
      !reader.String(&response->directory) ||
      !reader.U64(&response->epoch) || !reader.U64(&response->view_pages) ||
      !reader.U64(&response->bytes_copied) ||
      !reader.F64(&response->server_ms) || !reader.Done()) {
    return Malformed("truncated backup response");
  }
  return util::Status::Ok();
}

}  // namespace viewjoin::server
